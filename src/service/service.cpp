#include "service/service.hpp"

#include <exception>
#include <stdexcept>

#include "core/errors.hpp"
#include "hash/hash_functions.hpp"
#include "nvm/fault_fs.hpp"
#include "util/assert.hpp"

namespace gh::service {

namespace {

/// Same seed the concurrent wrappers use for shard routing, so the
/// service's shard for a key matches ConcurrentGroupHashMap's.
constexpr u64 kShardSeed = 0xc3a5c85c97cb3127ull;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline obs::OpKind op_kind(Op op) {
  switch (op) {
    case Op::kGet: return obs::OpKind::kFind;
    case Op::kPut: return obs::OpKind::kInsert;
    case Op::kErase: return obs::OpKind::kErase;
  }
  return obs::OpKind::kFind;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kPending: return "pending";
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kDegraded: return "degraded";
    case Status::kShardDown: return "shard_down";
  }
  return "?";
}

u32 ShardServer::shard_of(u64 key, u32 shards) {
  return static_cast<u32>(hash::SeededHash(kShardSeed)(key)) & (shards - 1);
}

ShardServer::ShardServer(const ServiceOptions& options) : options_(options) {
  GH_CHECK_MSG(options_.batch_window >= 1,
               "batch_window must be >= 1 (a zero window would never drain the ring)");
  u32 n = 1;
  while (n < options_.shards) n <<= 1;
  nshards_ = n;
  shards_.reserve(nshards_);
  for (u32 s = 0; s < nshards_; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
    Shard& shard = *shards_.back();
    shard.index = s;
    shard.ring_gate.set_shift(options_.map_options.latency_sample_shift);
    if (options_.data_dir.empty()) {
      shard.map = std::make_unique<GroupHashMap>(
          GroupHashMap::create_in_memory(options_.map_options));
    } else {
      const std::string path =
          options_.data_dir + "/shard" + std::to_string(s) + ".gh";
      shard.map =
          std::make_unique<GroupHashMap>(GroupHashMap::create(path, options_.map_options));
    }
  }
  running_.store(true, std::memory_order_release);
  for (u32 s = 0; s < nshards_; ++s) {
    Shard& shard = *shards_[s];
    shard.worker = std::thread([this, &shard] { worker_loop(shard); });
  }
}

ShardServer::~ShardServer() { stop(); }

bool ShardServer::shard_down(u32 shard) const {
  return shards_[shard]->dead.load(std::memory_order_acquire);
}

void ShardServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->doorbell.fetch_add(1, std::memory_order_release);
    shard->doorbell.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardServer::push_item(Shard& shard, const WorkItem& item) {
  // Bounded ring = bounded memory; a full ring is backpressure, and the
  // producer spins until the worker frees a slot. A dead shard keeps
  // draining (answering kShardDown), so this spin always terminates.
  u32 spins = 0;
  while (!shard.ring.try_push(item)) {
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  shard.doorbell.fetch_add(1, std::memory_order_release);
  shard.doorbell.notify_one();
}

void ShardServer::execute(Batch& batch) {
  GH_CHECK(running());
  const u32 n = static_cast<u32>(batch.requests.size());
  batch.responses_.assign(n, Response{});
  if (n == 0) return;

  // Counting sort the request indices by shard: one pass to count, one
  // to scatter. offsets_ keeps the fence posts so each shard's slice of
  // order_ is contiguous and in caller order.
  batch.offsets_.assign(nshards_ + 1, 0);
  batch.order_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    batch.offsets_[shard_of(batch.requests[i].key, nshards_) + 1]++;
  }
  for (u32 s = 0; s < nshards_; ++s) batch.offsets_[s + 1] += batch.offsets_[s];
  std::vector<u32> cursor(batch.offsets_.begin(), batch.offsets_.end() - 1);
  for (u32 i = 0; i < n; ++i) {
    batch.order_[cursor[shard_of(batch.requests[i].key, nshards_)]++] = i;
  }

  const u64 t0 = obs::now_ticks();

  // Trace admission, per batch at ingest: kFull traces everything,
  // kSampled admits 1 in 2^shift batches off an atomic counter. A
  // traced batch gets a trace id and a pre-allocated root span id that
  // every work item carries through the ring.
  u64 trace_id = 0;
  u32 root_span = 0;
  if (obs::kEnabled && options_.trace_mode != obs::TraceMode::kOff) {
    const bool admit =
        options_.trace_mode == obs::TraceMode::kFull ||
        (trace_seq_.fetch_add(1, std::memory_order_relaxed) &
         ((u64{1} << options_.trace_sample_shift) - 1)) == 0;
    if (admit) {
      trace_id = obs::SpanCollector::global().next_trace_id();
      root_span = obs::SpanCollector::global().next_span_id();
    }
  }
  const auto make_item = [&](u32 begin, u32 count) {
    WorkItem w{&batch, begin, count};
    if constexpr (obs::kEnabled) {
      w.trace_id = trace_id;
      w.parent_span = root_span;
      w.enqueue_ticks = t0;
    }
    return w;
  };

  if (options_.naive) {
    // Baseline transport: one work item (and one scalar map call) per
    // request — what a request-per-message server would do.
    batch.pending_.store(n, std::memory_order_release);
    for (u32 s = 0; s < nshards_; ++s) {
      for (u32 i = batch.offsets_[s]; i < batch.offsets_[s + 1]; ++i) {
        push_item(*shards_[s], make_item(i, 1));
      }
    }
  } else {
    u32 touched = 0;
    for (u32 s = 0; s < nshards_; ++s) {
      touched += batch.offsets_[s + 1] > batch.offsets_[s];
    }
    batch.pending_.store(touched, std::memory_order_release);
    for (u32 s = 0; s < nshards_; ++s) {
      const u32 begin = batch.offsets_[s];
      const u32 count = batch.offsets_[s + 1] - begin;
      if (count > 0) push_item(*shards_[s], make_item(begin, count));
    }
  }

  for (u32 p = batch.pending_.load(std::memory_order_acquire); p != 0;
       p = batch.pending_.load(std::memory_order_acquire)) {
    batch.pending_.wait(p, std::memory_order_acquire);
  }

  const u64 t1 = obs::now_ticks();
  const u64 dt = t1 - t0;
  for (u32 i = 0; i < n; ++i) recorder_.record(op_kind(batch.requests[i].op), dt);
  if (trace_id != 0) {
    // The wake span covers "last shard answered → this thread resumed"
    // (futex wake + scheduling), the one stretch of a request's life no
    // worker-side span can see.
    const u64 done = batch.done_ticks_.load(std::memory_order_relaxed);
    if (done > t0 && done < t1) {
      obs::emit_span(obs::SpanKind::kWake, trace_id, root_span, done, t1);
    }
    obs::emit_span_with_id(obs::SpanKind::kRequest, trace_id, root_span,
                           /*parent=*/0, t0, t1);
  }
}

void ShardServer::complete(Batch* batch) {
  if (batch->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if constexpr (obs::kEnabled) {
      batch->done_ticks_.store(obs::now_ticks(), std::memory_order_relaxed);
    }
    batch->pending_.notify_all();
  }
}

void ShardServer::answer_item(const WorkItem& item, Status status) {
  for (u32 i = 0; i < item.count; ++i) {
    const u32 r = item.batch->order_[item.begin + i];
    item.batch->responses_[r] = Response{status, 0};
  }
}

void ShardServer::kill_shard(Shard& shard) {
  // A SimulatedCrash froze this shard's map mid-operation. Treat the
  // worker as power-failed: drop the mappings without flushing (exactly
  // what abandon() models) and answer kShardDown from here on. The ring
  // keeps draining so clients never wedge on a dead shard.
  shard.dead.store(true, std::memory_order_release);
  shard.map->abandon();
}

bool ShardServer::restart_shard(u32 shard_idx) {
  GH_CHECK(shard_idx < nshards_);
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(restart_mu_);
  if (!running() || !shard.dead.load(std::memory_order_acquire)) return false;
  // Reopen on the caller's thread: recovery (and resuming an interrupted
  // migration) can take a while, and the worker must keep draining its
  // ring — answering kShardDown — the whole time. File-backed shards
  // reopen their file through the normal recovery path; in-memory shards
  // lost their mappings with the "power failure" and come back empty.
  std::unique_ptr<GroupHashMap> fresh;
  try {
    if (options_.data_dir.empty()) {
      fresh = std::make_unique<GroupHashMap>(
          GroupHashMap::create_in_memory(options_.map_options));
    } else {
      const std::string path =
          options_.data_dir + "/shard" + std::to_string(shard_idx) + ".gh";
      fresh =
          std::make_unique<GroupHashMap>(GroupHashMap::open(path, options_.map_options));
    }
  } catch (...) {
    return false;  // reopen failed; the shard stays down and the caller may retry
  }
  shard.pending_map = std::move(fresh);
  shard.revive.store(true, std::memory_order_release);
  shard.doorbell.fetch_add(1, std::memory_order_release);
  shard.doorbell.notify_all();
  // The worker installs the map at its loop top; wait for that so the
  // caller's next batch cannot race the swap. If the server stops before
  // the install, the worker exits without installing — bail out.
  while (shard.revive.load(std::memory_order_acquire)) {
    if (!running()) return false;
    std::this_thread::yield();
  }
  return true;
}

void ShardServer::worker_loop(Shard& shard) {
  // Idle-loop migration drain: groups retired per empty ring poll. Large
  // enough that an idle shard finishes a resize in a few wakeups, small
  // enough that a request arriving mid-burst waits at most one burst.
  constexpr u64 kIdleMigrateGroups = 64;
  for (;;) {
    if (shard.revive.load(std::memory_order_acquire)) {
      // restart_shard parked a freshly reopened map; install it here so
      // only the worker ever touches the live shard map.
      shard.map = std::move(shard.pending_map);
      shard.dead.store(false, std::memory_order_release);
      shard.revive.store(false, std::memory_order_release);
      shard.revive.notify_all();
    }
    const u64 seen = shard.doorbell.load(std::memory_order_acquire);
    shard.visit.clear();
    WorkItem w;
    while (shard.visit.size() < options_.batch_window && shard.ring.try_pop(w)) {
      shard.visit.push_back(w);
    }
    if (shard.visit.empty()) {
      if (stopping_.load(std::memory_order_acquire)) {
        // stop() rings every doorbell after flipping the flag and
        // execute() refuses new batches, so an empty ring here is final.
        return;
      }
      if (!shard.dead.load(std::memory_order_relaxed) && shard.map->migration_active()) {
        try {
          // Re-poll the ring after every burst so background draining
          // never starves a request by more than one burst. A zero-group
          // step (finalize in degraded backoff) falls through to the
          // doorbell wait instead of spinning on the cooldown.
          if (shard.map->migrate_step(kIdleMigrateGroups) > 0) continue;
        } catch (const nvm::SimulatedCrash&) {
          kill_shard(shard);
        }
      }
      shard.doorbell.wait(seen, std::memory_order_acquire);
      continue;
    }
    if (shard.dead.load(std::memory_order_relaxed)) {
      for (const WorkItem& item : shard.visit) {
        answer_item(item, Status::kShardDown);
        complete(item.batch);
      }
      continue;
    }
    // Ring-wait attribution + trace adoption. Each item's enqueue → pop
    // wait books under Phase::kRingWait per request kind (added to both
    // the bucket and the attributed total, so phases still sum to the
    // request's attributed time). Traced items get a ring_wait span; the
    // first traced item's context is adopted for the whole visit so the
    // map ops inside emit their spans under one shard_visit parent.
    u64 visit_trace = 0;
    u32 visit_parent = 0;
    const u64 pop_ticks = obs::kEnabled ? obs::now_ticks() : 0;
    if constexpr (obs::kEnabled) {
      for (const WorkItem& item : shard.visit) {
        if (item.enqueue_ticks == 0) continue;
        const u64 wait =
            pop_ticks > item.enqueue_ticks ? pop_ticks - item.enqueue_ticks : 0;
        if (shard.ring_gate.admit()) {
          for (u32 i = 0; i < item.count; ++i) {
            const Request& rq =
                item.batch->requests[item.batch->order_[item.begin + i]];
            ring_phases_.add_wait(op_kind(rq.op), obs::Phase::kRingWait, wait);
          }
        }
        if (item.trace_id != 0) {
          obs::emit_span(obs::SpanKind::kRingWait, item.trace_id, item.parent_span,
                        item.enqueue_ticks, pop_ticks, static_cast<u8>(shard.index));
          if (visit_trace == 0) {
            visit_trace = item.trace_id;
            visit_parent = item.parent_span;
          }
        }
      }
    }
    u32 visit_span = 0;
    if (visit_trace != 0) {
      visit_span = obs::SpanCollector::global().next_span_id();
      obs::set_thread_trace(visit_trace, visit_span, true);
    }
    if (options_.naive) {
      serve_visit_naive(shard);
    } else {
      serve_visit(shard);
    }
    if (visit_trace != 0) {
      obs::clear_thread_trace();
      obs::emit_span_with_id(obs::SpanKind::kShardVisit, visit_trace, visit_span,
                             visit_parent, pop_ticks, obs::now_ticks(),
                             static_cast<u8>(shard.index));
    }
    for (const WorkItem& item : shard.visit) complete(item.batch);
  }
}

void ShardServer::serve_visit(Shard& shard) {
  // Bucket every request of the visit — across client batches — by kind,
  // then execute ONE map batch call per kind. This is the ingest
  // batching window: the map-level fast path prefetches tag lines across
  // the whole get set and coalesces fences across the whole put set.
  shard.get_keys.clear();
  shard.get_slots.clear();
  shard.put_keys.clear();
  shard.put_vals.clear();
  shard.put_slots.clear();
  shard.erase_keys.clear();
  shard.erase_slots.clear();

  for (const WorkItem& item : shard.visit) {
    for (u32 i = 0; i < item.count; ++i) {
      const u32 r = item.batch->order_[item.begin + i];
      const Request& rq = item.batch->requests[r];
      switch (rq.op) {
        case Op::kGet:
          shard.get_keys.push_back(rq.key);
          shard.get_slots.push_back(SlotRef{item.batch, r});
          break;
        case Op::kPut:
          shard.put_keys.push_back(rq.key);
          shard.put_vals.push_back(rq.value);
          shard.put_slots.push_back(SlotRef{item.batch, r});
          break;
        case Op::kErase:
          shard.erase_keys.push_back(rq.key);
          shard.erase_slots.push_back(SlotRef{item.batch, r});
          break;
      }
    }
  }

  if (!shard.get_keys.empty()) {
    shard.get_out.assign(shard.get_keys.size(), std::nullopt);
    try {
      shard.map->get_batch(shard.get_keys, shard.get_out);
      for (usize i = 0; i < shard.get_slots.size(); ++i) {
        const SlotRef slot = shard.get_slots[i];
        slot.batch->responses_[slot.req] =
            shard.get_out[i] ? Response{Status::kOk, *shard.get_out[i]}
                             : Response{Status::kNotFound, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (!shard.dead.load(std::memory_order_relaxed) && !shard.put_keys.empty()) {
    try {
      shard.map->put_batch(shard.put_keys, shard.put_vals);
      for (const SlotRef& slot : shard.put_slots) {
        slot.batch->responses_[slot.req] = Response{Status::kOk, 0};
      }
    } catch (const MapDegradedError&) {
      // The shard stays up: reads are unaffected and the map retries its
      // rebuild with backoff. A prefix of the window may have landed, so
      // kDegraded means "retry later" (at-least-once), never data loss.
      for (const SlotRef& slot : shard.put_slots) {
        slot.batch->responses_[slot.req] = Response{Status::kDegraded, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (!shard.dead.load(std::memory_order_relaxed) && !shard.erase_keys.empty()) {
    shard.erase_hits.assign(shard.erase_keys.size(), 0);
    try {
      shard.map->erase_batch(shard.erase_keys, shard.erase_hits);
      for (usize i = 0; i < shard.erase_slots.size(); ++i) {
        const SlotRef slot = shard.erase_slots[i];
        slot.batch->responses_[slot.req] =
            Response{shard.erase_hits[i] ? Status::kOk : Status::kNotFound, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (shard.dead.load(std::memory_order_relaxed)) {
    // The crash interrupted this visit: every response still kPending —
    // including ops "before" the dying call whose scatter-back never ran
    // — answers kShardDown.
    for (const WorkItem& item : shard.visit) {
      for (u32 i = 0; i < item.count; ++i) {
        const u32 r = item.batch->order_[item.begin + i];
        if (item.batch->responses_[r].status == Status::kPending) {
          item.batch->responses_[r] = Response{Status::kShardDown, 0};
        }
      }
    }
  }
}

void ShardServer::serve_visit_naive(Shard& shard) {
  for (const WorkItem& item : shard.visit) {
    for (u32 i = 0; i < item.count; ++i) {
      const u32 r = item.batch->order_[item.begin + i];
      const Request& rq = item.batch->requests[r];
      Response& resp = item.batch->responses_[r];
      if (shard.dead.load(std::memory_order_relaxed)) {
        resp = Response{Status::kShardDown, 0};
        continue;
      }
      try {
        switch (rq.op) {
          case Op::kGet: {
            const auto v = shard.map->get(rq.key);
            resp = v ? Response{Status::kOk, *v} : Response{Status::kNotFound, 0};
            break;
          }
          case Op::kPut:
            shard.map->put(rq.key, rq.value);
            resp = Response{Status::kOk, 0};
            break;
          case Op::kErase:
            resp = Response{shard.map->erase(rq.key) ? Status::kOk : Status::kNotFound, 0};
            break;
        }
      } catch (const MapDegradedError&) {
        resp = Response{Status::kDegraded, 0};
      } catch (const nvm::SimulatedCrash&) {
        kill_shard(shard);
        resp = Response{Status::kShardDown, 0};
      }
    }
  }
}

obs::Snapshot ShardServer::live_snapshot() const {
  obs::Snapshot s;
  s.source = "ShardServer.live";
  s.shards = nshards_;
  s.latency = obs::OpLatencySnapshot::from(recorder_);
  s.phases = ring_phases_.snapshot();
  for (u32 i = 0; i < nshards_; ++i) {
    const GroupHashMap* map = shards_[i]->map.get();
    if (map == nullptr) continue;
    const obs::LiveObs* live = map->live_obs();
    if (live == nullptr) continue;
    s.phases += live->phases.snapshot();
    const obs::MigrationGauges g = live->migration();
    s.migration.active += g.active;
    s.migration.cursor += g.cursor;
    s.migration.total_groups += g.total_groups;
  }
  return s;
}

obs::Snapshot ShardServer::snapshot() {
  GH_CHECK(!running());
  obs::Snapshot agg;
  agg.source = "ShardServer";
  agg.shards = nshards_;
  agg.phases = ring_phases_.snapshot();
  for (u32 s = 0; s < nshards_; ++s) {
    obs::Snapshot shard_snap = shards_[s]->map->snapshot();
    agg.absorb(shard_snap);
    obs::ShardBrief brief;
    brief.shard = s;
    brief.size = shard_snap.size;
    brief.capacity = shard_snap.capacity;
    brief.expansions = shard_snap.lifecycle.expansions;
    brief.degraded = shard_snap.lifecycle.degraded ||
                     shards_[s]->dead.load(std::memory_order_acquire);
    agg.per_shard.push_back(brief);
  }
  return agg;
}

}  // namespace gh::service
