#include "service/service.hpp"

#include <exception>
#include <stdexcept>

#include "core/errors.hpp"
#include "hash/hash_functions.hpp"
#include "nvm/fault_fs.hpp"
#include "util/assert.hpp"

namespace gh::service {

namespace {

/// Same seed the concurrent wrappers use for shard routing, so the
/// service's shard for a key matches ConcurrentGroupHashMap's.
constexpr u64 kShardSeed = 0xc3a5c85c97cb3127ull;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline obs::OpKind op_kind(Op op) {
  switch (op) {
    case Op::kGet: return obs::OpKind::kFind;
    case Op::kPut: return obs::OpKind::kInsert;
    case Op::kErase: return obs::OpKind::kErase;
  }
  return obs::OpKind::kFind;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kPending: return "pending";
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kDegraded: return "degraded";
    case Status::kShardDown: return "shard_down";
  }
  return "?";
}

u32 ShardServer::shard_of(u64 key, u32 shards) {
  return static_cast<u32>(hash::SeededHash(kShardSeed)(key)) & (shards - 1);
}

ShardServer::ShardServer(const ServiceOptions& options) : options_(options) {
  GH_CHECK_MSG(options_.batch_window >= 1,
               "batch_window must be >= 1 (a zero window would never drain the ring)");
  u32 n = 1;
  while (n < options_.shards) n <<= 1;
  nshards_ = n;
  shards_.reserve(nshards_);
  for (u32 s = 0; s < nshards_; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
    Shard& shard = *shards_.back();
    if (options_.data_dir.empty()) {
      shard.map = std::make_unique<GroupHashMap>(
          GroupHashMap::create_in_memory(options_.map_options));
    } else {
      const std::string path =
          options_.data_dir + "/shard" + std::to_string(s) + ".gh";
      shard.map =
          std::make_unique<GroupHashMap>(GroupHashMap::create(path, options_.map_options));
    }
  }
  running_.store(true, std::memory_order_release);
  for (u32 s = 0; s < nshards_; ++s) {
    Shard& shard = *shards_[s];
    shard.worker = std::thread([this, &shard] { worker_loop(shard); });
  }
}

ShardServer::~ShardServer() { stop(); }

bool ShardServer::shard_down(u32 shard) const {
  return shards_[shard]->dead.load(std::memory_order_acquire);
}

void ShardServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->doorbell.fetch_add(1, std::memory_order_release);
    shard->doorbell.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardServer::push_item(Shard& shard, const WorkItem& item) {
  // Bounded ring = bounded memory; a full ring is backpressure, and the
  // producer spins until the worker frees a slot. A dead shard keeps
  // draining (answering kShardDown), so this spin always terminates.
  u32 spins = 0;
  while (!shard.ring.try_push(item)) {
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  shard.doorbell.fetch_add(1, std::memory_order_release);
  shard.doorbell.notify_one();
}

void ShardServer::execute(Batch& batch) {
  GH_CHECK(running());
  const u32 n = static_cast<u32>(batch.requests.size());
  batch.responses_.assign(n, Response{});
  if (n == 0) return;

  // Counting sort the request indices by shard: one pass to count, one
  // to scatter. offsets_ keeps the fence posts so each shard's slice of
  // order_ is contiguous and in caller order.
  batch.offsets_.assign(nshards_ + 1, 0);
  batch.order_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    batch.offsets_[shard_of(batch.requests[i].key, nshards_) + 1]++;
  }
  for (u32 s = 0; s < nshards_; ++s) batch.offsets_[s + 1] += batch.offsets_[s];
  std::vector<u32> cursor(batch.offsets_.begin(), batch.offsets_.end() - 1);
  for (u32 i = 0; i < n; ++i) {
    batch.order_[cursor[shard_of(batch.requests[i].key, nshards_)]++] = i;
  }

  const u64 t0 = obs::now_ticks();

  if (options_.naive) {
    // Baseline transport: one work item (and one scalar map call) per
    // request — what a request-per-message server would do.
    batch.pending_.store(n, std::memory_order_release);
    for (u32 s = 0; s < nshards_; ++s) {
      for (u32 i = batch.offsets_[s]; i < batch.offsets_[s + 1]; ++i) {
        push_item(*shards_[s], WorkItem{&batch, i, 1});
      }
    }
  } else {
    u32 touched = 0;
    for (u32 s = 0; s < nshards_; ++s) {
      touched += batch.offsets_[s + 1] > batch.offsets_[s];
    }
    batch.pending_.store(touched, std::memory_order_release);
    for (u32 s = 0; s < nshards_; ++s) {
      const u32 begin = batch.offsets_[s];
      const u32 count = batch.offsets_[s + 1] - begin;
      if (count > 0) push_item(*shards_[s], WorkItem{&batch, begin, count});
    }
  }

  for (u32 p = batch.pending_.load(std::memory_order_acquire); p != 0;
       p = batch.pending_.load(std::memory_order_acquire)) {
    batch.pending_.wait(p, std::memory_order_acquire);
  }

  const u64 dt = obs::now_ticks() - t0;
  for (u32 i = 0; i < n; ++i) recorder_.record(op_kind(batch.requests[i].op), dt);
}

void ShardServer::complete(Batch* batch) {
  if (batch->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    batch->pending_.notify_all();
  }
}

void ShardServer::answer_item(const WorkItem& item, Status status) {
  for (u32 i = 0; i < item.count; ++i) {
    const u32 r = item.batch->order_[item.begin + i];
    item.batch->responses_[r] = Response{status, 0};
  }
}

void ShardServer::kill_shard(Shard& shard) {
  // A SimulatedCrash froze this shard's map mid-operation. Treat the
  // worker as power-failed: drop the mappings without flushing (exactly
  // what abandon() models) and answer kShardDown from here on. The ring
  // keeps draining so clients never wedge on a dead shard.
  shard.dead.store(true, std::memory_order_release);
  shard.map->abandon();
}

bool ShardServer::restart_shard(u32 shard_idx) {
  GH_CHECK(shard_idx < nshards_);
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(restart_mu_);
  if (!running() || !shard.dead.load(std::memory_order_acquire)) return false;
  // Reopen on the caller's thread: recovery (and resuming an interrupted
  // migration) can take a while, and the worker must keep draining its
  // ring — answering kShardDown — the whole time. File-backed shards
  // reopen their file through the normal recovery path; in-memory shards
  // lost their mappings with the "power failure" and come back empty.
  std::unique_ptr<GroupHashMap> fresh;
  try {
    if (options_.data_dir.empty()) {
      fresh = std::make_unique<GroupHashMap>(
          GroupHashMap::create_in_memory(options_.map_options));
    } else {
      const std::string path =
          options_.data_dir + "/shard" + std::to_string(shard_idx) + ".gh";
      fresh =
          std::make_unique<GroupHashMap>(GroupHashMap::open(path, options_.map_options));
    }
  } catch (...) {
    return false;  // reopen failed; the shard stays down and the caller may retry
  }
  shard.pending_map = std::move(fresh);
  shard.revive.store(true, std::memory_order_release);
  shard.doorbell.fetch_add(1, std::memory_order_release);
  shard.doorbell.notify_all();
  // The worker installs the map at its loop top; wait for that so the
  // caller's next batch cannot race the swap. If the server stops before
  // the install, the worker exits without installing — bail out.
  while (shard.revive.load(std::memory_order_acquire)) {
    if (!running()) return false;
    std::this_thread::yield();
  }
  return true;
}

void ShardServer::worker_loop(Shard& shard) {
  // Idle-loop migration drain: groups retired per empty ring poll. Large
  // enough that an idle shard finishes a resize in a few wakeups, small
  // enough that a request arriving mid-burst waits at most one burst.
  constexpr u64 kIdleMigrateGroups = 64;
  for (;;) {
    if (shard.revive.load(std::memory_order_acquire)) {
      // restart_shard parked a freshly reopened map; install it here so
      // only the worker ever touches the live shard map.
      shard.map = std::move(shard.pending_map);
      shard.dead.store(false, std::memory_order_release);
      shard.revive.store(false, std::memory_order_release);
      shard.revive.notify_all();
    }
    const u64 seen = shard.doorbell.load(std::memory_order_acquire);
    shard.visit.clear();
    WorkItem w;
    while (shard.visit.size() < options_.batch_window && shard.ring.try_pop(w)) {
      shard.visit.push_back(w);
    }
    if (shard.visit.empty()) {
      if (stopping_.load(std::memory_order_acquire)) {
        // stop() rings every doorbell after flipping the flag and
        // execute() refuses new batches, so an empty ring here is final.
        return;
      }
      if (!shard.dead.load(std::memory_order_relaxed) && shard.map->migration_active()) {
        try {
          // Re-poll the ring after every burst so background draining
          // never starves a request by more than one burst. A zero-group
          // step (finalize in degraded backoff) falls through to the
          // doorbell wait instead of spinning on the cooldown.
          if (shard.map->migrate_step(kIdleMigrateGroups) > 0) continue;
        } catch (const nvm::SimulatedCrash&) {
          kill_shard(shard);
        }
      }
      shard.doorbell.wait(seen, std::memory_order_acquire);
      continue;
    }
    if (shard.dead.load(std::memory_order_relaxed)) {
      for (const WorkItem& item : shard.visit) {
        answer_item(item, Status::kShardDown);
        complete(item.batch);
      }
      continue;
    }
    if (options_.naive) {
      serve_visit_naive(shard);
    } else {
      serve_visit(shard);
    }
    for (const WorkItem& item : shard.visit) complete(item.batch);
  }
}

void ShardServer::serve_visit(Shard& shard) {
  // Bucket every request of the visit — across client batches — by kind,
  // then execute ONE map batch call per kind. This is the ingest
  // batching window: the map-level fast path prefetches tag lines across
  // the whole get set and coalesces fences across the whole put set.
  shard.get_keys.clear();
  shard.get_slots.clear();
  shard.put_keys.clear();
  shard.put_vals.clear();
  shard.put_slots.clear();
  shard.erase_keys.clear();
  shard.erase_slots.clear();

  for (const WorkItem& item : shard.visit) {
    for (u32 i = 0; i < item.count; ++i) {
      const u32 r = item.batch->order_[item.begin + i];
      const Request& rq = item.batch->requests[r];
      switch (rq.op) {
        case Op::kGet:
          shard.get_keys.push_back(rq.key);
          shard.get_slots.push_back(SlotRef{item.batch, r});
          break;
        case Op::kPut:
          shard.put_keys.push_back(rq.key);
          shard.put_vals.push_back(rq.value);
          shard.put_slots.push_back(SlotRef{item.batch, r});
          break;
        case Op::kErase:
          shard.erase_keys.push_back(rq.key);
          shard.erase_slots.push_back(SlotRef{item.batch, r});
          break;
      }
    }
  }

  if (!shard.get_keys.empty()) {
    shard.get_out.assign(shard.get_keys.size(), std::nullopt);
    try {
      shard.map->get_batch(shard.get_keys, shard.get_out);
      for (usize i = 0; i < shard.get_slots.size(); ++i) {
        const SlotRef slot = shard.get_slots[i];
        slot.batch->responses_[slot.req] =
            shard.get_out[i] ? Response{Status::kOk, *shard.get_out[i]}
                             : Response{Status::kNotFound, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (!shard.dead.load(std::memory_order_relaxed) && !shard.put_keys.empty()) {
    try {
      shard.map->put_batch(shard.put_keys, shard.put_vals);
      for (const SlotRef& slot : shard.put_slots) {
        slot.batch->responses_[slot.req] = Response{Status::kOk, 0};
      }
    } catch (const MapDegradedError&) {
      // The shard stays up: reads are unaffected and the map retries its
      // rebuild with backoff. A prefix of the window may have landed, so
      // kDegraded means "retry later" (at-least-once), never data loss.
      for (const SlotRef& slot : shard.put_slots) {
        slot.batch->responses_[slot.req] = Response{Status::kDegraded, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (!shard.dead.load(std::memory_order_relaxed) && !shard.erase_keys.empty()) {
    shard.erase_hits.assign(shard.erase_keys.size(), 0);
    try {
      shard.map->erase_batch(shard.erase_keys, shard.erase_hits);
      for (usize i = 0; i < shard.erase_slots.size(); ++i) {
        const SlotRef slot = shard.erase_slots[i];
        slot.batch->responses_[slot.req] =
            Response{shard.erase_hits[i] ? Status::kOk : Status::kNotFound, 0};
      }
    } catch (const nvm::SimulatedCrash&) {
      kill_shard(shard);
    }
  }

  if (shard.dead.load(std::memory_order_relaxed)) {
    // The crash interrupted this visit: every response still kPending —
    // including ops "before" the dying call whose scatter-back never ran
    // — answers kShardDown.
    for (const WorkItem& item : shard.visit) {
      for (u32 i = 0; i < item.count; ++i) {
        const u32 r = item.batch->order_[item.begin + i];
        if (item.batch->responses_[r].status == Status::kPending) {
          item.batch->responses_[r] = Response{Status::kShardDown, 0};
        }
      }
    }
  }
}

void ShardServer::serve_visit_naive(Shard& shard) {
  for (const WorkItem& item : shard.visit) {
    for (u32 i = 0; i < item.count; ++i) {
      const u32 r = item.batch->order_[item.begin + i];
      const Request& rq = item.batch->requests[r];
      Response& resp = item.batch->responses_[r];
      if (shard.dead.load(std::memory_order_relaxed)) {
        resp = Response{Status::kShardDown, 0};
        continue;
      }
      try {
        switch (rq.op) {
          case Op::kGet: {
            const auto v = shard.map->get(rq.key);
            resp = v ? Response{Status::kOk, *v} : Response{Status::kNotFound, 0};
            break;
          }
          case Op::kPut:
            shard.map->put(rq.key, rq.value);
            resp = Response{Status::kOk, 0};
            break;
          case Op::kErase:
            resp = Response{shard.map->erase(rq.key) ? Status::kOk : Status::kNotFound, 0};
            break;
        }
      } catch (const MapDegradedError&) {
        resp = Response{Status::kDegraded, 0};
      } catch (const nvm::SimulatedCrash&) {
        kill_shard(shard);
        resp = Response{Status::kShardDown, 0};
      }
    }
  }
}

obs::Snapshot ShardServer::snapshot() {
  GH_CHECK(!running());
  obs::Snapshot agg;
  agg.source = "ShardServer";
  agg.shards = nshards_;
  for (u32 s = 0; s < nshards_; ++s) {
    obs::Snapshot shard_snap = shards_[s]->map->snapshot();
    agg.absorb(shard_snap);
    obs::ShardBrief brief;
    brief.shard = s;
    brief.size = shard_snap.size;
    brief.capacity = shard_snap.capacity;
    brief.expansions = shard_snap.lifecycle.expansions;
    brief.degraded = shard_snap.lifecycle.degraded ||
                     shards_[s]->dead.load(std::memory_order_acquire);
    agg.per_shard.push_back(brief);
  }
  return agg;
}

}  // namespace gh::service
