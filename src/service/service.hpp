// Sharded KV service front-end with batched ingest.
//
// A ShardServer owns N shard workers, each with its own GroupHashMap and
// its own bounded MPSC ingest ring (a hermetic in-process transport —
// the shared-memory-ring shape of a PM key-value postoffice, CI-testable
// without sockets). Client threads submit request *batches*: execute()
// groups the batch's keys by shard (same seeded routing hash as the
// concurrent wrappers), pushes one work item per touched shard, and
// blocks on an atomic completion counter until every shard visit
// finished.
//
// The batching window is the worker's drain loop: each visit pops up to
// `batch_window` work items — possibly from many client batches — and
// executes ONE find_batch, ONE put_batch and ONE erase_batch against the
// shard map for the whole visit. That is where the PR 6 fast path pays
// off: the map-level batches prefetch tag lines across requests and
// coalesce persistence fences across the put window, so a visit costs a
// handful of fences instead of one per request. `naive = true` disables
// the grouping (one scalar map call per request) and exists purely as
// the baseline the batched path is measured against.
//
// Ordering semantics: within one client batch, requests that land on the
// same shard are executed grouped by kind — all gets, then all puts,
// then all erases — and in caller order within each kind (puts to the
// same key are last-wins, matching the map's batch contract). A batch is
// not an atomic transaction across shards.
//
// Failure semantics (the PR 3 degradation contract, lifted to the
// service):
//   * MapDegradedError from a put window → those puts answer kDegraded;
//     the shard STAYS UP (reads unaffected, the map retries its rebuild
//     with backoff), and a prefix of the window may have landed — the
//     client must treat kDegraded as "retry later", i.e. at-least-once.
//   * SimulatedCrash (fault-injected power failure) from any map call →
//     the worker marks its shard dead, abandon()s the map (dropping the
//     mappings exactly as a crash would), and answers kShardDown — for
//     the rest of that visit and for every later request routed to the
//     shard. The ingest ring keeps draining, so a dead shard never
//     wedges clients, and the shard's file reopens through the normal
//     recovery + flight-forensics path. A dead shard is not permanent:
//     restart_shard() reopens the map (recovery — including resuming an
//     interrupted online migration — runs on the caller's thread) and
//     the worker installs it between visits, after which the shard
//     serves again.
//
// Online resize: with map_options.online_resize set, a shard mid-resize
// keeps serving — writers help migrate a bounded number of groups per
// call, and the worker drains the tail from its idle loop (one
// migrate_step() burst per empty ring poll), so the resize finishes even
// on a read-only or idle shard without ever blocking a visit.
//
// Observability: execute() records end-to-end batch latency per request
// into a service-level obs::OpRecorder (get→kFind, put→kInsert,
// erase→kErase), and snapshot() rolls the per-shard map snapshots into
// one obs::Snapshot via absorb() — the same aggregation the concurrent
// wrappers use, so percentiles are computed from the union of samples.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/group_hash_map.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "util/types.hpp"

namespace gh::service {

enum class Op : u8 {
  kGet = 0,
  kPut = 1,
  kErase = 2,
};

enum class Status : u8 {
  kPending = 0,    ///< not yet executed (the in-flight placeholder)
  kOk = 1,         ///< get hit / put applied / erase removed a mapping
  kNotFound = 2,   ///< get or erase missed
  kDegraded = 3,   ///< put rejected by a degraded shard (retry later)
  kShardDown = 4,  ///< the shard's worker died (crash-injected)
};

[[nodiscard]] const char* to_string(Status s);

struct Request {
  Op op = Op::kGet;
  u64 key = 0;
  u64 value = 0;  ///< kPut payload; ignored otherwise
};

struct Response {
  Status status = Status::kPending;
  u64 value = 0;  ///< get-hit payload; 0 otherwise
};

class ShardServer;

/// One client batch. The caller fills `requests`, hands the batch to
/// ShardServer::execute(), and reads `responses()` when it returns; the
/// routing scratch (order/offsets) is reused across rounds so a steady
/// client allocates nothing after the first call. A Batch must stay
/// alive and untouched while in flight (execute() blocks, so normal use
/// is a stack or per-thread object).
class Batch {
 public:
  std::vector<Request> requests;

  [[nodiscard]] std::span<const Response> responses() const {
    return {responses_.data(), responses_.size()};
  }

  void clear() { requests.clear(); }

 private:
  friend class ShardServer;

  std::vector<Response> responses_;
  std::vector<u32> order_;    ///< request indices grouped by shard
  std::vector<u32> offsets_;  ///< shards+1 fence posts into order_
  std::atomic<u32> pending_{0};
  /// Tick of the final complete() (traced batches only): lets the
  /// client attribute the futex wake as its own span, so a traced
  /// request's spans cover its whole end-to-end latency.
  std::atomic<u64> done_ticks_{0};
};

/// One unit of shard work: `count` request indices of `batch`, starting
/// at batch->order_[begin], all routed to the receiving shard.
/// `enqueue_ticks` is stamped at push so the worker can attribute the
/// MPSC ring wait; `trace_id`/`parent_span` carry the trace context of a
/// sampled batch through the ring (zero = untraced).
struct WorkItem {
  Batch* batch = nullptr;
  u32 begin = 0;
  u32 count = 0;
  u32 parent_span = 0;
  u64 trace_id = 0;
  u64 enqueue_ticks = 0;
};

/// Bounded multi-producer single-consumer ring (Vyukov sequence
/// discipline): producers claim a slot with one CAS on head_, the
/// consumer pops with plain loads/stores on tail_. try_push fails when
/// the ring is full — backpressure is the caller's spin, never an
/// unbounded queue.
class IngestRing {
 public:
  explicit IngestRing(u32 capacity) {
    u32 cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (u32 i = 0; i < cap; ++i) slots_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }

  [[nodiscard]] u32 capacity() const { return static_cast<u32>(mask_ + 1); }

  bool try_push(const WorkItem& w) {
    u64 pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const u64 seq = s.seq.load(std::memory_order_acquire);
      const i64 diff = static_cast<i64>(seq) - static_cast<i64>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          s.item = w;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer only (the shard's worker thread).
  bool try_pop(WorkItem& out) {
    const u64 pos = tail_.load(std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    const u64 seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<i64>(seq) - static_cast<i64>(pos + 1) < 0) return false;
    out = s.item;
    s.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

 private:
  struct Slot {
    std::atomic<u64> seq{0};
    WorkItem item;
  };

  std::unique_ptr<Slot[]> slots_;
  u64 mask_ = 0;
  alignas(kCachelineSize) std::atomic<u64> head_{0};
  alignas(kCachelineSize) std::atomic<u64> tail_{0};
};

struct ServiceOptions {
  u32 shards = 4;          ///< rounded up to a power of two
  u32 ring_capacity = 1024;  ///< work-item slots per shard ring
  u32 batch_window = 64;   ///< max work items drained per shard visit
  /// One scalar map call per request instead of one batched call per
  /// visit — the baseline the batched ingest path is measured against.
  bool naive = false;
  /// Non-empty → file-backed shard maps at <data_dir>/shard<i>.gh (the
  /// crash/forensics path); empty → in-memory shards.
  std::string data_dir;
  /// Request tracing: kOff (default), kSampled (1 in
  /// 2^trace_sample_shift batches) or kFull. A traced batch stamps its
  /// trace id on every work item; the worker adopts it around the shard
  /// visit so map ops emit spans into the per-thread span rings.
  obs::TraceMode trace_mode = obs::TraceMode::kOff;
  u32 trace_sample_shift = obs::kTraceSampleShift;
  MapOptions map_options;
};

class ShardServer {
 public:
  explicit ShardServer(const ServiceOptions& options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Route, enqueue and wait for one client batch. Blocks until every
  /// touched shard answered; safe to call from many threads at once.
  void execute(Batch& batch);

  /// Stop accepting batches, drain the rings, join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] u32 shards() const { return nshards_; }
  [[nodiscard]] bool shard_down(u32 shard) const;
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

  /// Revive a kShardDown shard. The replacement map is opened on the
  /// CALLER's thread (file-backed shards re-run recovery — and resume an
  /// interrupted migration — right here; in-memory shards come back
  /// empty, exactly the post-power-loss contract), handed to the worker
  /// through `pending_map`, and installed by the worker at its loop top,
  /// so the single-consumer ownership of the shard map never has two
  /// threads touching it. Blocks until the worker has swapped the map in
  /// and cleared `dead`. Returns false if the shard is not down, the
  /// reopen itself fails (the shard stays dead), or the server stops
  /// while waiting. Safe to call concurrently; calls are serialized.
  bool restart_shard(u32 shard);

  /// Same seeded routing hash as the concurrent wrappers, so a key's
  /// shard is stable across the service and the embedded maps.
  [[nodiscard]] static u32 shard_of(u64 key, u32 shards);

  /// Service-level end-to-end latency (batch round-trip attributed to
  /// each request: get→kFind, put→kInsert, erase→kErase). Safe to read
  /// while traffic is live.
  [[nodiscard]] const obs::OpRecorder& request_recorder() const { return recorder_; }
  void reset_request_stats() { recorder_.reset(); }

  /// Per-shard map snapshots rolled up with obs::Snapshot::absorb.
  /// Requires the server stopped (the shard maps are single-owner and
  /// quiescent only then); per_shard carries one brief per shard.
  [[nodiscard]] obs::Snapshot snapshot();

  /// Stats-poller view of a RUNNING server: only the pieces that are
  /// safe to read while workers serve traffic — the service-level
  /// latency recorder, the ring-wait + per-map phase accumulators, and
  /// the per-map migration gauges. Map internals (size/capacity/persist
  /// counters…) are single-owner and stay zero here; use snapshot()
  /// after stop() for those. Must not run concurrently with
  /// restart_shard() (the map swap is unsynchronized with this read).
  [[nodiscard]] obs::Snapshot live_snapshot() const;

 private:
  struct SlotRef {
    Batch* batch;
    u32 req;
  };

  struct Shard {
    explicit Shard(u32 ring_capacity) : ring(ring_capacity) {}

    IngestRing ring;
    u32 index = 0;  ///< shard number (span/trace labels)
    /// Ring-wait attribution gate, worker-local. Samples items at the
    /// same 1-in-2^latency_sample_shift rate the maps sample their op
    /// latencies, so the ring_wait share in Snapshot.phases is
    /// comparable against the map-side probe/persist/fence shares
    /// (attributing every item's wait against 1/64-sampled op time
    /// would report ~100% ring_wait no matter the real balance).
    obs::SampleGate ring_gate;
    alignas(kCachelineSize) std::atomic<u64> doorbell{0};
    std::atomic<bool> dead{false};
    std::unique_ptr<GroupHashMap> map;
    std::thread worker;

    // Revival handoff (restart_shard): the caller parks the reopened map
    // in pending_map and raises revive; the worker installs it at loop
    // top and lowers the flag. revive's release/acquire pair publishes
    // the pending_map write to the worker.
    std::unique_ptr<GroupHashMap> pending_map;
    std::atomic<bool> revive{false};

    // Worker-local batching scratch, reused every visit.
    std::vector<WorkItem> visit;
    std::vector<u64> get_keys;
    std::vector<std::optional<u64>> get_out;
    std::vector<SlotRef> get_slots;
    std::vector<u64> put_keys;
    std::vector<u64> put_vals;
    std::vector<SlotRef> put_slots;
    std::vector<u64> erase_keys;
    std::vector<u8> erase_hits;
    std::vector<SlotRef> erase_slots;
  };

  void worker_loop(Shard& shard);
  void serve_visit(Shard& shard);
  void serve_visit_naive(Shard& shard);
  void kill_shard(Shard& shard);
  void push_item(Shard& shard, const WorkItem& item);
  static void answer_item(const WorkItem& item, Status status);
  static void complete(Batch* batch);

  ServiceOptions options_;
  u32 nshards_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex restart_mu_;  ///< serializes restart_shard callers
  obs::OpRecorder recorder_;
  /// Batch counter driving kSampled trace admission (1 in 2^shift).
  std::atomic<u64> trace_seq_{0};
  /// Ring-wait attribution: ticks each request spent queued in the MPSC
  /// ring, bucketed per OpKind. Lives at the server (the wait is a
  /// transport property, not a map property) and is merged into both
  /// snapshot() and live_snapshot().
  obs::PhaseAccum ring_phases_;
};

}  // namespace gh::service
