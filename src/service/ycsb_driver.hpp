// Multi-threaded YCSB-style workload driver for the ShardServer.
//
// The standard core-workload shapes over a Zipf(0.99)-popular keyspace:
//   A: 50% read / 50% update   B: 95% read / 5% update   C: 100% read
// Each client thread owns one Batch and round-trips it through
// ShardServer::execute(); the driver preloads the keyspace, resets the
// server's request histograms so the report covers only the measured
// phase, and aggregates QPS plus p50/p99/p999 from the service-level
// obs recorder. Shared by tools/gh_serve and bench/service_ycsb so the
// CLI and the bench report identical numbers for identical flags.
#pragma once

#include <string>

#include "obs/snapshot.hpp"
#include "service/service.hpp"

namespace gh::service {

struct Mix {
  const char* name;
  double read = 1.0;  ///< remainder of each batch slot is an update (put)
};

[[nodiscard]] Mix mix_for(const std::string& workload);  // "a" | "b" | "c"

struct DriverOptions {
  u32 clients = 4;
  u32 batch = 64;          ///< requests per client round-trip
  u64 keys = 1u << 16;     ///< preloaded keyspace size
  u64 ops_per_client = 0;  ///< fixed-op run when nonzero…
  double seconds = 0;      ///< …else run until this wall-clock deadline
  double zipf_theta = 0.99;
  u64 seed = 42;
  Mix mix{"C (100r)", 1.0};
};

struct DriverReport {
  u64 ops = 0;
  double seconds = 0;
  double qps = 0;
  u64 ok = 0;
  u64 not_found = 0;
  u64 degraded = 0;
  u64 shard_down = 0;
  /// End-to-end batch round-trip latency per op kind (get=find,
  /// put=insert), measured by the clients' execute() calls.
  obs::OpLatencySnapshot latency;
};

/// Preload `opts.keys` keys through the server (batched puts).
void preload(ShardServer& server, const DriverOptions& opts);

/// Run the measured phase (preload first). The server's request stats
/// are reset at the start of the measured phase.
[[nodiscard]] DriverReport run_ycsb(ShardServer& server, const DriverOptions& opts);

}  // namespace gh::service
