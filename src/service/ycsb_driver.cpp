#include "service/ycsb_driver.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "trace/zipf.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gh::service {

namespace {

using Clock = std::chrono::steady_clock;

/// The shared keyspace: pinned by the seed so preload and every client
/// agree on key identity without sharing mutable state.
std::vector<u64> make_keys(const DriverOptions& opts) {
  Xoshiro256 rng(opts.seed);
  std::vector<u64> keys(opts.keys);
  for (u64 i = 0; i < opts.keys; ++i) keys[i] = (rng.next() >> 1) | 1;
  return keys;
}

}  // namespace

Mix mix_for(const std::string& workload) {
  if (workload == "a") return Mix{"A (50r/50u)", 0.50};
  if (workload == "b") return Mix{"B (95r/5u)", 0.95};
  return Mix{"C (100r)", 1.0};
}

void preload(ShardServer& server, const DriverOptions& opts) {
  const std::vector<u64> keys = make_keys(opts);
  Batch batch;
  for (u64 i = 0; i < opts.keys;) {
    batch.clear();
    for (u32 b = 0; b < opts.batch && i < opts.keys; ++b, ++i) {
      batch.requests.push_back(Request{Op::kPut, keys[i], i + 1});
    }
    server.execute(batch);
    for (const Response& r : batch.responses()) GH_CHECK(r.status == Status::kOk);
  }
}

DriverReport run_ycsb(ShardServer& server, const DriverOptions& opts) {
  preload(server, opts);
  server.reset_request_stats();

  const std::vector<u64> keys = make_keys(opts);
  const trace::ZipfSampler zipf(keys.size(), opts.zipf_theta);

  DriverReport report;
  std::atomic<u64> ops{0}, ok{0}, not_found{0}, degraded{0}, shard_down{0};

  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::nanoseconds(static_cast<u64>(opts.seconds * 1e9));

  std::vector<std::thread> clients;
  clients.reserve(opts.clients);
  for (u32 c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(opts.seed ^ (0x9e3779b97f4a7c15ull * (c + 1)));
      Batch batch;
      u64 local_ops = 0, local_ok = 0, local_nf = 0, local_deg = 0, local_down = 0;
      u64 budget = opts.ops_per_client;
      for (;;) {
        if (opts.ops_per_client > 0) {
          if (budget == 0) break;
        } else if (Clock::now() >= deadline) {
          break;
        }
        batch.clear();
        const u32 n = opts.ops_per_client > 0
                          ? static_cast<u32>(std::min<u64>(opts.batch, budget))
                          : opts.batch;
        for (u32 i = 0; i < n; ++i) {
          const u64 key = keys[zipf.sample(rng)];
          if (rng.next_double() < opts.mix.read) {
            batch.requests.push_back(Request{Op::kGet, key, 0});
          } else {
            batch.requests.push_back(Request{Op::kPut, key, rng.next()});
          }
        }
        server.execute(batch);
        for (const Response& r : batch.responses()) {
          switch (r.status) {
            case Status::kOk: local_ok++; break;
            case Status::kNotFound: local_nf++; break;
            case Status::kDegraded: local_deg++; break;
            case Status::kShardDown: local_down++; break;
            case Status::kPending: break;
          }
        }
        local_ops += n;
        if (opts.ops_per_client > 0) budget -= n;
      }
      ops += local_ops;
      ok += local_ok;
      not_found += local_nf;
      degraded += local_deg;
      shard_down += local_down;
    });
  }
  for (auto& t : clients) t.join();
  const auto t1 = Clock::now();

  report.ops = ops.load();
  report.seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
      1e9;
  report.qps = report.seconds > 0 ? static_cast<double>(report.ops) / report.seconds : 0;
  report.ok = ok.load();
  report.not_found = not_found.load();
  report.degraded = degraded.load();
  report.shard_down = shard_down.load();
  report.latency = obs::OpLatencySnapshot::from(server.request_recorder());
  return report;
}

}  // namespace gh::service
