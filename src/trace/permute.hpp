// A seeded pseudo-random permutation of [0, 2^bits) built as a balanced
// 4-round Feistel network with cycle-walking. perm(i) for i = 0..n-1
// yields n *distinct* uniform-looking keys in O(1) memory — how the
// RandomNum trace draws unique random integers from [0, 2^26) without
// keeping a dedup set, even at paper scale.
#pragma once

#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::trace {

class FeistelPermutation {
 public:
  /// Permutation over [0, 2^bits), 2 <= bits <= 62.
  FeistelPermutation(u32 bits, u64 seed) : seed_(seed) {
    GH_CHECK(bits >= 2 && bits <= 62);
    domain_ = 1ull << bits;
    // The Feistel network operates on balanced halves, so its native
    // domain is 2^(2*half_bits) >= 2^bits; cycle-walking maps back.
    half_bits_ = (bits + 1) / 2;
    half_mask_ = (1ull << half_bits_) - 1;
  }

  [[nodiscard]] u64 domain() const { return domain_; }

  /// Bijective map of [0, domain) onto itself.
  [[nodiscard]] u64 operator()(u64 x) const {
    GH_DCHECK(x < domain_);
    // Cycle-walk: the network permutes the (possibly larger) power-of-four
    // domain; repeatedly applying it from a point inside [0, domain)
    // re-enters [0, domain) because permutation cycles are closed.
    do {
      x = encrypt_once(x);
    } while (x >= domain_);
    return x;
  }

 private:
  [[nodiscard]] u64 encrypt_once(u64 x) const {
    u64 left = x >> half_bits_;
    u64 right = x & half_mask_;
    for (u32 round = 0; round < 4; ++round) {
      const u64 next_right = (left ^ round_function(right, round)) & half_mask_;
      left = right;
      right = next_right;
    }
    return (left << half_bits_) | right;
  }

  [[nodiscard]] u64 round_function(u64 v, u32 round) const {
    // splitmix-style mixing keyed by seed and round.
    u64 z = v + seed_ + 0x9e3779b97f4a7c15ull * (round + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  u64 seed_;
  u64 domain_;
  u32 half_bits_;
  u64 half_mask_;
};

}  // namespace gh::trace
