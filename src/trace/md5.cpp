#include "trace/md5.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace gh::trace {
namespace {

constexpr std::array<u32, 64> kT = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::array<u32, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr u32 rotl(u32 x, u32 n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const u8* block) {
  std::array<u32, 16> m{};
  for (usize i = 0; i < 16; ++i) {
    std::memcpy(&m[i], block + 4 * i, 4);  // little-endian load
  }
  u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (u32 i = 0; i < 64; ++i) {
    u32 f = 0, g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const u32 tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kT[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const void* data, usize n) {
  const u8* p = static_cast<const u8*>(data);
  total_bytes_ += n;
  if (buffered_ != 0) {
    const usize take = std::min(n, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n != 0) {
    std::memcpy(buffer_.data(), p, n);
    buffered_ = n;
  }
}

void Md5::update(std::span<const std::byte> data) { update(data.data(), data.size()); }

Md5::Digest Md5::finish() {
  const u64 bit_len = total_bytes_ * 8;
  constexpr u8 kPad = 0x80;
  update(&kPad, 1);
  constexpr u8 kZero = 0;
  while (buffered_ != 56) update(&kZero, 1);
  u8 len_le[8];
  std::memcpy(len_le, &bit_len, 8);  // little-endian length
  update(len_le, 8);
  GH_DCHECK(buffered_ == 0);
  Digest d{};
  std::memcpy(d.data(), state_.data(), 16);
  return d;
}

Md5::Digest Md5::hash(std::span<const std::byte> data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Md5::Digest Md5::hash(const std::string& s) {
  Md5 h;
  h.update(s.data(), s.size());
  return h.finish();
}

Key128 Md5::to_key(const Digest& d) {
  Key128 k;
  std::memcpy(&k.lo, d.data(), 8);
  std::memcpy(&k.hi, d.data() + 8, 8);
  return k;
}

std::string Md5::to_hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const u8 b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace gh::trace
