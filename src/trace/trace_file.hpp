// Binary operation traces: a recorded sequence of insert/query/delete
// requests that can be saved, reloaded and replayed bit-identically —
// used by the integration tests and the trace_replay example.
#pragma once

#include <string>
#include <vector>

#include "trace/workload.hpp"
#include "util/types.hpp"

namespace gh::trace {

enum class OpType : u8 { kInsert = 0, kQuery = 1, kDelete = 2 };

struct TraceOp {
  OpType type = OpType::kInsert;
  Key128 key;  ///< narrow keys use .lo with .hi == 0
  u64 value = 0;

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

struct OpTrace {
  std::string name;
  bool wide_keys = false;
  std::vector<TraceOp> ops;
};

/// Serialize to `path` (fixed little-endian layout, magic + version).
void save_trace(const OpTrace& trace, const std::string& path);

/// Load a trace written by save_trace. Throws std::runtime_error on
/// malformed input.
OpTrace load_trace(const std::string& path);

/// Build a mixed op trace from a workload: the first `fill` keys become
/// inserts, then `ops` requests are drawn with the given insert/query/
/// delete mix over inserted keys (deterministic in `seed`).
OpTrace make_op_trace(const Workload& workload, usize fill, usize ops,
                      double query_fraction, double delete_fraction, u64 seed);

}  // namespace gh::trace
