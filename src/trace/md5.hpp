// MD5 (RFC 1321), implemented from scratch.
//
// The paper's Fingerprint trace consists of 16-byte MD5 digests of files
// from daily Mac-server snapshots. That trace is not redistributable, so
// the Fingerprint workload generator digests synthetic file contents with
// this implementation — the hash-table under test sees the same thing
// either way: uniformly distributed 128-bit keys.
#pragma once

#include <array>
#include <span>
#include <string>

#include "util/types.hpp"

namespace gh::trace {

class Md5 {
 public:
  using Digest = std::array<u8, 16>;

  Md5();

  /// Stream more input into the hash.
  void update(std::span<const std::byte> data);
  void update(const void* data, usize n);

  /// Finalize and return the 16-byte digest. The object must not be
  /// updated afterwards (reset() to reuse).
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::byte> data);
  static Digest hash(const std::string& s);

  /// Digest as a Key128 (little-endian words, the layout the 32-byte hash
  /// cell stores).
  static Key128 to_key(const Digest& d);

  /// Lowercase hex string, e.g. for the RFC 1321 test vectors.
  static std::string to_hex(const Digest& d);

 private:
  void process_block(const u8* block);

  std::array<u32, 4> state_{};
  u64 total_bytes_ = 0;
  std::array<u8, 64> buffer_{};
  usize buffered_ = 0;
};

}  // namespace gh::trace
