#include "trace/trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gh::trace {
namespace {

constexpr char kMagic[8] = {'G', 'H', 'T', 'R', 'A', 'C', 'E', '1'};

struct FileHeader {
  char magic[8];
  u64 op_count;
  u32 wide_keys;
  u32 name_len;
};

struct FileOp {
  u8 type;
  u8 pad[7];
  u64 key_lo;
  u64 key_hi;
  u64 value;
};

using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode), &std::fclose);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return f;
}

}  // namespace

void save_trace(const OpTrace& trace, const std::string& path) {
  auto f = open_file(path, "wb");
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.op_count = trace.ops.size();
  header.wide_keys = trace.wide_keys ? 1 : 0;
  header.name_len = static_cast<u32>(trace.name.size());
  GH_CHECK(std::fwrite(&header, sizeof(header), 1, f.get()) == 1);
  if (!trace.name.empty()) {
    GH_CHECK(std::fwrite(trace.name.data(), 1, trace.name.size(), f.get()) ==
             trace.name.size());
  }
  for (const TraceOp& op : trace.ops) {
    FileOp fo{};
    fo.type = static_cast<u8>(op.type);
    fo.key_lo = op.key.lo;
    fo.key_hi = op.key.hi;
    fo.value = op.value;
    GH_CHECK(std::fwrite(&fo, sizeof(fo), 1, f.get()) == 1);
  }
}

OpTrace load_trace(const std::string& path) {
  auto f = open_file(path, "rb");
  FileHeader header{};
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1 ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a GHTRACE1 file: " + path);
  }
  OpTrace trace;
  trace.wide_keys = header.wide_keys != 0;
  trace.name.resize(header.name_len);
  if (header.name_len != 0 &&
      std::fread(trace.name.data(), 1, header.name_len, f.get()) != header.name_len) {
    throw std::runtime_error("truncated trace name: " + path);
  }
  trace.ops.reserve(header.op_count);
  for (u64 i = 0; i < header.op_count; ++i) {
    FileOp fo{};
    if (std::fread(&fo, sizeof(fo), 1, f.get()) != 1) {
      throw std::runtime_error("truncated trace ops: " + path);
    }
    if (fo.type > static_cast<u8>(OpType::kDelete)) {
      throw std::runtime_error("corrupt op type in trace: " + path);
    }
    trace.ops.push_back(TraceOp{static_cast<OpType>(fo.type),
                                Key128{fo.key_lo, fo.key_hi}, fo.value});
  }
  return trace;
}

OpTrace make_op_trace(const Workload& workload, usize fill, usize ops,
                      double query_fraction, double delete_fraction, u64 seed) {
  GH_CHECK(fill <= workload.size());
  GH_CHECK(query_fraction + delete_fraction <= 1.0);
  OpTrace trace;
  trace.name = workload.name;
  trace.wide_keys = workload.wide_keys;
  trace.ops.reserve(fill + ops);

  auto key_at = [&](usize i) {
    return workload.wide_keys ? workload.keys128[i] : Key128{workload.keys64[i], 0};
  };
  auto value_at = [&](usize i) {
    return workload.wide_keys ? value_for_key(workload.keys128[i])
                              : value_for_key(workload.keys64[i]);
  };

  std::vector<usize> live;
  live.reserve(fill + ops);
  for (usize i = 0; i < fill; ++i) {
    trace.ops.push_back(TraceOp{OpType::kInsert, key_at(i), value_at(i)});
    live.push_back(i);
  }

  Xoshiro256 rng(seed);
  usize next_fresh = fill;
  for (usize i = 0; i < ops; ++i) {
    const double r = rng.next_double();
    if (r < query_fraction && !live.empty()) {
      const usize pick = live[rng.next_below(live.size())];
      trace.ops.push_back(TraceOp{OpType::kQuery, key_at(pick), 0});
    } else if (r < query_fraction + delete_fraction && !live.empty()) {
      const usize slot = rng.next_below(live.size());
      const usize pick = live[slot];
      live[slot] = live.back();
      live.pop_back();
      trace.ops.push_back(TraceOp{OpType::kDelete, key_at(pick), 0});
    } else if (next_fresh < workload.size()) {
      trace.ops.push_back(TraceOp{OpType::kInsert, key_at(next_fresh), value_at(next_fresh)});
      live.push_back(next_fresh);
      ++next_fresh;
    } else if (!live.empty()) {
      const usize pick = live[rng.next_below(live.size())];
      trace.ops.push_back(TraceOp{OpType::kQuery, key_at(pick), 0});
    }
  }
  return trace;
}

}  // namespace gh::trace
