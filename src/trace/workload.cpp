#include "trace/workload.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "trace/md5.hpp"
#include "trace/permute.hpp"
#include "trace/zipf.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gh::trace {
namespace {

/// The paper draws keys from [0, 2^26).
constexpr u32 kRandomNumBits = 26;

/// PubMed bag-of-words vocabulary size (UCI dataset card: 141,043 words).
constexpr usize kPubMedVocab = 141043;

/// Average distinct words per abstract in the PubMed collection is ~90;
/// we use a round 64 so DocIDs stay dense.
constexpr usize kWordsPerDoc = 64;

}  // namespace

const char* trace_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRandomNum:
      return "RandomNum";
    case TraceKind::kBagOfWords:
      return "Bag-of-Words";
    case TraceKind::kFingerprint:
      return "Fingerprint";
  }
  return "?";
}

Workload make_random_num(usize n_keys, u64 seed) {
  GH_CHECK_MSG(n_keys <= (1ull << kRandomNumBits),
               "RandomNum trace draws from a 2^26 key domain");
  Workload w;
  w.name = trace_name(TraceKind::kRandomNum);
  w.kind = TraceKind::kRandomNum;
  w.wide_keys = false;
  w.item_bytes = 16;
  w.keys64.reserve(n_keys);
  const FeistelPermutation perm(kRandomNumBits, seed);
  for (usize i = 0; i < n_keys; ++i) w.keys64.push_back(perm(i));
  return w;
}

Workload make_bag_of_words(usize n_keys, u64 seed) {
  Workload w;
  w.name = trace_name(TraceKind::kBagOfWords);
  w.kind = TraceKind::kBagOfWords;
  w.wide_keys = false;
  w.item_bytes = 16;
  w.keys64.reserve(n_keys);
  Xoshiro256 rng(seed);
  const ZipfSampler zipf(kPubMedVocab, 1.0);
  u64 doc = 0;
  std::unordered_set<u64> doc_words;
  doc_words.reserve(kWordsPerDoc * 2);
  while (w.keys64.size() < n_keys) {
    // Collect kWordsPerDoc distinct Zipf-sampled words for this document;
    // (DocID, WordID) keys are unique by construction.
    doc_words.clear();
    while (doc_words.size() < kWordsPerDoc) {
      const u64 word = zipf.sample(rng);
      if (doc_words.insert(word).second) {
        w.keys64.push_back(doc << 32 | word);
        if (w.keys64.size() == n_keys) break;
      }
    }
    ++doc;
  }
  return w;
}

Workload make_fingerprint(usize n_keys, u64 seed) {
  Workload w;
  w.name = trace_name(TraceKind::kFingerprint);
  w.kind = TraceKind::kFingerprint;
  w.wide_keys = true;
  w.item_bytes = 32;
  w.keys128.reserve(n_keys);
  // Digest synthetic per-file content the way the FSL snapshots fingerprint
  // real files. 128-bit digests of distinct inputs collide with negligible
  // probability, so keys are unique.
  u8 content[24];
  for (usize i = 0; i < n_keys; ++i) {
    std::memcpy(content, &seed, 8);
    const u64 id = i;
    std::memcpy(content + 8, &id, 8);
    const u64 tag = 0x66736c2d66696c65ull;  // "fsl-file"
    std::memcpy(content + 16, &tag, 8);
    Md5 h;
    h.update(content, sizeof(content));
    w.keys128.push_back(Md5::to_key(h.finish()));
  }
  return w;
}

Workload make_workload(TraceKind kind, usize n_keys, u64 seed) {
  switch (kind) {
    case TraceKind::kRandomNum:
      return make_random_num(n_keys, seed);
    case TraceKind::kBagOfWords:
      return make_bag_of_words(n_keys, seed);
    case TraceKind::kFingerprint:
      return make_fingerprint(n_keys, seed);
  }
  GH_CHECK(false);
  return {};
}

Workload load_bag_of_words_file(const std::string& path, usize max_keys) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bag-of-words file: " + path);
  u64 docs = 0, vocab = 0, nnz = 0;
  if (!(in >> docs >> vocab >> nnz)) {
    throw std::runtime_error("malformed bag-of-words header: " + path);
  }
  Workload w;
  w.name = std::string(trace_name(TraceKind::kBagOfWords)) + " (" + path + ")";
  w.kind = TraceKind::kBagOfWords;
  w.wide_keys = false;
  w.item_bytes = 16;
  const usize want = max_keys == 0 ? nnz : std::min<usize>(max_keys, nnz);
  w.keys64.reserve(want);
  u64 doc = 0, word = 0, count = 0;
  for (usize i = 0; i < nnz && w.keys64.size() < want; ++i) {
    if (!(in >> doc >> word >> count)) {
      throw std::runtime_error("truncated bag-of-words data: " + path);
    }
    if (doc == 0 || doc > docs || word == 0 || word > vocab) {
      throw std::runtime_error("out-of-range doc/word id in: " + path);
    }
    // Same encoding as the synthetic generator; (doc,word) pairs are
    // unique in the format, so keys are unique.
    w.keys64.push_back(doc << 32 | word);
  }
  return w;
}

u64 value_for_key(u64 key) {
  u64 z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

u64 value_for_key(const Key128& key) { return value_for_key(key.lo ^ (key.hi * 0x2545f4914f6cdd1dull)); }

}  // namespace gh::trace
