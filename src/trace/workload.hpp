// The three evaluation workloads of the paper (§4.1):
//
//  * RandomNum  — unique random integers in [0, 2^26), 16-byte items.
//  * Bag-of-Words — (DocID, WordID) pairs, word IDs Zipf-distributed over
//    a PubMed-sized vocabulary, 16-byte items. (Synthetic stand-in for the
//    UCI PubMed collection; see DESIGN.md substitutions.)
//  * Fingerprint — MD5 digests of synthetic file contents, 16-byte keys /
//    32-byte items. (Stand-in for the FSL Mac-server snapshot trace.)
//
// A Workload is a deduplicated key sequence; benches split it into a
// fill phase (to reach the target load factor) and request phases, the
// way the paper's evaluation does.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace gh::trace {

enum class TraceKind { kRandomNum, kBagOfWords, kFingerprint };

const char* trace_name(TraceKind kind);

struct Workload {
  std::string name;
  TraceKind kind = TraceKind::kRandomNum;
  bool wide_keys = false;  ///< true: Key128 keys (32 B cells); false: u64 (16 B cells)
  usize item_bytes = 16;
  std::vector<u64> keys64;
  std::vector<Key128> keys128;

  [[nodiscard]] usize size() const { return wide_keys ? keys128.size() : keys64.size(); }
};

/// `n_keys` unique keys, deterministic in `seed`.
Workload make_random_num(usize n_keys, u64 seed);
Workload make_bag_of_words(usize n_keys, u64 seed);
Workload make_fingerprint(usize n_keys, u64 seed);
Workload make_workload(TraceKind kind, usize n_keys, u64 seed);

/// Load a REAL UCI Bag-of-Words collection (the paper's PubMed trace) from
/// its `docword.*.txt` format:
///
///   D            (number of documents)
///   W            (vocabulary size)
///   NNZ          (number of doc/word pairs)
///   docID wordID count     (NNZ lines, IDs 1-based)
///
/// Keys are encoded exactly like the synthetic generator
/// ((docID<<32)|wordID), so the full evaluation runs unchanged on the real
/// dataset when it is available (http://archive.ics.uci.edu/ml/datasets/
/// Bag+of+Words). `max_keys` = 0 loads everything. Throws
/// std::runtime_error on malformed input.
Workload load_bag_of_words_file(const std::string& path, usize max_keys = 0);

/// Deterministic value derived from a key; tests and crash-recovery checks
/// use it to detect torn or misplaced payloads.
u64 value_for_key(u64 key);
u64 value_for_key(const Key128& key);

}  // namespace gh::trace
