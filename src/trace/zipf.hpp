// Zipfian sampler over {0, ..., n-1} with exponent s, using a precomputed
// cumulative distribution and binary search. Used by the Bag-of-Words
// generator: word frequencies in text corpora are famously Zipfian, so the
// synthetic (DocID, WordID) trace preserves the skew of the real PubMed
// collection.
#pragma once

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gh::trace {

class ZipfSampler {
 public:
  ZipfSampler(usize n, double s) : cdf_(n) {
    GH_CHECK_MSG(n > 0, "Zipf domain must be non-empty");
    double sum = 0;
    for (usize i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Rank sampled according to P(k) ∝ 1/(k+1)^s.
  [[nodiscard]] usize sample(Xoshiro256& rng) const {
    const double u = rng.next_double();
    usize lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const usize mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] usize domain() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gh::trace
