// Chained hashing — implemented so the paper's reason for excluding it
// ("performs poorly under memory pressure due to frequent memory
// allocation and free calls", §4.1) is checkable in the ablation bench.
// Buckets hold node indices into a persistent pool with a bump allocator
// plus free list; every insert allocates and every erase frees, and the
// nodes of one chain are scattered across the pool — both effects the
// ablation quantifies. Not crash consistent (it is not a contender).
#pragma once

#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class ChainedHashTable {
 public:
  using key_type = typename Cell::key_type;

  struct Node {
    Cell cell;
    u64 next;  ///< node index + 1; 0 terminates the chain
  };

  struct Params {
    u64 buckets = 1024;  ///< power of two
    u64 pool_nodes = 2048;
    u64 seed = kDefaultSeed1;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748544348303031ull;  // "GHTCH001"

  struct Header {
    u64 magic;
    u64 buckets;
    u64 pool_nodes;
    u64 count;
    u64 seed;
    u64 pool_used;
    u64 free_head;  ///< node index + 1; 0 = empty free list
    u64 cell_size;
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + p.buckets * sizeof(u64) + p.pool_nodes * sizeof(Node);
  }

  ChainedHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash_(p.seed) {
    GH_CHECK_MSG(is_pow2(p.buckets), "buckets must be a power of two");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    heads_ = reinterpret_cast<u64*>(mem.data() + sizeof(Header));
    nodes_ = reinterpret_cast<Node*>(mem.data() + sizeof(Header) + p.buckets * sizeof(u64));
    if (format) {
      if (p.zero_memory) {
        pm.fill(heads_, 0, p.buckets * sizeof(u64) + p.pool_nodes * sizeof(Node));
        pm.persist(heads_, p.buckets * sizeof(u64) + p.pool_nodes * sizeof(Node));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->buckets, p.buckets);
      pm.store_u64(&header_->pool_nodes, p.pool_nodes);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed, p.seed);
      pm.store_u64(&header_->pool_used, 0);
      pm.store_u64(&header_->free_head, 0);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a chained table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash_ = SeededHash(header_->seed);
    }
    mask_ = header_->buckets - 1;
  }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    const u64 slot = allocate_node();
    if (slot == 0) {
      stats_.insert_failures++;
      return false;
    }
    Node& node = nodes_[slot - 1];
    node.cell.publish(*pm_, key, value);
    const u64 b = hash_(key) & mask_;
    pm_->touch_read(&heads_[b], sizeof(u64));
    pm_->store_u64(&node.next, heads_[b]);
    pm_->persist(&node.next, sizeof(u64));
    pm_->atomic_store_u64(&heads_[b], slot);
    pm_->persist(&heads_[b], sizeof(u64));
    bump_count(+1);
    return true;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    const u64 b = hash_(key) & mask_;
    pm_->touch_read(&heads_[b], sizeof(u64));
    for (u64 slot = heads_[b]; slot != 0;) {
      Node& node = nodes_[slot - 1];
      pm_->touch_read(&node, sizeof(Node));
      stats_.probes++;
      if (node.cell.matches(key)) {
        stats_.query_hits++;
        return node.cell.value;
      }
      slot = node.next;
    }
    return std::nullopt;
  }

  bool erase(key_type key) {
    stats_.erases++;
    const u64 b = hash_(key) & mask_;
    pm_->touch_read(&heads_[b], sizeof(u64));
    u64* link = &heads_[b];
    for (u64 slot = *link; slot != 0;) {
      Node& node = nodes_[slot - 1];
      pm_->touch_read(&node, sizeof(Node));
      stats_.probes++;
      if (node.cell.matches(key)) {
        pm_->atomic_store_u64(link, node.next);
        pm_->persist(link, sizeof(u64));
        node.cell.retract(*pm_);
        free_node(slot);
        bump_count(-1);
        stats_.erase_hits++;
        return true;
      }
      link = &node.next;
      slot = node.next;
    }
    return false;
  }

  /// Chained hashing is not crash consistent (that is part of the paper's
  /// point); recovery here just recounts reachable nodes so the adapter
  /// interface stays uniform for the ablation bench.
  RecoveryReport recover() {
    RecoveryReport report;
    u64 count = 0;
    for (u64 b = 0; b <= mask_; ++b) {
      for (u64 slot = heads_[b]; slot != 0; slot = nodes_[slot - 1].next) {
        pm_->touch_read(&nodes_[slot - 1], sizeof(Node));
        report.cells_scanned++;
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 b = 0; b <= mask_; ++b) {
      for (u64 slot = heads_[b]; slot != 0; slot = nodes_[slot - 1].next) {
        const Cell& c = nodes_[slot - 1].cell;
        fn(c.key(), c.value);
      }
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return header_->pool_nodes; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  /// Returns node index + 1, or 0 when the pool is exhausted.
  u64 allocate_node() {
    if (header_->free_head != 0) {
      const u64 slot = header_->free_head;
      pm_->touch_read(&nodes_[slot - 1], sizeof(Node));
      pm_->atomic_store_u64(&header_->free_head, nodes_[slot - 1].next);
      pm_->persist(&header_->free_head, sizeof(u64));
      return slot;
    }
    if (header_->pool_used < header_->pool_nodes) {
      const u64 slot = header_->pool_used + 1;
      pm_->atomic_store_u64(&header_->pool_used, slot);
      pm_->persist(&header_->pool_used, sizeof(u64));
      return slot;
    }
    return 0;
  }

  void free_node(u64 slot) {
    pm_->store_u64(&nodes_[slot - 1].next, header_->free_head);
    pm_->persist(&nodes_[slot - 1].next, sizeof(u64));
    pm_->atomic_store_u64(&header_->free_head, slot);
    pm_->persist(&header_->free_head, sizeof(u64));
  }

  void bump_count(i64 delta) {
    pm_->atomic_store_u64(&header_->count, header_->count + static_cast<u64>(delta));
    pm_->persist(&header_->count, sizeof(u64));
  }

  PM* pm_;
  SeededHash hash_;
  Header* header_ = nullptr;
  u64* heads_ = nullptr;
  Node* nodes_ = nullptr;
  u64 mask_ = 0;
  TableStats stats_;
};

}  // namespace gh::hash
