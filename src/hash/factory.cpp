#include "hash/any_table.hpp"

#include "nvm/direct_pm.hpp"

namespace gh::hash {
namespace {

// The memory layout of every scheme is independent of the persistence
// policy, so size with a canonical one.
using SizingPM = nvm::DirectPM;

template <class Cell>
usize required_bytes_cell(const TableConfig& cfg) {
  const u64 total = detail::cells_budget(cfg);
  usize bytes = 0;
  switch (cfg.scheme) {
    case Scheme::kGroup: {
      using Table = GroupHashTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.level_cells = total / 2,
                                     .group_size = detail::clamped_group_size(cfg),
                                     .group_crc = cfg.group_crc});
      break;
    }
    case Scheme::kLinear: {
      using Table = LinearProbingTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.cells = total});
      break;
    }
    case Scheme::kPfht: {
      using Table = PfhtTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.cells = total});
      break;
    }
    case Scheme::kPath: {
      using Table = PathHashTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.level0_bits = detail::path_level0_bits(cfg),
                                     .reserved_levels = detail::path_levels(cfg)});
      break;
    }
    case Scheme::kChained: {
      using Table = ChainedHashTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.buckets = total / 2, .pool_nodes = total});
      break;
    }
    case Scheme::kTwoChoice: {
      using Table = TwoChoiceTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.cells = total});
      break;
    }
    case Scheme::kCuckoo: {
      using Table = CuckooHashTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.cells = total});
      break;
    }
    case Scheme::kGroup2H: {
      using Table = GroupHashTable2H<Cell, SizingPM>;
      bytes = Table::required_bytes({.level_cells = total / 2,
                                     .group_size = detail::clamped_group_size(cfg)});
      break;
    }
    case Scheme::kLevel: {
      using Table = LevelHashTable<Cell, SizingPM>;
      bytes = Table::required_bytes({.top_buckets = std::max<u64>(total >> 3, 2)});
      break;
    }
  }
  if (cfg.with_wal) bytes += UndoLog<SizingPM>::required_bytes(cfg.wal_records);
  return bytes;
}

}  // namespace

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kGroup:
      return "group";
    case Scheme::kLinear:
      return "linear";
    case Scheme::kPfht:
      return "PFHT";
    case Scheme::kPath:
      return "path";
    case Scheme::kChained:
      return "chained";
    case Scheme::kTwoChoice:
      return "2-choice";
    case Scheme::kCuckoo:
      return "cuckoo";
    case Scheme::kGroup2H:
      return "group-2h";
    case Scheme::kLevel:
      return "level";
  }
  return "?";
}

usize table_required_bytes(const TableConfig& config) {
  return config.wide_cells ? required_bytes_cell<Cell32>(config)
                           : required_bytes_cell<Cell16>(config);
}

}  // namespace gh::hash
