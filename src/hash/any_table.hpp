// Runtime-polymorphic view over the hash schemes.
//
// The figure benches and the property-test suite sweep {scheme ×
// persistence policy × cell width × logging}; this header erases the
// static scheme/cell types behind AnyTable<PM> and provides the factory
// that carves a table (plus its undo log, for "-L" variants) out of one
// NVM memory span.
//
// Capacity convention: `total_cells_log2` is the paper's "number of hash
// table cells" (2^23 for RandomNum etc.); each scheme receives a layout
// with (approximately) that many cells — group hashing splits them
// between its two levels, PFHT adds its 3% stash on top, path hashing
// fills levels until the budget is met.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "hash/group_hashing.hpp"
#include "hash/table_stats.hpp"
#include "obs/snapshot.hpp"
#include "util/types.hpp"

namespace gh::obs {
template <class PM>
class BasicFlightRecorder;  // obs/flight_recorder.hpp
}

namespace gh::hash {

enum class Scheme {
  kGroup,      ///< the paper's contribution (§3)
  kLinear,     ///< linear probing with backward-shift delete
  kPfht,       ///< cuckoo variant, 4-cell buckets, ≤1 displacement, 3% stash
  kPath,       ///< inverted-binary-tree position sharing
  kChained,    ///< excluded baseline (§4.1): allocation churn
  kTwoChoice,  ///< excluded baseline (§4.1): low utilisation
  kCuckoo,     ///< classic cuckoo with full eviction chains (ablation)
  kGroup2H,    ///< the paper's rejected §4.4 two-hash-function variant
  kLevel,      ///< level hashing (OSDI'18 successor scheme; extension)
};

const char* scheme_name(Scheme scheme);

struct TableConfig {
  Scheme scheme = Scheme::kGroup;
  u32 total_cells_log2 = 12;
  u32 group_size = 256;       ///< group hashing only
  u32 reserved_levels = 20;   ///< path hashing only
  bool wide_cells = false;    ///< true: 32-byte cells (Key128), false: 16-byte (u64)
  bool with_wal = false;      ///< attach an undo log ("-L" variant)
  u32 wal_records = 4096;
  u64 seed1 = kDefaultSeed1;
  u64 seed2 = kDefaultSeed2;
  bool zero_memory = false;
  bool group_crc = false;  ///< group hashing only: per-group checksums
  /// Record per-op latency histograms. Leave on unless benchmarking the
  /// instrumentation itself; ignored (always off) when the build compiles
  /// observability out via GH_OBS_OFF.
  bool record_latency = true;
  /// Time 1 in 2^shift ops (0 = every op). See obs::kDefaultSampleShift.
  u32 latency_sample_shift = obs::kDefaultSampleShift;

  [[nodiscard]] std::string display_name() const {
    std::string n = scheme_name(scheme);
    if (with_wal) n += "-L";
    return n;
  }
};

/// Type-erased persistent hash table. Narrow-cell tables take the key in
/// Key128::lo (hi must be zero and bit 63 clear).
template <class PM>
class AnyTable {
 public:
  virtual ~AnyTable() = default;

  virtual bool insert(const Key128& key, u64 value) = 0;
  virtual std::optional<u64> find(const Key128& key) = 0;
  virtual bool erase(const Key128& key) = 0;

  /// Batched lookup; out[i] receives the result for keys[i]. The default
  /// is a scalar loop; schemes with a native batched probe (group
  /// hashing's prefetching find_batch) override it.
  virtual void find_batch(std::span<const Key128> keys,
                          std::span<std::optional<u64>> out) {
    for (usize i = 0; i < keys.size(); ++i) out[i] = find(keys[i]);
  }

  /// Batched insert. Applies a strict prefix of the keys in order and
  /// returns its length (keys.size() unless the table filled up).
  /// Schemes with fence-coalescing batch support override the default
  /// scalar loop.
  virtual usize insert_batch(std::span<const Key128> keys, std::span<const u64> values) {
    for (usize i = 0; i < keys.size(); ++i) {
      if (!insert(keys[i], values[i])) return i;
    }
    return keys.size();
  }

  /// Batched erase. When `hits` is non-empty it must be keys.size() long;
  /// hits[i] is set to 1 if keys[i] was present. Duplicate keys within
  /// the batch behave sequentially.
  virtual void erase_batch(std::span<const Key128> keys, std::span<u8> hits = {}) {
    for (usize i = 0; i < keys.size(); ++i) {
      const bool hit = erase(keys[i]);
      if (!hits.empty()) hits[i] = hit ? 1 : 0;
    }
  }

  virtual RecoveryReport recover() = 0;
  /// Incremental integrity pass over up to `max_groups` checksummed
  /// groups, resuming at an internal wrap-around cursor; lost/salvaged
  /// cells are reported through `on_loss` (may be empty). Schemes without
  /// per-group checksums — every scheme except group hashing created with
  /// group_crc, including group hashing without it — return an empty
  /// report.
  virtual ScrubReport scrub(u64 max_groups,
                            const std::function<void(const LostCell&)>& on_loss) = 0;
  ScrubReport scrub(u64 max_groups = ~u64{0}) { return scrub(max_groups, {}); }
  [[nodiscard]] virtual u64 count() const = 0;
  [[nodiscard]] virtual u64 capacity() const = 0;
  [[nodiscard]] virtual TableStats& stats() = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Unified stats sample: persist + table-op + scrub + latency data in
  /// one obs::Snapshot (the single read API; see obs/snapshot.hpp).
  [[nodiscard]] virtual obs::Snapshot snapshot() = 0;
  /// The table's per-op latency recorder, for owners that aggregate or
  /// carry histograms across an expansion.
  [[nodiscard]] virtual obs::OpRecorder& recorder() = 0;
  /// Runtime toggle for the latency timers (cheaper than rebuilding with
  /// GH_OBS_OFF; used by bench/observability_overhead for in-binary A/B).
  virtual void set_record_latency(bool on) = 0;

  /// Attach a flight recorder (obs/flight_recorder.hpp) that the table
  /// threads op start/finish records through. Non-owning — the caller
  /// keeps the recorder (and its PM region) alive for the table's
  /// lifetime; pass nullptr to detach. Default-off so existing callers
  /// (and their crash-event schedules) are unperturbed.
  virtual void attach_flight(obs::BasicFlightRecorder<PM>* flight) = 0;

  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
};

/// Bytes needed for a table with this configuration (including the undo
/// log when with_wal is set).
usize table_required_bytes(const TableConfig& config);

/// Construct a table inside `mem` (sized by table_required_bytes).
/// `format` true initialises a fresh table; false attaches to an existing
/// one with identical configuration.
template <class PM>
std::unique_ptr<AnyTable<PM>> make_table(PM& pm, std::span<std::byte> mem,
                                         const TableConfig& config, bool format);

}  // namespace gh::hash

#include "hash/any_table_impl.hpp"  // IWYU pragma: keep
