// Persistent hash-cell layouts and their failure-atomic commit protocols.
//
// NVM's failure-atomicity unit is 8 bytes, so each cell designates one
// 8-byte *commit word* holding the paper's 1-bit occupancy bitmap; all
// other fields are written and persisted *before* the commit word flips
// (insert) or *after* it flips back (delete). This is the whole
// consistency mechanism of group hashing (§3.3):
//
//   insert: write payload → persist → atomically set bitmap → persist
//   delete: atomically clear bitmap → persist → clear payload → persist
//
// Cell16 — the paper's 16-byte item (RandomNum / Bag-of-Words): the
// commit word packs the bitmap (bit 63) together with a 63-bit key, so
// publishing the key *is* the commit; the value occupies the other word.
//
// Cell32 — the paper's 32-byte item (Fingerprint, 16-byte keys): a
// dedicated meta word carries the bitmap plus a 16-bit key tag used to
// reject non-matching cells without reading the full key.
//
// All mutation goes through a persistence-policy object PM (see
// nvm/direct_pm.hpp for the interface), which is how the crash simulator
// and the cache-simulator benches observe every NVM write.
#pragma once

#include <optional>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

struct Cell16 {
  using key_type = u64;
  static constexpr usize kSize = 16;
  static constexpr u64 kOccupiedBit = 1ull << 63;
  /// Keys must leave bit 63 for the bitmap.
  static constexpr u64 kMaxKey = kOccupiedBit - 1;

  u64 word0 = 0;  ///< commit word: bitmap(63) | key(62..0)
  u64 value = 0;

  [[nodiscard]] bool occupied() const { return (word0 & kOccupiedBit) != 0; }
  [[nodiscard]] key_type key() const { return word0 & ~kOccupiedBit; }
  [[nodiscard]] bool matches(key_type k) const {
    return word0 == (k | kOccupiedBit);  // occupied test and key compare in one load
  }
  /// Non-zero payload in an unoccupied cell — garbage a recovery scan must
  /// scrub (a torn in-flight insert, or the tail of a committed delete).
  [[nodiscard]] bool payload_dirty() const { return word0 != 0 || value != 0; }

  /// Insert protocol (Algorithm 1, lines 4-7).
  template <class PM>
  void publish(PM& pm, key_type k, u64 v) {
    GH_DCHECK(k <= kMaxKey);
    pm.store_u64(&value, v);
    pm.persist(&value, sizeof(value));
    pm.atomic_store_u64(&word0, k | kOccupiedBit);
    pm.persist(&word0, sizeof(word0));
  }

  /// Delete protocol (Algorithm 3, lines 4-7): the atomic bitmap clear
  /// commits the delete *first*; the payload wipe after it is garbage
  /// collection that recovery redoes if interrupted. For this layout the
  /// single atomic store clears bitmap and key together.
  template <class PM>
  void retract(PM& pm) {
    pm.atomic_store_u64(&word0, 0);
    pm.persist(&word0, sizeof(word0));
    pm.store_u64(&value, 0);
    pm.persist(&value, sizeof(value));
  }

  /// Move an occupied cell's contents here (used by linear probing's
  /// backward-shift delete and PFHT's displacement). Same ordering as an
  /// insert; the source must be retracted afterwards by the caller.
  template <class PM>
  void publish_from(PM& pm, const Cell16& src) {
    publish(pm, src.key(), src.value);
  }

  /// Recovery scrub (Algorithm 4): zero the payload of an unoccupied cell.
  template <class PM>
  void scrub(PM& pm) {
    pm.store_u64(&word0, 0);
    pm.store_u64(&value, 0);
    pm.persist(this, kSize);
  }

  // --- batched (fence-coalesced) protocol ----------------------------------
  // publish() split in two so a window of inserts shares two fences:
  //   stage_payload × n → fence → commit_staged × n → fence
  // The per-cell ordering invariant is identical to publish(): the commit
  // word can only become durable after the window's payload fence, so any
  // committed cell found by recovery has a durable payload.

  /// Phase 1: write the payload and flush its line, no fence.
  template <class PM>
  void stage_payload(PM& pm, key_type, u64 v) {
    pm.store_u64(&value, v);
    pm.flush(&value, sizeof(value));
  }

  /// Re-stage the value of a cell staged earlier in the same window
  /// (duplicate key inside one batch; the commit word is still unset).
  template <class PM>
  void stage_value(PM& pm, u64 v) {
    pm.store_u64(&value, v);
    pm.flush(&value, sizeof(value));
  }

  /// Phase 2 (after the window's payload fence): atomically set the
  /// commit word and flush it; the caller fences once per window.
  template <class PM>
  void commit_staged(PM& pm, key_type k) {
    GH_DCHECK(k <= kMaxKey);
    pm.atomic_store_u64(&word0, k | kOccupiedBit);
    pm.flush(&word0, sizeof(word0));
  }

  // retract() split the same way for batched erase:
  //   retract_commit × n → fence → retract_wipe × n → fence
  // Mandatory order for this layout: word0 carries the key, so a wipe
  // must never reach media while the old commit word could still be live.

  /// Phase 1: atomically clear the commit word and flush, no fence.
  template <class PM>
  void retract_commit(PM& pm) {
    pm.atomic_store_u64(&word0, 0);
    pm.flush(&word0, sizeof(word0));
  }

  /// Phase 2 (after the clears' fence): wipe the payload and flush.
  template <class PM>
  void retract_wipe(PM& pm) {
    pm.store_u64(&value, 0);
    pm.flush(&value, sizeof(value));
  }
};
static_assert(sizeof(Cell16) == Cell16::kSize);

struct Cell32 {
  using key_type = Key128;
  static constexpr usize kSize = 32;
  static constexpr u64 kOccupiedBit = 1ull << 63;

  u64 meta = 0;  ///< commit word: bitmap(63) | key tag(15..0)
  u64 key_lo = 0;
  u64 key_hi = 0;
  u64 value = 0;

  static u64 tag_of(const Key128& k) { return (k.lo ^ (k.lo >> 16) ^ k.hi) & 0xffff; }

  [[nodiscard]] bool occupied() const { return (meta & kOccupiedBit) != 0; }
  [[nodiscard]] key_type key() const { return Key128{key_lo, key_hi}; }
  [[nodiscard]] bool matches(const Key128& k) const {
    return meta == (kOccupiedBit | tag_of(k)) && key_lo == k.lo && key_hi == k.hi;
  }
  [[nodiscard]] bool payload_dirty() const {
    return meta != 0 || key_lo != 0 || key_hi != 0 || value != 0;
  }

  template <class PM>
  void publish(PM& pm, const Key128& k, u64 v) {
    pm.store_u64(&key_lo, k.lo);
    pm.store_u64(&key_hi, k.hi);
    pm.store_u64(&value, v);
    pm.persist(&key_lo, 3 * sizeof(u64));
    pm.atomic_store_u64(&meta, kOccupiedBit | tag_of(k));
    pm.persist(&meta, sizeof(meta));
  }

  template <class PM>
  void retract(PM& pm) {
    pm.atomic_store_u64(&meta, 0);
    pm.persist(&meta, sizeof(meta));
    pm.store_u64(&key_lo, 0);
    pm.store_u64(&key_hi, 0);
    pm.store_u64(&value, 0);
    pm.persist(&key_lo, 3 * sizeof(u64));
  }

  template <class PM>
  void publish_from(PM& pm, const Cell32& src) {
    publish(pm, src.key(), src.value);
  }

  template <class PM>
  void scrub(PM& pm) {
    pm.store_u64(&meta, 0);
    pm.store_u64(&key_lo, 0);
    pm.store_u64(&key_hi, 0);
    pm.store_u64(&value, 0);
    pm.persist(this, kSize);
  }

  // --- batched (fence-coalesced) protocol — see Cell16 for the shape ------

  template <class PM>
  void stage_payload(PM& pm, const Key128& k, u64 v) {
    pm.store_u64(&key_lo, k.lo);
    pm.store_u64(&key_hi, k.hi);
    pm.store_u64(&value, v);
    pm.flush(&key_lo, 3 * sizeof(u64));
  }

  template <class PM>
  void stage_value(PM& pm, u64 v) {
    pm.store_u64(&value, v);
    pm.flush(&value, sizeof(value));
  }

  template <class PM>
  void commit_staged(PM& pm, const Key128& k) {
    pm.atomic_store_u64(&meta, kOccupiedBit | tag_of(k));
    pm.flush(&meta, sizeof(meta));
  }

  template <class PM>
  void retract_commit(PM& pm) {
    pm.atomic_store_u64(&meta, 0);
    pm.flush(&meta, sizeof(meta));
  }

  template <class PM>
  void retract_wipe(PM& pm) {
    pm.store_u64(&key_lo, 0);
    pm.store_u64(&key_hi, 0);
    pm.store_u64(&value, 0);
    pm.flush(&key_lo, 3 * sizeof(u64));
  }
};
static_assert(sizeof(Cell32) == Cell32::kSize);

}  // namespace gh::hash
