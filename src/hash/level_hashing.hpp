// Level hashing (Zuo, Hua & Wu, OSDI'18) — the successor NVM hashing
// scheme from the path-hashing authors, published shortly after the
// group-hashing paper. Included as a forward-looking comparison point
// (bench/extension_level_hashing): where does group hashing stand against
// the next generation?
//
// Structure: a TOP level of 2^k four-slot buckets addressed by two hash
// functions, and a BOTTOM level of 2^(k-1) four-slot buckets; top bucket
// i overflows into bottom bucket i/2, so each key has two top candidates
// and two (often coinciding) bottom candidates. An insert that finds all
// four candidate buckets full may move ONE resident of a candidate top
// bucket to that resident's alternate top bucket (and likewise one bottom
// resident) before giving up — bounded movement, like PFHT.
//
// Consistency: slot state is committed with the same 8-byte commit word
// as every scheme here, so plain inserts/deletes are failure-atomic. A
// *movement* is copy-then-retract: a crash in between leaves a duplicate,
// which the original paper deduplicates during rehashing; attach a WAL
// ("level-L") for the consistency-matched comparison, as with the other
// movement-based baselines.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/wal.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class LevelHashTable {
 public:
  using key_type = typename Cell::key_type;
  static constexpr u32 kBucketSlots = 4;

  struct Params {
    u64 top_buckets = 512;  ///< power of two; bottom level has half as many
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x474854'4c56'3031ull;  // "GHTLV01"

  struct Header {
    u64 magic;
    u64 top_buckets;
    u64 count;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved[2];
  };
  static_assert(sizeof(Header) == 64);

  static u64 total_cells(const Params& p) {
    return (p.top_buckets + p.top_buckets / 2) * kBucketSlots;
  }

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + total_cells(p) * sizeof(Cell);
  }

  LevelHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK_MSG(is_pow2(p.top_buckets) && p.top_buckets >= 2,
                 "top_buckets must be a power of two >= 2");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    top_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    bottom_ = top_ + p.top_buckets * kBucketSlots;
    if (format) {
      if (p.zero_memory) {
        pm.fill(top_, 0, total_cells(p) * sizeof(Cell));
        pm.persist(top_, total_cells(p) * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->top_buckets, p.top_buckets);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a level-hashing table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    top_buckets_ = header_->top_buckets;
    top_mask_ = top_buckets_ - 1;
  }

  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    const u64 t1 = hash1_(key) & top_mask_;
    const u64 t2 = hash2_(key) & top_mask_;
    // Top-level candidates, less-loaded bucket first.
    for (const u64 b : ordered_by_load(t1, t2)) {
      if (Cell* c = empty_slot(top_bucket(b))) {
        commit_insert(c, key, value);
        return true;
      }
    }
    // Bottom-level candidates.
    for (const u64 b : ordered_by_load_bottom(t1 / 2, t2 / 2)) {
      if (Cell* c = empty_slot(bottom_bucket(b))) {
        commit_insert(c, key, value);
        return true;
      }
    }
    // One top-level movement: relocate a resident of t1/t2 to its
    // alternate top bucket.
    for (const u64 b : {t1, t2}) {
      if (try_move_from_top(b, key, value)) return true;
      if (t1 == t2) break;
    }
    // One bottom-level movement.
    for (const u64 b : {t1 / 2, t2 / 2}) {
      if (try_move_from_bottom(b, key, value)) return true;
      if (t1 / 2 == t2 / 2) break;
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    Cell* c = find_cell(key);
    if (c == nullptr) return std::nullopt;
    stats_.query_hits++;
    return c->value;
  }

  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    Cell* c = find_cell(key);
    if (c == nullptr) {
      if (wal_) wal_->commit();
      return false;
    }
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->retract(*pm_);
    pm_->atomic_store_u64(&header_->count, header_->count - 1);
    pm_->persist(&header_->count, sizeof(u64));
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    const u64 total = (top_buckets_ + top_buckets_ / 2) * kBucketSlots;
    for (u64 i = 0; i < total; ++i) {
      Cell* c = &top_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    const u64 total = (top_buckets_ + top_buckets_ / 2) * kBucketSlots;
    for (u64 i = 0; i < total; ++i) {
      if (top_[i].occupied()) fn(top_[i].key(), top_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const {
    return (top_buckets_ + top_buckets_ / 2) * kBucketSlots;
  }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* top_bucket(u64 b) { return &top_[b * kBucketSlots]; }
  Cell* bottom_bucket(u64 b) { return &bottom_[b * kBucketSlots]; }

  Cell* empty_slot(Cell* bucket) {
    for (u32 s = 0; s < kBucketSlots; ++s) {
      Cell* c = &bucket[s];
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (!c->occupied()) return c;
    }
    return nullptr;
  }

  u32 bucket_load(Cell* bucket) const {
    u32 load = 0;
    for (u32 s = 0; s < kBucketSlots; ++s) {
      if (bucket[s].occupied()) ++load;
    }
    return load;
  }

  std::array<u64, 2> ordered_by_load(u64 a, u64 b) {
    if (bucket_load(top_bucket(a)) <= bucket_load(top_bucket(b))) return {a, b};
    return {b, a};
  }

  std::array<u64, 2> ordered_by_load_bottom(u64 a, u64 b) {
    if (bucket_load(bottom_bucket(a)) <= bucket_load(bottom_bucket(b))) return {a, b};
    return {b, a};
  }

  bool try_move_from_top(u64 b, key_type key, u64 value) {
    Cell* bucket = top_bucket(b);
    for (u32 s = 0; s < kBucketSlots; ++s) {
      Cell* victim = &bucket[s];
      const u64 v1 = hash1_(victim->key()) & top_mask_;
      const u64 v2 = hash2_(victim->key()) & top_mask_;
      const u64 alt = v1 == b ? v2 : v1;
      if (alt == b) continue;
      if (Cell* dest = empty_slot(top_bucket(alt))) {
        move_and_insert(victim, dest, key, value);
        return true;
      }
    }
    return false;
  }

  bool try_move_from_bottom(u64 b, key_type key, u64 value) {
    Cell* bucket = bottom_bucket(b);
    for (u32 s = 0; s < kBucketSlots; ++s) {
      Cell* victim = &bucket[s];
      const u64 v1 = (hash1_(victim->key()) & top_mask_) / 2;
      const u64 v2 = (hash2_(victim->key()) & top_mask_) / 2;
      const u64 alt = v1 == b ? v2 : v1;
      if (alt == b) continue;
      if (Cell* dest = empty_slot(bottom_bucket(alt))) {
        move_and_insert(victim, dest, key, value);
        return true;
      }
    }
    return false;
  }

  void move_and_insert(Cell* victim, Cell* dest, key_type key, u64 value) {
    if (wal_) {
      wal_->log_cell(dest, sizeof(Cell));
      wal_->log_cell(victim, sizeof(Cell));
    }
    dest->publish_from(*pm_, *victim);
    victim->retract(*pm_);
    stats_.displacements++;
    commit_insert(victim, key, value);
  }

  void commit_insert(Cell* c, key_type key, u64 value) {
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->publish(*pm_, key, value);
    pm_->atomic_store_u64(&header_->count, header_->count + 1);
    pm_->persist(&header_->count, sizeof(u64));
    if (wal_) wal_->commit();
  }

  Cell* find_cell(key_type key) {
    const u64 t1 = hash1_(key) & top_mask_;
    const u64 t2 = hash2_(key) & top_mask_;
    for (const u64 b : {t1, t2}) {
      Cell* bucket = top_bucket(b);
      for (u32 s = 0; s < kBucketSlots; ++s) {
        Cell* c = &bucket[s];
        pm_->touch_read(c, sizeof(Cell));
        stats_.probes++;
        if (c->matches(key)) return c;
      }
      if (t1 == t2) break;
    }
    for (const u64 b : {t1 / 2, t2 / 2}) {
      Cell* bucket = bottom_bucket(b);
      for (u32 s = 0; s < kBucketSlots; ++s) {
        Cell* c = &bucket[s];
        pm_->touch_read(c, sizeof(Cell));
        stats_.probes++;
        if (c->matches(key)) return c;
      }
      if (t1 / 2 == t2 / 2) break;
    }
    return nullptr;
  }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* top_ = nullptr;
  Cell* bottom_ = nullptr;
  u64 top_buckets_ = 0;
  u64 top_mask_ = 0;
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
};

}  // namespace gh::hash
