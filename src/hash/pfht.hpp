// PFHT (Debnath et al., "Revisiting hash table design for phase change
// memory") — an NVM-friendly cuckoo-hashing variant used as a baseline:
// two hash functions address buckets of 4 contiguous cells, an insert may
// displace at most ONE resident item (bounding cascading cuckoo writes),
// and items that still do not fit go to a linear stash sized at 3% of the
// table (§4.1 of the group-hashing paper).
//
// The 4-cell buckets are contiguous (good cache behaviour at load factor
// 0.5); at 0.75 more items land in the stash, whose linear scans make
// PFHT fall behind path hashing — a crossover the figures reproduce.
#pragma once

#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/wal.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class PfhtTable {
 public:
  using key_type = typename Cell::key_type;
  static constexpr u32 kBucketCells = 4;
  /// Stash size as a fraction of the table (paper: 3%).
  static constexpr double kStashFraction = 0.03;

  struct Params {
    u64 cells = 2048;  ///< table cells excluding stash; power of two
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748545046303031ull;  // "GHTPF001"

  struct Header {
    u64 magic;
    u64 cells;
    u64 stash_cells;
    u64 count;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved;
  };
  static_assert(sizeof(Header) == 64);

  static u64 stash_cells_for(u64 cells) {
    return std::max<u64>(1, static_cast<u64>(static_cast<double>(cells) * kStashFraction));
  }

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + (p.cells + stash_cells_for(p.cells)) * sizeof(Cell);
  }

  PfhtTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK_MSG(is_pow2(p.cells) && p.cells >= kBucketCells,
                 "cells must be a power of two >= bucket size");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    if (format) {
      const u64 total = p.cells + stash_cells_for(p.cells);
      if (p.zero_memory) {
        pm.fill(tab_, 0, total * sizeof(Cell));
        pm.persist(tab_, total * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->cells, p.cells);
      pm.store_u64(&header_->stash_cells, stash_cells_for(p.cells));
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a PFHT table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    buckets_ = header_->cells / kBucketCells;
    bucket_mask_ = buckets_ - 1;
    stash_ = tab_ + header_->cells;
    stash_cells_ = header_->stash_cells;
  }

  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    const u64 b1 = hash1_(key) & bucket_mask_;
    const u64 b2 = hash2_(key) & bucket_mask_;
    if (Cell* c = empty_slot(b1); c != nullptr) {
      commit_insert(c, key, value);
      return true;
    }
    if (Cell* c = empty_slot(b2); c != nullptr) {
      commit_insert(c, key, value);
      return true;
    }
    // At most one displacement: try to move one resident of the first
    // candidate bucket to its alternate bucket, then reuse the freed slot.
    Cell* bucket = &tab_[b1 * kBucketCells];
    for (u32 s = 0; s < kBucketCells; ++s) {
      Cell* victim = &bucket[s];
      const u64 alt = alternate_bucket(victim->key(), b1);
      if (alt == b1) continue;
      if (Cell* dest = empty_slot(alt); dest != nullptr) {
        if (wal_) {
          wal_->log_cell(dest, sizeof(Cell));
          wal_->log_cell(victim, sizeof(Cell));
        }
        dest->publish_from(*pm_, *victim);
        victim->retract(*pm_);
        stats_.displacements++;
        commit_insert(victim, key, value);
        return true;
      }
    }
    // Stash of last resort.
    for (u64 i = 0; i < stash_cells_; ++i) {
      Cell* c = probe(&stash_[i]);
      stats_.stash_probes++;
      if (!c->occupied()) {
        commit_insert(c, key, value);
        return true;
      }
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    Cell* c = find_cell(key);
    if (c == nullptr) return std::nullopt;
    stats_.query_hits++;
    return c->value;
  }

  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    Cell* c = find_cell(key);
    if (c == nullptr) {
      if (wal_) wal_->commit();
      return false;
    }
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->retract(*pm_);
    pm_->atomic_store_u64(&header_->count, header_->count - 1);
    pm_->persist(&header_->count, sizeof(u64));
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    const u64 total = header_->cells + stash_cells_;
    for (u64 i = 0; i < total; ++i) {
      Cell* c = &tab_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    const u64 total = header_->cells + stash_cells_;
    for (u64 i = 0; i < total; ++i) {
      if (tab_[i].occupied()) fn(tab_[i].key(), tab_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return header_->cells + stash_cells_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  Cell* empty_slot(u64 bucket) {
    Cell* base = &tab_[bucket * kBucketCells];
    for (u32 s = 0; s < kBucketCells; ++s) {
      Cell* c = probe(&base[s]);
      if (!c->occupied()) return c;
    }
    return nullptr;
  }

  u64 alternate_bucket(key_type key, u64 current) const {
    const u64 b1 = hash1_(key) & bucket_mask_;
    return b1 == current ? (hash2_(key) & bucket_mask_) : b1;
  }

  void commit_insert(Cell* c, key_type key, u64 value) {
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->publish(*pm_, key, value);
    pm_->atomic_store_u64(&header_->count, header_->count + 1);
    pm_->persist(&header_->count, sizeof(u64));
    if (wal_) wal_->commit();
  }

  Cell* find_cell(key_type key) {
    const u64 b1 = hash1_(key) & bucket_mask_;
    Cell* base = &tab_[b1 * kBucketCells];
    for (u32 s = 0; s < kBucketCells; ++s) {
      Cell* c = probe(&base[s]);
      if (c->matches(key)) return c;
    }
    const u64 b2 = hash2_(key) & bucket_mask_;
    if (b2 != b1) {
      base = &tab_[b2 * kBucketCells];
      for (u32 s = 0; s < kBucketCells; ++s) {
        Cell* c = probe(&base[s]);
        if (c->matches(key)) return c;
      }
    }
    for (u64 i = 0; i < stash_cells_; ++i) {
      Cell* c = probe(&stash_[i]);
      stats_.stash_probes++;
      if (c->matches(key)) return c;
    }
    return nullptr;
  }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* tab_ = nullptr;
  Cell* stash_ = nullptr;
  u64 buckets_ = 0;
  u64 bucket_mask_ = 0;
  u64 stash_cells_ = 0;
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
};

}  // namespace gh::hash
