// Classic cuckoo hashing (Pagh & Rodler [22]) with full eviction chains —
// the scheme PFHT deliberately restricts. Implemented so the ablation
// bench can quantify WHY bounding displacements matters on NVM: a single
// insert near high load can cascade through dozens of evictions, each one
// a persisted cell write (write amplification the paper's Table 1
// endurance numbers say NVM cannot afford).
//
// Two hash functions, single-cell slots, bounded eviction chain; when the
// chain exceeds the bound the insert fails (a production design would
// rehash; the ablation measures amplification, not resizing policy).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class CuckooHashTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 cells = 2048;        ///< power of two
    u32 max_evictions = 64;  ///< eviction-chain bound before giving up
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748544355303031ull;  // "GHTCU001"

  struct Header {
    u64 magic;
    u64 cells;
    u64 count;
    u64 max_evictions;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved;
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + p.cells * sizeof(Cell);
  }

  CuckooHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK_MSG(is_pow2(p.cells), "cells must be a power of two");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab_, 0, p.cells * sizeof(Cell));
        pm.persist(tab_, p.cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->cells, p.cells);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->max_evictions, p.max_evictions);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a cuckoo table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    mask_ = header_->cells - 1;
  }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    // Fast path: either candidate cell free.
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (!c->occupied()) {
        c->publish(*pm_, key, value);
        bump_count(+1);
        return true;
      }
    }
    // Eviction chain: kick the resident of the first candidate into its
    // alternate cell and repeat. Every hop is a persisted cell rewrite —
    // the cascading write amplification PFHT's one-displacement bound (and
    // group hashing's no-displacement design) exists to avoid. An undo
    // trail restores the table when the chain bound is hit, so a failed
    // insert never loses a resident (and the undo writes amplify further).
    struct Move {
      Cell* cell;
      key_type key;
      u64 value;
    };
    std::vector<Move> trail;
    key_type carry_key = key;
    u64 carry_value = value;
    Cell* target = cell1(key);
    const u32 bound = static_cast<u32>(header_->max_evictions);
    for (u32 hop = 0; hop < bound; ++hop) {
      // Swap the carried item with the resident of `target`.
      trail.push_back({target, target->key(), target->value});
      target->retract(*pm_);
      target->publish(*pm_, carry_key, carry_value);
      stats_.displacements++;
      carry_key = trail.back().key;
      carry_value = trail.back().value;
      Cell* alt = alternate_cell(carry_key, target);
      pm_->touch_read(alt, sizeof(Cell));
      stats_.probes++;
      if (!alt->occupied()) {
        alt->publish(*pm_, carry_key, carry_value);
        bump_count(+1);
        return true;
      }
      target = alt;
    }
    // Chain bound hit: roll the displacements back (more NVM writes) and
    // report the table as full for this key.
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      it->cell->retract(*pm_);
      it->cell->publish(*pm_, it->key, it->value);
      stats_.displacements++;
    }
    stats_.insert_failures++;
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (c->matches(key)) {
        stats_.query_hits++;
        return c->value;
      }
    }
    return std::nullopt;
  }

  bool erase(key_type key) {
    stats_.erases++;
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (c->matches(key)) {
        c->retract(*pm_);
        bump_count(-1);
        stats_.erase_hits++;
        return true;
      }
    }
    return false;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    u64 count = 0;
    for (u64 i = 0; i <= mask_; ++i) {
      Cell* c = &tab_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i <= mask_; ++i) {
      if (tab_[i].occupied()) fn(tab_[i].key(), tab_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return header_->cells; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* cell1(key_type key) { return &tab_[hash1_(key) & mask_]; }
  Cell* cell2(key_type key) { return &tab_[hash2_(key) & mask_]; }

  Cell* alternate_cell(key_type key, Cell* current) {
    Cell* a = cell1(key);
    return a == current ? cell2(key) : a;
  }

  void bump_count(i64 delta) {
    pm_->atomic_store_u64(&header_->count, header_->count + static_cast<u64>(delta));
    pm_->persist(&header_->count, sizeof(u64));
  }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* tab_ = nullptr;
  u64 mask_ = 0;
  TableStats stats_;
};

}  // namespace gh::hash
