// Linear probing — the traditional DRAM hashing baseline (§2.3, §4).
//
// Collisions probe the immediately following cells, so collision
// resolution stays in contiguous memory (the paper's explanation for its
// good insert/query cache behaviour). Deletion uses backward-shift
// compaction (no tombstones): every item between the freed slot and the
// next empty cell whose home position permits it is moved back — the
// "complicated delete process" whose extra writes make linear probing's
// delete slow, especially at load factor 0.75.
//
// The plain table is not crash consistent (neither was the paper's); the
// "-L" variant attaches an UndoLog so every cell modification is
// duplicate-copied first.
#pragma once

#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/wal.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class LinearProbingTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 cells = 2048;  ///< power of two
    u64 seed = kDefaultSeed1;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748544c50303031ull;  // "GHTLP001"

  struct Header {
    u64 magic;
    u64 cells;
    u64 count;
    u64 seed;
    u64 cell_size;
    u64 reserved[3];
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + p.cells * sizeof(Cell);
  }

  LinearProbingTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash_(p.seed) {
    GH_CHECK_MSG(is_pow2(p.cells), "cells must be a power of two");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab_, 0, p.cells * sizeof(Cell));
        pm.persist(tab_, p.cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->cells, p.cells);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed, p.seed);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a linear-probing table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash_ = SeededHash(header_->seed);
    }
    cells_ = header_->cells;
    mask_ = cells_ - 1;
  }

  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    u64 i = hash_(key) & mask_;
    for (u64 step = 0; step < cells_; ++step, i = (i + 1) & mask_) {
      Cell* c = probe(&tab_[i]);
      if (!c->occupied()) {
        if (wal_) {
          wal_->log_cell(c, sizeof(Cell));
          wal_->log_cell(&header_->count, sizeof(u64));
        }
        c->publish(*pm_, key, value);
        bump_count(+1);
        if (wal_) wal_->commit();
        return true;
      }
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    u64 i = hash_(key) & mask_;
    for (u64 step = 0; step < cells_; ++step, i = (i + 1) & mask_) {
      const Cell* c = probe(&tab_[i]);
      if (!c->occupied()) return std::nullopt;  // probe chain ends at first hole
      if (c->matches(key)) {
        stats_.query_hits++;
        return c->value;
      }
    }
    return std::nullopt;
  }

  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    u64 i = hash_(key) & mask_;
    bool found = false;
    for (u64 step = 0; step < cells_; ++step, i = (i + 1) & mask_) {
      const Cell* c = probe(&tab_[i]);
      if (!c->occupied()) break;
      if (c->matches(key)) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (wal_) wal_->commit();
      return false;
    }
    // Backward-shift compaction: pull every later item in the probe chain
    // whose home position allows it into the hole, leaving no tombstone.
    u64 hole = i;
    maybe_log(&tab_[hole]);
    tab_[hole].retract(*pm_);
    u64 j = (hole + 1) & mask_;
    for (u64 step = 0; step < cells_; ++step, j = (j + 1) & mask_) {
      Cell* cj = probe(&tab_[j]);
      if (!cj->occupied()) break;
      const u64 home = hash_(cj->key()) & mask_;
      // Move if the hole lies cyclically within [home, j].
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        maybe_log(&tab_[hole]);
        maybe_log(cj);
        tab_[hole].publish_from(*pm_, *cj);
        cj->retract(*pm_);
        stats_.backward_shifts++;
        hole = j;
      }
    }
    if (wal_) wal_->log_cell(&header_->count, sizeof(u64));
    bump_count(-1);
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    for (u64 i = 0; i < cells_; ++i) {
      Cell* c = &tab_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i < cells_; ++i) {
      if (tab_[i].occupied()) fn(tab_[i].key(), tab_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return cells_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  void maybe_log(Cell* c) {
    if (wal_) wal_->log_cell(c, sizeof(Cell));
  }

  void bump_count(i64 delta) {
    pm_->atomic_store_u64(&header_->count, header_->count + static_cast<u64>(delta));
    pm_->persist(&header_->count, sizeof(u64));
  }

  PM* pm_;
  SeededHash hash_;
  Header* header_ = nullptr;
  Cell* tab_ = nullptr;
  u64 cells_ = 0;
  u64 mask_ = 0;
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
};

}  // namespace gh::hash
