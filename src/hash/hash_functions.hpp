// Seeded 64-bit hash functions used by all schemes. The finalizer is the
// MurmurHash3 fmix64 avalanche (full bit diffusion, passes the avalanche
// property test in tests/hash/hash_functions_test.cpp); schemes needing
// two independent functions (PFHT, path hashing) instantiate two seeds.
#pragma once

#include "util/types.hpp"

namespace gh::hash {

constexpr u64 fmix64(u64 k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

class SeededHash {
 public:
  explicit constexpr SeededHash(u64 seed = 0x5bd1e995u) : seed_(seed) {}

  [[nodiscard]] constexpr u64 operator()(u64 key) const { return fmix64(key + seed_); }

  [[nodiscard]] constexpr u64 operator()(const Key128& key) const {
    // Mix both halves; constants from xxh3's stripe accumulation.
    const u64 a = fmix64(key.lo + seed_);
    const u64 b = fmix64(key.hi + (seed_ ^ 0x9e3779b97f4a7c15ull));
    return fmix64(a ^ (b * 0x165667919e3779f9ull));
  }

  [[nodiscard]] constexpr u64 seed() const { return seed_; }

 private:
  u64 seed_;
};

/// Default seeds: h1 for single-function schemes; h1+h2 for two-function
/// schemes. Fixed defaults keep runs reproducible; tables can be created
/// with any seed.
inline constexpr u64 kDefaultSeed1 = 0x8f14e45fceea167aull;
inline constexpr u64 kDefaultSeed2 = 0x45d9f3b3335b369ull;

}  // namespace gh::hash
