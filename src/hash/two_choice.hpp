// 2-choice hashing — each key may live at either of two hashed cells;
// whichever is free at insert time wins. The paper excludes it for its
// low space-utilisation ratio; implemented so the ablation bench can
// measure exactly that (a few percent before the first insert failure,
// versus ~82% for group hashing).
#pragma once

#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class TwoChoiceTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 cells = 2048;  ///< power of two
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748545443303031ull;  // "GHTTC001"

  struct Header {
    u64 magic;
    u64 cells;
    u64 count;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved[2];
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + p.cells * sizeof(Cell);
  }

  TwoChoiceTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK_MSG(is_pow2(p.cells), "cells must be a power of two");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab_, 0, p.cells * sizeof(Cell));
        pm.persist(tab_, p.cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->cells, p.cells);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a 2-choice table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    mask_ = header_->cells - 1;
  }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (!c->occupied()) {
        c->publish(*pm_, key, value);
        pm_->atomic_store_u64(&header_->count, header_->count + 1);
        pm_->persist(&header_->count, sizeof(u64));
        return true;
      }
    }
    stats_.insert_failures++;
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (c->matches(key)) {
        stats_.query_hits++;
        return c->value;
      }
    }
    return std::nullopt;
  }

  bool erase(key_type key) {
    stats_.erases++;
    for (Cell* c : {cell1(key), cell2(key)}) {
      pm_->touch_read(c, sizeof(Cell));
      stats_.probes++;
      if (c->matches(key)) {
        c->retract(*pm_);
        pm_->atomic_store_u64(&header_->count, header_->count - 1);
        pm_->persist(&header_->count, sizeof(u64));
        stats_.erase_hits++;
        return true;
      }
    }
    return false;
  }

  /// Same Algorithm-4-style scan as the contending schemes: scrub torn
  /// payloads, recount occupied cells.
  RecoveryReport recover() {
    RecoveryReport report;
    u64 count = 0;
    for (u64 i = 0; i <= mask_; ++i) {
      Cell* c = &tab_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i <= mask_; ++i) {
      if (tab_[i].occupied()) fn(tab_[i].key(), tab_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return header_->cells; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* cell1(key_type key) { return &tab_[hash1_(key) & mask_]; }
  Cell* cell2(key_type key) { return &tab_[hash2_(key) & mask_]; }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* tab_ = nullptr;
  u64 mask_ = 0;
  TableStats stats_;
};

}  // namespace gh::hash
