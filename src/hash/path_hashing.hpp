// Path hashing (Zuo & Hua, MSST'17) — an NVM-friendly baseline that
// resolves collisions with *position sharing* in an inverted complete
// binary tree: level 0 holds 2^n addressable cells; each lower level
// halves in size, and an item hashed to level-0 position p may stand in
// any cell along the path p, p>>1, p>>2, ... toward the root. Two hash
// functions give every item two such paths. Only the top
// `reserved_levels` levels are kept (path shortening; the paper uses 20).
//
// Insertion/search walk both paths level by level; no item ever moves, so
// no extra NVM writes occur — but the path cells live in different memory
// regions (one per level), so every probe is a fresh memory access, the
// cache-miss behaviour the group-hashing paper contrasts against.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/wal.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class PathHashTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u32 level0_bits = 11;     ///< level 0 holds 2^level0_bits cells
    u32 reserved_levels = 20; ///< levels kept (paper default 20)
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748545048303031ull;  // "GHTPH001"

  struct Header {
    u64 magic;
    u64 level0_bits;
    u64 levels;
    u64 count;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved;
  };
  static_assert(sizeof(Header) == 64);

  static u32 effective_levels(const Params& p) {
    return std::min(p.reserved_levels, p.level0_bits + 1);
  }

  static u64 total_cells(const Params& p) {
    const u32 levels = effective_levels(p);
    u64 total = 0;
    for (u32 l = 0; l < levels; ++l) total += 1ull << (p.level0_bits - l);
    return total;
  }

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + total_cells(p) * sizeof(Cell);
  }

  PathHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK(p.level0_bits >= 1 && p.level0_bits < 63);
    GH_CHECK(p.reserved_levels >= 1);
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab_, 0, total_cells(p) * sizeof(Cell));
        pm.persist(tab_, total_cells(p) * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->level0_bits, p.level0_bits);
      pm.store_u64(&header_->levels, effective_levels(p));
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a path-hashing table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    level0_bits_ = static_cast<u32>(header_->level0_bits);
    levels_ = static_cast<u32>(header_->levels);
    mask_ = (1ull << level0_bits_) - 1;
    level_offset_.resize(levels_ + 1);
    level_offset_[0] = 0;
    for (u32 l = 0; l < levels_; ++l) {
      level_offset_[l + 1] = level_offset_[l] + (1ull << (level0_bits_ - l));
    }
  }

  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    const u64 p1 = hash1_(key) & mask_;
    const u64 p2 = hash2_(key) & mask_;
    for (u32 l = 0; l < levels_; ++l) {
      for (const u64 p : {p1, p2}) {
        Cell* c = probe(cell_at(l, p >> l));
        if (!c->occupied()) {
          commit_insert(c, key, value);
          return true;
        }
      }
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    Cell* c = find_cell(key);
    if (c == nullptr) return std::nullopt;
    stats_.query_hits++;
    return c->value;
  }

  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    Cell* c = find_cell(key);
    if (c == nullptr) {
      if (wal_) wal_->commit();
      return false;
    }
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->retract(*pm_);
    pm_->atomic_store_u64(&header_->count, header_->count - 1);
    pm_->persist(&header_->count, sizeof(u64));
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    const u64 total = level_offset_[levels_];
    for (u64 i = 0; i < total; ++i) {
      Cell* c = &tab_[i];
      pm_->touch_read(c, sizeof(Cell));
      report.cells_scanned++;
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
        }
      } else {
        count++;
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    const u64 total = level_offset_[levels_];
    for (u64 i = 0; i < total; ++i) {
      if (tab_[i].occupied()) fn(tab_[i].key(), tab_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return level_offset_[levels_]; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] u32 levels() const { return levels_; }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* cell_at(u32 level, u64 pos) { return &tab_[level_offset_[level] + pos]; }

  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  void commit_insert(Cell* c, key_type key, u64 value) {
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->publish(*pm_, key, value);
    pm_->atomic_store_u64(&header_->count, header_->count + 1);
    pm_->persist(&header_->count, sizeof(u64));
    if (wal_) wal_->commit();
  }

  Cell* find_cell(key_type key) {
    const u64 p1 = hash1_(key) & mask_;
    const u64 p2 = hash2_(key) & mask_;
    for (u32 l = 0; l < levels_; ++l) {
      for (const u64 p : {p1, p2}) {
        Cell* c = probe(cell_at(l, p >> l));
        if (c->matches(key)) return c;
      }
    }
    return nullptr;
  }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* tab_ = nullptr;
  u32 level0_bits_ = 0;
  u32 levels_ = 0;
  u64 mask_ = 0;
  std::vector<u64> level_offset_;
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
};

}  // namespace gh::hash
