// Implementation of the AnyTable factory (included by any_table.hpp).
#pragma once

#include <array>
#include <concepts>
#include <type_traits>
#include <utility>

#include "hash/any_table.hpp"
#include "hash/cells.hpp"
#include "hash/chained_hashing.hpp"
#include "hash/cuckoo_hashing.hpp"
#include "hash/group_hashing_2h.hpp"
#include "hash/level_hashing.hpp"
#include "hash/linear_probing.hpp"
#include "hash/path_hashing.hpp"
#include "hash/pfht.hpp"
#include "hash/two_choice.hpp"
#include "hash/wal.hpp"
#include "obs/flight_recorder.hpp"
#include "util/assert.hpp"

namespace gh::hash::detail {

template <class Table, class PM>
class TableAdapter final : public AnyTable<PM> {
 public:
  TableAdapter(std::string name, PM& pm, Table table, std::unique_ptr<UndoLog<PM>> wal,
               bool record_latency, u32 latency_sample_shift)
      : name_(std::move(name)),
        pm_(&pm),
        table_(std::move(table)),
        wal_(std::move(wal)),
        record_latency_(record_latency) {
    gate_.set_shift(latency_sample_shift);
    if (wal_) {
      // Schemes outside the paper's comparison (chained, 2-choice) have no
      // logging hook; a WAL configured for them is simply unused.
      if constexpr (requires(Table& t, UndoLog<PM>* w) { t.attach_wal(w); }) {
        table_.attach_wal(wal_.get());
      }
    }
  }

  bool insert(const Key128& key, u64 value) override {
    const u64 t0 = op_start();
    const u64 l0 = lines_before();
    const u64 f = (obs::kEnabled && flight_) ? flight_->op_begin(obs::OpKind::kInsert, key.lo) : 0;
    const bool ok = table_.insert(narrow(key), value);
    if (obs::kEnabled && flight_) flight_->op_end(f, obs::OpKind::kInsert, key.lo);
    op_finish(obs::OpKind::kInsert, key.lo, t0, l0);
    return ok;
  }
  std::optional<u64> find(const Key128& key) override {
    const u64 t0 = op_start();
    const u64 l0 = lines_before();
    const u64 f = (obs::kEnabled && flight_) ? flight_->op_begin(obs::OpKind::kFind, key.lo) : 0;
    auto r = table_.find(narrow(key));
    if (obs::kEnabled && flight_) flight_->op_end(f, obs::OpKind::kFind, key.lo);
    op_finish(obs::OpKind::kFind, key.lo, t0, l0);
    return r;
  }
  bool erase(const Key128& key) override {
    const u64 t0 = op_start();
    const u64 l0 = lines_before();
    const u64 f = (obs::kEnabled && flight_) ? flight_->op_begin(obs::OpKind::kErase, key.lo) : 0;
    const bool ok = table_.erase(narrow(key));
    if (obs::kEnabled && flight_) flight_->op_end(f, obs::OpKind::kErase, key.lo);
    op_finish(obs::OpKind::kErase, key.lo, t0, l0);
    return ok;
  }
  // Batched ops: dispatch to the scheme's native fence-coalescing /
  // prefetching batch entry points when it has them (group hashing);
  // otherwise fall back to the base class's scalar loops. Narrow-cell
  // tables take Key128 input through stack windows of u64 keys.
  void find_batch(std::span<const Key128> keys,
                  std::span<std::optional<u64>> out) override {
    using K = typename Table::key_type;
    if constexpr (requires(Table& t, std::span<const K> k,
                           std::span<std::optional<u64>> o) { t.find_batch(k, o); }) {
      const u64 t0 = op_start();
      const u64 l0 = lines_before();
      if constexpr (std::is_same_v<K, Key128>) {
        table_.find_batch(keys, out);
      } else {
        std::array<K, kNarrowChunk> buf;
        for (usize i = 0; i < keys.size();) {
          const usize n = std::min(kNarrowChunk, keys.size() - i);
          for (usize w = 0; w < n; ++w) buf[w] = narrow(keys[i + w]);
          table_.find_batch(std::span<const K>(buf.data(), n), out.subspan(i, n));
          i += n;
        }
      }
      op_finish(obs::OpKind::kFind, keys.empty() ? 0 : keys[0].lo, t0, l0);
    } else {
      AnyTable<PM>::find_batch(keys, out);
    }
  }

  usize insert_batch(std::span<const Key128> keys, std::span<const u64> values) override {
    using K = typename Table::key_type;
    if constexpr (requires(Table& t, std::span<const K> k, std::span<const u64> v) {
                    { t.insert_batch(k, v) } -> std::convertible_to<usize>;
                  }) {
      const u64 t0 = op_start();
      const u64 l0 = lines_before();
      usize done = 0;
      if constexpr (std::is_same_v<K, Key128>) {
        done = table_.insert_batch(keys, values);
      } else {
        std::array<K, kNarrowChunk> buf;
        while (done < keys.size()) {
          const usize n = std::min(kNarrowChunk, keys.size() - done);
          for (usize w = 0; w < n; ++w) buf[w] = narrow(keys[done + w]);
          const usize got = table_.insert_batch(std::span<const K>(buf.data(), n),
                                                values.subspan(done, n));
          done += got;
          if (got < n) break;
        }
      }
      op_finish(obs::OpKind::kInsert, keys.empty() ? 0 : keys[0].lo, t0, l0);
      return done;
    } else {
      return AnyTable<PM>::insert_batch(keys, values);
    }
  }

  void erase_batch(std::span<const Key128> keys, std::span<u8> hits = {}) override {
    using K = typename Table::key_type;
    if constexpr (requires(Table& t, std::span<const K> k, std::span<u8> h) {
                    t.erase_batch(k, h);
                  }) {
      const u64 t0 = op_start();
      const u64 l0 = lines_before();
      if constexpr (std::is_same_v<K, Key128>) {
        table_.erase_batch(keys, hits);
      } else {
        std::array<K, kNarrowChunk> buf;
        for (usize i = 0; i < keys.size();) {
          const usize n = std::min(kNarrowChunk, keys.size() - i);
          for (usize w = 0; w < n; ++w) buf[w] = narrow(keys[i + w]);
          table_.erase_batch(std::span<const K>(buf.data(), n),
                             hits.empty() ? std::span<u8>{} : hits.subspan(i, n));
          i += n;
        }
      }
      op_finish(obs::OpKind::kErase, keys.empty() ? 0 : keys[0].lo, t0, l0);
    } else {
      AnyTable<PM>::erase_batch(keys, hits);
    }
  }

  RecoveryReport recover() override {
    const u64 t0 = op_start();
    const u64 l0 = lines_before();
    const u64 f = (obs::kEnabled && flight_) ? flight_->op_begin_always(obs::OpKind::kRecover) : 0;
    RecoveryReport r = table_.recover();
    if (obs::kEnabled && flight_) flight_->op_end(f, obs::OpKind::kRecover);
    op_finish(obs::OpKind::kRecover, 0, t0, l0);
    return r;
  }

  ScrubReport scrub(u64 max_groups,
                    const std::function<void(const LostCell&)>& on_loss) override {
    const u64 t0 = op_start();
    const u64 l0 = lines_before();
    const u64 f = (obs::kEnabled && flight_) ? flight_->op_begin_always(obs::OpKind::kScrub) : 0;
    ScrubReport report = scrub_impl(max_groups, on_loss);
    if (obs::kEnabled && flight_) flight_->op_end(f, obs::OpKind::kScrub);
    op_finish(obs::OpKind::kScrub, 0, t0, l0);
    return report;
  }

  ScrubReport scrub_impl(u64 max_groups,
                         const std::function<void(const LostCell&)>& on_loss) {
    // Same optional-feature pattern as attach_wal: schemes without
    // scrub support report an empty (clean) pass.
    if constexpr (requires(Table& t) {
                    t.num_groups();
                    t.scrub_groups(u64{}, u64{}, [](const LostCell&) {});
                  }) {
      ScrubReport report;
      const u64 ngroups = table_.num_groups();
      if (ngroups == 0) return report;
      u64 remaining = std::min(max_groups, ngroups);
      const auto forward = [&](const LostCell& c) {
        if (on_loss) on_loss(c);
      };
      while (remaining > 0) {
        if (scrub_cursor_ >= ngroups) scrub_cursor_ = 0;
        const u64 chunk = std::min(remaining, ngroups - scrub_cursor_);
        report += table_.scrub_groups(scrub_cursor_, chunk, forward);
        scrub_cursor_ = (scrub_cursor_ + chunk) % ngroups;
        remaining -= chunk;
      }
      return report;
    } else {
      (void)on_loss;
      return ScrubReport{};
    }
  }
  u64 count() const override { return table_.count(); }
  u64 capacity() const override { return table_.capacity(); }
  TableStats& stats() override { return table_.stats(); }
  std::string name() const override { return name_; }

  obs::Snapshot snapshot() override {
    obs::Snapshot s;
    s.source = name_;
    s.size = table_.count();
    s.capacity = table_.capacity();
    s.load_factor =
        s.capacity ? static_cast<double>(s.size) / static_cast<double>(s.capacity) : 0;
    s.persist = obs::PersistSnapshot::from(pm_->stats());
    s.table = obs::TableOpSnapshot::from(table_.stats());
    s.scrub = obs::ScrubSnapshot::from(table_.stats(), ScrubReport{});
    s.latency = obs::OpLatencySnapshot::from(recorder_);
    return s;
  }

  obs::OpRecorder& recorder() override { return recorder_; }
  void set_record_latency(bool on) override { record_latency_ = on && obs::kEnabled; }
  void attach_flight(obs::BasicFlightRecorder<PM>* flight) override { flight_ = flight; }

  [[nodiscard]] Table& inner() { return table_; }

 private:
  /// Stack-window size for narrowing Key128 batches to u64 keys.
  static constexpr usize kNarrowChunk = 256;

  static typename Table::key_type narrow(const Key128& key) {
    if constexpr (std::is_same_v<typename Table::key_type, u64>) {
      GH_DCHECK(key.hi == 0 && key.lo <= Cell16::kMaxKey);
      return key.lo;
    } else {
      return key;
    }
  }

  // Timing edges. op_start/op_finish are the ONLY per-op overhead:
  // nothing (constant-folded) under GH_OBS_OFF, a gate check for
  // unsampled ops, two rdtsc reads for the 1-in-2^shift sampled ops (an
  // installed trace hook times every op). The lines-flushed delta for
  // tracing is read only while a trace hook is actually installed.
  [[nodiscard]] u64 op_start() {
    if constexpr (!obs::kEnabled) return 0;
    const bool sampled = record_latency_ && gate_.admit();
    if (!sampled && !obs::trace_hook_installed()) return 0;
    return obs::now_ticks();
  }

  [[nodiscard]] u64 lines_before() const {
    if (!obs::trace_hook_installed()) return 0;
    return pm_->stats().lines_flushed.load();
  }

  void op_finish(obs::OpKind kind, u64 key_hash, u64 t0, u64 l0) {
    if constexpr (!obs::kEnabled) return;
    u64 dt = 0;
    if (t0 != 0) {
      dt = obs::now_ticks() - t0;
      if (record_latency_) recorder_.record(kind, dt);
    }
    if (obs::trace_hook_installed()) {
      obs::trace_op(kind, key_hash, dt, pm_->stats().lines_flushed.load() - l0);
    }
  }

  std::string name_;
  PM* pm_;
  Table table_;
  /// Optional black box (attach_flight); non-owning, null by default.
  obs::BasicFlightRecorder<PM>* flight_ = nullptr;
  std::unique_ptr<UndoLog<PM>> wal_;
  u64 scrub_cursor_ = 0;
  bool record_latency_ = true;
  obs::SampleGate gate_;
  obs::OpRecorder recorder_;
};

/// Per-scheme layout parameters derived from the shared cell budget.
inline u64 cells_budget(const TableConfig& c) { return 1ull << c.total_cells_log2; }

inline u32 clamped_group_size(const TableConfig& c) {
  const u64 level_cells = cells_budget(c) / 2;
  GH_CHECK_MSG(is_pow2(c.group_size), "group_size must be a power of two");
  return static_cast<u32>(std::min<u64>(c.group_size, level_cells));
}

inline u32 path_level0_bits(const TableConfig& c) { return c.total_cells_log2 - 1; }
inline u32 path_levels(const TableConfig& c) {
  return std::min(c.reserved_levels, c.total_cells_log2);
}

template <class Cell, class PM>
std::unique_ptr<AnyTable<PM>> make_table_cell(PM& pm, std::span<std::byte> mem,
                                              const TableConfig& cfg, bool format) {
  const u64 total = cells_budget(cfg);
  GH_CHECK_MSG(cfg.total_cells_log2 >= 4, "table too small");

  // The undo log (if any) lives after the table in the same span and
  // tracks the table bytes.
  auto finish = [&](auto table, usize table_bytes) -> std::unique_ptr<AnyTable<PM>> {
    using Table = decltype(table);
    std::unique_ptr<UndoLog<PM>> wal;
    if (cfg.with_wal) {
      const usize wal_bytes = UndoLog<PM>::required_bytes(cfg.wal_records);
      GH_CHECK(mem.size() >= table_bytes + wal_bytes);
      wal = std::make_unique<UndoLog<PM>>(pm, mem.subspan(table_bytes, wal_bytes),
                                          mem.first(table_bytes), cfg.wal_records, format);
    }
    return std::make_unique<TableAdapter<Table, PM>>(cfg.display_name(), pm,
                                                     std::move(table), std::move(wal),
                                                     cfg.record_latency,
                                                     cfg.latency_sample_shift);
  };

  switch (cfg.scheme) {
    case Scheme::kGroup: {
      using Table = GroupHashTable<Cell, PM>;
      typename Table::Params p{.level_cells = total / 2,
                               .group_size = clamped_group_size(cfg),
                               .seed = cfg.seed1,
                               .zero_memory = cfg.zero_memory,
                               .group_crc = cfg.group_crc};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kLinear: {
      using Table = LinearProbingTable<Cell, PM>;
      typename Table::Params p{.cells = total, .seed = cfg.seed1,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kPfht: {
      using Table = PfhtTable<Cell, PM>;
      typename Table::Params p{.cells = total, .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kPath: {
      using Table = PathHashTable<Cell, PM>;
      typename Table::Params p{.level0_bits = path_level0_bits(cfg),
                               .reserved_levels = path_levels(cfg),
                               .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kChained: {
      using Table = ChainedHashTable<Cell, PM>;
      typename Table::Params p{.buckets = total / 2, .pool_nodes = total,
                               .seed = cfg.seed1, .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kTwoChoice: {
      using Table = TwoChoiceTable<Cell, PM>;
      typename Table::Params p{.cells = total, .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kCuckoo: {
      using Table = CuckooHashTable<Cell, PM>;
      typename Table::Params p{.cells = total, .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kGroup2H: {
      using Table = GroupHashTable2H<Cell, PM>;
      typename Table::Params p{.level_cells = total / 2,
                               .group_size = clamped_group_size(cfg),
                               .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
    case Scheme::kLevel: {
      using Table = LevelHashTable<Cell, PM>;
      // total cells = 6 * top_buckets; 2^(T-3) tops gives 0.75 * 2^T cells.
      typename Table::Params p{.top_buckets = std::max<u64>(total >> 3, 2),
                               .seed1 = cfg.seed1, .seed2 = cfg.seed2,
                               .zero_memory = cfg.zero_memory};
      const usize bytes = Table::required_bytes(p);
      GH_CHECK(mem.size() >= bytes);
      return finish(Table(pm, mem.first(bytes), p, format), bytes);
    }
  }
  GH_CHECK(false);
  return nullptr;
}

}  // namespace gh::hash::detail

namespace gh::hash {

template <class PM>
std::unique_ptr<AnyTable<PM>> make_table(PM& pm, std::span<std::byte> mem,
                                         const TableConfig& config, bool format) {
  if (config.wide_cells) {
    return detail::make_table_cell<Cell32, PM>(pm, mem, config, format);
  }
  return detail::make_table_cell<Cell16, PM>(pm, mem, config, format);
}

}  // namespace gh::hash
