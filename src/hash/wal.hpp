// Undo log ("logging scheme", the duplicate-copy consistency baseline).
//
// The paper makes the comparison fair by adding a logging scheme to the
// baselines (Linear-L, PFHT-L, Path-L): before a cell is modified in
// place, its old image is copied to a persistent log, so a crash mid-
// operation can be rolled back. This is exactly the "duplicate copy"
// whose extra writes and cacheline flushes Figures 2, 5 and 6 quantify:
// one extra cacheline write + flush per modified cell, plus the
// transaction begin/commit flushes.
//
// Design: each 64-byte record carries the transaction sequence number and
// a checksum, so validity is determined at recovery time without a
// persistent record counter (one flush per record instead of two). A
// torn record — possible when the crash interrupts the record write
// itself — fails the checksum and is skipped, which is safe because the
// protected in-place write only starts after the record has persisted.
//
// Transaction protocol:
//   begin():     active_tx = (tx_id << 1) | 1, 8-byte atomic, persist
//   log_cell():  write record {offset, len, old image, tx_id, checksum},
//                persist (one cacheline)
//   commit():    active_tx = tx_id << 1 (bit 0 cleared), persist
//   recover():   if the active bit is set, apply the checksum-valid
//                records of that tx newest-first, persist each, clear bit
#pragma once

#include <span>

#include "hash/hash_functions.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class PM>
class UndoLog {
 public:
  static constexpr u64 kMagic = 0x474857414c303032ull;  // "GHWAL002"
  static constexpr usize kMaxCellBytes = 32;

  struct Header {
    u64 magic;
    u64 active_tx;  ///< (tx_id << 1) | active_bit — the 8-byte commit word
    u64 max_records;
    u64 reserved[5];
  };
  static_assert(sizeof(Header) == 64);

  struct Record {
    u64 offset;  ///< of the saved cell within the tracked span
    u64 len;
    u8 old_image[kMaxCellBytes];
    u64 seq;       ///< tx_id this record belongs to
    u64 checksum;  ///< torn-write detector
  };
  static_assert(sizeof(Record) == 64);

  static usize required_bytes(u32 max_records) {
    return sizeof(Header) + static_cast<usize>(max_records) * sizeof(Record);
  }

  /// `log_mem` holds the log itself; `tracked` is the table memory the log
  /// protects (record offsets are relative to it).
  UndoLog(PM& pm, std::span<std::byte> log_mem, std::span<std::byte> tracked,
          u32 max_records, bool format)
      : pm_(&pm), tracked_(tracked) {
    GH_CHECK(log_mem.size() >= required_bytes(max_records));
    header_ = reinterpret_cast<Header*>(log_mem.data());
    records_ = reinterpret_cast<Record*>(log_mem.data() + sizeof(Header));
    if (format) {
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->active_tx, 0);
      pm.store_u64(&header_->max_records, max_records);
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not an undo log");
    }
  }

  void begin() {
    GH_DCHECK(!in_transaction());
    tx_id_ = (header_->active_tx >> 1) + 1;
    pm_->atomic_store_u64(&header_->active_tx, tx_id_ << 1 | 1);
    pm_->persist(&header_->active_tx, sizeof(u64));
    nrecords_ = 0;
  }

  /// Copy the current (pre-modification) image of `addr` into the log.
  /// One cacheline write + one flush — the "duplicate copy" cost.
  void log_cell(const void* addr, usize len) {
    GH_DCHECK(in_transaction());
    GH_CHECK(len <= kMaxCellBytes);
    const auto* p = static_cast<const std::byte*>(addr);
    GH_DCHECK(p >= tracked_.data() && p + len <= tracked_.data() + tracked_.size());
    GH_CHECK_MSG(nrecords_ < header_->max_records, "undo log full");
    Record& rec = records_[nrecords_];
    pm_->store_u64(&rec.offset, static_cast<u64>(p - tracked_.data()));
    pm_->store_u64(&rec.len, len);
    pm_->copy(rec.old_image, addr, len);
    pm_->store_u64(&rec.seq, tx_id_);
    pm_->store_u64(&rec.checksum, checksum_of(rec));
    pm_->persist(&rec, sizeof(Record));
    ++nrecords_;
    ++records_logged_;
  }

  void commit() {
    GH_DCHECK(in_transaction());
    pm_->atomic_store_u64(&header_->active_tx, tx_id_ << 1);
    pm_->persist(&header_->active_tx, sizeof(u64));
  }

  /// Roll back an interrupted transaction (no-op when none was active).
  /// Returns the number of records undone.
  u64 recover() {
    if (!in_transaction()) return 0;
    const u64 tx = header_->active_tx >> 1;
    tx_id_ = tx;
    // Records of the open tx occupy a slot prefix in append order; walk
    // them newest-first. Checksum-invalid (torn) or stale-seq records are
    // skipped — their in-place writes never started.
    const u64 max = header_->max_records;
    u64 valid_top = 0;
    for (u64 i = 0; i < max; ++i) {
      const Record& rec = records_[i];
      if (rec.seq == tx && rec.checksum == checksum_of(rec) && rec.len <= kMaxCellBytes &&
          rec.offset + rec.len <= tracked_.size()) {
        valid_top = i + 1;
      } else {
        break;  // slot prefix ends at the first non-matching record
      }
    }
    for (u64 i = valid_top; i-- > 0;) {
      const Record& rec = records_[i];
      pm_->copy(tracked_.data() + rec.offset, rec.old_image, rec.len);
      pm_->persist(tracked_.data() + rec.offset, rec.len);
    }
    pm_->atomic_store_u64(&header_->active_tx, tx << 1);
    pm_->persist(&header_->active_tx, sizeof(u64));
    return valid_top;
  }

  [[nodiscard]] bool in_transaction() const { return (header_->active_tx & 1) != 0; }
  [[nodiscard]] u64 records_in_transaction() const { return nrecords_; }
  [[nodiscard]] u64 lifetime_records() const { return records_logged_; }

 private:
  static u64 checksum_of(const Record& rec) {
    u64 h = fmix64(rec.offset ^ (rec.len * 0x9e3779b97f4a7c15ull));
    for (usize i = 0; i < kMaxCellBytes; i += 8) {
      u64 word;
      __builtin_memcpy(&word, rec.old_image + i, 8);
      h = fmix64(h ^ word);
    }
    return fmix64(h ^ rec.seq);
  }

  PM* pm_;
  std::span<std::byte> tracked_;
  Header* header_ = nullptr;
  Record* records_ = nullptr;
  u64 tx_id_ = 0;      ///< volatile: re-derived from the header on reattach
  u64 nrecords_ = 0;   ///< volatile: slot cursor within the open tx
  u64 records_logged_ = 0;
};

}  // namespace gh::hash
