// Group hashing — the paper's contribution (§3).
//
// Layout: the cells are decoupled into two equal-sized levels. Level 1 is
// addressable by the hash function; level 2 is non-addressable and
// resolves collisions. Both levels are divided into groups of
// `group_size` contiguous cells, and the level-2 group with the same
// group number is *shared* by all cells of the matching level-1 group:
//
//   level 1 (tab1):  [ group 0 | group 1 | group 2 | ... ]
//   level 2 (tab2):  [ group 0 | group 1 | group 2 | ... ]
//
// An item hashing to level-1 index k that finds tab1[k] occupied probes
// tab2[j .. j+group_size) where j = k - k % group_size — a contiguous
// range, so a single memory access prefetches the following cells of the
// same cacheline (the CPU-cache-efficiency half of the design).
//
// Consistency (§3.3): no logging and no copy-on-write. Inserts and
// deletes are committed by the cell's 8-byte atomic commit word (see
// cells.hpp); the persistent `count` is atomically updated afterwards,
// and recovery (§3.5, Algorithm 4) rescans the table to scrub torn
// payloads and recompute `count`.
//
// Media integrity (optional, Params::group_crc): the commit-word protocol
// defends against *crashes*, not against the media itself lying — bit rot
// flips stored bits silently, and poisoned lines fault on read. When
// enabled, each (level, group) keeps a CRC32C-derived checksum in an
// array appended after tab2:
//
//   [Header][tab1][tab2][crc level 1][crc level 2]   (one u64 per group)
//
// The group checksum is the XOR of per-cell digests, where a cell's
// digest is 0 for an all-zero cell and otherwise CRC32C seeded with the
// cell's global index (so two cells swapping contents is detected).
// XOR-of-digests makes maintenance O(cell) per mutation: XOR out the old
// digest, XOR in the new one, 8-byte atomic store of the checksum word.
// The checksum update is NOT failure-atomic with the cell commit — after
// a crash the checksums of in-flight groups are legitimately stale, which
// is why recover()/recover_slice() REBUILD them while clean-state opens
// and scrub passes VERIFY them.
//
// scrub_groups() is the incremental verification pass: it re-derives a
// window of group checksums, quarantines groups that fail (or whose reads
// hit poisoned media), drops-and-reports or salvages-and-reports every
// occupied cell of a failed group, and re-seals the group's checksum.
// Quarantined groups take no new inserts — the table degrades toward its
// expansion trigger instead of re-trusting bad media.
// Fingerprint tags (hash/tag_probe.hpp): every cell additionally has a
// 1-byte DRAM-only tag — 0 when the cell is unoccupied, tag_of_hash(h)
// of its key's hash otherwise. Probe loops scan a group's 256 tag bytes
// with SIMD equality compares and only dereference tag-matching cells;
// the array is rebuilt from the cells on attach/recovery, so the PM
// image and the commit-word crash discipline are completely untouched.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/tag_probe.hpp"
#include "hash/wal.hpp"
#include "nvm/media_error.hpp"
#include "util/assert.hpp"
#include "util/counters.hpp"
#include "util/crc32c.hpp"
#include "util/types.hpp"

namespace gh::hash {

/// How the global `count` field is maintained.
enum class CountMode {
  /// The paper's protocol (Algorithms 1/3): atomically update and persist
  /// `count` after every insert/delete — one extra flush per mutation.
  kEager,
  /// Keep `count` volatile and let recovery recompute it (which Algorithm
  /// 4 does anyway). Saves the flush; `count` is only approximate in the
  /// on-NVM image between recoveries. Measured by
  /// bench/ablation_count_persistence.
  kRecoveryOnly,
};

/// What scrub_groups() does with the occupied cells of a group whose
/// checksum fails verification. Either way every affected cell is
/// REPORTED via the callback — corruption is never handled silently.
enum class ScrubMode {
  /// Drop every occupied cell of the failed group. A flipped value bit is
  /// per-cell undetectable (the group checksum localises corruption to
  /// the group, not the cell), so retaining any cell risks serving a
  /// wrong value; detected loss is strictly better than a silent lie.
  kDropGroup,
  /// Retain cells whose key still hashes to this location (the flipped
  /// bits are then overwhelmingly likely in some *other* cell of the
  /// group); drop the rest. Retained cells are reported with
  /// salvaged=true so the application knows which keys to re-verify
  /// upstream.
  kSalvage,
};

template <class Cell, class PM>
class GroupHashTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 level_cells = 1024;  ///< cells per level (power of two)
    u32 group_size = 256;    ///< cells per group (divides level_cells)
    u64 seed = kDefaultSeed1;
    /// Zero cell memory on format. Fresh anonymous mappings are already
    /// zero, so benches skip this; formatting a reused file needs it.
    bool zero_memory = false;
    CountMode count_mode = CountMode::kEager;
    /// Maintain per-group checksums (see file comment). Adds one 8-byte
    /// atomic store + flush per mutation and 16 bytes per group of space.
    bool group_crc = false;
  };

  static constexpr u64 kMagic = 0x4748544742303031ull;  // "GHTGB001"
  static constexpr u64 kFlagGroupCrc = 1ull << 0;

  struct Header {
    u64 magic;
    u64 level_cells;
    u64 group_size;
    u64 count;  ///< occupied cells; 8-byte atomically maintained
    u64 seed;
    u64 cell_size;
    u64 flags;  ///< kFlagGroupCrc — feature bits baked into the image
    u64 reserved;
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    usize bytes = sizeof(Header) + 2 * p.level_cells * sizeof(Cell);
    if (p.group_crc) bytes += 2 * (p.level_cells / p.group_size) * sizeof(u64);
    return bytes;
  }

  /// Create (format=true) or attach to (format=false) a table in `mem`.
  GroupHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash_(p.seed) {
    GH_CHECK_MSG(is_pow2(p.level_cells), "level_cells must be a power of two");
    GH_CHECK_MSG(p.group_size > 0 && p.level_cells % p.group_size == 0,
                 "group_size must divide level_cells");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab1_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    tab2_ = tab1_ + p.level_cells;
    bool crc_on = p.group_crc;
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab1_, 0, 2 * p.level_cells * sizeof(Cell));
        pm.persist(tab1_, 2 * p.level_cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->level_cells, p.level_cells);
      pm.store_u64(&header_->group_size, p.group_size);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed, p.seed);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.store_u64(&header_->flags, crc_on ? kFlagGroupCrc : 0);
      pm.store_u64(&header_->reserved, 0);
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a group-hashing table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      GH_CHECK(header_->level_cells == p.level_cells);
      hash_ = SeededHash(header_->seed);
      // The image, not the caller, decides whether checksums exist.
      crc_on = (header_->flags & kFlagGroupCrc) != 0;
    }
    level_cells_ = header_->level_cells;
    mask_ = level_cells_ - 1;
    group_size_ = static_cast<u32>(header_->group_size);
    count_mode_ = p.count_mode;
    volatile_count_ = header_->count;
    // DRAM fingerprint tags, one byte per cell of both levels. Held via
    // shared_ptr: retired optimistic read views (core/optimistic_read.hpp)
    // keep the old array alive across an expansion the same way retired
    // regions are retained.
    tags_ = std::shared_ptr<u8[]>(new u8[2 * level_cells_]());
    tags1_ = tags_.get();
    tags2_ = tags1_ + level_cells_;
    if (!format) rebuild_tags(0, level_cells_);
    if (crc_on) {
      const usize crc_bytes = 2 * num_groups() * sizeof(u64);
      GH_CHECK(mem.size() >= sizeof(Header) + 2 * level_cells_ * sizeof(Cell) + crc_bytes);
      crc_ = reinterpret_cast<u64*>(tab2_ + level_cells_);
      if (format) {
        // An all-zero cell's digest is 0, so a freshly formatted group's
        // checksum is simply 0 — zero the array and the invariant holds.
        pm.fill(crc_, 0, crc_bytes);
        pm.persist(crc_, crc_bytes);
      }
      quarantined_.assign(2 * num_groups(), 0);
    }
  }

  /// Attach to an existing table, taking parameters from its header.
  static GroupHashTable attach(PM& pm, std::span<std::byte> mem) {
    GH_CHECK(mem.size() >= sizeof(Header));
    const auto* h = reinterpret_cast<const Header*>(mem.data());
    GH_CHECK_MSG(h->magic == kMagic, "not a group-hashing table");
    Params p{.level_cells = h->level_cells,
             .group_size = static_cast<u32>(h->group_size),
             .seed = h->seed,
             .group_crc = (h->flags & kFlagGroupCrc) != 0};
    return GroupHashTable(pm, mem, p, /*format=*/false);
  }

  /// Optional logging wrapper used only by the ablation bench (the paper's
  /// point is that group hashing does NOT need it).
  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  /// Algorithm 1. Precondition: `key` is not already present (the paper's
  /// insert does not check; use the core-API upsert for checked inserts).
  /// Returns false when the level-1 cell and its whole matched level-2
  /// group are full — the signal to expand the table. Quarantined groups
  /// accept no new cells, so corruption shows up as earlier expansion
  /// pressure rather than data written to distrusted media.
  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    const u64 h = hash_(key);
    const u64 k = h & mask_;
    const u64 g = k / group_size_;
    const u8 tag = tag_of_hash(h);
    // The tag array knows where the empty cells are (tag 0) without
    // touching PM: the level-1 slot is one byte, the level-2 scan is a
    // SIMD sweep for 0 over the group's tags.
    if (tags1_[k] == 0 && !is_quarantined(0, g)) {
      Cell* c1 = probe(&tab1_[k]);
      GH_DCHECK(!c1->occupied());
      commit_insert(c1, key, value, tag);
      return true;
    }
    if (!is_quarantined(1, g)) {
      const u64 j = k - k % group_size_;
      Cell* free_cell = nullptr;
      for_each_tag_match(tags2_ + j, group_size_, /*tag=*/0, [&](u32 i) {
        Cell* c2 = probe(&tab2_[j + i]);
        stats_.level2_probes++;
        GH_DCHECK(!c2->occupied());
        free_cell = c2;
        return true;
      });
      if (free_cell != nullptr) {
        commit_insert(free_cell, key, value, tag);
        return true;
      }
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  /// Algorithm 2. (We additionally require the bitmap to be set on
  /// level-2 matches — the paper's pseudo-code compares only the key,
  /// which would mis-match a key of all-zero bits.)
  std::optional<u64> find(key_type key) { return find_at(key, hash_(key)); }

  /// Batched lookup with software prefetching: hashes a window of keys,
  /// issues prefetches for each key's level-1 cell and its level-2
  /// group's TAG lines (the filter makes the 256-byte tag block — not
  /// the 4 KB cell group — the hot read set), then resolves the lookups,
  /// overlapping the memory latency of independent probes the way
  /// out-of-order hardware cannot across separate find() calls. The
  /// prefetch stage is independent of SIMD dispatch, so GH_NO_SIMD /
  /// non-x86 builds keep the batching win. Writes out[i] for keys[i];
  /// behaviourally identical to per-key find().
  void find_batch(std::span<const key_type> keys, std::span<std::optional<u64>> out) {
    GH_CHECK(out.size() >= keys.size());
    stats_.batch_ops++;
    stats_.batch_keys += keys.size();
    constexpr usize kWindow = 16;
    // Tag lines per group, capped at 4 (256 tags) for jumbo group sizes.
    const u64 tag_lines = std::min<u64>((group_size_ + kCachelineSize - 1) / kCachelineSize, 4);
    std::array<u64, kWindow> hashes{};
    for (usize base = 0; base < keys.size(); base += kWindow) {
      const usize n = std::min(kWindow, keys.size() - base);
      for (usize i = 0; i < n; ++i) {
        hashes[i] = hash_(keys[base + i]);
        const u64 k = hashes[i] & mask_;
        const u64 j = k - k % group_size_;
        __builtin_prefetch(&tab1_[k], /*rw=*/0, /*locality=*/1);
        for (u64 line = 0; line < tag_lines; ++line) {
          __builtin_prefetch(tags2_ + j + line * kCachelineSize, /*rw=*/0, /*locality=*/1);
        }
      }
      stats_.prefetches_issued += n * (1 + tag_lines);
      for (usize i = 0; i < n; ++i) {
        out[base + i] = find_at(keys[base + i], hashes[i]);
      }
    }
  }

  /// In-place value update. An 8-byte value overwrite is itself failure
  /// atomic, so no further protocol is needed.
  bool update(key_type key, u64 value) {
    Cell* c = find_cell(key);
    if (c == nullptr) return false;
    const u32 old_digest = crc_ ? cell_digest(c) : 0;
    pm_->atomic_store_u64(&c->value, value);
    pm_->persist(&c->value, sizeof(u64));
    if (crc_) apply_digest_delta(c, old_digest);
    return true;
  }

  /// Algorithm 3.
  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    Cell* c = find_cell(key);
    if (c == nullptr) {
      if (wal_) wal_->commit();
      return false;
    }
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    const u32 old_digest = crc_ ? cell_digest(c) : 0;
    c->retract(*pm_);
    tag_store(tag_slot(c), 0);
    if (crc_) apply_digest_delta(c, old_digest);
    bump_count(-1);
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  // --- batched mutation (fence-coalesced) ----------------------------------
  //
  // put/erase over a batch share persist fences across windows of
  // kBatchWindow keys while keeping the per-cell 8-byte-commit discipline
  // intact (see cells.hpp: the two-phase stage→fence→commit→fence /
  // clear→fence→wipe→fence splits). Checksum deltas and the eager count
  // are also coalesced to one store+fence per window; after a crash they
  // are stale by at most a window, which recovery repairs the same way it
  // repairs per-op staleness. Keys are applied strictly in order, so on
  // a placement failure the return value is an exact prefix length — the
  // map layer expands and resubmits the remainder.

  static constexpr usize kBatchWindow = 32;

  /// Update-or-insert each (keys[i], values[i]). Returns the number of
  /// leading keys fully applied; < keys.size() means key [return] found
  /// both its level-1 cell and level-2 group full (or quarantined).
  usize upsert_batch(std::span<const key_type> keys, std::span<const u64> values) {
    return put_batch_impl<true>(keys, values);
  }

  /// Pure batched insert (precondition: keys not already present —
  /// duplicates *within* the batch are allowed and coalesce to the last
  /// value, matching sequential insert-or-update semantics at the map
  /// layer). Skips the existing-key lookup upsert_batch does.
  usize insert_batch(std::span<const key_type> keys, std::span<const u64> values) {
    return put_batch_impl<false>(keys, values);
  }

  /// Batched erase. hits[i] (when a buffer is supplied) is 1 if keys[i]
  /// was present. Returns the number of keys erased. Duplicate keys in
  /// one batch behave sequentially: the first occurrence erases, the
  /// rest miss.
  usize erase_batch(std::span<const key_type> keys, std::span<u8> hits) {
    GH_CHECK(hits.empty() || hits.size() >= keys.size());
    stats_.batch_ops++;
    stats_.batch_keys += keys.size();
    if (wal_) {  // WAL ablation builds have per-op logging; keep them scalar
      usize erased = 0;
      for (usize i = 0; i < keys.size(); ++i) {
        const bool hit = erase(keys[i]);
        if (!hits.empty()) hits[i] = hit ? 1 : 0;
        erased += hit ? 1 : 0;
      }
      return erased;
    }
    usize erased = 0;
    std::array<Cell*, kBatchWindow> victims{};
    std::array<u32, kBatchWindow> old_digests{};
    CrcDeltaWindow deltas;
    for (usize base = 0; base < keys.size(); base += kBatchWindow) {
      const usize n = std::min(kBatchWindow, keys.size() - base);
      usize nvictims = 0;
      for (usize i = 0; i < n; ++i) {
        stats_.erases++;
        Cell* c = find_cell(keys[base + i]);
        if (!hits.empty()) hits[base + i] = c != nullptr ? 1 : 0;
        if (c == nullptr) continue;
        // Phase 1: atomic commit-word clear + flush. The cleared word is
        // immediately visible, so a duplicate key later in the window
        // misses — sequential semantics.
        old_digests[nvictims] = crc_ ? cell_digest(c) : 0;
        c->retract_commit(*pm_);
        tag_store(tag_slot(c), 0);
        victims[nvictims++] = c;
        stats_.erase_hits++;
      }
      if (nvictims == 0) continue;
      pm_->fence();  // clears durable before any wipe store issues
      for (usize v = 0; v < nvictims; ++v) victims[v]->retract_wipe(*pm_);
      pm_->fence();
      if (crc_) {
        for (usize v = 0; v < nvictims; ++v) {
          // Final cell content is all-zero (digest 0): delta = old digest.
          deltas.add(crc_slot_of(victims[v]), old_digests[v]);
        }
        deltas.apply(*pm_);
      }
      bump_count(-static_cast<i64>(nvictims));
      erased += nvictims;
    }
    return erased;
  }

  /// Algorithm 4: full-scan recovery. Scrubs the payload of every
  /// unoccupied cell that still holds bytes (a torn insert or the tail of
  /// a committed delete) and recomputes `count`. A poisoned cell is
  /// scrubbed too (the stores heal/remap the line) and its contents
  /// counted as lost — recovery completes instead of aborting the open.
  /// When checksums are enabled they are REBUILT afterwards: in-flight
  /// operations legitimately leave them stale across a crash.
  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    for (u64 i = 0; i < level_cells_; ++i) {
      for (Cell* c : {&tab1_[i], &tab2_[i]}) {
        report.cells_scanned++;
        try {
          pm_->touch_read(c, sizeof(Cell));
        } catch (const nvm::MediaError&) {
          report.media_errors++;
          stats_.media_errors++;
          stats_.cells_lost++;  // occupancy unknowable — conservative
          c->scrub(*pm_);
          report.cells_scrubbed++;
          continue;
        }
        if (!c->occupied()) {
          if (c->payload_dirty()) {
            c->scrub(*pm_);
            report.cells_scrubbed++;
          }
        } else {
          count++;
        }
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    volatile_count_ = count;
    report.recovered_count = count;
    if (crc_) rebuild_checksums_range(0, level_cells_, *pm_);
    rebuild_tags(0, level_cells_);
    return report;
  }

  /// One slice of the Algorithm-4 scan: indices [begin, end) of BOTH
  /// levels, scrubbing through `pm` (callers running slices on separate
  /// threads pass one persistence policy per thread). Does NOT update the
  /// header count — the caller aggregates slice counts and publishes once.
  /// When checksums are enabled, [begin, end) must be group-aligned so the
  /// slice can rebuild the checksums of exactly the groups it owns (see
  /// core/parallel_recovery.hpp, which rounds its chunk size).
  template <class SlicePM>
  RecoveryReport recover_slice(u64 begin, u64 end, SlicePM& pm) {
    if (crc_) {
      GH_CHECK_MSG(begin % group_size_ == 0 && (end % group_size_ == 0 || end == level_cells_),
                   "checksummed recovery slices must be group-aligned");
    }
    RecoveryReport report;
    for (u64 i = begin; i < end; ++i) {
      for (Cell* c : {&tab1_[i], &tab2_[i]}) {
        report.cells_scanned++;
        try {
          pm.touch_read(c, sizeof(Cell));
        } catch (const nvm::MediaError&) {
          report.media_errors++;
          stats_.media_errors++;
          stats_.cells_lost++;
          c->scrub(pm);
          report.cells_scrubbed++;
          continue;
        }
        if (!c->occupied()) {
          if (c->payload_dirty()) {
            c->scrub(pm);
            report.cells_scrubbed++;
          }
        } else {
          report.recovered_count++;
        }
      }
    }
    if (crc_) rebuild_checksums_range(begin, end, pm);
    rebuild_tags(begin, end);
    return report;
  }

  /// Publish a recovered count (used by parallel recovery after merging
  /// slice results).
  void set_recovered_count(u64 count) {
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    volatile_count_ = count;
  }

  /// Incremental integrity pass: verify the checksums of groups
  /// [first_group, first_group + max_groups) — clamped, not wrapped — on
  /// both levels. A group that fails (digest mismatch or poisoned read)
  /// is quarantined: every occupied cell is dropped (or salvaged, per
  /// `mode`) and reported through `on_loss(const LostCell&)`, torn
  /// payloads are scrubbed, the checksum is re-sealed over what remains,
  /// and the group stops accepting new inserts. No-op when checksums are
  /// disabled. Never throws for faults inside the table — MediaError is
  /// contained and counted.
  template <class Fn>
  ScrubReport scrub_groups(u64 first_group, u64 max_groups, Fn&& on_loss,
                           ScrubMode mode = ScrubMode::kDropGroup) {
    ScrubReport report;
    if (!crc_) return report;
    const u64 ngroups = num_groups();
    if (first_group >= ngroups) return report;
    const u64 n = std::min(max_groups, ngroups - first_group);
    for (u64 g = first_group; g < first_group + n; ++g) {
      for (u32 level = 0; level < 2; ++level) {
        scrub_one_group(level, g, report, on_loss, mode);
      }
    }
    return report;
  }

  /// Visit every occupied cell (used by the core API's expansion rebuild).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i < 2 * level_cells_; ++i) {
      const Cell& c = tab1_[i];
      if (c.occupied()) fn(c.key(), c.value);
    }
  }

  /// Visit every occupied cell of source group `g` — its addressable
  /// (level-1) cells and the collision (level-2) cells sharing the group
  /// number. This is the unit online-resize migration moves: one call
  /// collects exactly the keys the durable cursor word hands off.
  template <class Fn>
  void for_each_in_group(u64 g, Fn&& fn) const {
    GH_DCHECK(g < num_groups());
    const u64 begin = g * group_size_;
    const u64 end = begin + group_size_;
    for (u64 i = begin; i < end; ++i) {
      if (tab1_[i].occupied()) fn(tab1_[i].key(), tab1_[i].value);
      if (tab2_[i].occupied()) fn(tab2_[i].key(), tab2_[i].value);
    }
  }

  /// Read-only cell access for inspection tooling (gh_fsck, core/inspect).
  [[nodiscard]] const Cell& level1_cell(u64 i) const { return tab1_[i]; }
  [[nodiscard]] const Cell& level2_cell(u64 i) const { return tab2_[i]; }

  [[nodiscard]] u64 count() const {
    return count_mode_ == CountMode::kEager ? header_->count : volatile_count_.load();
  }
  [[nodiscard]] u64 capacity() const { return 2 * level_cells_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] u32 group_size() const { return group_size_; }
  [[nodiscard]] u64 level_cells() const { return level_cells_; }
  [[nodiscard]] u64 num_groups() const { return level_cells_ / group_size_; }
  [[nodiscard]] u64 seed() const { return header_->seed; }
  [[nodiscard]] bool checksums_enabled() const { return crc_ != nullptr; }
  /// Stored checksum word of (level 0/1, group) — inspection tooling.
  [[nodiscard]] u64 group_checksum(u32 level, u64 g) const {
    GH_DCHECK(crc_ != nullptr && level < 2 && g < num_groups());
    return crc_[level * num_groups() + g];
  }
  [[nodiscard]] bool group_quarantined(u32 level, u64 g) const { return is_quarantined(level, g); }
  /// Read-only re-derivation of one group's checksum (inspection/fsck):
  /// no quarantine, no counters, no scrubbing, no media-read hooks.
  [[nodiscard]] bool verify_group_checksum(u32 level, u64 g) const {
    GH_DCHECK(crc_ != nullptr && level < 2 && g < num_groups());
    const Cell* base = (level == 0 ? tab1_ : tab2_) + g * group_size_;
    u64 digest = 0;
    for (u32 i = 0; i < group_size_; ++i) digest ^= cell_digest(base + i);
    return digest == crc_[level * num_groups() + g];
  }
  /// Number of (level, group) pairs currently quarantined.
  [[nodiscard]] u64 quarantined_groups() const {
    if (!any_quarantined_) return 0;
    u64 n = 0;
    for (const u8 q : quarantined_) n += q;
    return n;
  }
  [[nodiscard]] TableStats& stats() { return stats_; }
  [[nodiscard]] const TableStats& stats() const { return stats_; }
  [[nodiscard]] PM& pm() { return *pm_; }

  // --- fingerprint-tag access (read views + tests) -------------------------

  /// Shared ownership of the DRAM tag block ([level 1][level 2], one byte
  /// per cell). Read views copy this so retired views survive expansion.
  [[nodiscard]] std::shared_ptr<const u8[]> tags_shared() const { return tags_; }

  /// Test/debug: tag byte of (level 0/1, cell index).
  [[nodiscard]] u8 debug_tag(u32 level, u64 i) const {
    GH_DCHECK(level < 2 && i < level_cells_);
    return (level == 0 ? tags1_ : tags2_)[i];
  }

  /// Test hook: full-rescan check of the tag invariant — tag[i] is 0 for
  /// an unoccupied cell and tag_of_hash(hash(key)) for an occupied one.
  [[nodiscard]] bool verify_tags() const {
    for (u64 i = 0; i < level_cells_; ++i) {
      const u8 want1 = tab1_[i].occupied() ? tag_of_hash(hash_(tab1_[i].key())) : 0;
      const u8 want2 = tab2_[i].occupied() ? tag_of_hash(hash_(tab2_[i].key())) : 0;
      if (tags1_[i] != want1 || tags2_[i] != want2) return false;
    }
    return true;
  }

 private:
  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  /// Level-2 group scan shared by find_at/find_cell_at: DRAM byte-tag
  /// sweep, then — when the cell layout has an in-cell 16-bit tag — the
  /// dispatched commit-word filter over the byte-tag survivors, then full
  /// key compares on what little is left. `probed` returns the number of
  /// cells dereferenced, `scanned` the tag bytes consumed (hit position
  /// + 1, or the whole group on a miss) — the same accounting the
  /// historical per-candidate scalar loop produced.
  Cell* scan_group(key_type key, u64 j, u8 tag, u32& probed, u32& scanned) {
    Cell* found = nullptr;
    probed = 0;
    scanned = group_size_;
    if constexpr (kInCellTag) {
      // Chunked two-stage filter: collect byte-tag candidates, narrow by
      // one vector compare of their commit words (bitmap | 16-bit tag),
      // key-compare only the survivors. A false full-key compare now
      // needs a byte-tag AND an in-cell-tag collision to coincide.
      const u64 expect = Cell::kOccupiedBit | Cell::tag_of(key);
      const u64* words = reinterpret_cast<const u64*>(&tab2_[j]);
      constexpr u32 kChunk = 32;
      std::array<u32, kChunk> cand;
      u32 nc = 0;
      // `swept` is where the byte sweep stopped — on a hit the skipped-byte
      // count is swept - probed, and every candidate position is < swept,
      // so probed can never exceed it.
      auto drain = [&](u32 swept) {
        probed += nc;
        stats_.level2_probes += nc;
        for (u32 s = 0; s < nc; ++s) probe(&tab2_[j + cand[s]]);
        const u32 kept =
            filter_in_cell_tags(words, sizeof(Cell) / sizeof(u64), cand.data(), nc, expect);
        for (u32 s = 0; s < kept && found == nullptr; ++s) {
          Cell* c2 = &tab2_[j + cand[s]];
          if (c2->matches(key)) {
            found = c2;
            scanned = swept;
          }
        }
        nc = 0;
      };
      for_each_tag_match(tags2_ + j, group_size_, tag, [&](u32 i) {
        cand[nc++] = i;
        if (nc == kChunk) {
          drain(i + 1);
          return found != nullptr;
        }
        return false;
      });
      if (found == nullptr && nc > 0) drain(group_size_);
    } else {
      for_each_tag_match(tags2_ + j, group_size_, tag, [&](u32 i) {
        Cell* c2 = probe(&tab2_[j + i]);
        stats_.level2_probes++;
        probed++;
        if (c2->matches(key)) {
          found = c2;
          scanned = i + 1;
          return true;
        }
        return false;
      });
    }
    return found;
  }

  void bump_count(i64 delta) {
    if (count_mode_ == CountMode::kEager) {
      pm_->atomic_store_u64(&header_->count, header_->count + static_cast<u64>(delta));
      pm_->persist(&header_->count, sizeof(u64));
      volatile_count_ = header_->count;
    } else {
      // Recovery-only: the on-NVM count goes stale; Algorithm 4 fixes it.
      volatile_count_ += static_cast<u64>(delta);
    }
  }

  void commit_insert(Cell* c, key_type key, u64 value, u8 tag) {
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    const u32 old_digest = crc_ ? cell_digest(c) : 0;
    c->publish(*pm_, key, value);
    tag_store(tag_slot(c), tag);
    if (crc_) apply_digest_delta(c, old_digest);
    bump_count(+1);
    if (wal_) wal_->commit();
  }

  /// Tag-filtered probe (Algorithm 2 + fingerprint filter): only cells
  /// whose tag byte matches tag_of_hash(h) get a full key compare.
  std::optional<u64> find_at(key_type key, u64 h) {
    stats_.queries++;
    const u64 k = h & mask_;
    const u8 tag = tag_of_hash(h);
    if (tags1_[k] == tag) {
      const Cell* c1 = probe(&tab1_[k]);
      stats_.tag_probes++;
      if (c1->matches(key)) {
        stats_.query_hits++;
        return c1->value;
      }
      stats_.tag_false_positives++;
    } else {
      stats_.tag_skips++;
    }
    const u64 j = k - k % group_size_;
    u32 probed = 0;
    u32 scanned = group_size_;
    Cell* c2 = scan_group(key, j, tag, probed, scanned);
    stats_.tag_probes += probed;
    stats_.tag_skips += scanned - probed;
    if (c2 != nullptr) {
      stats_.tag_false_positives += probed - 1;
      stats_.query_hits++;
      return c2->value;
    }
    stats_.tag_false_positives += probed;
    return std::nullopt;
  }

  Cell* find_cell(key_type key) { return find_cell_at(key, hash_(key)); }

  Cell* find_cell_at(key_type key, u64 h) {
    const u64 k = h & mask_;
    const u8 tag = tag_of_hash(h);
    if (tags1_[k] == tag) {
      Cell* c1 = probe(&tab1_[k]);
      if (c1->matches(key)) return c1;
    }
    u32 probed = 0;
    u32 scanned = 0;
    return scan_group(key, k - k % group_size_, tag, probed, scanned);
  }

  /// True for cell layouts that carry a 16-bit key tag inside the commit
  /// word (Cell32); those get a second, dispatched filter stage between
  /// the DRAM byte-tag sweep and the full key compare.
  static constexpr bool kInCellTag =
      requires(const typename Cell::key_type& k) { Cell::tag_of(k); };

  // --- fingerprint-tag machinery -------------------------------------------

  /// Tag byte of a cell: levels are contiguous in both arrays, so the
  /// cell's global index is also its tag index.
  [[nodiscard]] u8* tag_slot(const Cell* c) { return tags_.get() + global_index(c); }

  /// Recompute the tags of cell indices [begin, end) of BOTH levels from
  /// the cells (attach/recovery; also per-group after scrub containment).
  void rebuild_tags(u64 begin, u64 end) {
    for (u64 i = begin; i < end; ++i) {
      tag_store(tags1_ + i, tab1_[i].occupied() ? tag_of_hash(hash_(tab1_[i].key())) : 0);
      tag_store(tags2_ + i, tab2_[i].occupied() ? tag_of_hash(hash_(tab2_[i].key())) : 0);
    }
  }

  // --- batched-mutation machinery ------------------------------------------

  /// Per-window accumulator of group-checksum deltas: XORs of per-cell
  /// digest changes, folded per slot and applied with one store+flush
  /// each and a single fence.
  struct CrcDeltaWindow {
    std::array<u64*, 2 * kBatchWindow> slots{};
    std::array<u64, 2 * kBatchWindow> deltas{};
    usize n = 0;

    void add(u64* slot, u64 delta) {
      for (usize i = 0; i < n; ++i) {
        if (slots[i] == slot) {
          deltas[i] ^= delta;
          return;
        }
      }
      slots[n] = slot;
      deltas[n] = delta;
      n++;
    }

    void apply(PM& pm) {
      if (n == 0) return;
      for (usize i = 0; i < n; ++i) {
        pm.atomic_store_u64(slots[i], *slots[i] ^ deltas[i]);
        pm.flush(slots[i], sizeof(u64));
      }
      pm.fence();
      n = 0;
    }
  };

  [[nodiscard]] u64* crc_slot_of(const Cell* c) const {
    const u64 gi = global_index(c);
    const u32 level = gi < level_cells_ ? 0 : 1;
    return crc_slot(level, (gi % level_cells_) / group_size_);
  }

  /// The shared core of upsert_batch/insert_batch. Processes keys in
  /// windows; within a window:
  ///   phase 1 — updates and payload staging (stores + flushes, commit
  ///             words untouched, so staged cells are invisible to finds)
  ///   fence   — staged payloads + in-place updates durable
  ///   phase 2 — atomic commit words + flushes
  ///   fence   — commits durable
  ///   tail    — coalesced checksum deltas (store+flush each, one fence)
  ///             and ONE count bump for the window
  /// Any commit word that reaches media implies the phase-1 fence
  /// retired, so the per-cell crash discipline is exactly publish()'s.
  template <bool kCheckExisting>
  usize put_batch_impl(std::span<const key_type> keys, std::span<const u64> values) {
    GH_CHECK(values.size() >= keys.size());
    stats_.batch_ops++;
    stats_.batch_keys += keys.size();
    if (wal_) {  // WAL ablation builds log per op; keep them scalar
      for (usize i = 0; i < keys.size(); ++i) {
        if (kCheckExisting && update(keys[i], values[i])) continue;
        if (!insert(keys[i], values[i])) return i;
      }
      return keys.size();
    }
    struct Staged {
      Cell* cell;
      key_type key;
      u8 tag;
      u32 old_digest;
    };
    std::array<Staged, kBatchWindow> staged{};
    CrcDeltaWindow deltas;
    usize done = 0;
    while (done < keys.size()) {
      const usize n = std::min(kBatchWindow, keys.size() - done);
      usize nstaged = 0;
      usize updates = 0;
      usize consumed = 0;  // leading keys of this window fully handled
      bool full = false;
      for (usize i = 0; i < n; ++i) {
        const key_type key = keys[done + i];
        const u64 value = values[done + i];
        const u64 h = hash_(key);
        const u64 k = h & mask_;
        const u8 tag = tag_of_hash(h);
        // Duplicate of a cell staged in this window? Its commit word is
        // still unset (invisible to find_cell), so check the stage list.
        Staged* dup = nullptr;
        for (usize s = 0; s < nstaged; ++s) {
          if (staged[s].key == key) {
            dup = &staged[s];
            break;
          }
        }
        if (dup != nullptr) {
          dup->cell->stage_value(*pm_, value);
          consumed++;
          continue;
        }
        if (kCheckExisting) {
          if (Cell* c = find_cell_at(key, h)) {
            // In-place update, fence deferred to the window tail. The
            // delta is computed now — the cell content is already final.
            const u32 old_digest = crc_ ? cell_digest(c) : 0;
            pm_->atomic_store_u64(&c->value, value);
            pm_->flush(&c->value, sizeof(u64));
            if (crc_) deltas.add(crc_slot_of(c), old_digest ^ cell_digest(c));
            updates++;
            consumed++;
            continue;
          }
        }
        stats_.inserts++;
        const u64 g = k / group_size_;
        Cell* target = nullptr;
        if (tags1_[k] == 0 && !is_quarantined(0, g)) {
          target = probe(&tab1_[k]);
          GH_DCHECK(!target->occupied());
        } else if (!is_quarantined(1, g)) {
          const u64 j = k - k % group_size_;
          for_each_tag_match(tags2_ + j, group_size_, /*tag=*/0, [&](u32 idx) {
            Cell* c2 = probe(&tab2_[j + idx]);
            stats_.level2_probes++;
            GH_DCHECK(!c2->occupied());
            target = c2;
            return true;
          });
        }
        if (target == nullptr) {
          stats_.insert_failures++;
          full = true;
          break;
        }
        const u32 old_digest = crc_ ? cell_digest(target) : 0;
        target->stage_payload(*pm_, key, value);
        // Set the tag NOW so this window's later empty-slot scans skip
        // the staged cell (its commit word still reads unoccupied).
        tag_store(tag_slot(target), tag);
        staged[nstaged++] = Staged{target, key, tag, old_digest};
        consumed++;
      }
      // Window tail: finalize everything staged, even on a full stop.
      if (updates + nstaged > 0) pm_->fence();  // phase-1 stores durable
      if (nstaged > 0) {
        for (usize s = 0; s < nstaged; ++s) {
          staged[s].cell->commit_staged(*pm_, staged[s].key);
        }
        pm_->fence();  // commit words durable
        if (crc_) {
          for (usize s = 0; s < nstaged; ++s) {
            deltas.add(crc_slot_of(staged[s].cell),
                       staged[s].old_digest ^ cell_digest(staged[s].cell));
          }
        }
        bump_count(+static_cast<i64>(nstaged));
      }
      if (crc_) deltas.apply(*pm_);
      done += consumed;
      if (full) break;
    }
    return done;
  }

  // --- integrity machinery ---------------------------------------------------

  /// Global cell index: tab1 cells are [0, level_cells), tab2 cells
  /// [level_cells, 2*level_cells) — the two levels are contiguous.
  [[nodiscard]] u64 global_index(const Cell* c) const { return static_cast<u64>(c - tab1_); }

  /// Digest of one cell, seeded with its global index so content swapped
  /// between cells still changes the group XOR. All-zero cells digest to
  /// 0, making an empty group's checksum 0 without any formatting pass.
  [[nodiscard]] u32 cell_digest(const Cell* c) const {
    const auto* words = reinterpret_cast<const u64*>(c);
    constexpr usize kWords = sizeof(Cell) / sizeof(u64);
    u64 any = 0;
    for (usize i = 0; i < kWords; ++i) any |= words[i];
    if (any == 0) return 0;
    return crc32c_seeded(global_index(c), c, sizeof(Cell));
  }

  [[nodiscard]] u64* crc_slot(u32 level, u64 g) const { return &crc_[level * num_groups() + g]; }

  /// XOR the digest delta of a just-mutated cell into its group checksum.
  /// 8-byte atomic store: readers of the checksum word never see a torn
  /// value, and a crash between cell commit and checksum store only
  /// leaves the checksum stale — recovery rebuilds all of them.
  void apply_digest_delta(const Cell* c, u32 old_digest) {
    const u64 gi = global_index(c);
    const u32 level = gi < level_cells_ ? 0 : 1;
    u64* slot = crc_slot(level, (gi % level_cells_) / group_size_);
    pm_->atomic_store_u64(slot, *slot ^ old_digest ^ cell_digest(c));
    pm_->persist(slot, sizeof(u64));
  }

  /// Recompute and store the checksums of the groups covering cell
  /// indices [begin, end) of BOTH levels (used by recovery).
  template <class AnyPM>
  void rebuild_checksums_range(u64 begin, u64 end, AnyPM& pm) {
    const u64 first_group = begin / group_size_;
    const u64 last_group = (end + group_size_ - 1) / group_size_;
    for (u64 g = first_group; g < last_group; ++g) {
      for (u32 level = 0; level < 2; ++level) {
        Cell* base = (level == 0 ? tab1_ : tab2_) + g * group_size_;
        u64 digest = 0;
        for (u32 i = 0; i < group_size_; ++i) digest ^= cell_digest(base + i);
        pm.atomic_store_u64(crc_slot(level, g), digest);
      }
      pm.persist(crc_slot(0, g), sizeof(u64));
      pm.persist(crc_slot(1, g), sizeof(u64));
    }
  }

  [[nodiscard]] bool is_quarantined(u32 level, u64 g) const {
    return any_quarantined_ && quarantined_[level * num_groups() + g] != 0;
  }

  /// Does `key` hash back to this cell (level 0) / this group (level 1)?
  [[nodiscard]] bool location_consistent(u32 level, u64 cell_index, key_type key) const {
    const u64 k = hash_(key) & mask_;
    return level == 0 ? k == cell_index : k / group_size_ == cell_index / group_size_;
  }

  template <class Fn>
  void scrub_one_group(u32 level, u64 g, ScrubReport& report, Fn&& on_loss, ScrubMode mode) {
    Cell* base = (level == 0 ? tab1_ : tab2_) + g * group_size_;
    report.groups_checked++;
    stats_.groups_scrubbed++;
    // Verification pass: re-derive the group digest. A poisoned read
    // aborts straight into containment.
    u64 digest = 0;
    bool media_fault = false;
    for (u32 i = 0; i < group_size_ && !media_fault; ++i) {
      report.cells_scanned++;
      try {
        pm_->touch_read(base + i, sizeof(Cell));
        digest ^= cell_digest(base + i);
      } catch (const nvm::MediaError&) {
        media_fault = true;
      }
    }
    if (!media_fault && digest == *crc_slot(level, g)) return;
    if (media_fault) {
      report.media_errors++;
      stats_.media_errors++;
    } else {
      report.crc_mismatches++;
      stats_.crc_mismatches++;
    }
    // Containment pass: visit every cell again, reporting and dropping
    // (or salvaging) occupied ones. Stores heal poisoned lines, so the
    // group is physically reusable afterwards even though it stays
    // quarantined for placement.
    i64 dropped = 0;
    u64 new_digest = 0;
    for (u32 i = 0; i < group_size_; ++i) {
      Cell* c = base + i;
      const u64 cell_index = g * group_size_ + i;
      bool readable = true;
      try {
        pm_->touch_read(c, sizeof(Cell));
      } catch (const nvm::MediaError&) {
        readable = false;
      }
      if (!readable) {
        on_loss(LostCell{.level = level + 1,
                         .group = g,
                         .cell_index = cell_index,
                         .readable = false});
        report.cells_lost++;
        stats_.cells_lost++;
        c->scrub(*pm_);
        report.cells_scrubbed++;
        stats_.cells_scrubbed++;
        // Occupancy was unknowable, so `count` may drift here; the next
        // recovery recomputes it from the scan.
        continue;
      }
      if (!c->occupied()) {
        if (c->payload_dirty()) {
          c->scrub(*pm_);
          report.cells_scrubbed++;
          stats_.cells_scrubbed++;
        }
        continue;
      }
      const bool consistent = location_consistent(level, cell_index, c->key());
      const bool salvage = mode == ScrubMode::kSalvage && consistent;
      on_loss(LostCell{.level = level + 1,
                       .group = g,
                       .cell_index = cell_index,
                       .key = to_key128(c->key()),
                       .value = c->value,
                       .readable = true,
                       .location_consistent = consistent,
                       .salvaged = salvage});
      if (salvage) {
        new_digest ^= cell_digest(c);
        continue;
      }
      report.cells_lost++;
      stats_.cells_lost++;
      c->scrub(*pm_);
      report.cells_scrubbed++;
      stats_.cells_scrubbed++;
      dropped++;
    }
    if (dropped > 0) bump_count(-dropped);
    // Containment scrubbed/dropped cells in place: re-derive the group's
    // tags so the DRAM filter matches the cells again.
    const u64 tag_begin = g * group_size_;
    u8* group_tags = (level == 0 ? tags1_ : tags2_) + tag_begin;
    Cell* group_cells = (level == 0 ? tab1_ : tab2_) + tag_begin;
    for (u32 i = 0; i < group_size_; ++i) {
      tag_store(group_tags + i,
                group_cells[i].occupied() ? tag_of_hash(hash_(group_cells[i].key())) : 0);
    }
    // Re-seal the checksum over what remains, then fence the group off.
    pm_->atomic_store_u64(crc_slot(level, g), new_digest);
    pm_->persist(crc_slot(level, g), sizeof(u64));
    quarantined_[level * num_groups() + g] = 1;
    any_quarantined_ = true;
    report.groups_quarantined++;
    stats_.groups_quarantined++;
  }

  static Key128 to_key128(u64 k) { return Key128{k, 0}; }
  static Key128 to_key128(Key128 k) { return k; }

  PM* pm_;
  SeededHash hash_;
  Header* header_ = nullptr;
  Cell* tab1_ = nullptr;
  Cell* tab2_ = nullptr;
  std::shared_ptr<u8[]> tags_;  ///< DRAM fingerprint tags, 2*level_cells bytes
  u8* tags1_ = nullptr;         ///< = tags_.get()
  u8* tags2_ = nullptr;         ///< = tags_.get() + level_cells_
  u64* crc_ = nullptr;  ///< [level 1 groups][level 2 groups], one u64 each
  u64 level_cells_ = 0;
  u64 mask_ = 0;
  u32 group_size_ = 0;
  CountMode count_mode_ = CountMode::kEager;
  AtomicCounter volatile_count_;  ///< exact; shared by concurrent wrappers
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
  std::vector<u8> quarantined_;  ///< volatile containment state, 1 byte per (level, group)
  bool any_quarantined_ = false;
};

}  // namespace gh::hash
