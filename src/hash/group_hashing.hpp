// Group hashing — the paper's contribution (§3).
//
// Layout: the cells are decoupled into two equal-sized levels. Level 1 is
// addressable by the hash function; level 2 is non-addressable and
// resolves collisions. Both levels are divided into groups of
// `group_size` contiguous cells, and the level-2 group with the same
// group number is *shared* by all cells of the matching level-1 group:
//
//   level 1 (tab1):  [ group 0 | group 1 | group 2 | ... ]
//   level 2 (tab2):  [ group 0 | group 1 | group 2 | ... ]
//
// An item hashing to level-1 index k that finds tab1[k] occupied probes
// tab2[j .. j+group_size) where j = k - k % group_size — a contiguous
// range, so a single memory access prefetches the following cells of the
// same cacheline (the CPU-cache-efficiency half of the design).
//
// Consistency (§3.3): no logging and no copy-on-write. Inserts and
// deletes are committed by the cell's 8-byte atomic commit word (see
// cells.hpp); the persistent `count` is atomically updated afterwards,
// and recovery (§3.5, Algorithm 4) rescans the table to scrub torn
// payloads and recompute `count`.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "hash/wal.hpp"
#include "util/assert.hpp"
#include "util/counters.hpp"
#include "util/types.hpp"

namespace gh::hash {

/// How the global `count` field is maintained.
enum class CountMode {
  /// The paper's protocol (Algorithms 1/3): atomically update and persist
  /// `count` after every insert/delete — one extra flush per mutation.
  kEager,
  /// Keep `count` volatile and let recovery recompute it (which Algorithm
  /// 4 does anyway). Saves the flush; `count` is only approximate in the
  /// on-NVM image between recoveries. Measured by
  /// bench/ablation_count_persistence.
  kRecoveryOnly,
};

template <class Cell, class PM>
class GroupHashTable {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 level_cells = 1024;  ///< cells per level (power of two)
    u32 group_size = 256;    ///< cells per group (divides level_cells)
    u64 seed = kDefaultSeed1;
    /// Zero cell memory on format. Fresh anonymous mappings are already
    /// zero, so benches skip this; formatting a reused file needs it.
    bool zero_memory = false;
    CountMode count_mode = CountMode::kEager;
  };

  static constexpr u64 kMagic = 0x4748544742303031ull;  // "GHTGB001"

  struct Header {
    u64 magic;
    u64 level_cells;
    u64 group_size;
    u64 count;  ///< occupied cells; 8-byte atomically maintained
    u64 seed;
    u64 cell_size;
    u64 reserved[2];
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + 2 * p.level_cells * sizeof(Cell);
  }

  /// Create (format=true) or attach to (format=false) a table in `mem`.
  GroupHashTable(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash_(p.seed) {
    GH_CHECK_MSG(is_pow2(p.level_cells), "level_cells must be a power of two");
    GH_CHECK_MSG(p.group_size > 0 && p.level_cells % p.group_size == 0,
                 "group_size must divide level_cells");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab1_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    tab2_ = tab1_ + p.level_cells;
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab1_, 0, 2 * p.level_cells * sizeof(Cell));
        pm.persist(tab1_, 2 * p.level_cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->level_cells, p.level_cells);
      pm.store_u64(&header_->group_size, p.group_size);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed, p.seed);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a group-hashing table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      GH_CHECK(header_->level_cells == p.level_cells);
      hash_ = SeededHash(header_->seed);
    }
    level_cells_ = header_->level_cells;
    mask_ = level_cells_ - 1;
    group_size_ = static_cast<u32>(header_->group_size);
    count_mode_ = p.count_mode;
    volatile_count_ = header_->count;
  }

  /// Attach to an existing table, taking parameters from its header.
  static GroupHashTable attach(PM& pm, std::span<std::byte> mem) {
    GH_CHECK(mem.size() >= sizeof(Header));
    const auto* h = reinterpret_cast<const Header*>(mem.data());
    GH_CHECK_MSG(h->magic == kMagic, "not a group-hashing table");
    Params p{.level_cells = h->level_cells,
             .group_size = static_cast<u32>(h->group_size),
             .seed = h->seed};
    return GroupHashTable(pm, mem, p, /*format=*/false);
  }

  /// Optional logging wrapper used only by the ablation bench (the paper's
  /// point is that group hashing does NOT need it).
  void attach_wal(UndoLog<PM>* wal) { wal_ = wal; }

  /// Algorithm 1. Precondition: `key` is not already present (the paper's
  /// insert does not check; use the core-API upsert for checked inserts).
  /// Returns false when the level-1 cell and its whole matched level-2
  /// group are full — the signal to expand the table.
  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    if (wal_) wal_->begin();
    const u64 k = hash_(key) & mask_;
    Cell* c1 = probe(&tab1_[k]);
    if (!c1->occupied()) {
      commit_insert(c1, key, value);
      return true;
    }
    const u64 j = k - k % group_size_;
    for (u32 i = 0; i < group_size_; ++i) {
      Cell* c2 = probe(&tab2_[j + i]);
      stats_.level2_probes++;
      if (!c2->occupied()) {
        commit_insert(c2, key, value);
        return true;
      }
    }
    stats_.insert_failures++;
    if (wal_) wal_->commit();
    return false;
  }

  /// Algorithm 2. (We additionally require the bitmap to be set on
  /// level-2 matches — the paper's pseudo-code compares only the key,
  /// which would mis-match a key of all-zero bits.)
  std::optional<u64> find(key_type key) { return find_at(key, hash_(key) & mask_); }

  /// Batched lookup with software prefetching: hashes a window of keys,
  /// issues prefetches for all their level-1 cells, then resolves the
  /// lookups — overlapping the memory latency of independent probes the
  /// way out-of-order hardware cannot across separate find() calls.
  /// Writes out[i] for keys[i]; behaviourally identical to per-key find().
  void find_batch(std::span<const key_type> keys, std::span<std::optional<u64>> out) {
    GH_CHECK(out.size() >= keys.size());
    constexpr usize kWindow = 16;
    std::array<u64, kWindow> slots{};
    for (usize base = 0; base < keys.size(); base += kWindow) {
      const usize n = std::min(kWindow, keys.size() - base);
      for (usize i = 0; i < n; ++i) {
        slots[i] = hash_(keys[base + i]) & mask_;
        __builtin_prefetch(&tab1_[slots[i]], /*rw=*/0, /*locality=*/1);
      }
      for (usize i = 0; i < n; ++i) {
        out[base + i] = find_at(keys[base + i], slots[i]);
      }
    }
  }

  /// In-place value update. An 8-byte value overwrite is itself failure
  /// atomic, so no further protocol is needed.
  bool update(key_type key, u64 value) {
    Cell* c = find_cell(key);
    if (c == nullptr) return false;
    pm_->atomic_store_u64(&c->value, value);
    pm_->persist(&c->value, sizeof(u64));
    return true;
  }

  /// Algorithm 3.
  bool erase(key_type key) {
    stats_.erases++;
    if (wal_) wal_->begin();
    Cell* c = find_cell(key);
    if (c == nullptr) {
      if (wal_) wal_->commit();
      return false;
    }
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->retract(*pm_);
    bump_count(-1);
    stats_.erase_hits++;
    if (wal_) wal_->commit();
    return true;
  }

  /// Algorithm 4: full-scan recovery. Scrubs the payload of every
  /// unoccupied cell that still holds bytes (a torn insert or the tail of
  /// a committed delete) and recomputes `count`.
  RecoveryReport recover() {
    RecoveryReport report;
    if (wal_) report.wal_records_rolled_back = wal_->recover();
    u64 count = 0;
    for (u64 i = 0; i < level_cells_; ++i) {
      for (Cell* c : {&tab1_[i], &tab2_[i]}) {
        pm_->touch_read(c, sizeof(Cell));
        report.cells_scanned++;
        if (!c->occupied()) {
          if (c->payload_dirty()) {
            c->scrub(*pm_);
            report.cells_scrubbed++;
          }
        } else {
          count++;
        }
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    volatile_count_ = count;
    report.recovered_count = count;
    return report;
  }

  /// One slice of the Algorithm-4 scan: indices [begin, end) of BOTH
  /// levels, scrubbing through `pm` (callers running slices on separate
  /// threads pass one persistence policy per thread). Does NOT update the
  /// header count — the caller aggregates slice counts and publishes once.
  /// See core/parallel_recovery.hpp.
  template <class SlicePM>
  RecoveryReport recover_slice(u64 begin, u64 end, SlicePM& pm) {
    RecoveryReport report;
    for (u64 i = begin; i < end; ++i) {
      for (Cell* c : {&tab1_[i], &tab2_[i]}) {
        pm.touch_read(c, sizeof(Cell));
        report.cells_scanned++;
        if (!c->occupied()) {
          if (c->payload_dirty()) {
            c->scrub(pm);
            report.cells_scrubbed++;
          }
        } else {
          report.recovered_count++;
        }
      }
    }
    return report;
  }

  /// Publish a recovered count (used by parallel recovery after merging
  /// slice results).
  void set_recovered_count(u64 count) {
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    volatile_count_ = count;
  }

  /// Visit every occupied cell (used by the core API's expansion rebuild).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i < 2 * level_cells_; ++i) {
      const Cell& c = tab1_[i];
      if (c.occupied()) fn(c.key(), c.value);
    }
  }

  /// Read-only cell access for inspection tooling (gh_fsck, core/inspect).
  [[nodiscard]] const Cell& level1_cell(u64 i) const { return tab1_[i]; }
  [[nodiscard]] const Cell& level2_cell(u64 i) const { return tab2_[i]; }

  [[nodiscard]] u64 count() const {
    return count_mode_ == CountMode::kEager ? header_->count : volatile_count_.load();
  }
  [[nodiscard]] u64 capacity() const { return 2 * level_cells_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] u32 group_size() const { return group_size_; }
  [[nodiscard]] u64 level_cells() const { return level_cells_; }
  [[nodiscard]] u64 seed() const { return header_->seed; }
  [[nodiscard]] TableStats& stats() { return stats_; }
  [[nodiscard]] PM& pm() { return *pm_; }

 private:
  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  void bump_count(i64 delta) {
    if (count_mode_ == CountMode::kEager) {
      pm_->atomic_store_u64(&header_->count, header_->count + static_cast<u64>(delta));
      pm_->persist(&header_->count, sizeof(u64));
      volatile_count_ = header_->count;
    } else {
      // Recovery-only: the on-NVM count goes stale; Algorithm 4 fixes it.
      volatile_count_ += static_cast<u64>(delta);
    }
  }

  void commit_insert(Cell* c, key_type key, u64 value) {
    if (wal_) {
      wal_->log_cell(c, sizeof(Cell));
      wal_->log_cell(&header_->count, sizeof(u64));
    }
    c->publish(*pm_, key, value);
    bump_count(+1);
    if (wal_) wal_->commit();
  }

  std::optional<u64> find_at(key_type key, u64 k) {
    stats_.queries++;
    const Cell* c1 = probe(&tab1_[k]);
    if (c1->matches(key)) {
      stats_.query_hits++;
      return c1->value;
    }
    const u64 j = k - k % group_size_;
    for (u32 i = 0; i < group_size_; ++i) {
      const Cell* c2 = probe(&tab2_[j + i]);
      stats_.level2_probes++;
      if (c2->matches(key)) {
        stats_.query_hits++;
        return c2->value;
      }
    }
    return std::nullopt;
  }

  Cell* find_cell(key_type key) {
    const u64 k = hash_(key) & mask_;
    Cell* c1 = probe(&tab1_[k]);
    if (c1->matches(key)) return c1;
    const u64 j = k - k % group_size_;
    for (u32 i = 0; i < group_size_; ++i) {
      Cell* c2 = probe(&tab2_[j + i]);
      stats_.level2_probes++;
      if (c2->matches(key)) return c2;
    }
    return nullptr;
  }

  PM* pm_;
  SeededHash hash_;
  Header* header_ = nullptr;
  Cell* tab1_ = nullptr;
  Cell* tab2_ = nullptr;
  u64 level_cells_ = 0;
  u64 mask_ = 0;
  u32 group_size_ = 0;
  CountMode count_mode_ = CountMode::kEager;
  AtomicCounter volatile_count_;  ///< exact; shared by concurrent wrappers
  UndoLog<PM>* wal_ = nullptr;
  TableStats stats_;
};

}  // namespace gh::hash
