// Two-hash-function group hashing — the variant the paper itself sketches
// and rejects in §4.4:
//
//   "Although two hash functions can be used in our group hashing to
//    improve the space utilization ratio, the continuity of the collision
//    resolution cells is damaged, more L3 cache misses would be produced,
//    which deteriorates the performance in terms of request latency."
//
// Implemented so the trade-off is measurable (bench/ablation_two_hash):
// an item has two level-1 candidate cells (h1, h2) and may overflow into
// EITHER matched level-2 group, choosing the emptier one at insert time
// (power of two choices => much better group balance => higher
// utilisation). Lookups must now probe two level-1 cells and scan up to
// two non-adjacent groups — twice the probe footprint, split across
// distant cachelines.
//
// The consistency protocol is unchanged: the same 8-byte commit word, the
// same recovery scan (Algorithm 4 never depends on the hash functions).
#pragma once

#include <optional>
#include <span>

#include "hash/cells.hpp"
#include "hash/hash_functions.hpp"
#include "hash/table_stats.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::hash {

template <class Cell, class PM>
class GroupHashTable2H {
 public:
  using key_type = typename Cell::key_type;

  struct Params {
    u64 level_cells = 1024;
    u32 group_size = 256;
    u64 seed1 = kDefaultSeed1;
    u64 seed2 = kDefaultSeed2;
    bool zero_memory = false;
  };

  static constexpr u64 kMagic = 0x4748544732483031ull;  // "GHTG2H01"

  struct Header {
    u64 magic;
    u64 level_cells;
    u64 group_size;
    u64 count;
    u64 seed1;
    u64 seed2;
    u64 cell_size;
    u64 reserved;
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(const Params& p) {
    return sizeof(Header) + 2 * p.level_cells * sizeof(Cell);
  }

  GroupHashTable2H(PM& pm, std::span<std::byte> mem, const Params& p, bool format)
      : pm_(&pm), hash1_(p.seed1), hash2_(p.seed2) {
    GH_CHECK_MSG(is_pow2(p.level_cells), "level_cells must be a power of two");
    GH_CHECK_MSG(p.group_size > 0 && p.level_cells % p.group_size == 0,
                 "group_size must divide level_cells");
    GH_CHECK(mem.size() >= required_bytes(p));
    header_ = reinterpret_cast<Header*>(mem.data());
    tab1_ = reinterpret_cast<Cell*>(mem.data() + sizeof(Header));
    tab2_ = tab1_ + p.level_cells;
    if (format) {
      if (p.zero_memory) {
        pm.fill(tab1_, 0, 2 * p.level_cells * sizeof(Cell));
        pm.persist(tab1_, 2 * p.level_cells * sizeof(Cell));
      }
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->level_cells, p.level_cells);
      pm.store_u64(&header_->group_size, p.group_size);
      pm.store_u64(&header_->count, 0);
      pm.store_u64(&header_->seed1, p.seed1);
      pm.store_u64(&header_->seed2, p.seed2);
      pm.store_u64(&header_->cell_size, sizeof(Cell));
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a 2-hash group table");
      GH_CHECK(header_->cell_size == sizeof(Cell));
      hash1_ = SeededHash(header_->seed1);
      hash2_ = SeededHash(header_->seed2);
    }
    level_cells_ = header_->level_cells;
    mask_ = level_cells_ - 1;
    group_size_ = static_cast<u32>(header_->group_size);
  }

  bool insert(key_type key, u64 value) {
    stats_.inserts++;
    const u64 k1 = hash1_(key) & mask_;
    const u64 k2 = hash2_(key) & mask_;
    for (const u64 k : {k1, k2}) {
      Cell* c = probe(&tab1_[k]);
      if (!c->occupied()) {
        commit_insert(c, key, value);
        return true;
      }
      if (k1 == k2) break;
    }
    // Both level-1 cells taken: overflow into the emptier of the two
    // matched groups (a quick occupancy estimate costs probes but buys
    // balance — the price is paid in cache misses, which is the point of
    // the ablation).
    const u64 j1 = k1 - k1 % group_size_;
    const u64 j2 = k2 - k2 % group_size_;
    Cell* slot1 = first_empty(j1);
    Cell* slot2 = j2 == j1 ? nullptr : first_empty(j2);
    Cell* chosen = slot1;
    if (slot2 != nullptr &&
        (slot1 == nullptr || (slot2 - &tab2_[j2]) < (slot1 - &tab2_[j1]))) {
      // Fewer occupied cells precede the empty slot => emptier group.
      chosen = slot2;
    }
    if (chosen == nullptr) {
      stats_.insert_failures++;
      return false;
    }
    commit_insert(chosen, key, value);
    return true;
  }

  std::optional<u64> find(key_type key) {
    stats_.queries++;
    Cell* c = find_cell(key);
    if (c == nullptr) return std::nullopt;
    stats_.query_hits++;
    return c->value;
  }

  bool erase(key_type key) {
    stats_.erases++;
    Cell* c = find_cell(key);
    if (c == nullptr) return false;
    c->retract(*pm_);
    pm_->atomic_store_u64(&header_->count, header_->count - 1);
    pm_->persist(&header_->count, sizeof(u64));
    stats_.erase_hits++;
    return true;
  }

  RecoveryReport recover() {
    RecoveryReport report;
    u64 count = 0;
    for (u64 i = 0; i < level_cells_; ++i) {
      for (Cell* c : {&tab1_[i], &tab2_[i]}) {
        pm_->touch_read(c, sizeof(Cell));
        report.cells_scanned++;
        if (!c->occupied()) {
          if (c->payload_dirty()) {
            c->scrub(*pm_);
            report.cells_scrubbed++;
          }
        } else {
          count++;
        }
      }
    }
    pm_->store_u64(&header_->count, count);
    pm_->persist(&header_->count, sizeof(u64));
    report.recovered_count = count;
    return report;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (u64 i = 0; i < 2 * level_cells_; ++i) {
      if (tab1_[i].occupied()) fn(tab1_[i].key(), tab1_[i].value);
    }
  }

  [[nodiscard]] u64 count() const { return header_->count; }
  [[nodiscard]] u64 capacity() const { return 2 * level_cells_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(count()) / static_cast<double>(capacity());
  }
  [[nodiscard]] u32 group_size() const { return group_size_; }
  [[nodiscard]] TableStats& stats() { return stats_; }

 private:
  Cell* probe(Cell* c) {
    pm_->touch_read(c, sizeof(Cell));
    stats_.probes++;
    return c;
  }

  Cell* first_empty(u64 group_base) {
    for (u32 i = 0; i < group_size_; ++i) {
      Cell* c = probe(&tab2_[group_base + i]);
      stats_.level2_probes++;
      if (!c->occupied()) return c;
    }
    return nullptr;
  }

  void commit_insert(Cell* c, key_type key, u64 value) {
    c->publish(*pm_, key, value);
    pm_->atomic_store_u64(&header_->count, header_->count + 1);
    pm_->persist(&header_->count, sizeof(u64));
  }

  Cell* find_cell(key_type key) {
    const u64 k1 = hash1_(key) & mask_;
    const u64 k2 = hash2_(key) & mask_;
    for (const u64 k : {k1, k2}) {
      Cell* c = probe(&tab1_[k]);
      if (c->matches(key)) return c;
      if (k1 == k2) break;
    }
    const u64 j1 = k1 - k1 % group_size_;
    const u64 j2 = k2 - k2 % group_size_;
    for (const u64 j : {j1, j2}) {
      for (u32 i = 0; i < group_size_; ++i) {
        Cell* c = probe(&tab2_[j + i]);
        stats_.level2_probes++;
        if (c->matches(key)) return c;
      }
      if (j1 == j2) break;
    }
    return nullptr;
  }

  PM* pm_;
  SeededHash hash1_;
  SeededHash hash2_;
  Header* header_ = nullptr;
  Cell* tab1_ = nullptr;
  Cell* tab2_ = nullptr;
  u64 level_cells_ = 0;
  u64 mask_ = 0;
  u32 group_size_ = 0;
  TableStats stats_;
};

}  // namespace gh::hash
