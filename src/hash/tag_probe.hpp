// Fingerprint-tag probing (Dash-style, PAPERS.md).
//
// Group hashing probes up to group_size (default 256) level-2 cells per
// lookup, each a full 8/16-byte key compare against PM-resident cells.
// This header adds the filtering layer in front of those compares: a
// DRAM-only array of 1-byte tags, one per cell, derived from the key
// hash. A probe first scans the group's tags — 256 contiguous bytes, 4
// cachelines — with SSE2/AVX2 equality compares and only dereferences
// the cells whose tag matches. With a 7-bit fingerprint the expected
// number of false-positive cell touches per miss is group_size/128 ≈ 2.
//
// The tag array is volatile by design: it is rebuilt from the cells on
// open/recovery, so the PM format (and the paper's 8-byte-commit crash
// discipline) is untouched. Invariant outside a mutation critical
// section: tag[i] == 0  ⟺  cell i unoccupied; otherwise tag[i] ==
// tag_of_hash(hash(cell key)). Tag 0 never collides with a live key's
// tag because tag_of_hash forces the top bit.
//
// Dispatch is at runtime (AVX2 when the CPU has it, else SSE2 — baseline
// on x86-64), with a portable scalar fallback compiled when GH_NO_SIMD
// is defined or the target is not x86-64. force_simd_level() caps the
// level for SIMD-vs-scalar equivalence tests.
#pragma once

#include <atomic>
#include <bit>

#include "util/types.hpp"

#if defined(__x86_64__) && !defined(GH_NO_SIMD)
#include <immintrin.h>
#define GH_TAG_SIMD_X86 1
#else
#define GH_TAG_SIMD_X86 0
#endif

namespace gh::hash {

/// 1-byte fingerprint of a key hash. Uses the TOP hash bits — the low
/// bits pick the bucket (k = h & mask), so reusing them would make every
/// key in a level-1 slot share a tag. The forced top bit keeps occupied
/// tags disjoint from the empty marker 0.
[[nodiscard]] constexpr u8 tag_of_hash(u64 h) {
  return static_cast<u8>(0x80u | (h >> 57));
}

enum class SimdLevel : u8 { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

namespace detail {
inline std::atomic<u8>& simd_cap() {
  static std::atomic<u8> cap{static_cast<u8>(SimdLevel::kAvx2)};
  return cap;
}
}  // namespace detail

/// What the hardware supports (cached after the first call).
[[nodiscard]] inline SimdLevel detected_simd_level() {
#if GH_TAG_SIMD_X86
  static const SimdLevel lvl =
      __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2 : SimdLevel::kSse2;
  return lvl;
#else
  return SimdLevel::kScalar;
#endif
}

/// Test hook: cap the dispatch level (e.g. kScalar to run the portable
/// path on a machine with AVX2). Affects every table in the process.
inline void force_simd_level(SimdLevel cap) {
  detail::simd_cap().store(static_cast<u8>(cap), std::memory_order_relaxed);
}

/// The level probe loops actually use: min(detected, forced cap).
[[nodiscard]] inline SimdLevel active_simd_level() {
  const u8 cap = detail::simd_cap().load(std::memory_order_relaxed);
  const u8 det = static_cast<u8>(detected_simd_level());
  return static_cast<SimdLevel>(det < cap ? det : cap);
}

#if GH_TAG_SIMD_X86
/// Bitmask of positions in tags[0..16) equal to `tag` (SSE2, baseline).
[[nodiscard]] inline u32 tag_match_mask16(const u8* tags, u8 tag) {
  const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, probe)));
}

/// Bitmask of positions in tags[0..32) equal to `tag` (AVX2 via target
/// attribute — safe to compile without -mavx2; only called after the
/// runtime dispatch check).
[[nodiscard]] __attribute__((target("avx2"))) inline u32 tag_match_mask32(const u8* tags,
                                                                          u8 tag) {
  const __m256i probe = _mm256_set1_epi8(static_cast<char>(tag));
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
  return static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, probe)));
}
#endif

/// Visit the indices i in [0, n) with tags[i] == tag, in ascending order.
/// `visit(i)` returns true to stop early (key found). Loads are plain —
/// callers must hold the structure quiescent (single-threaded, or under
/// the shard/stripe write lock, or a lock-held read). The optimistic
/// seqlock read path must NOT use this; it scans with per-byte atomic
/// loads instead (core/optimistic_read.hpp).
template <class Visit>
inline void for_each_tag_match(const u8* tags, u32 n, u8 tag, Visit&& visit) {
  u32 i = 0;
#if GH_TAG_SIMD_X86
  const SimdLevel lvl = active_simd_level();
  if (lvl == SimdLevel::kAvx2) {
    for (; i + 32 <= n; i += 32) {
      u32 m = tag_match_mask32(tags + i, tag);
      while (m != 0) {
        if (visit(i + static_cast<u32>(std::countr_zero(m)))) return;
        m &= m - 1;
      }
    }
  }
  if (lvl >= SimdLevel::kSse2) {
    for (; i + 16 <= n; i += 16) {
      u32 m = tag_match_mask16(tags + i, tag);
      while (m != 0) {
        if (visit(i + static_cast<u32>(std::countr_zero(m)))) return;
        m &= m - 1;
      }
    }
  }
#endif
  for (; i < n; ++i) {
    if (tags[i] == tag && visit(i)) return;
  }
}

/// Atomic tag accessors. Writers store release so the optimistic readers'
/// relaxed loads never race (both sides atomic); lock-held readers may
/// keep using plain/SIMD loads, which the locks already order.
inline void tag_store(u8* slot, u8 v) {
  std::atomic_ref<u8>(*slot).store(v, std::memory_order_release);
}

[[nodiscard]] inline u8 tag_load_relaxed(const u8* slot) {
  return std::atomic_ref<const u8>(*slot).load(std::memory_order_relaxed);
}

}  // namespace gh::hash
