// Fingerprint-tag probing (Dash-style, PAPERS.md).
//
// Group hashing probes up to group_size (default 256) level-2 cells per
// lookup, each a full 8/16-byte key compare against PM-resident cells.
// This header adds the filtering layer in front of those compares: a
// DRAM-only array of 1-byte tags, one per cell, derived from the key
// hash. A probe first scans the group's tags — 256 contiguous bytes, 4
// cachelines — with SSE2/AVX2 equality compares and only dereferences
// the cells whose tag matches. With a 7-bit fingerprint the expected
// number of false-positive cell touches per miss is group_size/128 ≈ 2.
//
// The tag array is volatile by design: it is rebuilt from the cells on
// open/recovery, so the PM format (and the paper's 8-byte-commit crash
// discipline) is untouched. Invariant outside a mutation critical
// section: tag[i] == 0  ⟺  cell i unoccupied; otherwise tag[i] ==
// tag_of_hash(hash(cell key)). Tag 0 never collides with a live key's
// tag because tag_of_hash forces the top bit.
//
// Dispatch is at runtime (AVX2 when the CPU has it, else SSE2 — baseline
// on x86-64), with a portable scalar fallback compiled when GH_NO_SIMD
// is defined or the target is not x86-64. force_simd_level() caps the
// level for SIMD-vs-scalar equivalence tests.
#pragma once

#include <atomic>
#include <bit>

#include "util/types.hpp"

#if defined(__x86_64__) && !defined(GH_NO_SIMD)
#include <immintrin.h>
#define GH_TAG_SIMD_X86 1
#else
#define GH_TAG_SIMD_X86 0
#endif

namespace gh::hash {

/// 1-byte fingerprint of a key hash. Uses the TOP hash bits — the low
/// bits pick the bucket (k = h & mask), so reusing them would make every
/// key in a level-1 slot share a tag. The forced top bit keeps occupied
/// tags disjoint from the empty marker 0.
[[nodiscard]] constexpr u8 tag_of_hash(u64 h) {
  return static_cast<u8>(0x80u | (h >> 57));
}

enum class SimdLevel : u8 { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

namespace detail {
inline std::atomic<u8>& simd_cap() {
  static std::atomic<u8> cap{static_cast<u8>(SimdLevel::kAvx2)};
  return cap;
}
}  // namespace detail

/// What the hardware supports (cached after the first call).
[[nodiscard]] inline SimdLevel detected_simd_level() {
#if GH_TAG_SIMD_X86
  static const SimdLevel lvl =
      __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2 : SimdLevel::kSse2;
  return lvl;
#else
  return SimdLevel::kScalar;
#endif
}

/// Test hook: cap the dispatch level (e.g. kScalar to run the portable
/// path on a machine with AVX2). Affects every table in the process.
inline void force_simd_level(SimdLevel cap) {
  detail::simd_cap().store(static_cast<u8>(cap), std::memory_order_relaxed);
}

/// The level probe loops actually use: min(detected, forced cap).
[[nodiscard]] inline SimdLevel active_simd_level() {
  const u8 cap = detail::simd_cap().load(std::memory_order_relaxed);
  const u8 det = static_cast<u8>(detected_simd_level());
  return static_cast<SimdLevel>(det < cap ? det : cap);
}

#if GH_TAG_SIMD_X86
/// Bitmask of positions in tags[0..16) equal to `tag` (SSE2, baseline).
[[nodiscard]] inline u32 tag_match_mask16(const u8* tags, u8 tag) {
  const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, probe)));
}

/// Bitmask of positions in tags[0..32) equal to `tag` (AVX2 via target
/// attribute — safe to compile without -mavx2; only called after the
/// runtime dispatch check).
[[nodiscard]] __attribute__((target("avx2"))) inline u32 tag_match_mask32(const u8* tags,
                                                                          u8 tag) {
  const __m256i probe = _mm256_set1_epi8(static_cast<char>(tag));
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
  return static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, probe)));
}
#endif

/// Visit the indices i in [0, n) with tags[i] == tag, in ascending order.
/// `visit(i)` returns true to stop early (key found). Loads are plain —
/// callers must hold the structure quiescent (single-threaded, or under
/// the shard/stripe write lock, or a lock-held read). The optimistic
/// seqlock read path must NOT use this; it scans with per-byte atomic
/// loads instead (core/optimistic_read.hpp).
template <class Visit>
inline void for_each_tag_match(const u8* tags, u32 n, u8 tag, Visit&& visit) {
  u32 i = 0;
#if GH_TAG_SIMD_X86
  const SimdLevel lvl = active_simd_level();
  if (lvl == SimdLevel::kAvx2) {
    for (; i + 32 <= n; i += 32) {
      u32 m = tag_match_mask32(tags + i, tag);
      while (m != 0) {
        if (visit(i + static_cast<u32>(std::countr_zero(m)))) return;
        m &= m - 1;
      }
    }
  }
  if (lvl >= SimdLevel::kSse2) {
    for (; i + 16 <= n; i += 16) {
      u32 m = tag_match_mask16(tags + i, tag);
      while (m != 0) {
        if (visit(i + static_cast<u32>(std::countr_zero(m)))) return;
        m &= m - 1;
      }
    }
  }
#endif
  for (; i < n; ++i) {
    if (tags[i] == tag && visit(i)) return;
  }
}

// --- second-stage filter: 16-bit in-cell tags (Cell32) ---------------------
//
// 32-byte cells carry a 16-bit key tag inside their 64-bit commit word
// (bitmap(63) | tag(15..0)). The DRAM byte-tag sweep above leaves ~2
// candidates per group; before paying a full 16-byte key compare per
// candidate, this stage compares the candidates' commit words against the
// probe key's expected word in one vector compare. Only candidates whose
// in-cell tag ALSO matches get the key compare — a byte-tag collision
// (1/128) and an in-cell-tag collision (1/65536) must now coincide for a
// false full compare.

namespace detail {
#if GH_TAG_SIMD_X86
/// AVX2: gather 4 candidate commit words (cells are `stride_words` u64s
/// apart; the commit word is word 0) and compare all 4 at once.
__attribute__((target("avx2"))) inline u32 in_cell_filter_avx2(const u64* cell_words,
                                                               u32 stride_words, u32* idxs,
                                                               u32 count, u64 expect) {
  u32 out = 0;
  u32 i = 0;
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(expect));
  for (; i + 4 <= count; i += 4) {
    const __m256i vidx =
        _mm256_set_epi64x(static_cast<long long>(idxs[i + 3]) * stride_words,
                          static_cast<long long>(idxs[i + 2]) * stride_words,
                          static_cast<long long>(idxs[i + 1]) * stride_words,
                          static_cast<long long>(idxs[i + 0]) * stride_words);
    const __m256i v =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(cell_words), vidx,
                               /*scale=*/8);
    u32 m = static_cast<u32>(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, want))));
    while (m != 0) {
      idxs[out++] = idxs[i + static_cast<u32>(std::countr_zero(m))];
      m &= m - 1;
    }
  }
  for (; i < count; ++i) {
    if (cell_words[static_cast<u64>(idxs[i]) * stride_words] == expect) idxs[out++] = idxs[i];
  }
  return out;
}

/// SSE2 (baseline): pack 2 candidate commit words and compare pairwise.
/// SSE2 has no 64-bit equality, so require both 32-bit halves equal.
inline u32 in_cell_filter_sse2(const u64* cell_words, u32 stride_words, u32* idxs, u32 count,
                               u64 expect) {
  u32 out = 0;
  u32 i = 0;
  const __m128i want = _mm_set1_epi64x(static_cast<long long>(expect));
  for (; i + 2 <= count; i += 2) {
    const __m128i v =
        _mm_set_epi64x(static_cast<long long>(cell_words[static_cast<u64>(idxs[i + 1]) * stride_words]),
                       static_cast<long long>(cell_words[static_cast<u64>(idxs[i]) * stride_words]));
    const u32 m = static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi32(v, want)));
    if ((m & 0x00ffu) == 0x00ffu) idxs[out++] = idxs[i];
    if ((m & 0xff00u) == 0xff00u) idxs[out++] = idxs[i + 1];
  }
  for (; i < count; ++i) {
    if (cell_words[static_cast<u64>(idxs[i]) * stride_words] == expect) idxs[out++] = idxs[i];
  }
  return out;
}
#endif
}  // namespace detail

/// Keep only the candidates whose in-cell 64-bit commit word equals
/// `expect`. `cell_words` is the group's first cell viewed as u64s;
/// candidate i's commit word is cell_words[idxs[i] * stride_words].
/// Compacts `idxs` in place preserving order and returns the surviving
/// count. Dispatched like for_each_tag_match, same quiescence contract
/// (NOT for the optimistic seqlock read path).
[[nodiscard]] inline u32 filter_in_cell_tags(const u64* cell_words, u32 stride_words, u32* idxs,
                                             u32 count, u64 expect) {
#if GH_TAG_SIMD_X86
  const SimdLevel lvl = active_simd_level();
  if (lvl == SimdLevel::kAvx2) {
    return detail::in_cell_filter_avx2(cell_words, stride_words, idxs, count, expect);
  }
  if (lvl == SimdLevel::kSse2) {
    return detail::in_cell_filter_sse2(cell_words, stride_words, idxs, count, expect);
  }
#endif
  u32 out = 0;
  for (u32 i = 0; i < count; ++i) {
    if (cell_words[static_cast<u64>(idxs[i]) * stride_words] == expect) idxs[out++] = idxs[i];
  }
  return out;
}

/// Atomic tag accessors. Writers store release so the optimistic readers'
/// relaxed loads never race (both sides atomic); lock-held readers may
/// keep using plain/SIMD loads, which the locks already order.
inline void tag_store(u8* slot, u8 v) {
  std::atomic_ref<u8>(*slot).store(v, std::memory_order_release);
}

[[nodiscard]] inline u8 tag_load_relaxed(const u8* slot) {
  return std::atomic_ref<const u8>(*slot).load(std::memory_order_relaxed);
}

}  // namespace gh::hash
