// Per-table operation statistics. Orthogonal to nvm::PersistStats (which
// counts NVM traffic): these count algorithmic work — probes, level-2
// group probes, displacements, backward shifts, stash scans — the
// quantities the paper's analysis (§2.3, §4.2-4.3) reasons about.
#pragma once

#include <string>

#include "util/counters.hpp"
#include "util/types.hpp"

namespace gh::hash {

/// Result of an Algorithm-4 style recovery scan (and, for "-L" variants,
/// the undo-log rollback that precedes it).
struct RecoveryReport {
  u64 cells_scanned = 0;
  u64 cells_scrubbed = 0;
  u64 recovered_count = 0;
  u64 wal_records_rolled_back = 0;
  u64 media_errors = 0;  ///< poisoned cells hit (scrubbed/healed, contents lost)
  /// Ops the flight recorder (obs/flight_recorder.hpp) shows as in
  /// flight at the crash this recovery is repairing. Filled by the map
  /// layers (the raw table has no flight sidecar of its own); 0 when the
  /// recorder is off.
  u64 in_flight_ops = 0;
};

/// Result of an incremental integrity pass (scrub_groups): per-group
/// checksum verification over a window of groups, with quarantine of the
/// groups that fail. See hash/group_hashing.hpp.
struct ScrubReport {
  u64 groups_checked = 0;     ///< (level, group) pairs whose checksum was verified
  u64 cells_scanned = 0;
  u64 crc_mismatches = 0;     ///< group checksums that failed verification
  u64 groups_quarantined = 0; ///< groups quarantined by this pass
  u64 cells_lost = 0;         ///< occupied cells dropped from failed groups
  u64 cells_scrubbed = 0;     ///< torn/dropped payloads wiped
  u64 media_errors = 0;       ///< poisoned-line reads encountered (typed, contained)

  ScrubReport& operator+=(const ScrubReport& o) {
    groups_checked += o.groups_checked;
    cells_scanned += o.cells_scanned;
    crc_mismatches += o.crc_mismatches;
    groups_quarantined += o.groups_quarantined;
    cells_lost += o.cells_lost;
    cells_scrubbed += o.cells_scrubbed;
    media_errors += o.media_errors;
    return *this;
  }

  /// True when the scanned window showed no corruption of any kind.
  [[nodiscard]] bool clean() const {
    return crc_mismatches == 0 && cells_lost == 0 && media_errors == 0;
  }
};

/// One cell reported by scrub_groups when its group fails verification.
/// Key-normalized (Cell16 keys zero-extended to Key128) so the callback
/// signature is the same for every cell layout — the type-erased AnyTable
/// and the map layer forward it unchanged.
struct LostCell {
  u32 level = 0;       ///< 1 or 2
  u64 group = 0;       ///< group number within the level
  u64 cell_index = 0;  ///< cell index within the level
  Key128 key{};        ///< as read from media (zero when !readable)
  u64 value = 0;       ///< as read from media (zero when !readable)
  /// False when the cell itself sat on poisoned media — contents unknown.
  bool readable = true;
  /// True when the key still hashes back to this cell/group — the
  /// commit-word and key bits are self-consistent with the location.
  bool location_consistent = false;
  /// True when the cell was retained in place (ScrubMode::kSalvage);
  /// false when it was dropped and scrubbed. Salvaged cells are reported
  /// so nothing corrupt is ever served *silently*.
  bool salvaged = false;
};

/// Counters use RelaxedCounter so the concurrent wrappers can share a
/// table without data races; under concurrency statistics are
/// approximate (see util/counters.hpp), single-threaded they are exact.
struct TableStats {
  RelaxedCounter inserts;
  RelaxedCounter insert_failures;
  RelaxedCounter queries;
  RelaxedCounter query_hits;
  RelaxedCounter erases;
  RelaxedCounter erase_hits;
  RelaxedCounter probes;            ///< cells examined across all operations
  RelaxedCounter level2_probes;     ///< group hashing: collision-cell probes
  RelaxedCounter displacements;     ///< PFHT: cuckoo moves
  RelaxedCounter stash_probes;      ///< PFHT: stash cells examined
  RelaxedCounter backward_shifts;   ///< linear probing: cells moved on delete
  // Fingerprint-tag filter (group hashing; hash/tag_probe.hpp).
  RelaxedCounter tag_probes;           ///< tag-matched cells whose full key was compared
  RelaxedCounter tag_skips;            ///< cells skipped without a key compare
  RelaxedCounter tag_false_positives;  ///< tag matched but the key did not
  // Batched multi-op API.
  RelaxedCounter batch_ops;            ///< *_batch calls
  RelaxedCounter batch_keys;           ///< keys submitted across all *_batch calls
  RelaxedCounter prefetches_issued;    ///< software prefetches issued by find_batch
  // Integrity counters (group hashing with per-group checksums).
  RelaxedCounter groups_scrubbed;     ///< (level, group) checksum verifications run
  RelaxedCounter cells_scrubbed;      ///< payloads wiped by recovery/scrub passes
  RelaxedCounter crc_mismatches;      ///< group checksum failures detected
  RelaxedCounter groups_quarantined;  ///< groups quarantined after a failure
  RelaxedCounter cells_lost;          ///< occupied cells dropped as unrecoverable
  RelaxedCounter media_errors;        ///< poisoned-line reads surfaced as MediaError

  void clear() { *this = TableStats{}; }

  [[nodiscard]] std::string to_string() const {
    return "inserts=" + std::to_string(inserts) + "(" + std::to_string(insert_failures) +
           " failed) queries=" + std::to_string(queries) + "/" + std::to_string(query_hits) +
           " erases=" + std::to_string(erases) + "/" + std::to_string(erase_hits) +
           " probes=" + std::to_string(probes) +
           " l2probes=" + std::to_string(level2_probes) +
           " displacements=" + std::to_string(displacements) +
           " stash_probes=" + std::to_string(stash_probes) +
           " shifts=" + std::to_string(backward_shifts) +
           " tag_probes=" + std::to_string(tag_probes) + "(" +
           std::to_string(tag_false_positives) + " fp) tag_skips=" +
           std::to_string(tag_skips) + " batch=" + std::to_string(batch_ops) + "ops/" +
           std::to_string(batch_keys) + "keys prefetches=" +
           std::to_string(prefetches_issued) +
           " scrubbed=" + std::to_string(groups_scrubbed) + "g/" +
           std::to_string(cells_scrubbed) + "c crc_mismatches=" +
           std::to_string(crc_mismatches) + " quarantined=" +
           std::to_string(groups_quarantined) + " lost=" + std::to_string(cells_lost) +
           " media_errors=" + std::to_string(media_errors);
  }
};

}  // namespace gh::hash
