// Per-table operation statistics. Orthogonal to nvm::PersistStats (which
// counts NVM traffic): these count algorithmic work — probes, level-2
// group probes, displacements, backward shifts, stash scans — the
// quantities the paper's analysis (§2.3, §4.2-4.3) reasons about.
#pragma once

#include <string>

#include "util/counters.hpp"
#include "util/types.hpp"

namespace gh::hash {

/// Result of an Algorithm-4 style recovery scan (and, for "-L" variants,
/// the undo-log rollback that precedes it).
struct RecoveryReport {
  u64 cells_scanned = 0;
  u64 cells_scrubbed = 0;
  u64 recovered_count = 0;
  u64 wal_records_rolled_back = 0;
};

/// Counters use RelaxedCounter so the concurrent wrappers can share a
/// table without data races; under concurrency statistics are
/// approximate (see util/counters.hpp), single-threaded they are exact.
struct TableStats {
  RelaxedCounter inserts;
  RelaxedCounter insert_failures;
  RelaxedCounter queries;
  RelaxedCounter query_hits;
  RelaxedCounter erases;
  RelaxedCounter erase_hits;
  RelaxedCounter probes;            ///< cells examined across all operations
  RelaxedCounter level2_probes;     ///< group hashing: collision-cell probes
  RelaxedCounter displacements;     ///< PFHT: cuckoo moves
  RelaxedCounter stash_probes;      ///< PFHT: stash cells examined
  RelaxedCounter backward_shifts;   ///< linear probing: cells moved on delete

  void clear() { *this = TableStats{}; }

  [[nodiscard]] std::string to_string() const {
    return "inserts=" + std::to_string(inserts) + "(" + std::to_string(insert_failures) +
           " failed) queries=" + std::to_string(queries) + "/" + std::to_string(query_hits) +
           " erases=" + std::to_string(erases) + "/" + std::to_string(erase_hits) +
           " probes=" + std::to_string(probes) +
           " l2probes=" + std::to_string(level2_probes) +
           " displacements=" + std::to_string(displacements) +
           " stash_probes=" + std::to_string(stash_probes) +
           " shifts=" + std::to_string(backward_shifts);
  }
};

}  // namespace gh::hash
