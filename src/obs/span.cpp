#include "obs/span.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace gh::obs {

const char* trace_mode_name(TraceMode m) {
  switch (m) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSampled: return "sampled";
    case TraceMode::kFull: return "full";
  }
  return "off";
}

TraceMode trace_mode_from(std::string_view name) {
  if (name == "sampled") return TraceMode::kSampled;
  if (name == "full") return TraceMode::kFull;
  return TraceMode::kOff;
}

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kRingWait: return "ring_wait";
    case SpanKind::kShardVisit: return "shard_visit";
    case SpanKind::kOpInsert: return "insert";
    case SpanKind::kOpFind: return "find";
    case SpanKind::kOpErase: return "erase";
    case SpanKind::kOpMigrate: return "migrate";
    case SpanKind::kOpOther: return "lifecycle";
    case SpanKind::kPhaseProbe: return "probe";
    case SpanKind::kPhasePersist: return "persist";
    case SpanKind::kPhaseFence: return "fence";
    case SpanKind::kPhaseMigrateHelp: return "migrate_help";
    case SpanKind::kWake: return "wake";
  }
  return "unknown";
}

SpanKind span_kind_for_op(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert: return SpanKind::kOpInsert;
    case OpKind::kFind: return SpanKind::kOpFind;
    case OpKind::kErase: return SpanKind::kOpErase;
    case OpKind::kMigrate: return SpanKind::kOpMigrate;
    case OpKind::kExpand:
    case OpKind::kScrub:
    case OpKind::kRecover:
    case OpKind::kCompact: return SpanKind::kOpOther;
  }
  return SpanKind::kOpOther;
}

// ---------------------------------------------------------------------------
// SpanRing / SpanCollector.

SpanRing::SpanRing(u32 capacity) { buf_.resize(capacity == 0 ? 1 : capacity); }

void SpanRing::emit(const SpanRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == buf_.size()) dropped_.fetch_add(1, std::memory_order_relaxed);
  buf_[head_] = r;
  head_ = (head_ + 1) % static_cast<u32>(buf_.size());
  if (count_ < buf_.size()) ++count_;
}

void SpanRing::drain(std::vector<SpanRecord>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const u32 cap = static_cast<u32>(buf_.size());
  u32 idx = (head_ + cap - count_) % cap;
  for (u32 i = 0; i < count_; ++i) {
    out.push_back(buf_[idx]);
    idx = (idx + 1) % cap;
  }
  count_ = 0;
}

SpanCollector& SpanCollector::global() {
  static SpanCollector collector;
  return collector;
}

SpanRing& SpanCollector::ring_for_this_thread() {
  thread_local SpanRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_shared<SpanRing>(ring_capacity_.load(std::memory_order_relaxed));
    ring = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::move(owned));
    any_ring_.store(true, std::memory_order_relaxed);
  }
  return *ring;
}

std::vector<SpanRecord> SpanCollector::drain_all() {
  std::vector<std::shared_ptr<SpanRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& r : rings) r->drain(out);
  return out;
}

u64 SpanCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

bool SpanCollector::any_ring() const { return any_ring_.load(std::memory_order_relaxed); }

void SpanCollector::set_ring_capacity(u32 capacity) {
  ring_capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
}

namespace {

u32 this_thread_index() {
  static std::atomic<u32> next{0};
  thread_local const u32 idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace

u32 emit_span(SpanKind kind, u64 trace_id, u32 parent, u64 t_start, u64 t_end,
              u8 shard) {
  if constexpr (!kEnabled) return 0;
  const u32 id = SpanCollector::global().next_span_id();
  emit_span_with_id(kind, trace_id, id, parent, t_start, t_end, shard);
  return id;
}

void emit_span_with_id(SpanKind kind, u64 trace_id, u32 span_id, u32 parent,
                       u64 t_start, u64 t_end, u8 shard) {
  if constexpr (!kEnabled) return;
  SpanRecord r;
  r.trace_id = trace_id;
  r.t_start = t_start;
  r.t_end = t_end >= t_start ? t_end : t_start;
  r.span_id = span_id;
  r.parent_id = parent;
  r.tid = this_thread_index();
  r.kind = static_cast<u8>(kind);
  r.shard = shard;
  SpanCollector::global().ring_for_this_thread().emit(r);
}

// ---------------------------------------------------------------------------
// Thread trace context & phase finalization.

void set_thread_trace(u64 trace_id, u32 parent_span, bool sampled) {
  if constexpr (!kEnabled) return;
  detail::t_trace.trace_id = trace_id;
  detail::t_trace.parent = parent_span;
  detail::t_trace.sampled = sampled;
}

void clear_thread_trace() {
  if constexpr (!kEnabled) return;
  detail::t_trace = ThreadTrace{};
}

PhaseSnapshot PhaseAccum::snapshot() const {
  PhaseSnapshot s;
  if constexpr (!kEnabled) return s;
  const double tpn = ticks_per_ns();
  for (usize k = 0; k < kOpKinds; ++k) {
    const Row& r = rows_[k];
    PhaseSnapshot::Row& out = s.rows[k];
    out.samples = r.samples.load(std::memory_order_relaxed);
    out.op_ns = static_cast<u64>(
        static_cast<double>(r.op_ticks.load(std::memory_order_relaxed)) / tpn);
    for (usize p = 0; p < kPhases; ++p) {
      out.phase_ns[p] = static_cast<u64>(
          static_cast<double>(r.ticks[p].load(std::memory_order_relaxed)) / tpn);
    }
  }
  return s;
}

void PhaseAccum::reset() {
  for (Row& r : rows_) {
    r.samples.store(0, std::memory_order_relaxed);
    r.op_ticks.store(0, std::memory_order_relaxed);
    for (auto& t : r.ticks) t.store(0, std::memory_order_relaxed);
  }
}

void phase_collect_finish(PhaseAccum& acc, OpKind kind, u64 t0, u64 dt_ticks,
                          u8 shard) {
  if constexpr (!kEnabled) return;
  ThreadPhase& tp = detail::t_phase;
  if (!tp.collecting || tp.owner_t0 != t0) return;
  tp.collecting = false;
  const u64 persist = tp.persist;
  const u64 fence = tp.fence;
  const u64 help = tp.help;
  const u64 bracketed = persist + fence + help;
  // The brackets each pay their own rdtsc pair, so their sum can edge
  // past the op's measured dt by a few ticks; take the larger as the
  // attributed total so probe (the residual) never underflows.
  const u64 op_ticks = dt_ticks > bracketed ? dt_ticks : bracketed;
  const u64 probe = op_ticks - bracketed;
  const u64 phase_ticks[kPhases] = {0, probe, persist, fence, help};
  acc.add(kind, op_ticks, phase_ticks);

  const ThreadTrace& tt = detail::t_trace;
  if (!tt.sampled || tt.trace_id == 0) return;
  const u32 op_span = emit_span(span_kind_for_op(kind), tt.trace_id, tt.parent,
                                t0, t0 + op_ticks, shard);
  // Synthetic phase children: the real persist/fence intervals
  // interleave with probing, but only the per-phase totals are kept, so
  // render them as a sequential partition of the op span.
  u64 cursor = t0;
  const SpanKind kinds[kPhases] = {SpanKind::kRingWait, SpanKind::kPhaseProbe,
                                   SpanKind::kPhasePersist, SpanKind::kPhaseFence,
                                   SpanKind::kPhaseMigrateHelp};
  for (usize p = 1; p < kPhases; ++p) {  // skip kRingWait: service-level
    if (phase_ticks[p] == 0) continue;
    emit_span(kinds[p], tt.trace_id, op_span, cursor, cursor + phase_ticks[p], shard);
    cursor += phase_ticks[p];
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event rendering.

std::string render_trace_json(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  std::string out = "{\"traceEvents\":[\n";
  char buf[64];
  for (usize i = 0; i < events.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "{\"ts\":%.3f,", events[i].ts_us);
    out += buf;
    out += events[i].body;
    out += i + 1 < events.size() ? "},\n" : "}\n";
  }
  out += "]}\n";
  return out;
}

void append_span_trace_events(const std::vector<SpanRecord>& spans,
                              double ticks_per_ns, u64 base_ticks,
                              std::vector<TraceEvent>& out) {
  const double tpn = ticks_per_ns > 0 ? ticks_per_ns : 1.0;
  char buf[256];
  for (const SpanRecord& s : spans) {
    const u64 rel = s.t_start >= base_ticks ? s.t_start - base_ticks : 0;
    const double ts_us = static_cast<double>(rel) / tpn / 1000.0;
    const double dur_us = static_cast<double>(s.t_end - s.t_start) / tpn / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"%s\",\"ph\":\"X\",\"dur\":%.3f,\"pid\":2,\"tid\":%u,"
                  "\"args\":{\"trace_id\":%" PRIu64 ",\"span\":%u,\"parent\":%u,\"shard\":%u}",
                  span_kind_name(static_cast<SpanKind>(s.kind)), dur_us, s.tid,
                  s.trace_id, s.span_id, s.parent_id, s.shard);
    out.push_back(TraceEvent{ts_us, buf});
  }
}

// ---------------------------------------------------------------------------
// Span file I/O.

namespace {

struct SpanFileHeader {
  u64 magic = kSpanFileMagic;
  u64 count = 0;
  u64 base_ticks = 0;
  double ticks_per_ns = 1.0;
};

}  // namespace

bool write_spans_file(const std::string& path, const std::vector<SpanRecord>& spans,
                      double tpn) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  SpanFileHeader h;
  h.count = spans.size();
  h.ticks_per_ns = tpn;
  u64 base = ~u64{0};
  for (const SpanRecord& s : spans) base = s.t_start < base ? s.t_start : base;
  h.base_ticks = spans.empty() ? 0 : base;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!spans.empty()) {
    out.write(reinterpret_cast<const char*>(spans.data()),
              static_cast<std::streamsize>(spans.size() * sizeof(SpanRecord)));
  }
  return out.good();
}

SpanFile read_spans_file(const std::string& path) {
  SpanFile f;
  std::ifstream in(path, std::ios::binary);
  if (!in) return f;
  SpanFileHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || h.magic != kSpanFileMagic) return f;
  if (h.count > (1u << 28)) return f;  // implausible; refuse to allocate
  f.spans.resize(h.count);
  if (h.count != 0) {
    in.read(reinterpret_cast<char*>(f.spans.data()),
            static_cast<std::streamsize>(h.count * sizeof(SpanRecord)));
    if (!in) {
      f.spans.clear();
      return f;
    }
  }
  f.ticks_per_ns = h.ticks_per_ns > 0 ? h.ticks_per_ns : 1.0;
  f.base_ticks = h.base_ticks;
  f.valid = true;
  return f;
}

}  // namespace gh::obs
