// Unified observability layer — process-wide metrics registry, lock-free
// counters and log₂-bucketed latency histograms, and optional per-op
// trace hooks.
//
// Design constraints (this is hot-path instrumentation):
//   * recording is wait-free and lock-prefix-free: histograms and striped
//     counters use relaxed load-add-store (the RelaxedCounter discipline
//     of util/counters.hpp) — under true concurrency increments may be
//     lost, but values are always defined and never decrease;
//   * timestamps are raw TSC ticks (one rdtsc per edge, no serialization,
//     no syscall); ticks convert to nanoseconds only at snapshot/export
//     time via the calibrated clock in util/clock.hpp;
//   * per-shard/per-map state is sharded by construction (each map owns
//     its OpRecorder; the process-global PM event counters are striped by
//     thread), so no cacheline is contended across writers;
//   * compiling with GH_OBS_OFF reduces every hook — record(), add(),
//     now_ticks(), trace_op() — to a no-op with zero residue on the hot
//     path. The registry/export surface stays linkable (it reports
//     zeros), so callers never need #ifdefs.
//
// Registration (MetricsRegistry::global()) takes a mutex; it happens at
// map construction, never per operation.
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace gh::obs {

#ifdef GH_OBS_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Schema version stamped into every exported snapshot/registry dump.
inline constexpr u32 kSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Clock: raw TSC ticks on the hot path, ns conversion at snapshot time.

/// Raw monotonic tick counter (rdtsc on x86; steady clock ns elsewhere).
/// Always 0 when GH_OBS_OFF so the hook costs nothing.
u64 now_ticks_slow();

inline u64 now_ticks() {
  if constexpr (!kEnabled) return 0;
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return now_ticks_slow();
#endif
}

/// Ticks per nanosecond (1.0 when ticks already are ns). First call may
/// spend ~20 ms calibrating; cached afterwards. Never called on hot paths.
double ticks_per_ns();

/// Default latency-sampling shift: time 1 in 2^6 ops. Reading the TSC is
/// far from free — on virtualized hosts each rdtsc also acts as a
/// speculation barrier, serializing the probe loads it brackets (measured
/// ~300 ns per DRAM-speed op, dwarfing the op itself). Sampling keeps the
/// percentile estimates (latency is recorded for every 64th op, which is
/// unbiased for a steady workload) while amortizing that cost to ~2% of
/// one op. Set the shift to 0 (MapOptions/TableConfig/Options
/// latency_sample_shift) to time every op; exact op COUNTS always come
/// from TableStats — histogram counts are sampled ops by design.
inline constexpr u32 kDefaultSampleShift = 6;

/// Per-structure admission gate for sampled timing. Deliberately plain
/// (non-atomic): each map is single-writer per the repo's thread model
/// (the concurrent wrappers serialize mutations per shard), and a rare
/// torn increment merely perturbs which op gets sampled.
class SampleGate {
 public:
  void set_shift(u32 shift) { mask_ = (u64{1} << (shift < 63 ? shift : 63)) - 1; }
  /// True when this op should be timed. Always advances the sequence.
  bool admit() { return (seq_++ & mask_) == 0; }

 private:
  u64 seq_ = 0;
  u64 mask_ = (u64{1} << kDefaultSampleShift) - 1;
};

/// Convert a tick delta to nanoseconds (snapshot/export-time only).
inline u64 ticks_to_ns(u64 ticks) {
  const double tpn = ticks_per_ns();
  return tpn > 0 ? static_cast<u64>(static_cast<double>(ticks) / tpn) : ticks;
}

// ---------------------------------------------------------------------------
// Counters.

/// Process-wide hot counter, striped across cachelines by thread so
/// concurrent writers never bounce a line. Loads sum the stripes.
class StripedCounter {
 public:
  static constexpr usize kStripes = 8;

  void add(u64 d) {
    if constexpr (!kEnabled) return;
    auto& v = stripes_[stripe_index()].v;
    v.store(v.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }

  [[nodiscard]] u64 load() const {
    u64 total = 0;
    for (const Stripe& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCachelineSize) Stripe {
    std::atomic<u64> v{0};
  };

  static usize stripe_index() {
    // One stripe per thread (mod kStripes), assigned round-robin on first
    // use; threads never migrate stripes, so per-thread updates stay in
    // one L1 line.
    static std::atomic<usize> next{0};
    static thread_local const usize idx =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return idx;
  }

  std::array<Stripe, kStripes> stripes_{};
};

// ---------------------------------------------------------------------------
// Latency histogram.

/// Snapshot-time view of one histogram, in nanoseconds.
struct HistogramSnapshot {
  u64 count = 0;
  u64 sum_ns = 0;
  u64 max_ns = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  /// Sparse non-empty buckets as (tick-domain bucket index, count) pairs,
  /// ascending by index. Carrying the raw distribution is what lets
  /// merge() recompute exact percentiles for an aggregate: merged
  /// mean/p50/p95/p99/p999 equal those of one histogram holding the union of
  /// samples, not a lossy average of per-shard percentiles.
  std::vector<std::pair<u32, u64>> buckets;

  /// Fold `o` into this snapshot: counts/sums/max add, bucket lists
  /// merge, and the derived statistics are recomputed from the merged
  /// distribution.
  void merge(const HistogramSnapshot& o);
};

/// Log₂-bucketed latency histogram (64 power-of-two ranges × 8 linear
/// sub-buckets ⇒ ≤ ~6% relative error on percentiles). record() is a
/// handful of relaxed loads/stores on one 4 KB array; values are raw
/// ticks, converted to ns by snapshot().
class LatencyHistogram {
 public:
  static constexpr usize kSubBits = 3;
  static constexpr usize kSub = 1u << kSubBits;
  static constexpr usize kBuckets = (64 - kSubBits + 1) * kSub;

  void record(u64 ticks) {
    if constexpr (!kEnabled) return;
    auto& b = buckets_[bucket_for(ticks)];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + ticks, std::memory_order_relaxed);
    u64 prev = max_.load(std::memory_order_relaxed);
    while (ticks > prev &&
           !max_.compare_exchange_weak(prev, ticks, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    if constexpr (!kEnabled) return;
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Derived count (sum of buckets). Monotone across successive calls:
  /// each bucket only ever grows.
  [[nodiscard]] u64 count() const {
    u64 total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  /// Consistent point-in-time view with tick→ns conversion applied.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Add `o`'s sampled counts into this histogram (snapshot-time
  /// aggregation across shards; not a hot-path call).
  void merge(const LatencyHistogram& o) {
    if constexpr (!kEnabled) return;
    for (usize i = 0; i < kBuckets; ++i) {
      const u64 d = o.buckets_[i].load(std::memory_order_relaxed);
      if (d != 0) {
        auto& b = buckets_[i];
        b.store(b.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
      }
    }
    sum_.store(sum_.load(std::memory_order_relaxed) +
                   o.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    const u64 omax = o.max_.load(std::memory_order_relaxed);
    if (omax > max_.load(std::memory_order_relaxed)) {
      max_.store(omax, std::memory_order_relaxed);
    }
  }

  static usize bucket_for(u64 v) {
    if (v < kSub) return static_cast<usize>(v);
    usize msb = 63 - static_cast<usize>(__builtin_clzll(v));
    return ((msb - kSubBits + 1) << kSubBits) |
           static_cast<usize>((v >> (msb - kSubBits)) & (kSub - 1));
  }

  /// Midpoint (in ticks) of a bucket, for percentile interpolation.
  static double bucket_midpoint(usize bucket);

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

// ---------------------------------------------------------------------------
// Per-op trace hook.

/// Operation kinds traced/timed across the stack.
enum class OpKind : u8 {
  kInsert = 0,
  kFind,
  kErase,
  kExpand,
  kScrub,
  kRecover,
  kCompact,
  kMigrate,  ///< online-resize incremental migration (one logical resize)
};
inline constexpr usize kOpKinds = 8;

const char* op_kind_name(OpKind kind);

/// Where a request's time went — the attribution axes of the `phases`
/// snapshot section and the per-request span tree (obs/span.hpp).
/// kRingWait is service-level (enqueue → worker pop); the rest bracket
/// map-level work: kPersist/kFence are time inside the PM policy's
/// flush/fence, kMigrateHelp is the help-along stall a mutating op pays
/// while an online resize drains, and kProbe is the residual (hashing,
/// tag probes, cell compares) so the five phases of one sampled op sum
/// exactly to its attributed time.
enum class Phase : u8 {
  kRingWait = 0,
  kProbe = 1,
  kPersist = 2,
  kFence = 3,
  kMigrateHelp = 4,
};
inline constexpr usize kPhases = 5;

const char* phase_name(Phase phase);

// ---------------------------------------------------------------------------
// Online-resize migration phases.
//
// A migration is one long-lived kMigrate flight op spanning thousands of
// data ops. Each step packs its phase and the durable cursor into the
// record's key_hash word — (phase << 56) | cursor — so an interrupted
// resize is reconstructible from the newest surviving record alone:
// `gh_stats --flight` decodes it back into a phase name + resume cursor.

enum class MigrationPhase : u8 {
  kNone = 0,
  kStart = 1,      ///< target region created + formatted
  kPublished = 2,  ///< cursor word activated in the source superblock
  kCursor = 3,     ///< cursor advanced past another batch of groups
  kFinalize = 4,   ///< final sync + rename of the target over the source
  kRetire = 5,     ///< old region retired; migration complete
  kResume = 6,     ///< reopen picked the migration up from the durable cursor
  kEmergency = 7,  ///< fell back to a blocking merged expand
};

const char* migration_phase_name(MigrationPhase phase);

inline u64 encode_migration_mark(MigrationPhase phase, u64 cursor) {
  return (static_cast<u64>(phase) << 56) | (cursor & ((1ull << 56) - 1));
}
inline MigrationPhase decode_migration_phase(u64 key_hash) {
  const u64 p = key_hash >> 56;
  return p <= static_cast<u64>(MigrationPhase::kEmergency)
             ? static_cast<MigrationPhase>(p)
             : MigrationPhase::kNone;
}
inline u64 decode_migration_cursor(u64 key_hash) { return key_hash & ((1ull << 56) - 1); }

/// Phase tag carried by flight-recorder records (obs/flight_recorder.hpp).
/// kStart/kFinish bracket an op; kPublish marks the irreversible publish
/// step inside expand/compact (the paper's 8-byte commit); kEvent tags a
/// standalone lifecycle fact (quarantine, degradation) that is never
/// "in flight".
enum class FlightPhase : u8 {
  kStart = 0,
  kPublish = 1,
  kFinish = 2,
  kEvent = 3,
};

const char* flight_phase_name(FlightPhase phase);

/// Flight-recorder fidelity. kSampled records 1 in 2^shift data ops plus
/// every lifecycle op (expand/compact/scrub/recover); kFull records
/// everything; kOff writes nothing and allocates no sidecar.
enum class FlightMode : u8 {
  kOff = 0,
  kSampled = 1,
  kFull = 2,
};

/// Default flight sampling shift: 1 in 2^7 data ops. The wrapped-ring
/// emit protocol costs up to three cacheline flushes per record (see
/// flight_recorder.hpp); at the paper's 300 ns flush model that is
/// ~1.8 µs per sampled op edge pair, so 1/128 keeps the recorder inside
/// the obs layer's ≤2% insert-overhead budget. Lifecycle ops bypass the
/// gate — they are rare and are exactly the records crash forensics
/// needs.
inline constexpr u32 kFlightSampleShift = 7;

/// One traced operation. `ns` is wall time; `lines_flushed` is the NVM
/// lines the op flushed (approximate when the PM is shared by threads).
struct OpTrace {
  OpKind kind = OpKind::kInsert;
  u64 key_hash = 0;
  u64 ns = 0;
  u64 lines_flushed = 0;
};

using TraceFn = void (*)(void* ctx, const OpTrace& op);

namespace detail {
struct TraceHook {
  TraceFn fn = nullptr;
  void* ctx = nullptr;
};
extern std::atomic<const TraceHook*> g_trace_hook;
}  // namespace detail

/// Install (or, with nullptr, clear) the process-wide per-op trace hook.
/// The hook must be callable from any thread; keep it cheap. Not
/// intended for concurrent install/uninstall races with in-flight ops —
/// install at startup, clear at shutdown (tests serialize around it).
void set_trace_hook(TraceFn fn, void* ctx);

[[nodiscard]] inline bool trace_hook_installed() {
  if constexpr (!kEnabled) return false;
  return detail::g_trace_hook.load(std::memory_order_relaxed) != nullptr;
}

inline void trace_op(OpKind kind, u64 key_hash, u64 ticks, u64 lines_flushed) {
  if constexpr (!kEnabled) return;
  const detail::TraceHook* h = detail::g_trace_hook.load(std::memory_order_acquire);
  if (h != nullptr && h->fn != nullptr) {
    h->fn(h->ctx, OpTrace{kind, key_hash, ticks_to_ns(ticks), lines_flushed});
  }
}

// ---------------------------------------------------------------------------
// OpRecorder: one structure's per-op latency histograms.

/// The latency side of a map/table's observability: one histogram per op
/// kind. Owned via unique_ptr by each map (stable address across moves)
/// and attached to the global registry under the map's name.
class OpRecorder {
 public:
  [[nodiscard]] LatencyHistogram& of(OpKind kind) {
    return histograms_[static_cast<usize>(kind)];
  }
  [[nodiscard]] const LatencyHistogram& of(OpKind kind) const {
    return histograms_[static_cast<usize>(kind)];
  }

  void record(OpKind kind, u64 ticks) { of(kind).record(ticks); }

  void reset() {
    for (auto& h : histograms_) h.reset();
  }

  /// Snapshot-time aggregation (e.g. across the shards of a concurrent
  /// map): adds `o`'s counts into this recorder.
  void merge(const OpRecorder& o) {
    for (usize k = 0; k < kOpKinds; ++k) histograms_[k].merge(o.histograms_[k]);
  }

 private:
  std::array<LatencyHistogram, kOpKinds> histograms_;
};

// ---------------------------------------------------------------------------
// Process-wide PM event counters (all persistence policies feed these).

/// Aggregate NVM-traffic events across every PM instance in the process,
/// striped by thread. The per-instance PersistStats remain the exact
/// per-structure view; these answer "what is this *process* doing to the
/// media right now" without walking instances.
struct PmEvents {
  StripedCounter persist_calls;
  StripedCounter lines_flushed;
  StripedCounter fences;

  void reset() {
    persist_calls.reset();
    lines_flushed.reset();
    fences.reset();
  }
};

PmEvents& pm_events();

/// Hook called by every persistence policy's persist(). Inline and
/// branch-free; compiles out under GH_OBS_OFF.
inline void on_pm_persist(u64 lines) {
  if constexpr (!kEnabled) return;
  PmEvents& e = pm_events();
  e.persist_calls.add(1);
  e.lines_flushed.add(lines);
}

inline void on_pm_fence() {
  if constexpr (!kEnabled) return;
  pm_events().fences.add(1);
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

/// Process-wide registry of named counters/histograms plus the
/// OpRecorders of live maps/tables. Registration locks a mutex; reads of
/// registered metrics are lock-free. collect() walks everything under
/// the registration lock (attach/detach excluded, increments not).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Named process counter; same name returns the same counter.
  StripedCounter& counter(std::string_view name);
  /// Named process histogram; same name returns the same histogram.
  LatencyHistogram& histogram(std::string_view name);

  /// Attach a live OpRecorder under `name` (duplicate names allowed —
  /// e.g. the shards of one concurrent map). Returns an id for detach().
  u64 attach(std::string name, const OpRecorder* recorder);
  void detach(u64 id);

  struct CounterSample {
    std::string name;
    u64 value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot hist;
  };
  struct RecorderSample {
    std::string name;
    std::array<HistogramSnapshot, kOpKinds> ops;
  };
  struct RegistrySnapshot {
    u32 version = kSchemaVersion;
    std::vector<CounterSample> counters;
    std::vector<HistogramSample> histograms;
    std::vector<RecorderSample> recorders;
  };

  [[nodiscard]] RegistrySnapshot collect() const;

  /// Tests only: zero every registered metric and the PM event counters
  /// (attached recorders are left alone — their owners reset them).
  void reset_all();

 private:
  struct Named {
    std::string name;
  };
  struct NamedCounter : Named {
    StripedCounter counter;
  };
  struct NamedHistogram : Named {
    LatencyHistogram histogram;
  };
  struct AttachedRecorder {
    u64 id = 0;
    std::string name;
    const OpRecorder* recorder = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<NamedCounter> counters_;
  std::deque<NamedHistogram> histograms_;
  std::vector<AttachedRecorder> recorders_;
  u64 next_id_ = 1;
};

/// RAII attachment of an OpRecorder to the global registry. Movable so
/// maps can hold one by value; detaches (once) on destruction.
class Registration {
 public:
  Registration() = default;
  Registration(std::string name, const OpRecorder* recorder)
      : id_(MetricsRegistry::global().attach(std::move(name), recorder)) {}
  Registration(Registration&& o) noexcept : id_(o.id_) { o.id_ = 0; }
  Registration& operator=(Registration&& o) noexcept {
    if (this != &o) {
      release();
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;
  ~Registration() { release(); }

 private:
  void release() {
    if (id_ != 0) MetricsRegistry::global().detach(id_);
    id_ = 0;
  }

  u64 id_ = 0;
};

}  // namespace gh::obs
