// NVM-persistent flight recorder — a crash-surviving "black box" of
// recent operations.
//
// The rest of the obs layer (metrics.hpp, snapshot.hpp) is DRAM-only:
// after a crash it can say that recovery restored invariants but not
// what the table was DOING when it died. The flight recorder closes that
// gap with per-thread ring buffers of fixed 32-byte op-event records
// living in a sidecar PM region (`<map>.flight`) allocated through the
// same region + persistence layers as the data file, so it participates
// in latency injection (DirectPM flush spin), fault injection (FaultFs
// sees the sidecar's create) and crash simulation (ShadowPM, in tests).
//
// Record layout — one half cacheline, the In-Cache-Line-Logging shape
// (ASPLOS 2019) with the paper's own 8-byte-commit discipline:
//
//     u64 key_hash   payload: key hash, or event payload for kEvent
//     u64 seqno      payload: op id (groups the start/publish/finish
//                    records of one op across phases)
//     u64 tsc        payload: raw TSC at emit time
//     u64 commit     [63:48] magic  [47:32] crc16 of the 3 payload words
//                    [31:16] ring   [15:8] FlightPhase  [7:0] OpKind
//
// Emit protocol (mirrors the data path's publish protocol):
//   1. if the slot has been used before (ring wrapped): atomically zero
//      the commit word and persist it — otherwise a crash mid-overwrite
//      could pair the OLD valid commit with a partially-NEW payload, a
//      torn record;
//   2. store the three payload words, persist (24 B, one flush);
//   3. atomically store the commit word, persist (8 B, one flush).
// Under the arbitrary-subset crash model every slot is therefore in one
// of three states: old record intact, empty (commit 0), or new record
// complete — never torn. The crash-fuzz suite asserts exactly this
// across eviction schedules. Step 1 is batched kInvalidateBatch slots
// ahead, and is skipped entirely on the virgin first lap.
//
// Reading the box: reopen scans the rings (scan_flight), reconstructs
// the set of ops in flight at the crash — an op is in flight when it has
// a start or publish record but no finish — surfaces it in the recovery
// report and obs::Snapshot, then reformats the rings for the new run.
// `gh_stats --flight <file>` renders the same scan as a text timeline or
// Chrome trace-event JSON without opening the map.
//
// Under GH_OBS_OFF every emit hook constant-folds away, the maps never
// create the sidecar, and only the offline scan/export surface (plain
// byte readers) stays live so gh_stats can still inspect foreign files.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/crc32c.hpp"
#include "util/types.hpp"

namespace gh::obs {

// ---------------------------------------------------------------------------
// On-media format.

/// One 32-byte flight record: three payload words and one commit word.
struct FlightRecord {
  u64 key_hash = 0;
  u64 seqno = 0;
  u64 tsc = 0;
  u64 commit = 0;
};
static_assert(sizeof(FlightRecord) == 32);

/// Commit-word tag ([63:48]); distinguishes a committed record from the
/// zeroed (empty/invalidated) state and from stray corruption.
inline constexpr u64 kFlightCommitMagic = 0xF17E;

/// Sidecar header magic ("GHFLIGHT") and version.
inline constexpr u64 kFlightMagic = 0x5448474931464847ull;
inline constexpr u64 kFlightVersion = 1;
inline constexpr usize kFlightHeaderBytes = 4096;

/// Default ring geometry: 4 rings × 256 slots × 32 B ≈ 32 KB of history
/// plus the 4 KB header. Maps use these; tests shrink them to force
/// wrap-around.
inline constexpr u32 kFlightRings = 4;
inline constexpr u32 kFlightSlotsPerRing = 256;

/// Slots invalidated per batch once a ring wraps (must divide the slot
/// count). Batching turns the extra commit-zeroing flush from one per
/// record into one per kInvalidateBatch/2 lines.
inline constexpr u32 kFlightInvalidateBatch = 32;

/// Standalone lifecycle facts journaled as FlightPhase::kEvent records
/// (carried in the key_hash payload word).
enum class FlightEvent : u64 {
  kQuarantine = 1,  ///< scrub quarantined one or more groups
  kDegraded = 2,    ///< expand/compact failed; map degraded (ENOSPC path)
};

const char* flight_event_name(FlightEvent e);

/// CRC16 (low half of CRC32C) over the three payload words.
inline u16 flight_checksum(u64 key_hash, u64 seqno, u64 tsc) {
  u32 crc = crc32c_update(~0u, &key_hash, sizeof(key_hash));
  crc = crc32c_update(crc, &seqno, sizeof(seqno));
  crc = crc32c_update(crc, &tsc, sizeof(tsc));
  return static_cast<u16>(~crc);
}

inline u64 flight_encode_commit(OpKind kind, FlightPhase phase, u32 ring, u16 checksum) {
  return (kFlightCommitMagic << 48) | (static_cast<u64>(checksum) << 32) |
         (static_cast<u64>(ring & 0xffff) << 16) |
         (static_cast<u64>(static_cast<u8>(phase)) << 8) |
         static_cast<u64>(static_cast<u8>(kind));
}

/// Sidecar header (first 4 KB of the region; the rings follow).
struct FlightHeader {
  u64 magic = kFlightMagic;
  u64 version = kFlightVersion;
  u64 ring_count = 0;
  u64 slots_per_ring = 0;
  u64 record_bytes = sizeof(FlightRecord);
  u64 crc = 0;

  [[nodiscard]] u64 compute_crc() const {
    return crc32c(this, offsetof(FlightHeader, crc));
  }
};

/// Bytes a flight region needs for the given geometry.
constexpr usize flight_required_bytes(u32 rings = kFlightRings,
                                      u32 slots = kFlightSlotsPerRing) {
  return kFlightHeaderBytes +
         static_cast<usize>(rings) * slots * sizeof(FlightRecord);
}

// ---------------------------------------------------------------------------
// Offline scan (works on raw bytes; no PM or map required).

/// One decoded, checksum-valid record.
struct FlightRecordView {
  u32 ring = 0;
  OpKind kind = OpKind::kInsert;
  FlightPhase phase = FlightPhase::kStart;
  u64 key_hash = 0;
  u64 seqno = 0;
  u64 tsc = 0;
};

/// An op the recorder shows as in flight at the crash: it reached start
/// (and possibly publish) but never finish.
struct InFlightOp {
  OpKind kind = OpKind::kInsert;
  FlightPhase phase = FlightPhase::kStart;  ///< deepest phase reached
  u32 ring = 0;
  u64 key_hash = 0;
  u64 seqno = 0;
  u64 tsc = 0;  ///< TSC of the deepest record
};

/// Result of scanning a flight region.
struct FlightScan {
  bool valid_header = false;
  u64 ring_count = 0;
  u64 slots_per_ring = 0;
  u64 slots_scanned = 0;
  u64 records_valid = 0;
  u64 records_empty = 0;
  /// Slots whose commit word is non-zero but fails the magic/checksum/
  /// range checks. The emit protocol guarantees zero after any simulated
  /// crash; non-zero means media corruption or a protocol bug.
  u64 records_torn = 0;
  std::vector<FlightRecordView> records;  ///< valid records, seqno order
  std::vector<InFlightOp> in_flight;      ///< seqno order
};

/// Scan a flight region's raw bytes (header + rings). Never throws; a
/// missing/corrupt header yields valid_header = false.
FlightScan scan_flight(std::span<const std::byte> bytes);

/// Human-readable timeline of a scan (gh_stats --flight).
std::string flight_timeline_text(const FlightScan& scan);

/// Chrome trace-event JSON (chrome://tracing, Perfetto) of a scan:
/// complete "X" events for start→finish pairs, instant events for
/// unpaired records (gh_stats --flight --trace out.json). Events are
/// globally sorted by ts — per-ring TSC skew otherwise yields
/// out-of-order events Chrome's viewer silently drops.
std::string flight_trace_json(const FlightScan& scan);

/// Append a scan's events to a shared list (obs/span.hpp TraceEvent)
/// so gh_stats can merge flight and span sources into one sorted trace.
/// `base_ticks` anchors the µs axis (0 = the scan's own first record);
/// a merged view passes the min over every source so both sit on one
/// axis (flight records and spans share the TSC domain).
struct TraceEvent;
void append_flight_trace_events(const FlightScan& scan, std::vector<TraceEvent>& out,
                                u64 base_ticks = 0);

// ---------------------------------------------------------------------------
// Recorder (emit path).

/// The writer side, templated over the persistence policy so tests can
/// drive it through ShadowPM crash simulation. Constructing one formats
/// the region (header + zeroed rings) — reopen forensics happen via
/// scan_flight BEFORE the recorder takes over, because the previous
/// run's ring cursors are not recoverable and a black box is consumed
/// when read.
///
/// Threading: ring cursors are atomic and threads are spread over rings
/// round-robin (one ring per thread mod ring_count), so concurrent
/// emitters on different threads usually touch different rings; within a
/// ring, slot claims are atomic. A racing overwrite can drop a record
/// (commit zeroed by a concurrent invalidation batch) but never tear one.
template <class PM>
class BasicFlightRecorder {
 public:
  BasicFlightRecorder(PM& pm, std::span<std::byte> mem, u32 rings = kFlightRings,
                      u32 slots = kFlightSlotsPerRing)
      : pm_(&pm), mem_(mem), rings_(rings), slots_(slots) {
    GH_CHECK(rings_ > 0 && slots_ > 0);
    GH_CHECK(slots_ % kFlightInvalidateBatch == 0);
    GH_CHECK(mem_.size() >= flight_required_bytes(rings_, slots_));
    ring_state_ = std::make_unique<RingState[]>(rings_);
    gate_.set_shift(kFlightSampleShift);
    if constexpr (!kEnabled) return;
    format();
  }

  BasicFlightRecorder(const BasicFlightRecorder&) = delete;
  BasicFlightRecorder& operator=(const BasicFlightRecorder&) = delete;

  void set_mode(FlightMode m) { mode_ = kEnabled ? m : FlightMode::kOff; }
  [[nodiscard]] FlightMode mode() const { return mode_; }
  void set_sample_shift(u32 shift) { gate_.set_shift(shift); }

  /// Start edge of a sampled data op. Returns the op token; 0 means the
  /// op was not admitted (pass it along — the other edges no-op on 0).
  u64 op_begin(OpKind kind, u64 key_hash) {
    if constexpr (!kEnabled) return 0;
    if (mode_ == FlightMode::kOff) return 0;
    if (mode_ == FlightMode::kSampled && !gate_.admit()) return 0;
    return emit_new(kind, FlightPhase::kStart, key_hash);
  }

  /// Start edge of a lifecycle op (expand/compact/scrub/recover): always
  /// recorded unless the recorder is off — these are rare and are the
  /// records crash forensics exists for.
  u64 op_begin_always(OpKind kind, u64 key_hash = 0) {
    if constexpr (!kEnabled) return 0;
    if (mode_ == FlightMode::kOff) return 0;
    return emit_new(kind, FlightPhase::kStart, key_hash);
  }

  /// Publish step inside an op (just before the irreversible rename /
  /// 8-byte commit).
  void op_mark(u64 token, OpKind kind, u64 key_hash = 0) {
    if constexpr (!kEnabled) return;
    if (token != 0) emit(token, kind, FlightPhase::kPublish, key_hash);
  }

  /// Finish edge.
  void op_end(u64 token, OpKind kind, u64 key_hash = 0) {
    if constexpr (!kEnabled) return;
    if (token != 0) emit(token, kind, FlightPhase::kFinish, key_hash);
  }

  /// Standalone lifecycle fact (never counts as in flight).
  void event(FlightEvent e, OpKind kind) {
    if constexpr (!kEnabled) return;
    if (mode_ == FlightMode::kOff) return;
    emit_new(kind, FlightPhase::kEvent, static_cast<u64>(e));
  }

 private:
  struct alignas(kCachelineSize) RingState {
    std::atomic<u64> seq{0};                ///< records appended (absolute)
    std::atomic<u64> invalidated_until{0};  ///< abs. seq with commit pre-zeroed
  };

  void format() {
    std::byte* base = mem_.data();
    FlightHeader h;
    h.ring_count = rings_;
    h.slots_per_ring = slots_;
    h.crc = h.compute_crc();
    const u64* words = reinterpret_cast<const u64*>(&h);
    for (usize i = 0; i < sizeof(FlightHeader) / sizeof(u64); ++i) {
      pm_->store_u64(reinterpret_cast<u64*>(base) + i, words[i]);
    }
    pm_->persist(base, sizeof(FlightHeader));
    const usize ring_bytes =
        static_cast<usize>(rings_) * slots_ * sizeof(FlightRecord);
    pm_->fill(base + kFlightHeaderBytes, 0, ring_bytes);
    pm_->persist(base + kFlightHeaderBytes, ring_bytes);
    for (u32 r = 0; r < rings_; ++r) {
      ring_state_[r].seq.store(0, std::memory_order_relaxed);
      // The freshly-zeroed first lap needs no invalidation pass.
      ring_state_[r].invalidated_until.store(slots_, std::memory_order_relaxed);
    }
  }

  FlightRecord* slot_ptr(u32 ring, u64 slot) {
    return reinterpret_cast<FlightRecord*>(
        mem_.data() + kFlightHeaderBytes +
        (static_cast<usize>(ring) * slots_ + slot) * sizeof(FlightRecord));
  }

  /// Ring for the calling thread (StripedCounter's round-robin scheme).
  u32 ring_index() const {
    static std::atomic<u32> next{0};
    static thread_local const u32 idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx % rings_;
  }

  /// Ensure the commit words of slots [seq, …) the ring is about to
  /// reuse are zeroed-and-persisted, a batch at a time.
  void ensure_invalidated(u32 ring, RingState& rs, u64 seq) {
    u64 until = rs.invalidated_until.load(std::memory_order_relaxed);
    while (seq >= until) {
      if (!rs.invalidated_until.compare_exchange_weak(
              until, until + kFlightInvalidateBatch, std::memory_order_relaxed)) {
        continue;  // another thread claimed the batch; re-check
      }
      // `until` is a multiple of the batch size and the batch divides the
      // slot count, so the claimed batch never wraps the ring.
      FlightRecord* first = slot_ptr(ring, until % slots_);
      for (u32 i = 0; i < kFlightInvalidateBatch; ++i) {
        pm_->atomic_store_u64(&first[i].commit, 0);
      }
      pm_->persist(first, kFlightInvalidateBatch * sizeof(FlightRecord));
      until += kFlightInvalidateBatch;
    }
  }

  u64 emit_new(OpKind kind, FlightPhase phase, u64 key_hash) {
    const u64 token = next_op_.fetch_add(1, std::memory_order_relaxed);
    emit(token, kind, phase, key_hash);
    return token;
  }

  void emit(u64 seqno, OpKind kind, FlightPhase phase, u64 key_hash) {
    const u32 ring = ring_index();
    RingState& rs = ring_state_[ring];
    const u64 seq = rs.seq.fetch_add(1, std::memory_order_relaxed);
    ensure_invalidated(ring, rs, seq);
    FlightRecord* slot = slot_ptr(ring, seq % slots_);
    const u64 tsc = now_ticks();
    pm_->store_u64(&slot->key_hash, key_hash);
    pm_->store_u64(&slot->seqno, seqno);
    pm_->store_u64(&slot->tsc, tsc);
    pm_->persist(slot, 3 * sizeof(u64));
    pm_->atomic_store_u64(
        &slot->commit,
        flight_encode_commit(kind, phase, ring, flight_checksum(key_hash, seqno, tsc)));
    pm_->persist(&slot->commit, sizeof(u64));
  }

  PM* pm_;
  std::span<std::byte> mem_;
  u32 rings_;
  u32 slots_;
  FlightMode mode_ = FlightMode::kSampled;
  SampleGate gate_{};
  std::atomic<u64> next_op_{1};  ///< 0 is the "not recorded" token
  std::unique_ptr<RingState[]> ring_state_;
};

}  // namespace gh::obs

namespace gh::nvm {
class DirectPM;
}  // namespace gh::nvm

namespace gh::obs {
/// The production recorder (maps own one over their `.flight` sidecar).
using FlightRecorder = BasicFlightRecorder<nvm::DirectPM>;
}  // namespace gh::obs
