// Sampled request-scoped tracing and per-phase latency attribution.
//
// Three cooperating pieces, all DRAM-only (the crash-surviving sibling
// is the flight recorder):
//
//  * Span rings — per-thread fixed-capacity rings of 40-byte
//    SpanRecords. A traced request grows a tree: a root `request` span
//    on the client thread, a `ring_wait` span per MPSC work item
//    (enqueue → worker pop), a `shard_visit` span on the worker, one
//    span per map op inside the visit, and synthetic phase children
//    (probe/persist/fence/migrate_help) that partition each op span
//    exactly. Rings overwrite oldest; a drain (SpanCollector) copies
//    and clears every registered ring. Export is Chrome trace_event
//    JSON, mergeable with the flight recorder's timeline in gh_stats.
//
//  * Phase attribution — every latency-sampled op also runs a
//    thread-local phase collection: DirectPM::flush/fence bracket
//    themselves into persist/fence ticks, the resize help-along
//    brackets itself into migrate_help, and probe is the residual, so
//    per sample  probe + persist + fence + migrate_help == op time.
//    The service layer adds ring-wait on top (to both the ring_wait
//    bucket and the attributed total, preserving the invariant).
//    Sums land in a PhaseAccum (relaxed atomics) and surface as the
//    `phases` section of obs::Snapshot.
//
//  * Trace context — a thread-local {trace id, parent span, sampled}
//    the service stamps around a shard visit so map-level op_finish
//    knows to emit spans. Sampling is per batch at ingest
//    (TraceMode::kSampled admits 1 in 2^shift); kFull traces every
//    batch and is the expensive leg of bench/observability_overhead.
//
// Under GH_OBS_OFF every hook here constant-folds to nothing: no ring
// is ever registered, no span emitted, no phase tick recorded. Only
// the offline surfaces (span file reader, trace-event rendering) stay
// live so gh_stats can inspect files from an obs-enabled build.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "util/types.hpp"

namespace gh::obs {

// ---------------------------------------------------------------------------
// Trace context & sampling.

/// Request-tracing mode (service-level; per batch at ingest).
enum class TraceMode : u8 {
  kOff = 0,
  kSampled = 1,  ///< 1 in 2^trace_sample_shift batches
  kFull = 2,     ///< every batch
};

const char* trace_mode_name(TraceMode m);

/// Parse "off" / "sampled" / "full" (anything else → kOff).
TraceMode trace_mode_from(std::string_view name);

/// Default sampling: 1 in 64 batches.
inline constexpr u32 kTraceSampleShift = 6;

// ---------------------------------------------------------------------------
// Span records.

/// What a span measures. Op spans mirror OpKind; phase spans are the
/// synthetic children that partition an op span.
enum class SpanKind : u8 {
  kRequest = 0,     ///< client-side batch: ingest → responses complete
  kRingWait = 1,    ///< one work item: enqueue → worker pop
  kShardVisit = 2,  ///< worker: one drained visit of a shard
  kOpInsert = 3,
  kOpFind = 4,
  kOpErase = 5,
  kOpMigrate = 6,
  kOpOther = 7,       ///< expand/scrub/recover/compact inside a trace
  kPhaseProbe = 8,    ///< residual: hashing, tag probes, cell compares
  kPhasePersist = 9,  ///< inside PM flush
  kPhaseFence = 10,   ///< inside PM fence
  kPhaseMigrateHelp = 11,
  kWake = 12,  ///< client: last shard completion → waiter resumed
};
inline constexpr usize kSpanKinds = 13;

const char* span_kind_name(SpanKind kind);

/// The op span kind for a map OpKind.
SpanKind span_kind_for_op(OpKind kind);

/// One completed span. Times are raw TSC ticks (same domain as the
/// flight recorder) so the two sources merge on one axis.
struct SpanRecord {
  u64 trace_id = 0;
  u64 t_start = 0;  ///< ticks
  u64 t_end = 0;    ///< ticks
  u32 span_id = 0;
  u32 parent_id = 0;  ///< 0 = root
  u32 tid = 0;        ///< small per-process thread index
  u8 kind = 0;        ///< SpanKind
  u8 shard = 0;
  u16 pad = 0;
};
static_assert(sizeof(SpanRecord) == 40);

/// Fixed-capacity overwrite-oldest ring of completed spans. One per
/// emitting thread; a mutex serializes emit vs. drain (uncontended in
/// steady state — drains are rare and emits are sampled).
class SpanRing {
 public:
  explicit SpanRing(u32 capacity);

  void emit(const SpanRecord& r);

  /// Copy out everything currently buffered (oldest first) and clear.
  void drain(std::vector<SpanRecord>& out);

  [[nodiscard]] u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::vector<SpanRecord> buf_;
  u32 head_ = 0;   ///< next write position
  u32 count_ = 0;  ///< live records (≤ capacity)
  std::atomic<u64> dropped_{0};
};

/// Process-global registry of per-thread span rings plus the id
/// allocators. Rings are shared_ptr-owned by the registry so spans
/// emitted by a thread that has since exited still drain.
class SpanCollector {
 public:
  static SpanCollector& global();

  /// The calling thread's ring (registered on first use).
  SpanRing& ring_for_this_thread();

  /// Drain every registered ring; records are in no particular order.
  std::vector<SpanRecord> drain_all();

  /// Total spans overwritten before being drained, across all rings.
  [[nodiscard]] u64 dropped() const;

  /// True once any thread has registered a ring (OBS_OFF lane asserts
  /// this stays false).
  [[nodiscard]] bool any_ring() const;

  /// Never returns 0 (the counter starts at 1; 0 means "untraced").
  u64 next_trace_id() { return trace_ids_.fetch_add(1, std::memory_order_relaxed); }
  u32 next_span_id() { return span_ids_.fetch_add(1, std::memory_order_relaxed); }

  /// Ring capacity for newly registered threads (set before traffic).
  void set_ring_capacity(u32 capacity);

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SpanRing>> rings_;
  std::atomic<u64> trace_ids_{1};
  std::atomic<u32> span_ids_{1};
  std::atomic<u32> ring_capacity_{4096};
  std::atomic<bool> any_ring_{false};
};

/// Allocate an id and emit a completed span in one step. No-op
/// (returns 0) under GH_OBS_OFF.
u32 emit_span(SpanKind kind, u64 trace_id, u32 parent, u64 t_start, u64 t_end,
              u8 shard = 0);

/// Emit a completed span under a pre-allocated id (for spans whose id
/// children needed before the span itself ended).
void emit_span_with_id(SpanKind kind, u64 trace_id, u32 span_id, u32 parent,
                       u64 t_start, u64 t_end, u8 shard = 0);

// ---------------------------------------------------------------------------
// Thread-local trace context + phase scratch.

struct ThreadTrace {
  u64 trace_id = 0;
  u32 parent = 0;
  bool sampled = false;
};

struct ThreadPhase {
  u64 owner_t0 = 0;  ///< op_start tick of the op that owns collection
  u64 persist = 0;   ///< ticks inside PM flush
  u64 fence = 0;     ///< ticks inside PM fence
  u64 help = 0;      ///< ticks inside the resize help-along
  bool collecting = false;
  bool in_help = false;  ///< persist/fence inside help fold into help
};

namespace detail {
inline thread_local ThreadTrace t_trace;
inline thread_local ThreadPhase t_phase;
}  // namespace detail

/// True when the current thread is inside a sampled trace (map op_start
/// forces timing on so the op emits a span even if the latency gate
/// would not have admitted it).
inline bool thread_trace_sampled() {
  if constexpr (!kEnabled) return false;
  return detail::t_trace.sampled;
}

void set_thread_trace(u64 trace_id, u32 parent_span, bool sampled);
void clear_thread_trace();

/// Claim phase collection for the op that sampled t0, unless an
/// enclosing op (e.g. put → expand) already owns it.
inline void phase_collect_begin(u64 t0) {
  if constexpr (!kEnabled) return;
  ThreadPhase& tp = detail::t_phase;
  if (tp.collecting) return;
  tp.owner_t0 = t0;
  tp.persist = 0;
  tp.fence = 0;
  tp.help = 0;
  tp.in_help = false;
  tp.collecting = true;
}

// ---------------------------------------------------------------------------
// Phase accumulator (hot; relaxed atomics, tick domain).

class PhaseAccum {
 public:
  struct Row {
    std::atomic<u64> samples{0};
    std::atomic<u64> op_ticks{0};
    std::array<std::atomic<u64>, kPhases> ticks{};
  };

  void add(OpKind kind, u64 op_ticks, const u64 (&phase_ticks)[kPhases]) {
    if constexpr (!kEnabled) return;
    Row& r = rows_[static_cast<usize>(kind)];
    r.samples.fetch_add(1, std::memory_order_relaxed);
    r.op_ticks.fetch_add(op_ticks, std::memory_order_relaxed);
    for (usize p = 0; p < kPhases; ++p) {
      if (phase_ticks[p] != 0) r.ticks[p].fetch_add(phase_ticks[p], std::memory_order_relaxed);
    }
  }

  /// Service-side attribution (ring wait): adds to both the phase
  /// bucket and the attributed total so phases still sum to op time.
  void add_wait(OpKind kind, Phase phase, u64 ticks) {
    if constexpr (!kEnabled) return;
    if (ticks == 0) return;
    Row& r = rows_[static_cast<usize>(kind)];
    r.op_ticks.fetch_add(ticks, std::memory_order_relaxed);
    r.ticks[static_cast<usize>(phase)].fetch_add(ticks, std::memory_order_relaxed);
  }

  /// Tick → ns conversion happens here, once, at snapshot time.
  [[nodiscard]] PhaseSnapshot snapshot() const;

  void reset();

 private:
  std::array<Row, kOpKinds> rows_{};
};

/// Finish phase collection for the op that claimed t0: fold the
/// scratch ticks into `acc` (probe = residual) and, when the thread is
/// inside a sampled trace, emit the op span plus its phase children.
/// dt_ticks is the op's measured duration (op_finish's now - t0).
void phase_collect_finish(PhaseAccum& acc, OpKind kind, u64 t0, u64 dt_ticks,
                          u8 shard = 0);

// ---------------------------------------------------------------------------
// RAII phase brackets (placed in DirectPM::flush/fence and the map's
// help-along). Zero-cost when the thread is not collecting.

class PhasePersistScope {
 public:
  PhasePersistScope() {
    if constexpr (!kEnabled) return;
    const ThreadPhase& tp = detail::t_phase;
    if (tp.collecting && !tp.in_help) t0_ = now_ticks();
  }
  ~PhasePersistScope() {
    if constexpr (!kEnabled) return;
    if (t0_ != 0) detail::t_phase.persist += now_ticks() - t0_;
  }
  PhasePersistScope(const PhasePersistScope&) = delete;
  PhasePersistScope& operator=(const PhasePersistScope&) = delete;

 private:
  u64 t0_ = 0;
};

class PhaseFenceScope {
 public:
  PhaseFenceScope() {
    if constexpr (!kEnabled) return;
    const ThreadPhase& tp = detail::t_phase;
    if (tp.collecting && !tp.in_help) t0_ = now_ticks();
  }
  ~PhaseFenceScope() {
    if constexpr (!kEnabled) return;
    if (t0_ != 0) detail::t_phase.fence += now_ticks() - t0_;
  }
  PhaseFenceScope(const PhaseFenceScope&) = delete;
  PhaseFenceScope& operator=(const PhaseFenceScope&) = delete;

 private:
  u64 t0_ = 0;
};

class PhaseHelpScope {
 public:
  PhaseHelpScope() {
    if constexpr (!kEnabled) return;
    ThreadPhase& tp = detail::t_phase;
    if (tp.collecting && !tp.in_help) {
      t0_ = now_ticks();
      tp.in_help = true;
    }
  }
  ~PhaseHelpScope() {
    if constexpr (!kEnabled) return;
    if (t0_ != 0) {
      ThreadPhase& tp = detail::t_phase;
      tp.help += now_ticks() - t0_;
      tp.in_help = false;
    }
  }
  PhaseHelpScope(const PhaseHelpScope&) = delete;
  PhaseHelpScope& operator=(const PhaseHelpScope&) = delete;

 private:
  u64 t0_ = 0;
};

// ---------------------------------------------------------------------------
// Live gauges — a heap-allocated per-map anchor for the things a
// running server can read without walking map internals (the map is
// single-owner; its plain fields race the worker). unique_ptr-held so
// the owning map stays movable.

struct MigrationGauges {
  u64 active = 0;
  u64 cursor = 0;
  u64 total_groups = 0;
};

class LiveObs {
 public:
  PhaseAccum phases;

  void set_migration(u64 active, u64 cursor, u64 total_groups) {
    if constexpr (!kEnabled) return;
    mig_active_.store(active, std::memory_order_relaxed);
    mig_cursor_.store(cursor, std::memory_order_relaxed);
    mig_total_.store(total_groups, std::memory_order_relaxed);
  }

  [[nodiscard]] MigrationGauges migration() const {
    MigrationGauges g;
    g.active = mig_active_.load(std::memory_order_relaxed);
    g.cursor = mig_cursor_.load(std::memory_order_relaxed);
    g.total_groups = mig_total_.load(std::memory_order_relaxed);
    return g;
  }

 private:
  std::atomic<u64> mig_active_{0};
  std::atomic<u64> mig_cursor_{0};
  std::atomic<u64> mig_total_{0};
};

// ---------------------------------------------------------------------------
// Chrome trace-event rendering (shared with the flight recorder so
// merged output sorts on one time axis — Chrome's viewer silently
// drops events whose ts regresses).

/// One pre-rendered trace event: its timestamp (for global sorting)
/// and the rest of the JSON object body (everything but "ts").
struct TraceEvent {
  double ts_us = 0;
  std::string body;  ///< e.g. `"name":"insert","ph":"X","dur":1.2,...`
};

/// Sort events by ts (stable) and render the traceEvents JSON document.
std::string render_trace_json(std::vector<TraceEvent> events);

/// Append span records as complete ("X") events. `base_ticks` is
/// subtracted before the tick → µs conversion.
void append_span_trace_events(const std::vector<SpanRecord>& spans,
                              double ticks_per_ns, u64 base_ticks,
                              std::vector<TraceEvent>& out);

// ---------------------------------------------------------------------------
// Span file I/O ("GHSPANS1" header; written by gh_serve --spans-out,
// merged by gh_stats --spans). Offline surface: stays live under
// GH_OBS_OFF.

inline constexpr u64 kSpanFileMagic = 0x31534e4150534847ull;  // "GHSPANS1"

struct SpanFile {
  bool valid = false;
  double ticks_per_ns = 1.0;
  u64 base_ticks = 0;
  std::vector<SpanRecord> spans;
};

bool write_spans_file(const std::string& path, const std::vector<SpanRecord>& spans,
                      double ticks_per_ns);
SpanFile read_spans_file(const std::string& path);

}  // namespace gh::obs
