#include "obs/timeseries.hpp"

#include <cstdio>
#include <cstdlib>

namespace gh::obs {

namespace {

/// Histogram of ONLY the samples recorded between prev and cur: the
/// sparse bucket lists are monotone per bucket (cur ⊇ prev with counts
/// that only grow), so a bucket-wise subtraction is exact.
HistogramSnapshot histogram_delta(const HistogramSnapshot& cur,
                                  const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  d.sum_ns = cur.sum_ns >= prev.sum_ns ? cur.sum_ns - prev.sum_ns : 0;
  usize j = 0;
  for (const auto& [bucket, n] : cur.buckets) {
    while (j < prev.buckets.size() && prev.buckets[j].first < bucket) ++j;
    u64 before = 0;
    if (j < prev.buckets.size() && prev.buckets[j].first == bucket) before = prev.buckets[j].second;
    if (n > before) d.buckets.emplace_back(bucket, n - before);
  }
  return d;
}

void append_escaped_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

/// Extract the number after `"key":` within [begin, end). Returns
/// fallback when the key is absent.
double find_number(std::string_view text, std::string_view key, double fallback) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const usize pos = text.find(needle);
  if (pos == std::string_view::npos) return fallback;
  const char* start = text.data() + pos + needle.size();
  char* endp = nullptr;
  const double v = std::strtod(start, &endp);
  if (endp == start) return fallback;
  return v;
}

}  // namespace

TimeSeries::TimeSeries(usize max_windows, u64 interval_ms)
    : max_windows_(max_windows == 0 ? 1 : max_windows),
      interval_ms_(interval_ms) {
  ring_.resize(max_windows_);
}

void TimeSeries::tick(const Snapshot& cumulative, u64 now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_prev_) {
    have_prev_ = true;
    prev_ms_ = now_ms;
    prev_latency_ = cumulative.latency;
    prev_phases_ = cumulative.phases;
    return;
  }
  TimeWindow w;
  w.t_ms = now_ms;
  w.dur_ms = now_ms > prev_ms_ ? now_ms - prev_ms_ : 0;

  // Window histogram: union of every kind's bucket delta; merging with
  // the accumulating value recomputes the percentiles each step.
  HistogramSnapshot window_hist;
  for (usize k = 0; k < kOpKinds; ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    window_hist.merge(histogram_delta(cumulative.latency.of(kind), prev_latency_.of(kind)));
  }
  w.ops = window_hist.count;
  w.qps = w.dur_ms > 0 ? static_cast<double>(w.ops) * 1000.0 / static_cast<double>(w.dur_ms)
                       : 0;
  w.p50_ns = window_hist.p50_ns;
  w.p99_ns = window_hist.p99_ns;

  PhaseSnapshot::Row delta_total;
  for (usize k = 0; k < kOpKinds; ++k) {
    const PhaseSnapshot::Row& cur = cumulative.phases.rows[k];
    const PhaseSnapshot::Row& prev = prev_phases_.rows[k];
    delta_total.op_ns += cur.op_ns >= prev.op_ns ? cur.op_ns - prev.op_ns : 0;
    for (usize p = 0; p < kPhases; ++p) {
      delta_total.phase_ns[p] +=
          cur.phase_ns[p] >= prev.phase_ns[p] ? cur.phase_ns[p] - prev.phase_ns[p] : 0;
    }
  }
  if (delta_total.op_ns > 0) {
    for (usize p = 0; p < kPhases; ++p) {
      w.phase_share[p] = static_cast<double>(delta_total.phase_ns[p]) /
                         static_cast<double>(delta_total.op_ns);
    }
  }

  w.mig_active = cumulative.migration.active;
  w.mig_cursor = cumulative.migration.cursor;
  w.mig_total = cumulative.migration.total_groups;
  w.load_factor = cumulative.load_factor;

  ring_[head_] = w;
  head_ = (head_ + 1) % max_windows_;
  if (count_ < max_windows_) ++count_;

  prev_ms_ = now_ms;
  prev_latency_ = cumulative.latency;
  prev_phases_ = cumulative.phases;
}

std::vector<TimeWindow> TimeSeries::windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeWindow> out;
  out.reserve(count_);
  usize idx = (head_ + max_windows_ - count_) % max_windows_;
  for (usize i = 0; i < count_; ++i) {
    out.push_back(ring_[idx]);
    idx = (idx + 1) % max_windows_;
  }
  return out;
}

TimeseriesGauges TimeSeries::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  TimeseriesGauges g;
  g.windows = count_;
  g.interval_ms = interval_ms_;
  if (count_ > 0) {
    const TimeWindow& last = ring_[(head_ + max_windows_ - 1) % max_windows_];
    g.last_window_ms = last.t_ms;
    g.last_qps = last.qps;
    g.last_p99_ns = last.p99_ns;
  }
  return g;
}

void TimeSeries::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  have_prev_ = false;
  prev_ms_ = 0;
  prev_latency_ = OpLatencySnapshot{};
  prev_phases_ = PhaseSnapshot{};
  head_ = 0;
  count_ = 0;
}

std::string export_timeseries_json(const TimeSeries& ts) {
  const std::vector<TimeWindow> windows = ts.windows();
  std::string out = "{\"schema\":\"";
  out += kTimeseriesSchema;
  out += "\",\"version\":1,\"max_windows\":";
  out += std::to_string(ts.max_windows());
  out += ",\"interval_ms\":";
  out += std::to_string(ts.interval_ms());
  out += ",\"windows\":[";
  for (usize i = 0; i < windows.size(); ++i) {
    const TimeWindow& w = windows[i];
    if (i != 0) out += ',';
    out += "\n{\"t_ms\":";
    out += std::to_string(w.t_ms);
    out += ",\"dur_ms\":";
    out += std::to_string(w.dur_ms);
    out += ",\"ops\":";
    out += std::to_string(w.ops);
    out += ",\"qps\":";
    append_escaped_number(out, w.qps);
    out += ",\"p50_ns\":";
    append_escaped_number(out, w.p50_ns);
    out += ",\"p99_ns\":";
    append_escaped_number(out, w.p99_ns);
    for (usize p = 0; p < kPhases; ++p) {
      out += ",\"";
      out += phase_name(static_cast<Phase>(p));
      out += "_share\":";
      append_escaped_number(out, w.phase_share[p]);
    }
    out += ",\"mig_active\":";
    out += std::to_string(w.mig_active);
    out += ",\"mig_cursor\":";
    out += std::to_string(w.mig_cursor);
    out += ",\"mig_total\":";
    out += std::to_string(w.mig_total);
    out += ",\"load_factor\":";
    append_escaped_number(out, w.load_factor);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string export_timeseries_prometheus(const TimeSeries& ts) {
  const std::vector<TimeWindow> windows = ts.windows();
  std::string out;
  out += "# HELP gh_window_qps Requests per second over the newest window\n";
  out += "# TYPE gh_window_qps gauge\n";
  out += "# HELP gh_window_p99_ns p99 latency of the newest window\n";
  out += "# TYPE gh_window_p99_ns gauge\n";
  out += "# HELP gh_window_phase_share Share of attributed time per phase, newest window\n";
  out += "# TYPE gh_window_phase_share gauge\n";
  out += "# HELP gh_window_mig_cursor Migration cursor at the newest window end\n";
  out += "# TYPE gh_window_mig_cursor gauge\n";
  if (windows.empty()) return out;
  const TimeWindow& w = windows.back();
  char buf[128];
  std::snprintf(buf, sizeof(buf), "gh_window_qps %.3f\n", w.qps);
  out += buf;
  std::snprintf(buf, sizeof(buf), "gh_window_p99_ns %.3f\n", w.p99_ns);
  out += buf;
  for (usize p = 0; p < kPhases; ++p) {
    std::snprintf(buf, sizeof(buf), "gh_window_phase_share{phase=\"%s\"} %.6f\n",
                  phase_name(static_cast<Phase>(p)), w.phase_share[p]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "gh_window_mig_cursor %llu\n",
                static_cast<unsigned long long>(w.mig_cursor));
  out += buf;
  return out;
}

bool parse_timeseries_json(std::string_view text, std::vector<TimeWindow>* out) {
  out->clear();
  const usize arr = text.find("\"windows\":[");
  if (arr == std::string_view::npos) return false;
  usize pos = arr + std::string_view("\"windows\":[").size();
  while (true) {
    const usize open = text.find('{', pos);
    const usize close_arr = text.find(']', pos);
    if (open == std::string_view::npos) break;
    if (close_arr != std::string_view::npos && close_arr < open) break;
    const usize close = text.find('}', open);
    if (close == std::string_view::npos) return false;
    const std::string_view obj = text.substr(open, close - open + 1);
    TimeWindow w;
    w.t_ms = static_cast<u64>(find_number(obj, "t_ms", 0));
    w.dur_ms = static_cast<u64>(find_number(obj, "dur_ms", 0));
    w.ops = static_cast<u64>(find_number(obj, "ops", 0));
    w.qps = find_number(obj, "qps", 0);
    w.p50_ns = find_number(obj, "p50_ns", 0);
    w.p99_ns = find_number(obj, "p99_ns", 0);
    for (usize p = 0; p < kPhases; ++p) {
      std::string key = phase_name(static_cast<Phase>(p));
      key += "_share";
      w.phase_share[p] = find_number(obj, key, 0);
    }
    w.mig_active = static_cast<u64>(find_number(obj, "mig_active", 0));
    w.mig_cursor = static_cast<u64>(find_number(obj, "mig_cursor", 0));
    w.mig_total = static_cast<u64>(find_number(obj, "mig_total", 0));
    w.load_factor = find_number(obj, "load_factor", 0);
    out->push_back(w);
    pos = close + 1;
  }
  return true;
}

}  // namespace gh::obs
