#include "obs/metrics.hpp"

#include <algorithm>

#include "util/clock.hpp"

namespace gh::obs {

u64 now_ticks_slow() {
  if constexpr (!kEnabled) return 0;
  return now_ns();
}

double ticks_per_ns() {
#if defined(__x86_64__) || defined(_M_X64)
  // Reuse the spin-wait calibration (util/clock.cpp): cycles per ns.
  static const double tpn = [] {
    const double ghz = tsc_ghz();
    return ghz > 0 ? ghz : 1.0;
  }();
  return tpn;
#else
  return 1.0;  // now_ticks_slow already returns nanoseconds
#endif
}

double LatencyHistogram::bucket_midpoint(usize bucket) {
  if (bucket < kSub) return static_cast<double>(bucket);
  const usize block = bucket >> kSubBits;
  const usize sub = bucket & (kSub - 1);
  const usize exp = block + kSubBits - 1;
  const double low = static_cast<double>(u64{1} << exp) +
                     static_cast<double>(sub) * static_cast<double>(u64{1} << (exp - kSubBits));
  const double width = static_cast<double>(u64{1} << (exp - kSubBits));
  return low + width / 2.0;
}

namespace {

// Recompute mean/p50/p95/p99/p999 of a snapshot from its sparse tick-domain
// bucket list (shared by LatencyHistogram::snapshot and
// HistogramSnapshot::merge so a merged aggregate and a union histogram
// derive identical statistics).
void finalize_histogram(HistogramSnapshot& s) {
  if (s.count == 0) {
    s.mean_ns = s.p50_ns = s.p95_ns = s.p99_ns = s.p999_ns = 0;
    return;
  }
  const double tpn = ticks_per_ns();
  s.mean_ns = static_cast<double>(s.sum_ns) / static_cast<double>(s.count);
  const auto percentile = [&](double q) {
    const double target = q / 100.0 * static_cast<double>(s.count);
    u64 cumulative = 0;
    for (const auto& [bucket, n] : s.buckets) {
      cumulative += n;
      if (static_cast<double>(cumulative) >= target) {
        return LatencyHistogram::bucket_midpoint(bucket) / tpn;
      }
    }
    return LatencyHistogram::bucket_midpoint(s.buckets.back().first) / tpn;
  };
  s.p50_ns = percentile(50);
  s.p95_ns = percentile(95);
  s.p99_ns = percentile(99);
  s.p999_ns = percentile(99.9);
}

}  // namespace

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
  count += o.count;
  sum_ns += o.sum_ns;
  max_ns = std::max(max_ns, o.max_ns);
  // Two-pointer merge of the sorted sparse bucket lists.
  std::vector<std::pair<u32, u64>> merged;
  merged.reserve(buckets.size() + o.buckets.size());
  usize i = 0;
  usize j = 0;
  while (i < buckets.size() || j < o.buckets.size()) {
    if (j >= o.buckets.size() ||
        (i < buckets.size() && buckets[i].first < o.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() || o.buckets[j].first < buckets[i].first) {
      merged.push_back(o.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first, buckets[i].second + o.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
  finalize_histogram(*this);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  // One relaxed pass over the buckets; each bucket only grows, so the
  // derived count is monotone across successive snapshots and the view
  // is never torn below bucket granularity.
  HistogramSnapshot s;
  for (usize i = 0; i < kBuckets; ++i) {
    const u64 n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      s.buckets.emplace_back(static_cast<u32>(i), n);
      s.count += n;
    }
  }
  const double tpn = ticks_per_ns();
  s.sum_ns = static_cast<u64>(
      static_cast<double>(sum_.load(std::memory_order_relaxed)) / tpn);
  s.max_ns = static_cast<u64>(
      static_cast<double>(max_.load(std::memory_order_relaxed)) / tpn);
  finalize_histogram(s);
  return s;
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert: return "insert";
    case OpKind::kFind: return "find";
    case OpKind::kErase: return "erase";
    case OpKind::kExpand: return "expand";
    case OpKind::kScrub: return "scrub";
    case OpKind::kRecover: return "recover";
    case OpKind::kCompact: return "compact";
    case OpKind::kMigrate: return "migrate";
  }
  return "unknown";
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kRingWait: return "ring_wait";
    case Phase::kProbe: return "probe";
    case Phase::kPersist: return "persist";
    case Phase::kFence: return "fence";
    case Phase::kMigrateHelp: return "migrate_help";
  }
  return "unknown";
}

const char* migration_phase_name(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kNone: return "none";
    case MigrationPhase::kStart: return "start";
    case MigrationPhase::kPublished: return "published";
    case MigrationPhase::kCursor: return "cursor";
    case MigrationPhase::kFinalize: return "finalize";
    case MigrationPhase::kRetire: return "retire";
    case MigrationPhase::kResume: return "resume";
    case MigrationPhase::kEmergency: return "emergency-expand";
  }
  return "unknown";
}

const char* flight_phase_name(FlightPhase phase) {
  switch (phase) {
    case FlightPhase::kStart: return "start";
    case FlightPhase::kPublish: return "publish";
    case FlightPhase::kFinish: return "finish";
    case FlightPhase::kEvent: return "event";
  }
  return "unknown";
}

namespace detail {
std::atomic<const TraceHook*> g_trace_hook{nullptr};
}  // namespace detail

void set_trace_hook(TraceFn fn, void* ctx) {
  // Hooks live in a small static pool so a cleared hook never dangles
  // under a racing trace_op (install/clear is rare; slots are reused
  // round-robin and never freed).
  static detail::TraceHook pool[4];
  static std::atomic<usize> next{0};
  if (fn == nullptr) {
    detail::g_trace_hook.store(nullptr, std::memory_order_release);
    return;
  }
  detail::TraceHook& slot = pool[next.fetch_add(1, std::memory_order_relaxed) % 4];
  slot.fn = fn;
  slot.ctx = ctx;
  detail::g_trace_hook.store(&slot, std::memory_order_release);
}

PmEvents& pm_events() {
  static PmEvents events;
  return events;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

StripedCounter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (NamedCounter& c : counters_) {
    if (c.name == name) return c.counter;
  }
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  return counters_.back().counter;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (NamedHistogram& h : histograms_) {
    if (h.name == name) return h.histogram;
  }
  histograms_.emplace_back();
  histograms_.back().name = std::string(name);
  return histograms_.back().histogram;
}

u64 MetricsRegistry::attach(std::string name, const OpRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 id = next_id_++;
  recorders_.push_back(AttachedRecorder{id, std::move(name), recorder});
  return id;
}

void MetricsRegistry::detach(u64 id) {
  std::lock_guard<std::mutex> lock(mu_);
  recorders_.erase(
      std::remove_if(recorders_.begin(), recorders_.end(),
                     [&](const AttachedRecorder& r) { return r.id == id; }),
      recorders_.end());
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  // The process-wide PM event counters are always part of the view.
  const PmEvents& pm = pm_events();
  snap.counters.push_back({"gh_pm_persist_calls_total", pm.persist_calls.load()});
  snap.counters.push_back({"gh_pm_lines_flushed_total", pm.lines_flushed.load()});
  snap.counters.push_back({"gh_pm_fences_total", pm.fences.load()});
  for (const NamedCounter& c : counters_) {
    snap.counters.push_back({c.name, c.counter.load()});
  }
  for (const NamedHistogram& h : histograms_) {
    snap.histograms.push_back({h.name, h.histogram.snapshot()});
  }
  for (const AttachedRecorder& r : recorders_) {
    RecorderSample sample;
    sample.name = r.name;
    for (usize k = 0; k < kOpKinds; ++k) {
      sample.ops[k] = r.recorder->of(static_cast<OpKind>(k)).snapshot();
    }
    snap.recorders.push_back(std::move(sample));
  }
  return snap;
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  pm_events().reset();
  for (NamedCounter& c : counters_) c.counter.reset();
  for (NamedHistogram& h : histograms_) h.histogram.reset();
}

}  // namespace gh::obs
