// Windowed time-series aggregator: a ring of fixed-interval deltas
// between successive cumulative obs::Snapshots.
//
// Every section of Snapshot is cumulative-since-start, which answers
// "what happened" but not "what is happening". TimeSeries closes that
// gap without touching the hot path: a single ticker thread calls
// tick(snapshot, now_ms) at a fixed cadence, and each tick diffs the
// new cumulative sample against the previous one into a TimeWindow —
// ops/QPS, per-window p50/p99 (the sparse histogram buckets are
// monotone, so bucket-wise subtraction yields the exact histogram of
// just that window's samples), phase shares from the phases-section
// deltas, and the migration-cursor/load-factor gauges at window end.
// The last `max_windows` windows (default 60 ≈ one minute at 1 Hz)
// live in an overwrite-oldest ring.
//
// Surfaces: export_timeseries_json ("gh.obs.timeseries.v1"),
// Prometheus gauges for the newest window, and parse_timeseries_json —
// the reader used by tools/gh_top and the round-trip tests.
//
// Threading: a mutex guards the ring; tick() and the exporters may be
// called from different threads. The Snapshot handed to tick() is a
// plain value, so the aggregator itself never races the structures
// being observed.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"

namespace gh::obs {

inline constexpr std::string_view kTimeseriesSchema = "gh.obs.timeseries.v1";

/// One fixed-interval delta window.
struct TimeWindow {
  u64 t_ms = 0;    ///< caller-clock time at window end
  u64 dur_ms = 0;  ///< window length
  u64 ops = 0;     ///< latency-recorded ops completed in the window
  double qps = 0;
  double p50_ns = 0;  ///< percentile of ops in THIS window only
  double p99_ns = 0;
  std::array<double, kPhases> phase_share{};  ///< of attributed time in window
  u64 mig_active = 0;  ///< gauges at window end
  u64 mig_cursor = 0;
  u64 mig_total = 0;
  double load_factor = 0;
};

class TimeSeries {
 public:
  explicit TimeSeries(usize max_windows = 60, u64 interval_ms = 1000);

  /// Fold in a cumulative sample. The first call only seeds the
  /// baseline; every later call appends one window.
  void tick(const Snapshot& cumulative, u64 now_ms);

  /// Buffered windows, oldest first.
  [[nodiscard]] std::vector<TimeWindow> windows() const;

  /// Last-window gauges for Snapshot.timeseries (max-merged on absorb).
  [[nodiscard]] TimeseriesGauges gauges() const;

  [[nodiscard]] usize max_windows() const { return max_windows_; }
  [[nodiscard]] u64 interval_ms() const { return interval_ms_; }

  void reset();

 private:
  mutable std::mutex mu_;
  usize max_windows_;
  u64 interval_ms_;
  bool have_prev_ = false;
  u64 prev_ms_ = 0;
  OpLatencySnapshot prev_latency_;
  PhaseSnapshot prev_phases_;
  std::vector<TimeWindow> ring_;
  usize head_ = 0;
  usize count_ = 0;
};

/// {"schema":"gh.obs.timeseries.v1",...,"windows":[...]}
std::string export_timeseries_json(const TimeSeries& ts);

/// Prometheus gauges for the newest window (gh_window_*).
std::string export_timeseries_prometheus(const TimeSeries& ts);

/// Minimal reader for the JSON above (and for the "timeseries" value
/// embedded in a gh_serve stats file). Returns false when no
/// well-formed windows array is present.
bool parse_timeseries_json(std::string_view text, std::vector<TimeWindow>* out);

}  // namespace gh::obs
