// obs::Snapshot — the ONE read API for map/table statistics.
//
// Before this layer the repo had three disjoint introspection surfaces:
// nvm::PersistStats (NVM traffic), hash::TableStats + ScrubReport
// (algorithmic work and integrity), and the concurrent wrappers'
// LockContention counters via inspect_shards(). A caller answering "p99
// insert latency, lines flushed per op, seqlock retry rate, scrub
// progress" had to stitch all three together while the map ran.
//
// Snapshot collapses them: every map/table exposes `snapshot()`
// returning this struct — persist, table-op, scrub, contention,
// lifecycle and latency-histogram data in one sampled, plain-u64 (never
// torn, safe to copy around) value. The old piecemeal getters
// (GroupHashMap::metrics(), PersistentStringMap::stats(),
// inspect_shards' contention fields) remain as thin back-compat aliases
// for one release; new code should read snapshot()/export_json only.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hash/table_stats.hpp"
#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "util/seqlock.hpp"
#include "util/types.hpp"

namespace gh::obs {

/// Sampled copy of nvm::PersistStats (plain u64s).
struct PersistSnapshot {
  u64 stores = 0;
  u64 bytes_written = 0;
  u64 atomic_stores = 0;
  u64 persist_calls = 0;
  u64 lines_flushed = 0;
  u64 fences = 0;
  u64 delay_ns = 0;

  static PersistSnapshot from(const nvm::PersistStats& s) {
    return {s.stores.load(),        s.bytes_written.load(), s.atomic_stores.load(),
            s.persist_calls.load(), s.lines_flushed.load(), s.fences.load(),
            s.delay_ns.load()};
  }

  PersistSnapshot& operator+=(const PersistSnapshot& o) {
    stores += o.stores;
    bytes_written += o.bytes_written;
    atomic_stores += o.atomic_stores;
    persist_calls += o.persist_calls;
    lines_flushed += o.lines_flushed;
    fences += o.fences;
    delay_ns += o.delay_ns;
    return *this;
  }
};

/// Sampled copy of hash::TableStats (plain u64s).
struct TableOpSnapshot {
  u64 inserts = 0;
  u64 insert_failures = 0;
  u64 queries = 0;
  u64 query_hits = 0;
  u64 erases = 0;
  u64 erase_hits = 0;
  u64 probes = 0;
  u64 level2_probes = 0;
  u64 displacements = 0;
  u64 stash_probes = 0;
  u64 backward_shifts = 0;
  u64 tag_probes = 0;
  u64 tag_skips = 0;
  u64 tag_false_positives = 0;
  u64 batch_ops = 0;
  u64 batch_keys = 0;
  u64 prefetches_issued = 0;

  static TableOpSnapshot from(const hash::TableStats& s) {
    return {s.inserts.load(),       s.insert_failures.load(), s.queries.load(),
            s.query_hits.load(),    s.erases.load(),          s.erase_hits.load(),
            s.probes.load(),        s.level2_probes.load(),   s.displacements.load(),
            s.stash_probes.load(),  s.backward_shifts.load(), s.tag_probes.load(),
            s.tag_skips.load(),     s.tag_false_positives.load(), s.batch_ops.load(),
            s.batch_keys.load(),    s.prefetches_issued.load()};
  }

  TableOpSnapshot& operator+=(const TableOpSnapshot& o) {
    inserts += o.inserts;
    insert_failures += o.insert_failures;
    queries += o.queries;
    query_hits += o.query_hits;
    erases += o.erases;
    erase_hits += o.erase_hits;
    probes += o.probes;
    level2_probes += o.level2_probes;
    displacements += o.displacements;
    stash_probes += o.stash_probes;
    backward_shifts += o.backward_shifts;
    tag_probes += o.tag_probes;
    tag_skips += o.tag_skips;
    tag_false_positives += o.tag_false_positives;
    batch_ops += o.batch_ops;
    batch_keys += o.batch_keys;
    prefetches_issued += o.prefetches_issued;
    return *this;
  }
};

/// Integrity view: lifetime scrub/quarantine counters (from TableStats)
/// plus what open()-time verification found.
struct ScrubSnapshot {
  u64 groups_scrubbed = 0;
  u64 cells_scrubbed = 0;
  u64 crc_mismatches = 0;
  u64 groups_quarantined = 0;
  u64 cells_lost = 0;
  u64 media_errors = 0;
  // open()-time verification of a cleanly closed map (zero after a
  // recovery open or when verification is off).
  u64 open_groups_checked = 0;
  u64 open_crc_mismatches = 0;
  u64 open_cells_lost = 0;

  static ScrubSnapshot from(const hash::TableStats& s, const hash::ScrubReport& open) {
    ScrubSnapshot r;
    r.groups_scrubbed = s.groups_scrubbed.load();
    r.cells_scrubbed = s.cells_scrubbed.load();
    r.crc_mismatches = s.crc_mismatches.load();
    r.groups_quarantined = s.groups_quarantined.load();
    r.cells_lost = s.cells_lost.load();
    r.media_errors = s.media_errors.load();
    r.open_groups_checked = open.groups_checked;
    r.open_crc_mismatches = open.crc_mismatches;
    r.open_cells_lost = open.cells_lost;
    return r;
  }

  ScrubSnapshot& operator+=(const ScrubSnapshot& o) {
    groups_scrubbed += o.groups_scrubbed;
    cells_scrubbed += o.cells_scrubbed;
    crc_mismatches += o.crc_mismatches;
    groups_quarantined += o.groups_quarantined;
    cells_lost += o.cells_lost;
    media_errors += o.media_errors;
    open_groups_checked += o.open_groups_checked;
    open_crc_mismatches += o.open_crc_mismatches;
    open_cells_lost += o.open_cells_lost;
    return *this;
  }
};

/// Sampled seqlock contention (from util/seqlock.hpp LockContention).
struct ContentionSnapshot {
  u64 read_retries = 0;
  u64 read_fallbacks = 0;
  u64 writer_waits = 0;

  static ContentionSnapshot from(const LockContention& c) {
    return {c.read_retries.load(), c.read_fallbacks.load(), c.writer_waits.load()};
  }

  ContentionSnapshot& operator+=(const ContentionSnapshot& o) {
    read_retries += o.read_retries;
    read_fallbacks += o.read_fallbacks;
    writer_waits += o.writer_waits;
    return *this;
  }
};

/// Map lifecycle events (expansion/compaction/recovery machinery).
struct LifecycleSnapshot {
  u64 expansions = 0;
  u64 expand_failures = 0;
  u64 compactions = 0;
  u64 compact_failures = 0;
  u64 recoveries = 0;
  u64 orphans_reclaimed = 0;
  bool degraded = false;  ///< an expansion/compaction is owed but failing
  // Pending-expand backoff state (PR 3's try_expand). Gauges, not
  // counters: `expand_backoff` is the current cap (doubles per failure,
  // 1..64) and `expand_cooldown` the ops left before the next retry —
  // both 0 when no expansion is owed. Under absorb() they take the max
  // across shards: "how badly is the worst shard backing off".
  u64 expand_backoff = 0;
  u64 expand_cooldown = 0;

  LifecycleSnapshot& operator+=(const LifecycleSnapshot& o) {
    expansions += o.expansions;
    expand_failures += o.expand_failures;
    compactions += o.compactions;
    compact_failures += o.compact_failures;
    recoveries += o.recoveries;
    orphans_reclaimed += o.orphans_reclaimed;
    degraded = degraded || o.degraded;
    expand_backoff = expand_backoff > o.expand_backoff ? expand_backoff : o.expand_backoff;
    expand_cooldown = expand_cooldown > o.expand_cooldown ? expand_cooldown : o.expand_cooldown;
    return *this;
  }
};

/// Online-resize migration state and counters. `active`/`cursor`/
/// `total_groups` describe the in-progress migration (zero when none);
/// the rest are lifetime counters.
struct MigrationSnapshot {
  u64 active = 0;        ///< migrations in progress (0/1 per map; summed)
  u64 cursor = 0;        ///< next source group to migrate (active maps)
  u64 total_groups = 0;  ///< source groups in the active migration
  u64 groups_migrated = 0;
  u64 keys_migrated = 0;
  u64 started = 0;
  u64 completed = 0;
  u64 resumed = 0;            ///< migrations picked up from a durable cursor on open
  u64 emergency_expands = 0;  ///< blocking merged-expand fallbacks
  u64 help_steps = 0;         ///< bounded help-along steps taken by writers
  u64 bg_steps = 0;           ///< background drain steps (service worker idle loop)

  MigrationSnapshot& operator+=(const MigrationSnapshot& o) {
    active += o.active;
    cursor += o.cursor;
    total_groups += o.total_groups;
    groups_migrated += o.groups_migrated;
    keys_migrated += o.keys_migrated;
    started += o.started;
    completed += o.completed;
    resumed += o.resumed;
    emergency_expands += o.emergency_expands;
    help_steps += o.help_steps;
    bg_steps += o.bg_steps;
    return *this;
  }
};

/// Per-op latency histograms, sampled.
struct OpLatencySnapshot {
  HistogramSnapshot insert;
  HistogramSnapshot find;
  HistogramSnapshot erase;
  HistogramSnapshot expand;
  HistogramSnapshot scrub;
  HistogramSnapshot recover;
  HistogramSnapshot compact;
  HistogramSnapshot migrate;

  static OpLatencySnapshot from(const OpRecorder& rec) {
    OpLatencySnapshot s;
    s.insert = rec.of(OpKind::kInsert).snapshot();
    s.find = rec.of(OpKind::kFind).snapshot();
    s.erase = rec.of(OpKind::kErase).snapshot();
    s.expand = rec.of(OpKind::kExpand).snapshot();
    s.scrub = rec.of(OpKind::kScrub).snapshot();
    s.recover = rec.of(OpKind::kRecover).snapshot();
    s.compact = rec.of(OpKind::kCompact).snapshot();
    s.migrate = rec.of(OpKind::kMigrate).snapshot();
    return s;
  }

  [[nodiscard]] const HistogramSnapshot& of(OpKind kind) const {
    switch (kind) {
      case OpKind::kInsert: return insert;
      case OpKind::kFind: return find;
      case OpKind::kErase: return erase;
      case OpKind::kExpand: return expand;
      case OpKind::kScrub: return scrub;
      case OpKind::kRecover: return recover;
      case OpKind::kCompact: return compact;
      case OpKind::kMigrate: return migrate;
    }
    return insert;
  }

  /// Fold another structure's sampled histograms into this one. Because
  /// HistogramSnapshot carries its sparse bucket distribution, the
  /// merged percentiles equal those of the union of samples.
  void merge(const OpLatencySnapshot& o) {
    insert.merge(o.insert);
    find.merge(o.find);
    erase.merge(o.erase);
    expand.merge(o.expand);
    scrub.merge(o.scrub);
    recover.merge(o.recover);
    compact.merge(o.compact);
    migrate.merge(o.migrate);
  }
};

/// Per-phase latency attribution (obs/span.hpp PhaseAccum, converted to
/// the ns domain). One row per OpKind; for every sampled op
///   phase_ns[kProbe] + [kPersist] + [kFence] + [kMigrateHelp] == op_ns
/// exactly (probe is the residual), and the service layer adds ring
/// wait to both phase_ns[kRingWait] and op_ns, so phase shares
/// (phase_ns / op_ns) always partition the attributed time. All fields
/// are counters: absorb() sums them, so shards merge like the latency
/// histograms (merge == union) and double-absorbing scales every row
/// uniformly without changing any share.
struct PhaseSnapshot {
  struct Row {
    u64 samples = 0;  ///< map-level sampled ops contributing
    u64 op_ns = 0;    ///< total attributed time
    std::array<u64, kPhases> phase_ns{};

    Row& operator+=(const Row& o) {
      samples += o.samples;
      op_ns += o.op_ns;
      for (usize p = 0; p < kPhases; ++p) phase_ns[p] += o.phase_ns[p];
      return *this;
    }
  };

  std::array<Row, kOpKinds> rows{};

  [[nodiscard]] const Row& of(OpKind kind) const { return rows[static_cast<usize>(kind)]; }

  /// Share of kind's attributed time spent in phase (0 when unsampled).
  [[nodiscard]] double share(OpKind kind, Phase phase) const {
    const Row& r = of(kind);
    if (r.op_ns == 0) return 0;
    return static_cast<double>(r.phase_ns[static_cast<usize>(phase)]) /
           static_cast<double>(r.op_ns);
  }

  [[nodiscard]] u64 total_op_ns() const {
    u64 t = 0;
    for (const Row& r : rows) t += r.op_ns;
    return t;
  }

  PhaseSnapshot& operator+=(const PhaseSnapshot& o) {
    for (usize k = 0; k < kOpKinds; ++k) rows[k] += o.rows[k];
    return *this;
  }
};

/// Last-window gauges from the time-series aggregator
/// (obs/timeseries.hpp). These are GAUGES, not counters: only the
/// top-level aggregator that owns the TimeSeries fills them in, and
/// absorb() merges by max, so absorbing the same shard snapshot twice
/// (or absorbing shard snapshots that never saw a ticker) cannot
/// double-count them.
struct TimeseriesGauges {
  u64 windows = 0;        ///< windows currently buffered
  u64 interval_ms = 0;    ///< nominal tick interval
  u64 last_window_ms = 0; ///< caller-clock end of the newest window
  double last_qps = 0;
  double last_p99_ns = 0;

  TimeseriesGauges& operator+=(const TimeseriesGauges& o) {
    windows = windows > o.windows ? windows : o.windows;
    interval_ms = interval_ms > o.interval_ms ? interval_ms : o.interval_ms;
    last_window_ms = last_window_ms > o.last_window_ms ? last_window_ms : o.last_window_ms;
    last_qps = last_qps > o.last_qps ? last_qps : o.last_qps;
    last_p99_ns = last_p99_ns > o.last_p99_ns ? last_p99_ns : o.last_p99_ns;
    return *this;
  }
};

/// One op the flight recorder shows as in flight at the last crash
/// (reconstructed by the reopen-time sidecar scan).
struct FlightOpBrief {
  OpKind kind = OpKind::kInsert;
  FlightPhase phase = FlightPhase::kStart;
  u64 seqno = 0;
  u64 key_hash = 0;
};

/// Flight-recorder forensics (obs/flight_recorder.hpp): what the
/// reopen-time scan of the `.flight` sidecar found. All zero when the
/// recorder is off (FlightMode::kOff or GH_OBS_OFF) or the map was
/// created fresh.
struct FlightSnapshot {
  bool enabled = false;       ///< a recorder is live on this structure
  u64 records_scanned = 0;    ///< valid records found by the open() scan
  u64 records_torn = 0;       ///< protocol violations (must stay 0)
  std::vector<FlightOpBrief> in_flight_on_open;

  FlightSnapshot& operator+=(const FlightSnapshot& o) {
    enabled = enabled || o.enabled;
    records_scanned += o.records_scanned;
    records_torn += o.records_torn;
    in_flight_on_open.insert(in_flight_on_open.end(), o.in_flight_on_open.begin(),
                             o.in_flight_on_open.end());
    return *this;
  }
};

/// One shard of a concurrent map, in brief (the aggregate fields of the
/// owning Snapshot already sum these).
struct ShardBrief {
  usize shard = 0;
  u64 size = 0;
  u64 capacity = 0;
  ContentionSnapshot contention;
  u64 expansions = 0;
  bool degraded = false;
};

/// The unified stats view. All fields are plain sampled values — safe to
/// copy, serialize (obs/export.hpp) or diff between two points in time.
struct Snapshot {
  u32 version = kSchemaVersion;
  std::string source;  ///< "GroupHashMap", "ConcurrentStringMap", table name…
  u64 size = 0;
  u64 capacity = 0;
  double load_factor = 0;
  usize shards = 0;  ///< 0 for non-sharded structures

  PersistSnapshot persist;
  TableOpSnapshot table;
  ScrubSnapshot scrub;
  ContentionSnapshot contention;
  LifecycleSnapshot lifecycle;
  MigrationSnapshot migration;
  OpLatencySnapshot latency;
  PhaseSnapshot phases;
  TimeseriesGauges timeseries;
  FlightSnapshot flight;

  std::vector<ShardBrief> per_shard;  ///< concurrent wrappers only

  /// Merge another structure's sample into this one (used by the
  /// concurrent wrappers to aggregate shards). Latency histograms merge
  /// their sparse bucket distributions, so the aggregate's percentiles
  /// equal those of a single histogram holding the union of samples.
  Snapshot& absorb(const Snapshot& o) {
    size += o.size;
    capacity += o.capacity;
    load_factor = capacity ? static_cast<double>(size) / static_cast<double>(capacity) : 0;
    persist += o.persist;
    table += o.table;
    scrub += o.scrub;
    contention += o.contention;
    lifecycle += o.lifecycle;
    migration += o.migration;
    latency.merge(o.latency);
    phases += o.phases;      // counters: sums, shares invariant
    timeseries += o.timeseries;  // gauges: max-merge, idempotent
    flight += o.flight;
    return *this;
  }
};

}  // namespace gh::obs
