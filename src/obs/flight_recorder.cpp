// Offline side of the flight recorder: scan raw sidecar bytes, group
// records into ops, and render text / Chrome-trace timelines. This file
// deliberately has no nvm dependency — it reads plain bytes, so gh_stats
// can post-mortem a `.flight` file without opening the map (and even in
// a GH_OBS_OFF build).
#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/span.hpp"
#include "util/format.hpp"

namespace gh::obs {

const char* flight_event_name(FlightEvent e) {
  switch (e) {
    case FlightEvent::kQuarantine: return "quarantine";
    case FlightEvent::kDegraded: return "degraded";
  }
  return "unknown";
}

FlightScan scan_flight(std::span<const std::byte> bytes) {
  FlightScan scan;
  if (bytes.size() < kFlightHeaderBytes) return scan;
  FlightHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (h.magic != kFlightMagic || h.version != kFlightVersion) return scan;
  if (h.crc != h.compute_crc()) return scan;
  if (h.record_bytes != sizeof(FlightRecord) || h.ring_count == 0 ||
      h.slots_per_ring == 0) {
    return scan;
  }
  const u64 total_slots = h.ring_count * h.slots_per_ring;
  if (bytes.size() < kFlightHeaderBytes + total_slots * sizeof(FlightRecord)) {
    return scan;
  }
  scan.valid_header = true;
  scan.ring_count = h.ring_count;
  scan.slots_per_ring = h.slots_per_ring;
  for (u64 s = 0; s < total_slots; ++s) {
    FlightRecord rec;
    std::memcpy(&rec, bytes.data() + kFlightHeaderBytes + s * sizeof(FlightRecord),
                sizeof(rec));
    ++scan.slots_scanned;
    if (rec.commit == 0) {
      ++scan.records_empty;
      continue;
    }
    const u64 magic = rec.commit >> 48;
    const u16 checksum = static_cast<u16>(rec.commit >> 32);
    const u32 ring = static_cast<u32>((rec.commit >> 16) & 0xffff);
    const u8 phase = static_cast<u8>(rec.commit >> 8);
    const u8 kind = static_cast<u8>(rec.commit);
    if (magic != kFlightCommitMagic ||
        checksum != flight_checksum(rec.key_hash, rec.seqno, rec.tsc) ||
        kind >= kOpKinds || phase > static_cast<u8>(FlightPhase::kEvent) ||
        ring != s / h.slots_per_ring) {
      ++scan.records_torn;
      continue;
    }
    ++scan.records_valid;
    scan.records.push_back(FlightRecordView{ring, static_cast<OpKind>(kind),
                                            static_cast<FlightPhase>(phase),
                                            rec.key_hash, rec.seqno, rec.tsc});
  }
  std::sort(scan.records.begin(), scan.records.end(),
            [](const FlightRecordView& a, const FlightRecordView& b) {
              return a.seqno != b.seqno ? a.seqno < b.seqno : a.phase < b.phase;
            });
  // Group by op id: in flight = reached start/publish, never finished.
  // kEvent records are standalone facts, never in flight. Note the ring
  // may have overwritten an old op's start while keeping its finish (or
  // vice versa) — requiring a start/publish record makes the scan
  // conservative: it only names ops it can positively place mid-flight.
  std::map<u64, InFlightOp> open_ops;
  for (const FlightRecordView& r : scan.records) {
    if (r.phase == FlightPhase::kEvent) continue;
    if (r.phase == FlightPhase::kFinish) {
      open_ops.erase(r.seqno);
      continue;
    }
    auto [it, inserted] = open_ops.try_emplace(
        r.seqno, InFlightOp{r.kind, r.phase, r.ring, r.key_hash, r.seqno, r.tsc});
    if (!inserted && r.phase > it->second.phase) {
      it->second.phase = r.phase;
      it->second.tsc = r.tsc;
      it->second.key_hash = r.key_hash;
    }
  }
  scan.in_flight.reserve(open_ops.size());
  for (const auto& [seqno, op] : open_ops) scan.in_flight.push_back(op);
  return scan;
}

std::string flight_timeline_text(const FlightScan& scan) {
  std::string out;
  if (!scan.valid_header) {
    return "flight: no valid header (not a flight sidecar, or truncated)\n";
  }
  out += "flight: " + std::to_string(scan.ring_count) + " rings x " +
         std::to_string(scan.slots_per_ring) + " slots, " +
         std::to_string(scan.records_valid) + " records (" +
         std::to_string(scan.records_torn) + " torn, " +
         std::to_string(scan.records_empty) + " empty)\n";
  if (!scan.in_flight.empty()) {
    out += "in flight at crash:\n";
    for (const InFlightOp& op : scan.in_flight) {
      char line[160];
      if (op.kind == OpKind::kMigrate) {
        // key_hash packs (migration phase << 56) | cursor: an interrupted
        // online resize names its last durable step and where reopen will
        // resume, straight from the newest surviving record.
        std::snprintf(line, sizeof(line),
                      "  op#%llu migrate reached %s, resume cursor=group %llu (ring %u)\n",
                      static_cast<unsigned long long>(op.seqno),
                      migration_phase_name(decode_migration_phase(op.key_hash)),
                      static_cast<unsigned long long>(decode_migration_cursor(op.key_hash)),
                      op.ring);
      } else {
        std::snprintf(line, sizeof(line),
                      "  op#%llu %s reached %s (ring %u, key_hash=0x%llx)\n",
                      static_cast<unsigned long long>(op.seqno), op_kind_name(op.kind),
                      flight_phase_name(op.phase), op.ring,
                      static_cast<unsigned long long>(op.key_hash));
      }
      out += line;
    }
  } else {
    out += "in flight at crash: none\n";
  }
  if (scan.records.empty()) return out;
  const u64 t0 = std::min_element(scan.records.begin(), scan.records.end(),
                                  [](const FlightRecordView& a,
                                     const FlightRecordView& b) {
                                    return a.tsc < b.tsc;
                                  })
                     ->tsc;
  const double tpn = ticks_per_ns();
  out += "timeline (us since first record):\n";
  for (const FlightRecordView& r : scan.records) {
    const double us =
        static_cast<double>(r.tsc - std::min(t0, r.tsc)) / (tpn > 0 ? tpn : 1) / 1000.0;
    char line[160];
    if (r.phase == FlightPhase::kEvent) {
      std::snprintf(line, sizeof(line), "  %12.3f  ring%u  op#%llu  %-8s EVENT %s\n",
                    us, r.ring, static_cast<unsigned long long>(r.seqno),
                    op_kind_name(r.kind),
                    flight_event_name(static_cast<FlightEvent>(r.key_hash)));
    } else if (r.kind == OpKind::kMigrate) {
      std::snprintf(line, sizeof(line),
                    "  %12.3f  ring%u  op#%llu  migrate  %-8s phase=%s cursor=%llu\n",
                    us, r.ring, static_cast<unsigned long long>(r.seqno),
                    flight_phase_name(r.phase),
                    migration_phase_name(decode_migration_phase(r.key_hash)),
                    static_cast<unsigned long long>(decode_migration_cursor(r.key_hash)));
    } else {
      std::snprintf(line, sizeof(line),
                    "  %12.3f  ring%u  op#%llu  %-8s %-8s key_hash=0x%llx\n", us,
                    r.ring, static_cast<unsigned long long>(r.seqno),
                    op_kind_name(r.kind), flight_phase_name(r.phase),
                    static_cast<unsigned long long>(r.key_hash));
    }
    out += line;
  }
  return out;
}

void append_flight_trace_events(const FlightScan& scan, std::vector<TraceEvent>& out,
                                u64 base_ticks) {
  // "X" complete events for start→finish pairs, "i" instants for
  // unpaired records and lifecycle events. Timestamps are microseconds
  // from base_ticks (or the first record when base_ticks is 0).
  if (!scan.valid_header || scan.records.empty()) return;
  u64 t0 = base_ticks;
  if (t0 == 0) {
    t0 = scan.records.front().tsc;
    for (const FlightRecordView& r : scan.records) t0 = std::min(t0, r.tsc);
  }
  const double tpn = ticks_per_ns();
  const auto us_of = [&](u64 tsc) {
    return static_cast<double>(tsc - std::min(t0, tsc)) / (tpn > 0 ? tpn : 1) /
           1000.0;
  };
  // Pair start records with their finish per op id; paired starts are
  // folded into the "X" complete event emitted at the finish.
  std::map<u64, const FlightRecordView*> starts;
  for (const FlightRecordView& r : scan.records) {
    if (r.phase == FlightPhase::kStart) starts.emplace(r.seqno, &r);
  }
  char buf[256];
  for (const FlightRecordView& r : scan.records) {
    const double us = us_of(r.tsc);
    const auto start_it = starts.find(r.seqno);
    const bool paired = start_it != starts.end();
    if (r.phase == FlightPhase::kStart && paired) continue;  // emitted at finish
    if (r.phase == FlightPhase::kFinish && paired) {
      const double b = us_of(start_it->second->tsc);
      std::snprintf(buf, sizeof(buf),
                    "\"name\":\"%s\",\"ph\":\"X\",\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u,\"args\":{\"op\":%llu,\"key_hash\":"
                    "\"0x%llx\"}",
                    op_kind_name(r.kind), std::max(us - b, 0.001), r.ring,
                    static_cast<unsigned long long>(r.seqno),
                    static_cast<unsigned long long>(r.key_hash));
      out.push_back(TraceEvent{b, buf});
      continue;
    }
    // Everything else — publish marks, lifecycle events, and edges
    // whose partner was overwritten by the ring — becomes an instant.
    const char* suffix = r.phase == FlightPhase::kEvent
                             ? flight_event_name(static_cast<FlightEvent>(r.key_hash))
                         : r.kind == OpKind::kMigrate
                             ? migration_phase_name(decode_migration_phase(r.key_hash))
                             : flight_phase_name(r.phase);
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"%s:%s\",\"ph\":\"i\",\"s\":\"t\","
                  "\"pid\":1,\"tid\":%u,\"args\":{\"op\":%llu}",
                  op_kind_name(r.kind), suffix, r.ring,
                  static_cast<unsigned long long>(r.seqno));
    out.push_back(TraceEvent{us, buf});
  }
}

std::string flight_trace_json(const FlightScan& scan) {
  // Records iterate in seqno order but each ring's TSC base can skew,
  // so events must be re-sorted on the shared time axis before
  // rendering — Chrome's viewer silently drops events whose ts
  // regresses (render_trace_json sorts).
  std::vector<TraceEvent> events;
  append_flight_trace_events(scan, events);
  return render_trace_json(std::move(events));
}

}  // namespace gh::obs
