// Versioned text serializers for the observability layer.
//
//   * export_json(Snapshot)          — {"schema":"gh.obs.snapshot.v1",…}
//   * export_json(RegistrySnapshot)  — {"schema":"gh.obs.metrics.v1",…}
//   * export_prometheus(…)           — Prometheus text exposition format
//     (counters as *_total, histograms as summary-style quantile lines)
//   * validate_json(…)               — minimal structural JSON check used
//     by the schema round-trip tests and the gh_stats self-test.
//
// The schema string embeds the version; adding fields is
// backwards-compatible, renaming or removing one bumps the version.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace gh::obs {

inline constexpr const char* kSnapshotSchema = "gh.obs.snapshot.v1";
inline constexpr const char* kMetricsSchema = "gh.obs.metrics.v1";

/// One map/table snapshot as a JSON object.
[[nodiscard]] std::string export_json(const Snapshot& snapshot);

/// The process-wide registry as a JSON object.
[[nodiscard]] std::string export_json(const MetricsRegistry::RegistrySnapshot& registry);

/// Convenience: collect + export the global registry.
[[nodiscard]] std::string export_registry_json();

/// One map/table snapshot in Prometheus text format. Metric names get
/// `prefix` (default "gh_") and a source label.
[[nodiscard]] std::string export_prometheus(const Snapshot& snapshot,
                                            std::string_view prefix = "gh_");

/// The process-wide registry in Prometheus text format.
[[nodiscard]] std::string export_prometheus(
    const MetricsRegistry::RegistrySnapshot& registry, std::string_view prefix = "gh_");

/// Structural JSON validation (objects, arrays, strings, numbers, bools,
/// null; UTF-8 passthrough). Returns false and sets `error` (if given)
/// on the first syntax violation. Small by design — this is a schema
/// smoke check, not a parser for untrusted input.
[[nodiscard]] bool validate_json(std::string_view text, std::string* error = nullptr);

}  // namespace gh::obs
