#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gh::obs {
namespace {

// --------------------------------------------------------------------------
// JSON writer helpers (no library dependency; output is ASCII).

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

/// Tiny JSON object/array builder: tracks comma placement.
class Json {
 public:
  explicit Json(std::string& out) : out_(out) {}

  Json& begin_obj() {
    comma();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  Json& end_obj() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  Json& begin_arr() {
    comma();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  Json& end_arr() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }
  Json& key(std::string_view k) {
    comma();
    append_escaped(out_, k);
    out_ += ':';
    fresh_ = true;
    return *this;
  }
  Json& value(u64 v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  Json& value(double v) {
    comma();
    append_double(out_, v);
    return *this;
  }
  Json& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  Json& value(std::string_view v) {
    comma();
    append_escaped(out_, v);
    return *this;
  }
  Json& field(std::string_view k, u64 v) { return key(k).value(v); }
  Json& field(std::string_view k, double v) { return key(k).value(v); }
  Json& field(std::string_view k, bool v) { return key(k).value(v); }
  Json& field(std::string_view k, std::string_view v) { return key(k).value(v); }
  // Without this, a string literal converts to bool (standard conversion)
  // before string_view (user-defined) and serializes as true/false.
  Json& field(std::string_view k, const char* v) {
    return key(k).value(std::string_view(v));
  }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  std::string& out_;
  bool fresh_ = true;
};

void write_histogram(Json& j, std::string_view name, const HistogramSnapshot& h) {
  j.key(name).begin_obj();
  j.field("count", h.count)
      .field("sum_ns", h.sum_ns)
      .field("max_ns", h.max_ns)
      .field("mean_ns", h.mean_ns)
      .field("p50_ns", h.p50_ns)
      .field("p95_ns", h.p95_ns)
      .field("p99_ns", h.p99_ns)
      .field("p999_ns", h.p999_ns);
  // Sparse (bucket index, count) pairs; validate_json cross-checks their
  // sum against "count" so a truncated/mutated export fails validation.
  j.key("buckets").begin_arr();
  for (const auto& [bucket, count] : h.buckets) {
    j.begin_arr().value(u64{bucket}).value(count).end_arr();
  }
  j.end_arr();
  j.end_obj();
}

void write_latency(Json& j, const OpLatencySnapshot& lat) {
  j.key("latency").begin_obj();
  write_histogram(j, "insert", lat.insert);
  write_histogram(j, "find", lat.find);
  write_histogram(j, "erase", lat.erase);
  write_histogram(j, "expand", lat.expand);
  write_histogram(j, "scrub", lat.scrub);
  write_histogram(j, "recover", lat.recover);
  write_histogram(j, "compact", lat.compact);
  write_histogram(j, "migrate", lat.migrate);
  j.end_obj();
}

// --------------------------------------------------------------------------
// Prometheus helpers.

/// Escape a label value per the exposition format: backslash, double
/// quote and newline must be escaped inside the quoted value or a
/// hostile source string (e.g. a map path) breaks the line structure.
std::string prom_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_help(std::string& out, std::string_view prefix, std::string_view name,
               std::string_view help) {
  out += "# HELP ";
  out += prefix;
  out += name;
  out += ' ';
  out += help;
  out += '\n';
}

void prom_line(std::string& out, std::string_view prefix, std::string_view name,
               std::string_view labels, double v) {
  out += prefix;
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
  out += '\n';
}

void prom_counter(std::string& out, std::string_view prefix, std::string_view name,
                  std::string_view labels, u64 v,
                  std::string_view help = "gh observability counter") {
  prom_help(out, prefix, name, help);
  out += "# TYPE ";
  out += prefix;
  out += name;
  out += " counter\n";
  prom_line(out, prefix, name, labels, static_cast<double>(v));
}

void prom_histogram(std::string& out, std::string_view prefix, std::string_view base,
                    std::string_view labels, const HistogramSnapshot& h,
                    std::string_view help = "per-operation latency summary (ns)") {
  prom_help(out, prefix, base, help);
  out += "# TYPE ";
  out += prefix;
  out += base;
  out += " summary\n";
  const std::string lp(labels);
  const auto with_q = [&](const char* q) {
    return lp.empty() ? std::string("quantile=\"") + q + "\""
                      : lp + ",quantile=\"" + q + "\"";
  };
  prom_line(out, prefix, base, with_q("0.5"), h.p50_ns);
  prom_line(out, prefix, base, with_q("0.95"), h.p95_ns);
  prom_line(out, prefix, base, with_q("0.99"), h.p99_ns);
  prom_line(out, prefix, base, with_q("0.999"), h.p999_ns);
  prom_line(out, prefix, std::string(base) + "_count", lp, static_cast<double>(h.count));
  prom_line(out, prefix, std::string(base) + "_sum", lp, static_cast<double>(h.sum_ns));
  prom_line(out, prefix, std::string(base) + "_max", lp, static_cast<double>(h.max_ns));
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_';
  }
  return out;
}

}  // namespace

std::string export_json(const Snapshot& s) {
  std::string out;
  out.reserve(2048);
  Json j(out);
  j.begin_obj();
  j.field("schema", kSnapshotSchema)
      .field("version", u64{s.version})
      .field("source", s.source)
      .field("size", s.size)
      .field("capacity", s.capacity)
      .field("load_factor", s.load_factor)
      .field("shards", u64{s.shards});
  j.key("persist").begin_obj();
  j.field("stores", s.persist.stores)
      .field("bytes_written", s.persist.bytes_written)
      .field("atomic_stores", s.persist.atomic_stores)
      .field("persist_calls", s.persist.persist_calls)
      .field("lines_flushed", s.persist.lines_flushed)
      .field("fences", s.persist.fences)
      .field("delay_ns", s.persist.delay_ns);
  j.end_obj();
  j.key("ops").begin_obj();
  j.field("inserts", s.table.inserts)
      .field("insert_failures", s.table.insert_failures)
      .field("queries", s.table.queries)
      .field("query_hits", s.table.query_hits)
      .field("erases", s.table.erases)
      .field("erase_hits", s.table.erase_hits)
      .field("probes", s.table.probes)
      .field("level2_probes", s.table.level2_probes)
      .field("displacements", s.table.displacements)
      .field("stash_probes", s.table.stash_probes)
      .field("backward_shifts", s.table.backward_shifts)
      .field("tag_probes", s.table.tag_probes)
      .field("tag_skips", s.table.tag_skips)
      .field("tag_false_positives", s.table.tag_false_positives)
      .field("batch_ops", s.table.batch_ops)
      .field("batch_keys", s.table.batch_keys)
      .field("prefetches_issued", s.table.prefetches_issued);
  j.end_obj();
  j.key("scrub").begin_obj();
  j.field("groups_scrubbed", s.scrub.groups_scrubbed)
      .field("cells_scrubbed", s.scrub.cells_scrubbed)
      .field("crc_mismatches", s.scrub.crc_mismatches)
      .field("groups_quarantined", s.scrub.groups_quarantined)
      .field("cells_lost", s.scrub.cells_lost)
      .field("media_errors", s.scrub.media_errors)
      .field("open_groups_checked", s.scrub.open_groups_checked)
      .field("open_crc_mismatches", s.scrub.open_crc_mismatches)
      .field("open_cells_lost", s.scrub.open_cells_lost);
  j.end_obj();
  j.key("contention").begin_obj();
  j.field("read_retries", s.contention.read_retries)
      .field("read_fallbacks", s.contention.read_fallbacks)
      .field("writer_waits", s.contention.writer_waits);
  j.end_obj();
  j.key("lifecycle").begin_obj();
  j.field("expansions", s.lifecycle.expansions)
      .field("expand_failures", s.lifecycle.expand_failures)
      .field("compactions", s.lifecycle.compactions)
      .field("compact_failures", s.lifecycle.compact_failures)
      .field("recoveries", s.lifecycle.recoveries)
      .field("orphans_reclaimed", s.lifecycle.orphans_reclaimed)
      .field("degraded", s.lifecycle.degraded)
      .field("expand_backoff", s.lifecycle.expand_backoff)
      .field("expand_cooldown", s.lifecycle.expand_cooldown);
  j.end_obj();
  j.key("migration").begin_obj();
  j.field("active", s.migration.active)
      .field("cursor", s.migration.cursor)
      .field("total_groups", s.migration.total_groups)
      .field("groups_migrated", s.migration.groups_migrated)
      .field("keys_migrated", s.migration.keys_migrated)
      .field("started", s.migration.started)
      .field("completed", s.migration.completed)
      .field("resumed", s.migration.resumed)
      .field("emergency_expands", s.migration.emergency_expands)
      .field("help_steps", s.migration.help_steps)
      .field("bg_steps", s.migration.bg_steps);
  j.end_obj();
  write_latency(j, s.latency);
  // Per-phase attribution: one object per OpKind that saw samples.
  j.key("phases").begin_obj();
  for (usize k = 0; k < kOpKinds; ++k) {
    const PhaseSnapshot::Row& r = s.phases.rows[k];
    if (r.samples == 0 && r.op_ns == 0) continue;
    j.key(op_kind_name(static_cast<OpKind>(k))).begin_obj();
    j.field("samples", r.samples).field("op_ns", r.op_ns);
    for (usize p = 0; p < kPhases; ++p) {
      j.field(std::string(phase_name(static_cast<Phase>(p))) + "_ns", r.phase_ns[p]);
    }
    j.end_obj();
  }
  j.end_obj();
  j.key("timeseries").begin_obj();
  j.field("windows", s.timeseries.windows)
      .field("interval_ms", s.timeseries.interval_ms)
      .field("last_window_ms", s.timeseries.last_window_ms)
      .field("last_qps", s.timeseries.last_qps)
      .field("last_p99_ns", s.timeseries.last_p99_ns);
  j.end_obj();
  j.key("flight").begin_obj();
  j.field("enabled", s.flight.enabled)
      .field("records_scanned", s.flight.records_scanned)
      .field("records_torn", s.flight.records_torn);
  j.key("in_flight").begin_arr();
  for (const FlightOpBrief& op : s.flight.in_flight_on_open) {
    j.begin_obj();
    j.field("kind", op_kind_name(op.kind))
        .field("phase", flight_phase_name(op.phase))
        .field("seqno", op.seqno)
        .field("key_hash", op.key_hash);
    j.end_obj();
  }
  j.end_arr();
  j.end_obj();
  j.key("per_shard").begin_arr();
  for (const ShardBrief& sh : s.per_shard) {
    j.begin_obj();
    j.field("shard", u64{sh.shard})
        .field("size", sh.size)
        .field("capacity", sh.capacity)
        .field("read_retries", sh.contention.read_retries)
        .field("read_fallbacks", sh.contention.read_fallbacks)
        .field("writer_waits", sh.contention.writer_waits)
        .field("expansions", sh.expansions)
        .field("degraded", sh.degraded);
    j.end_obj();
  }
  j.end_arr();
  j.end_obj();
  return out;
}

std::string export_json(const MetricsRegistry::RegistrySnapshot& r) {
  std::string out;
  out.reserve(1024);
  Json j(out);
  j.begin_obj();
  j.field("schema", kMetricsSchema).field("version", u64{r.version});
  j.key("counters").begin_obj();
  for (const auto& c : r.counters) j.field(c.name, c.value);
  j.end_obj();
  j.key("histograms").begin_obj();
  for (const auto& h : r.histograms) write_histogram(j, h.name, h.hist);
  j.end_obj();
  j.key("recorders").begin_arr();
  for (const auto& rec : r.recorders) {
    j.begin_obj();
    j.field("name", rec.name);
    j.key("ops").begin_obj();
    for (usize k = 0; k < kOpKinds; ++k) {
      write_histogram(j, op_kind_name(static_cast<OpKind>(k)), rec.ops[k]);
    }
    j.end_obj();
    j.end_obj();
  }
  j.end_arr();
  j.end_obj();
  return out;
}

std::string export_registry_json() {
  return export_json(MetricsRegistry::global().collect());
}

std::string export_prometheus(const Snapshot& s, std::string_view prefix) {
  std::string out;
  out.reserve(2048);
  std::string labels = "source=\"" + prom_label_value(s.source) + "\"";
  prom_counter(out, prefix, "size", labels, s.size, "live keys in the table");
  prom_counter(out, prefix, "capacity", labels, s.capacity, "total cell capacity");
  prom_counter(out, prefix, "inserts_total", labels, s.table.inserts,
               "insert operations attempted");
  prom_counter(out, prefix, "insert_failures_total", labels, s.table.insert_failures,
               "inserts that found no free cell");
  prom_counter(out, prefix, "queries_total", labels, s.table.queries,
               "find operations attempted");
  prom_counter(out, prefix, "erases_total", labels, s.table.erases,
               "erase operations attempted");
  prom_counter(out, prefix, "probes_total", labels, s.table.probes,
               "cells examined across all operations");
  prom_counter(out, prefix, "tag_probes_total", labels, s.table.tag_probes,
               "tag-matched cells whose full key was compared");
  prom_counter(out, prefix, "tag_skips_total", labels, s.table.tag_skips,
               "cells skipped by the fingerprint-tag filter");
  prom_counter(out, prefix, "tag_false_positives_total", labels, s.table.tag_false_positives,
               "tag matches whose key compare missed");
  prom_counter(out, prefix, "batch_ops_total", labels, s.table.batch_ops,
               "batched multi-op calls");
  prom_counter(out, prefix, "batch_keys_total", labels, s.table.batch_keys,
               "keys submitted through batched multi-op calls");
  prom_counter(out, prefix, "prefetches_issued_total", labels, s.table.prefetches_issued,
               "software prefetches issued by batched lookups");
  prom_counter(out, prefix, "persist_calls_total", labels, s.persist.persist_calls,
               "persist() calls issued to the PM policy");
  prom_counter(out, prefix, "lines_flushed_total", labels, s.persist.lines_flushed,
               "cache lines flushed to NVM");
  prom_counter(out, prefix, "fences_total", labels, s.persist.fences,
               "store fences issued");
  prom_counter(out, prefix, "bytes_written_total", labels, s.persist.bytes_written,
               "bytes written through the PM policy");
  prom_counter(out, prefix, "scrub_groups_total", labels, s.scrub.groups_scrubbed,
               "group checksum verifications run");
  prom_counter(out, prefix, "crc_mismatches_total", labels, s.scrub.crc_mismatches,
               "group checksum failures detected");
  prom_counter(out, prefix, "cells_lost_total", labels, s.scrub.cells_lost,
               "occupied cells dropped as unrecoverable");
  prom_counter(out, prefix, "read_retries_total", labels, s.contention.read_retries,
               "optimistic read retries");
  prom_counter(out, prefix, "read_fallbacks_total", labels, s.contention.read_fallbacks,
               "optimistic reads that fell back to the lock");
  prom_counter(out, prefix, "writer_waits_total", labels, s.contention.writer_waits,
               "writer lock acquisitions that waited");
  prom_counter(out, prefix, "expansions_total", labels, s.lifecycle.expansions,
               "table expansions completed");
  prom_counter(out, prefix, "recoveries_total", labels, s.lifecycle.recoveries,
               "crash recovery passes run");
  prom_counter(out, prefix, "expand_cooldown", labels, s.lifecycle.expand_cooldown,
               "ops left before a pending expansion is retried (gauge)");
  prom_counter(out, prefix, "migration_active", labels, s.migration.active,
               "online-resize migrations currently in progress (gauge)");
  prom_counter(out, prefix, "migration_cursor", labels, s.migration.cursor,
               "next source group the active migration will move (gauge)");
  prom_counter(out, prefix, "migration_groups_total", labels, s.migration.groups_migrated,
               "source groups migrated by online resizes");
  prom_counter(out, prefix, "migration_keys_total", labels, s.migration.keys_migrated,
               "keys moved by online resizes");
  prom_counter(out, prefix, "migrations_started_total", labels, s.migration.started,
               "online-resize migrations started");
  prom_counter(out, prefix, "migrations_completed_total", labels, s.migration.completed,
               "online-resize migrations finalized");
  prom_counter(out, prefix, "migrations_resumed_total", labels, s.migration.resumed,
               "migrations resumed from a durable cursor on open");
  prom_counter(out, prefix, "flight_in_flight_on_open_total", labels,
               s.flight.in_flight_on_open.size(),
               "ops the flight recorder showed in flight at the last crash");
  prom_counter(out, prefix, "flight_records_torn_total", labels, s.flight.records_torn,
               "torn flight records found on open (protocol violation)");
  for (usize k = 0; k < kOpKinds; ++k) {
    const auto kind = static_cast<OpKind>(k);
    prom_histogram(out, prefix,
                   std::string("op_") + op_kind_name(kind) + "_latency_ns", labels,
                   s.latency.of(kind));
  }
  bool phase_header_written = false;
  for (usize k = 0; k < kOpKinds; ++k) {
    const PhaseSnapshot::Row& r = s.phases.rows[k];
    if (r.samples == 0 && r.op_ns == 0) continue;
    if (!phase_header_written) {
      prom_help(out, prefix, "phase_ns_total",
                "attributed time per op kind and phase (sampled)");
      out += "# TYPE ";
      out += prefix;
      out += "phase_ns_total counter\n";
      phase_header_written = true;
    }
    const std::string op = op_kind_name(static_cast<OpKind>(k));
    for (usize p = 0; p < kPhases; ++p) {
      const std::string phase_labels = labels + ",op=\"" + op + "\",phase=\"" +
                                       phase_name(static_cast<Phase>(p)) + "\"";
      prom_line(out, prefix, "phase_ns_total", phase_labels,
                static_cast<double>(r.phase_ns[p]));
    }
  }
  return out;
}

std::string export_prometheus(const MetricsRegistry::RegistrySnapshot& r,
                              std::string_view prefix) {
  std::string out;
  out.reserve(1024);
  for (const auto& c : r.counters) {
    // Registry counter names are already fully qualified (gh_…_total);
    // don't double-prefix those.
    std::string name = sanitize_metric_name(c.name);
    if (name.rfind(prefix, 0) == 0) name.erase(0, prefix.size());
    prom_counter(out, prefix, name, "", c.value);
  }
  for (const auto& h : r.histograms) {
    prom_histogram(out, prefix, sanitize_metric_name(h.name), "", h.hist);
  }
  for (const auto& rec : r.recorders) {
    const std::string labels = "source=\"" + prom_label_value(rec.name) + "\"";
    for (usize k = 0; k < kOpKinds; ++k) {
      prom_histogram(out, prefix,
                     std::string("op_") + op_kind_name(static_cast<OpKind>(k)) +
                         "_latency_ns",
                     labels, rec.ops[k]);
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Minimal JSON structural validator.

namespace {

/// Top-level keys a "gh.obs.snapshot.v1" document may carry. Additions
/// here must ship with the exporter change that writes them; anything
/// else is a mutated/forged document and fails validation.
constexpr std::string_view kSnapshotTopLevelKeys[] = {
    "schema",     "version",   "source",    "size",   "capacity",
    "load_factor", "shards",   "persist",   "ops",    "scrub",
    "contention", "lifecycle", "migration", "latency", "phases",
    "timeseries", "flight",   "per_shard",
};

bool known_snapshot_key(std::string_view key) {
  for (const std::string_view k : kSnapshotTopLevelKeys) {
    if (k == key) return true;
  }
  return false;
}

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool run(std::string* error) {
    skip_ws();
    const bool ok = value() && (skip_ws(), pos_ == s_.size());
    if (!ok && error != nullptr) {
      *error = err_.empty() ? "trailing characters at offset " + std::to_string(pos_)
                            : err_ + " at offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    last_ = Last::kOther;
    return true;
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    const usize start = ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("bad escape");
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    // Raw (escapes unprocessed) — only compared against escape-free
    // schema constants and key names.
    last_string_ = s_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    last_ = Last::kString;
    return true;
  }

  bool number() {
    const usize start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    last_number_ = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    last_ = Last::kNumber;
    return true;
  }

  bool value() {
    if (++depth_ > 64) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    bool ok = false;
    switch (s_[pos_]) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number();
    }
    --depth_;
    return ok;
  }

  /// Sum the count halves of a validated "buckets" value — an array of
  /// [bucket, count] pairs. Structure other than pairs-of-numbers fails.
  bool sum_buckets(std::string_view text, double* out) {
    JsonChecker inner(text);
    inner.skip_ws();
    if (inner.pos_ >= text.size() || text[inner.pos_] != '[') return false;
    ++inner.pos_;
    inner.skip_ws();
    double sum = 0;
    if (inner.pos_ < text.size() && text[inner.pos_] == ']') {
      *out = 0;
      return true;
    }
    for (;;) {
      inner.skip_ws();
      if (inner.pos_ >= text.size() || text[inner.pos_] != '[') return false;
      ++inner.pos_;
      inner.skip_ws();
      if (!inner.number()) return false;
      inner.skip_ws();
      if (inner.pos_ >= text.size() || text[inner.pos_] != ',') return false;
      ++inner.pos_;
      inner.skip_ws();
      if (!inner.number()) return false;
      sum += inner.last_number_;
      inner.skip_ws();
      if (inner.pos_ >= text.size() || text[inner.pos_] != ']') return false;
      ++inner.pos_;
      inner.skip_ws();
      if (inner.pos_ < text.size() && text[inner.pos_] == ',') {
        ++inner.pos_;
        continue;
      }
      break;
    }
    *out = sum;
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    const bool top_level = depth_ == 1;
    bool has_count = false, has_buckets = false;
    double count = 0, bucket_sum = 0;
    bool buckets_well_formed = true;
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      const std::string key(last_string_);
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      const usize value_start = (skip_ws(), pos_);
      if (!value()) return false;
      if (top_level && key == "schema" && last_ == Last::kString) {
        schema_ = last_string_;
      }
      if (top_level && !known_snapshot_key(key)) top_level_unknown_ = true;
      if (key == "count" && last_ == Last::kNumber) {
        has_count = true;
        count = last_number_;
      } else if (key == "buckets") {
        has_buckets = true;
        buckets_well_formed =
            sum_buckets(s_.substr(value_start, pos_ - value_start), &bucket_sum);
      }
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        break;
      }
      return fail("expected ',' or '}'");
    }
    // A histogram object must be internally consistent: the sparse
    // buckets account for every sample "count" claims.
    if (has_count && has_buckets) {
      if (!buckets_well_formed) return fail("malformed histogram buckets");
      if (count != bucket_sum) return fail("histogram bucket counts do not sum to count");
    }
    // Only enforce the key whitelist for documents that claim to be
    // snapshots — foreign JSON still gets the plain structural check.
    if (top_level && schema_ == kSnapshotSchema && top_level_unknown_) {
      return fail("unknown top-level key in snapshot document");
    }
    last_ = Last::kOther;
    return true;
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      last_ = Last::kOther;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        last_ = Last::kOther;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  enum class Last { kNone, kNumber, kString, kOther };

  std::string_view s_;
  usize pos_ = 0;
  int depth_ = 0;
  std::string err_;
  Last last_ = Last::kNone;
  double last_number_ = 0;
  std::string_view last_string_;
  std::string_view schema_;
  bool top_level_unknown_ = false;
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace gh::obs
