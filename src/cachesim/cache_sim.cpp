#include "cachesim/cache_sim.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace gh::cachesim {

CacheConfig CacheConfig::xeon_e5_2620() {
  return CacheConfig{{{32 * 1024, 8}, {256 * 1024, 8}, {15 * 1024 * 1024, 20}}};
}

CacheConfig CacheConfig::scaled_l3(usize l3_bytes) {
  CacheConfig cfg = xeon_e5_2620();
  // Round up to a power of two so the set count stays a power of two at
  // 16-way associativity.
  usize size = 64 * 1024;
  while (size < l3_bytes) size <<= 1;
  cfg.levels.back().size_bytes = size;
  cfg.levels.back().associativity = 16;
  return cfg;
}

CacheLevel::CacheLevel(const LevelConfig& config, usize line_size)
    : sets_(config.size_bytes / line_size / config.associativity),
      assoc_(config.associativity),
      tags_(sets_ * assoc_, kInvalidTag),
      last_use_(sets_ * assoc_, 0) {
  GH_CHECK_MSG(sets_ > 0 && is_pow2(sets_),
               "cache level must have a power-of-two number of sets");
}

bool CacheLevel::access(u64 line_number) {
  const usize set = static_cast<usize>(line_number & (sets_ - 1));
  const usize base = set * assoc_;
  ++tick_;
  usize victim = base;
  u64 victim_use = ~0ull;
  for (usize w = base; w < base + assoc_; ++w) {
    if (tags_[w] == line_number) {
      last_use_[w] = tick_;
      stats_.hits++;
      return true;
    }
    if (tags_[w] == kInvalidTag) {
      // Prefer empty ways outright.
      if (victim_use != 0) {
        victim = w;
        victim_use = 0;
      }
    } else if (last_use_[w] < victim_use) {
      victim = w;
      victim_use = last_use_[w];
    }
  }
  stats_.misses++;
  tags_[victim] = line_number;
  last_use_[victim] = tick_;
  return false;
}

void CacheLevel::fill_prefetch(u64 line_number) {
  const usize set = static_cast<usize>(line_number & (sets_ - 1));
  const usize base = set * assoc_;
  ++tick_;
  usize victim = base;
  u64 victim_use = ~0ull;
  for (usize w = base; w < base + assoc_; ++w) {
    if (tags_[w] == line_number) {
      last_use_[w] = tick_;
      return;
    }
    if (tags_[w] == kInvalidTag) {
      if (victim_use != 0) {
        victim = w;
        victim_use = 0;
      }
    } else if (last_use_[w] < victim_use) {
      victim = w;
      victim_use = last_use_[w];
    }
  }
  tags_[victim] = line_number;
  last_use_[victim] = tick_;
}

void CacheLevel::invalidate(u64 line_number) {
  const usize set = static_cast<usize>(line_number & (sets_ - 1));
  const usize base = set * assoc_;
  for (usize w = base; w < base + assoc_; ++w) {
    if (tags_[w] == line_number) {
      tags_[w] = kInvalidTag;
      last_use_[w] = 0;
      return;
    }
  }
}

void CacheLevel::clear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(last_use_.begin(), last_use_.end(), 0);
  tick_ = 0;
  stats_ = LevelStats{};
}

CacheSim::CacheSim(const CacheConfig& config) : prefetch_degree_(config.prefetch_degree) {
  GH_CHECK_MSG(!config.levels.empty(), "cache hierarchy needs at least one level");
  levels_.reserve(config.levels.size());
  for (const auto& lvl : config.levels) levels_.emplace_back(lvl, kCachelineSize);
}

void CacheSim::access_line(u64 line_number) {
  for (auto& level : levels_) {
    if (level.access(line_number)) {
      // A hit at level i still fills nothing above (we model demand fill
      // from the hit level upwards by touching upper levels first, which
      // the loop order already did — they recorded misses and filled).
      return;
    }
  }
}

void CacheSim::touch_line(u64 line) {
  if (line == last_line_) {
    access_line(line);
    return;
  }
  const bool sequential = line == last_line_ + 1;
  access_line(line);
  last_line_ = line;
  if (sequential && prefetch_degree_ != 0) {
    // Ascending stream detected: run the prefetcher ahead of the demand
    // access. Prefetched fills evict like normal fills but are not
    // demand misses (how PAPI-visible counters behave on real hardware).
    for (u32 d = 1; d <= prefetch_degree_; ++d) {
      for (auto& level : levels_) level.fill_prefetch(line + d);
      ++prefetches_;
    }
  }
}

void CacheSim::read(const void* addr, usize n) {
  if (n == 0) return;
  const u64 first = reinterpret_cast<std::uintptr_t>(addr) / kCachelineSize;
  const u64 last = (reinterpret_cast<std::uintptr_t>(addr) + n - 1) / kCachelineSize;
  for (u64 line = first; line <= last; ++line) touch_line(line);
}

void CacheSim::write(const void* addr, usize n) {
  // Write-allocate: a store touches the same lines a load would.
  read(addr, n);
}

void CacheSim::clflush(const void* addr, usize n) {
  if (n == 0) return;
  const u64 first = reinterpret_cast<std::uintptr_t>(addr) / kCachelineSize;
  const u64 last = (reinterpret_cast<std::uintptr_t>(addr) + n - 1) / kCachelineSize;
  for (u64 line = first; line <= last; ++line) {
    for (auto& level : levels_) level.invalidate(line);
    ++flushes_;
  }
}

void CacheSim::clwb(const void* addr, usize n) {
  if (n == 0) return;
  // Writeback without invalidation: cache contents are untouched; only
  // the flush count moves (the memory write itself is what the latency
  // model charges for).
  flushes_ += lines_spanned_for(addr, n);
}

u64 CacheSim::lines_spanned_for(const void* addr, usize n) {
  const u64 first = reinterpret_cast<std::uintptr_t>(addr) / kCachelineSize;
  const u64 last = (reinterpret_cast<std::uintptr_t>(addr) + n - 1) / kCachelineSize;
  return last - first + 1;
}

void CacheSim::clear_stats_and_contents() {
  for (auto& level : levels_) level.clear();
  flushes_ = 0;
  prefetches_ = 0;
  last_line_ = ~0ull;
}

const LevelStats& CacheSim::level_stats(usize level) const {
  GH_CHECK(level < levels_.size());
  return levels_[level].stats();
}

u64 CacheSim::llc_misses() const { return levels_.back().stats().misses; }

std::string CacheSim::summary() const {
  std::ostringstream os;
  for (usize i = 0; i < levels_.size(); ++i) {
    const auto& s = levels_[i].stats();
    os << "L" << (i + 1) << " hits=" << s.hits << " misses=" << s.misses << "  ";
  }
  os << "flushes=" << flushes_;
  return os.str();
}

}  // namespace gh::cachesim
