// Optional real-hardware counter access via perf_event_open — a
// substitute for the PAPI library the paper uses. Gracefully degrades to
// "unavailable" when the kernel forbids perf events (common in
// containers); the figure benches then rely solely on the deterministic
// cache simulator and note that in their output.
#pragma once

#include <optional>
#include <string>

#include "util/types.hpp"

namespace gh::cachesim {

class HwCounters {
 public:
  /// Tries to open an LLC-miss counter for the calling thread.
  HwCounters();
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  [[nodiscard]] bool available() const { return fd_ >= 0; }

  void start();
  /// Stops counting and returns LLC misses since start() (nullopt when
  /// counters are unavailable).
  std::optional<u64> stop();

 private:
  int fd_ = -1;
};

}  // namespace gh::cachesim
