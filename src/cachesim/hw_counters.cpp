#include "cachesim/hw_counters.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace gh::cachesim {

HwCounters::HwCounters() {
#ifdef __linux__
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = PERF_COUNT_HW_CACHE_MISSES;  // LLC misses
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  fd_ = static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0 /*this thread*/, -1, -1, 0));
#endif
}

HwCounters::~HwCounters() {
#ifdef __linux__
  if (fd_ >= 0) ::close(fd_);
#endif
}

void HwCounters::start() {
#ifdef __linux__
  if (fd_ < 0) return;
  ::ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
#endif
}

std::optional<u64> HwCounters::stop() {
#ifdef __linux__
  if (fd_ < 0) return std::nullopt;
  ::ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
  u64 value = 0;
  if (::read(fd_, &value, sizeof(value)) != sizeof(value)) return std::nullopt;
  return value;
#else
  return std::nullopt;
#endif
}

}  // namespace gh::cachesim
