// Deterministic CPU cache simulator.
//
// The paper measures L3 cache misses with PAPI hardware counters. Hardware
// counters are not reliably available here (and are noisy in CI), so the
// cache-efficiency experiments (Fig. 2b, Fig. 6) run the tables against
// this model instead: a three-level, set-associative, LRU, write-allocate
// hierarchy in which clflush explicitly invalidates a line at every level
// — exactly the mechanism ("clflush ... will incur a cache miss when
// reading the same memory address later", §2.3) the paper's analysis
// rests on. Default geometry mirrors the paper's Xeon E5-2620
// (32 KiB/8-way L1d, 256 KiB/8-way L2, 15 MiB/20-way shared L3), but
// benches scale the L3 with the table so scaled-down tables keep the
// paper's table:L3 size ratio.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace gh::cachesim {

struct LevelConfig {
  usize size_bytes = 0;
  usize associativity = 0;
};

struct CacheConfig {
  std::vector<LevelConfig> levels;

  /// Hardware stream-prefetcher model: when an access continues an
  /// ascending line stream, the next `prefetch_degree` lines are brought
  /// in without counting as demand misses. This is the mechanism behind
  /// the paper's group-sharing argument ("a single memory access can
  /// prefetch the following cells belonging to the same cacheline", §3.2
  /// — and the adjacent-line/stream prefetchers of the evaluation
  /// machine extend it across lines). 0 disables the prefetcher.
  u32 prefetch_degree = 4;

  /// Paper machine: Xeon E5-2620 (L1d 32 KiB/8, L2 256 KiB/8, L3 15 MiB/20).
  static CacheConfig xeon_e5_2620();

  /// Same L1/L2, but the last level sized to keep the paper's table:L3
  /// ratio when the table itself is scaled down for quick runs.
  static CacheConfig scaled_l3(usize l3_bytes);
};

struct LevelStats {
  u64 hits = 0;
  u64 misses = 0;
};

/// One set-associative LRU level.
class CacheLevel {
 public:
  CacheLevel(const LevelConfig& config, usize line_size);

  /// Returns true on hit. On miss the line is filled (LRU victim evicted).
  bool access(u64 line_number);

  /// Prefetch fill: inserts the line (or refreshes its LRU position)
  /// without touching the demand hit/miss statistics.
  void fill_prefetch(u64 line_number);

  /// clflush: drop the line if present.
  void invalidate(u64 line_number);

  void clear();

  [[nodiscard]] const LevelStats& stats() const { return stats_; }
  [[nodiscard]] usize sets() const { return sets_; }
  [[nodiscard]] usize associativity() const { return assoc_; }

 private:
  usize sets_;
  usize assoc_;
  std::vector<u64> tags_;     // sets_ * assoc_, kInvalidTag when empty
  std::vector<u64> last_use_; // LRU timestamps, parallel to tags_
  u64 tick_ = 0;
  LevelStats stats_;

  static constexpr u64 kInvalidTag = ~0ull;
};

/// The full hierarchy. Lookup walks L1 -> L2 -> L3; a miss at every level
/// is a memory access; fills propagate into all levels (non-inclusive
/// fill-on-miss, adequate for single-threaded miss accounting).
class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  void read(const void* addr, usize n);
  void write(const void* addr, usize n);
  void clflush(const void* addr, usize n);
  /// clwb semantics: the line is written back to memory but REMAINS
  /// cached — later reads hit. Counted in flushes() like clflush.
  void clwb(const void* addr, usize n);
  void clear_stats_and_contents();

  [[nodiscard]] usize num_levels() const { return levels_.size(); }
  [[nodiscard]] const LevelStats& level_stats(usize level) const;
  /// Misses at the last level == memory accesses (what the paper calls
  /// "L3 cache miss number").
  [[nodiscard]] u64 llc_misses() const;
  [[nodiscard]] u64 flushes() const { return flushes_; }
  [[nodiscard]] u64 prefetches() const { return prefetches_; }
  [[nodiscard]] std::string summary() const;

 private:
  void access_line(u64 line_number);
  void touch_line(u64 line_number);
  static u64 lines_spanned_for(const void* addr, usize n);

  std::vector<CacheLevel> levels_;
  u32 prefetch_degree_ = 0;
  u64 last_line_ = ~0ull;
  u64 flushes_ = 0;
  u64 prefetches_ = 0;
};

}  // namespace gh::cachesim
