// MediaError + SIGBUS-to-exception translation for mmap-backed NVM.
//
// Real persistent memory can develop *uncorrectable* errors: the DIMM
// poisons the affected cacheline and a load from it machine-checks. On
// Linux DAX mappings this surfaces as SIGBUS (with BUS_MCEERR_AR), which
// by default aborts the whole process — one bad line takes down a server
// that could have kept serving every other key. The same signal fires for
// the mundane mmap hazard of reading past a truncated file's last page.
//
// This header turns both into a typed, catchable error:
//
//   nvm::with_media_guard(region.bytes(), [&] { ... reads ... });
//
// runs the callback with a thread-local SIGBUS trampoline armed for the
// given address range. A SIGBUS whose faulting address falls inside the
// range longjmps out of the handler and rethrows as MediaError carrying
// the offset; a SIGBUS anywhere else (a genuine unrelated bug) re-raises
// with the default disposition so it still crashes loudly.
//
// The simulated counterpart is CorruptingPM (corrupting_pm.hpp), whose
// poisoned lines throw MediaError directly from the persistence-policy
// read hook — same type, so recovery/scrub code handles emulated and real
// media faults identically.
#pragma once

#include <csetjmp>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "util/types.hpp"

namespace gh::nvm {

/// A read hit uncorrectable (poisoned) media. `offset` is the byte offset
/// of the faulting address within the guarded/tracked region.
class MediaError : public std::runtime_error {
 public:
  MediaError(usize offset, const std::string& what)
      : std::runtime_error(what), offset_(offset) {}

  [[nodiscard]] usize offset() const { return offset_; }

 private:
  usize offset_;
};

namespace detail {

/// Thread-local SIGBUS trampoline state. The process-wide handler (see
/// media_guard.cpp) consults the calling thread's top guard; nesting is
/// supported so a guarded scrub can call guarded helpers.
struct SigbusGuardState {
  const std::byte* begin = nullptr;
  usize size = 0;
  sigjmp_buf jump;
  SigbusGuardState* outer = nullptr;
  volatile usize fault_offset = 0;
};

SigbusGuardState*& current_sigbus_guard();

/// Install the process-wide SIGBUS handler (idempotent, thread-safe) and
/// push/pop a guard frame. Used by with_media_guard below.
void push_sigbus_guard(SigbusGuardState* state);
void pop_sigbus_guard(SigbusGuardState* state);

}  // namespace detail

/// Run `fn` with SIGBUS faults inside `range` translated to MediaError.
/// Explicit push/pop on every exit path — no RAII object lives across the
/// sigsetjmp, because siglongjmp re-enters the frame without running (or
/// tracking) destructors.
template <class Fn>
auto with_media_guard(std::span<const std::byte> range, Fn&& fn) {
  detail::SigbusGuardState state;
  state.begin = range.data();
  state.size = range.size();
  detail::push_sigbus_guard(&state);
  // sigsetjmp with savemask=1: the handler longjmps with SIGBUS blocked,
  // and the restored mask re-enables it for subsequent faults.
  if (sigsetjmp(state.jump, 1) != 0) {
    const usize offset = state.fault_offset;
    detail::pop_sigbus_guard(&state);
    throw MediaError(offset, "uncorrectable media error (SIGBUS) at region offset " +
                                 std::to_string(offset));
  }
  if constexpr (std::is_void_v<decltype(fn())>) {
    try {
      fn();
    } catch (...) {
      detail::pop_sigbus_guard(&state);
      throw;
    }
    detail::pop_sigbus_guard(&state);
  } else {
    try {
      auto result = fn();
      detail::pop_sigbus_guard(&state);
      return result;
    } catch (...) {
      detail::pop_sigbus_guard(&state);
      throw;
    }
  }
}

}  // namespace gh::nvm
