// FaultFs — a filesystem fault-injection shim for the whole-file rebuild
// paths (expand()/compact()).
//
// The ShadowPM crash simulator covers the paper's in-place 8-byte commit
// protocol, but the map layer also rebuilds whole files (tmp create →
// write-back → rename → parent-dir fsync) and those steps live entirely
// in the filesystem, outside ShadowPM's reach. FaultFs routes every file
// operation the maps perform through an injectable policy so tests can
//
//   * stop the world at any step boundary (SimulatedCrash) and observe
//     exactly the directory state a power failure there would leave, and
//   * make any single step fail (Decision::kFail) the way the underlying
//     syscall would, to exercise the error-cleanup paths.
//
// Crash model: a power failure at a step boundary leaves every earlier
// step applied and the interrupted step (and everything after it) not
// applied. This enumeration is complete for the publish protocol's
// metadata states: "rename issued but lost before the directory fsync"
// is on-disk identical to "crashed before the rename", so crashing
// before each step in turn visits every reachable directory state. The
// one non-metadata state — temp-file *content* not yet durable because
// the crash hit before the write-back — is materialised by the test
// corrupting the temp file after the simulated crash (see
// tests/core/publish_crash_test.cpp).
//
// With no policy installed every operation goes straight through to the
// real filesystem; the hot paths (put/get) never touch this layer.
#pragma once

#include <atomic>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gh::nvm {

class NvmRegion;

/// The complete set of file operations the map layer performs. These are
/// the step boundaries of every crash schedule.
enum class FsOp : u8 {
  kCreate,    ///< create/truncate a region file (open+ftruncate)
  kSyncData,  ///< write a region's pages back (msync)
  kRename,    ///< atomically replace `path2` with `path`
  kSyncDir,   ///< fsync a directory (makes preceding renames durable)
  kRemove,    ///< unlink a file
};

[[nodiscard]] const char* to_string(FsOp op);

/// One observed file operation.
struct FsStep {
  FsOp op;
  std::string path;   ///< primary path (source for kRename)
  std::string path2;  ///< kRename destination; empty otherwise
};

/// Thrown by a policy to simulate a power failure at a step boundary.
/// The interrupted operation does NOT execute, and no cleanup code runs
/// on the way out (a real crash runs none either) — callers must let
/// this propagate untouched.
struct SimulatedCrash : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "simulated power failure (FaultFs crash point)";
  }
};

/// Injection policy consulted before every operation.
class FsPolicy {
 public:
  enum class Decision {
    kProceed,  ///< execute the real operation
    kFail,     ///< skip it and report failure like the syscall would
  };

  virtual ~FsPolicy() = default;
  virtual Decision on_step(const FsStep& step) = 0;
};

/// Static hub the map/region code calls instead of raw syscalls.
class FaultFs {
 public:
  /// Install a policy (nullptr restores straight-through behaviour).
  /// Tests own the policy's lifetime; it must outlive the installation.
  static void install(FsPolicy* policy);
  [[nodiscard]] static FsPolicy* installed();

  /// Observation hooks for operations NvmRegion executes itself.
  /// Throw SimulatedCrash (policy crash) or std::runtime_error (kFail).
  static void notify_create(const std::string& path);
  static void notify_sync(const std::string& path);

  /// rename(from → to). Returns false (errno set) on kFail or a real
  /// rename failure.
  [[nodiscard]] static bool rename(const std::string& from, const std::string& to);

  /// fsync the directory `dir`. Returns false on kFail or a real error.
  [[nodiscard]] static bool sync_dir(const std::string& dir);

  /// unlink `path`. Returns true when the file was removed.
  static bool remove(const std::string& path);
};

/// RAII policy installation for tests.
class ScopedFsPolicy {
 public:
  explicit ScopedFsPolicy(FsPolicy* policy) { FaultFs::install(policy); }
  ~ScopedFsPolicy() { FaultFs::install(nullptr); }
  ScopedFsPolicy(const ScopedFsPolicy&) = delete;
  ScopedFsPolicy& operator=(const ScopedFsPolicy&) = delete;
};

/// Deterministic crash-schedule enumerator. Record mode (no crash_at /
/// fail_at) counts and traces the steps an operation performs; replay
/// runs then pick one boundary per trial:
///
///   crash_at = k — throw SimulatedCrash *before* executing step k
///                  (0-based), freezing the directory in the state a
///                  power failure at that boundary leaves;
///   fail_at  = k — step k reports failure (syscall error) instead,
///                  exercising the in-process cleanup path.
class CrashScheduleFs : public FsPolicy {
 public:
  std::optional<usize> crash_at;
  std::optional<usize> fail_at;
  std::vector<FsStep> trace;

  Decision on_step(const FsStep& step) override {
    const usize index = trace.size();
    trace.push_back(step);
    if (crash_at && index == *crash_at) throw SimulatedCrash{};
    if (fail_at && index == *fail_at) return Decision::kFail;
    return Decision::kProceed;
  }
};

/// Directory containing `path` ("." when the path has no directory part).
[[nodiscard]] std::string parent_dir(const std::string& path);

/// The shared durable publish protocol for whole-file rebuilds:
///
///   write-back (msync tmp region) → rename(tmp → final) → fsync(parent)
///
/// The rename is the atomic publish; the directory fsync makes it
/// durable. On write-back or rename failure the temp file is unlinked
/// before the error is thrown, so a failed publish never leaks an
/// orphan. SimulatedCrash propagates without cleanup — a real crash
/// runs none, and open()-time reclamation handles the leftovers.
/// Throws std::runtime_error (prefixed with `what`) on failure.
void publish_region_file(NvmRegion& region, const std::string& tmp_path,
                         const std::string& final_path, const char* what);

/// open()-time reclamation: unlink `orphan_path` if a crashed publish
/// left it behind. A temp file is never the authoritative copy (only the
/// rename publishes it), so deleting it is always safe. Returns true
/// when a stale orphan was removed.
bool reclaim_orphan(const std::string& orphan_path);

}  // namespace gh::nvm
