#include "nvm/fault_fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "nvm/region.hpp"

namespace gh::nvm {
namespace {

std::atomic<FsPolicy*> g_policy{nullptr};

[[nodiscard]] FsPolicy::Decision consult(FsOp op, const std::string& path,
                                         const std::string& path2 = {}) {
  FsPolicy* policy = g_policy.load(std::memory_order_acquire);
  if (policy == nullptr) return FsPolicy::Decision::kProceed;
  return policy->on_step(FsStep{op, path, path2});
}

[[noreturn]] void throw_injected(FsOp op, const std::string& path) {
  throw std::runtime_error(std::string("fault injection: ") + to_string(op) + "(" + path +
                           ") failed");
}

}  // namespace

const char* to_string(FsOp op) {
  switch (op) {
    case FsOp::kCreate: return "create";
    case FsOp::kSyncData: return "sync_data";
    case FsOp::kRename: return "rename";
    case FsOp::kSyncDir: return "sync_dir";
    case FsOp::kRemove: return "remove";
  }
  return "?";
}

void FaultFs::install(FsPolicy* policy) {
  g_policy.store(policy, std::memory_order_release);
}

FsPolicy* FaultFs::installed() { return g_policy.load(std::memory_order_acquire); }

void FaultFs::notify_create(const std::string& path) {
  if (consult(FsOp::kCreate, path) == FsPolicy::Decision::kFail) {
    throw_injected(FsOp::kCreate, path);
  }
}

void FaultFs::notify_sync(const std::string& path) {
  if (consult(FsOp::kSyncData, path) == FsPolicy::Decision::kFail) {
    throw_injected(FsOp::kSyncData, path);
  }
}

bool FaultFs::rename(const std::string& from, const std::string& to) {
  if (consult(FsOp::kRename, from, to) == FsPolicy::Decision::kFail) {
    errno = EIO;
    return false;
  }
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool FaultFs::sync_dir(const std::string& dir) {
  if (consult(FsOp::kSyncDir, dir) == FsPolicy::Decision::kFail) {
    errno = EIO;
    return false;
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool FaultFs::remove(const std::string& path) {
  if (consult(FsOp::kRemove, path) == FsPolicy::Decision::kFail) {
    errno = EIO;
    return false;
  }
  return std::remove(path.c_str()) == 0;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void publish_region_file(NvmRegion& region, const std::string& tmp_path,
                         const std::string& final_path, const char* what) {
  try {
    region.sync();  // kSyncData: page write-back of the fully-built file
    if (!FaultFs::rename(tmp_path, final_path)) {
      throw std::runtime_error(std::string(what) + ": rename(" + tmp_path + " -> " +
                               final_path + "): " + std::strerror(errno));
    }
  } catch (const SimulatedCrash&) {
    throw;  // power failure: no cleanup runs
  } catch (...) {
    FaultFs::remove(tmp_path);  // best-effort: a failed publish must not leak an orphan
    throw;
  }
  // The rename is published but not yet durable — a power failure here
  // may undo it (equivalent on disk to crashing before the rename, which
  // recovery already handles). The directory fsync closes that window.
  if (!FaultFs::sync_dir(parent_dir(final_path))) {
    throw std::runtime_error(std::string(what) + ": fsync(" + parent_dir(final_path) +
                             "): " + std::strerror(errno));
  }
}

bool reclaim_orphan(const std::string& orphan_path) {
  if (::access(orphan_path.c_str(), F_OK) != 0) return false;
  return FaultFs::remove(orphan_path);
}

}  // namespace gh::nvm
