// NvmRegion — a contiguous byte range standing in for a PMFS-style
// direct-access mapping of non-volatile memory.
//
// Two backings:
//   * anonymous: plain mmap'd memory (the common case for benches/tests,
//     matching the paper's "portion of DRAM used as NVM");
//   * file: mmap of a regular file, giving actual cross-process/-run
//     durability so the public GroupHashMap API can close and reopen maps
//     the way an application on real NVM (or PMFS) would.
#pragma once

#include <span>
#include <string>

#include "util/types.hpp"

namespace gh::nvm {

class NvmRegion {
 public:
  /// Anonymous mapping of `bytes` (rounded up to the page size), zeroed.
  static NvmRegion create_anonymous(usize bytes);

  /// Create (or truncate) `path` with `bytes` and map it read-write.
  static NvmRegion create_file(const std::string& path, usize bytes);

  /// Map an existing file read-write at its current size.
  static NvmRegion open_file(const std::string& path);

  NvmRegion() = default;
  NvmRegion(NvmRegion&& other) noexcept;
  NvmRegion& operator=(NvmRegion&& other) noexcept;
  NvmRegion(const NvmRegion&) = delete;
  NvmRegion& operator=(const NvmRegion&) = delete;
  ~NvmRegion();

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] usize size() const { return size_; }
  [[nodiscard]] std::span<std::byte> bytes() { return {data_, size_}; }
  [[nodiscard]] bool valid() const { return data_ != nullptr; }
  [[nodiscard]] bool file_backed() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// msync the mapping (file-backed only; no-op otherwise). The emulation
  /// treats clflush+fence as the durability point — sync() exists so
  /// closing a file-backed map flushes it through the page cache as well.
  void sync();

  /// msync only [offset, offset+len) (page-aligned outward; clamped to the
  /// mapping; file-backed only). Lets long-lived incremental writers —
  /// online-resize migration formatting just a superblock page, or its
  /// periodic background flushes — avoid a full-region msync stall.
  void sync_range(usize offset, usize len);

 private:
  NvmRegion(std::byte* data, usize size, int fd, std::string path);

  std::byte* data_ = nullptr;
  usize size_ = 0;
  int fd_ = -1;
  std::string path_;
};

}  // namespace gh::nvm
