// TracingPM — persistence policy that feeds every table access into the
// cache simulator. Used by the cache-efficiency benches (Fig. 2b, Fig. 6):
// stores and reads touch the simulated hierarchy, and persist() issues
// simulated clflushes, which invalidate the lines and cause the later
// misses the paper attributes to logging. No latency is injected (these
// benches report counts, not time).
#pragma once

#include <cstring>

#include "cachesim/cache_sim.hpp"
#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace gh::nvm {

class TracingPM {
 public:
  /// `flush_instruction` selects the simulated flush semantics: clflush/
  /// clflushopt invalidate the line (the paper's setting), clwb keeps it
  /// cached (see ablation_clwb).
  explicit TracingPM(cachesim::CacheSim& sim,
                     FlushInstruction flush_instruction = FlushInstruction::kClflush)
      : sim_(&sim), flush_instruction_(flush_instruction) {}

  void store_u64(u64* dst, u64 v) {
    *dst = v;
    sim_->write(dst, sizeof(u64));
    stats_.stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void atomic_store_u64(u64* dst, u64 v) {
    *dst = v;
    sim_->write(dst, sizeof(u64));
    stats_.atomic_stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void copy(void* dst, const void* src, usize n) {
    std::memcpy(dst, src, n);
    sim_->write(dst, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  void fill(void* dst, unsigned char byte, usize n) {
    std::memset(dst, byte, n);
    sim_->write(dst, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  void persist(const void* addr, usize n) {
    if (flush_keeps_line_cached(flush_instruction_)) {
      sim_->clwb(addr, n);
    } else {
      sim_->clflush(addr, n);
    }
    stats_.persist_calls++;
    const u64 lines = lines_spanned(addr, n);
    stats_.lines_flushed += lines;
    stats_.fences++;
    obs::on_pm_persist(lines);
    obs::on_pm_fence();
  }

  /// Unfenced flush: same cache-simulator effect as persist() (the line
  /// leaves the cache either way) but the fence is the caller's, once per
  /// batch window.
  void flush(const void* addr, usize n) {
    if (flush_keeps_line_cached(flush_instruction_)) {
      sim_->clwb(addr, n);
    } else {
      sim_->clflush(addr, n);
    }
    const u64 lines = lines_spanned(addr, n);
    stats_.lines_flushed += lines;
    obs::on_pm_persist(lines);
  }

  void fence() {
    stats_.fences++;
    obs::on_pm_fence();
  }

  void touch_read(const void* addr, usize n) { sim_->read(addr, n); }

  [[nodiscard]] PersistStats& stats() { return stats_; }
  [[nodiscard]] const PersistStats& stats() const { return stats_; }
  [[nodiscard]] cachesim::CacheSim& sim() { return *sim_; }

 private:
  cachesim::CacheSim* sim_;
  FlushInstruction flush_instruction_;
  PersistStats stats_;
};

}  // namespace gh::nvm
