// CorruptingPM — media-fault injection policy (sibling of ShadowPM /
// WearPM / TracingPM).
//
// ShadowPM models *crashes*: the durable image is a prefix of the
// persisted writes. Real NVM additionally misbehaves while powered:
//
//   * bit rot — retention failures silently flip stored bits;
//   * torn writes — a multi-word store interrupted below the 8-byte
//     atomicity unit leaves a prefix of the new bytes;
//   * poisoned lines — uncorrectable errors: the DIMM marks the line and
//     every read of it faults (SIGBUS on real DAX; see media_error.hpp).
//
// CorruptingPM injects all three into a tracked span, deterministically
// (seeded), while forwarding the PM-policy interface so any hash scheme
// runs on it unmodified:
//
//   * flip_random_bits(seed, n) flips n seeded-random bits at rest;
//   * arm_tear(words) truncates the NEXT multi-word copy()/fill() after
//     `words` 8-byte units — the store "completed" from the program's
//     view but only a prefix reached media;
//   * poison_line(offset) marks a cacheline uncorrectable: any
//     touch_read() overlapping it throws MediaError (typed, catchable —
//     the emulated analogue of the SIGBUS translation). A store to a
//     poisoned line heals it, modelling the clear-on-write / page
//     remapping a real PM driver performs.
//
// Detection is the structure's job: the corruption counters here only
// record what was injected, so tests can assert detect-or-correct against
// ground truth.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nvm/media_error.hpp"
#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gh::nvm {

class CorruptingPM {
 public:
  explicit CorruptingPM(std::span<std::byte> tracked) : tracked_(tracked) {}

  // --- PM policy interface -------------------------------------------------

  void store_u64(u64* dst, u64 v) {
    heal_on_write(dst, sizeof(u64));
    *dst = v;
    stats_.stores++;
    stats_.bytes_written += sizeof(u64);
  }

  /// 8-byte failure-atomic publish: never torn (the paper's atomicity
  /// assumption holds at and below the atomic unit).
  void atomic_store_u64(u64* dst, u64 v) {
    heal_on_write(dst, sizeof(u64));
    *dst = v;
    stats_.atomic_stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void copy(void* dst, const void* src, usize n) {
    heal_on_write(dst, n);
    const usize written = maybe_tear(n);
    std::memcpy(dst, src, written);
    stats_.stores++;
    stats_.bytes_written += written;
  }

  void fill(void* dst, unsigned char byte, usize n) {
    heal_on_write(dst, n);
    const usize written = maybe_tear(n);
    std::memset(dst, byte, written);
    stats_.stores++;
    stats_.bytes_written += written;
  }

  void persist(const void* addr, usize n) {
    stats_.persist_calls++;
    const u64 lines = lines_spanned(addr, n);
    stats_.lines_flushed += lines;
    stats_.fences++;
    obs::on_pm_persist(lines);
    obs::on_pm_fence();
  }

  /// Unfenced flush: counts line traffic only (no data motion to model).
  void flush(const void* addr, usize n) {
    const u64 lines = lines_spanned(addr, n);
    stats_.lines_flushed += lines;
    obs::on_pm_persist(lines);
  }

  void fence() {
    stats_.fences++;
    obs::on_pm_fence();
  }

  /// The read hook every scheme's probe() goes through: a poisoned line
  /// in [addr, addr+n) surfaces as a typed MediaError, exactly like the
  /// SIGBUS translation does for a real poisoned DAX page. Lines are
  /// counted relative to the tracked span's base (offset 0 starts line
  /// 0), so injection offsets and detection agree regardless of the
  /// buffer's actual address alignment.
  void touch_read(const void* addr, usize n) {
    if (poisoned_.empty() || n == 0) return;
    const auto [first, last] = span_lines(addr, n);
    for (usize line = first; line <= last && last != kOutside; line += kCachelineSize) {
      if (poisoned_.contains(line)) {
        poison_reads_++;
        throw MediaError(line, "uncorrectable media error (poisoned line) at offset " +
                                   std::to_string(line));
      }
    }
  }

  [[nodiscard]] PersistStats& stats() { return stats_; }
  [[nodiscard]] const PersistStats& stats() const { return stats_; }

  // --- fault injection -----------------------------------------------------

  /// Flip `count` uniformly random bits in the tracked span (at-rest bit
  /// rot). Deterministic for a given seed. Returns the flipped byte
  /// offsets (ground truth for tests).
  std::vector<usize> flip_random_bits(u64 seed, usize count) {
    Xoshiro256 rng(seed);
    std::vector<usize> offsets;
    offsets.reserve(count);
    for (usize i = 0; i < count; ++i) {
      const usize byte = static_cast<usize>(rng.next_below(tracked_.size()));
      const unsigned bit = static_cast<unsigned>(rng.next_below(8));
      tracked_[byte] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      offsets.push_back(byte);
      bits_flipped_++;
    }
    return offsets;
  }

  /// Flip one specific bit (targeted injection).
  void flip_bit(usize byte_offset, unsigned bit) {
    GH_CHECK(byte_offset < tracked_.size() && bit < 8);
    tracked_[byte_offset] ^= std::byte{static_cast<unsigned char>(1u << bit)};
    bits_flipped_++;
  }

  /// The NEXT multi-word copy()/fill() writes only its first `words`
  /// 8-byte units; the rest never reaches media. Models a non-atomic
  /// store sequence interrupted mid-way without the program noticing.
  void arm_tear(usize words) {
    tear_armed_ = true;
    tear_words_ = words;
  }

  /// Mark the cacheline containing `offset` poisoned. Reads of it throw
  /// MediaError until a store overlaps (heals) it.
  void poison_line(usize offset) {
    GH_CHECK(offset < tracked_.size());
    poisoned_.insert(round_down(offset, kCachelineSize));
    lines_poisoned_++;
  }

  [[nodiscard]] bool line_poisoned(usize offset) const {
    return poisoned_.contains(round_down(offset, kCachelineSize));
  }

  [[nodiscard]] u64 bits_flipped() const { return bits_flipped_; }
  [[nodiscard]] u64 lines_poisoned() const { return lines_poisoned_; }
  [[nodiscard]] u64 poison_reads() const { return poison_reads_; }
  [[nodiscard]] u64 tears_injected() const { return tears_injected_; }
  [[nodiscard]] usize poisoned_line_count() const { return poisoned_.size(); }

 private:
  static constexpr usize kOutside = ~usize{0};

  /// Span-relative line range [first, last] (line-aligned offsets) of the
  /// intersection of [addr, addr+n) with the tracked span; {kOutside,
  /// kOutside} when they do not overlap.
  [[nodiscard]] std::pair<usize, usize> span_lines(const void* addr, usize n) const {
    const auto* b = static_cast<const std::byte*>(addr);
    const std::byte* lo = std::max<const std::byte*>(b, tracked_.data());
    const std::byte* hi =
        std::min<const std::byte*>(b + n, tracked_.data() + tracked_.size());
    if (lo >= hi) return {kOutside, kOutside};
    const auto first = static_cast<usize>(lo - tracked_.data());
    const auto last = static_cast<usize>(hi - 1 - tracked_.data());
    return {round_down(first, kCachelineSize), round_down(last, kCachelineSize)};
  }

  /// Writes clear poison on every line they touch (clear-on-write).
  void heal_on_write(const void* addr, usize n) {
    if (poisoned_.empty() || n == 0) return;
    const auto [first, last] = span_lines(addr, n);
    for (usize line = first; line <= last && last != kOutside; line += kCachelineSize) {
      poisoned_.erase(line);
    }
  }

  [[nodiscard]] usize maybe_tear(usize n) {
    if (!tear_armed_ || n <= kAtomicUnit) return n;
    tear_armed_ = false;
    tears_injected_++;
    return std::min(n, tear_words_ * kAtomicUnit);
  }

  std::span<std::byte> tracked_;
  std::unordered_set<usize> poisoned_;  ///< line-aligned offsets
  bool tear_armed_ = false;
  usize tear_words_ = 0;
  u64 bits_flipped_ = 0;
  u64 lines_poisoned_ = 0;
  u64 poison_reads_ = 0;
  u64 tears_injected_ = 0;
  PersistStats stats_;
};

}  // namespace gh::nvm
