// Low-level persistence primitives for emulated NVM.
//
// The paper's methodology (following PMFS / Mnemosyne) emulates NVM on
// DRAM: data lives in ordinary mapped memory, writes become durable when
// their cacheline is flushed (clflush) and ordered with a fence, and NVM's
// slower writes are emulated by spinning for a configurable delay (300 ns
// by default) after every cacheline flush.
//
// This header provides the raw instructions plus the statistics and
// configuration types shared by all persistence policies.
#pragma once

#include <atomic>
#include <string>

#include "util/counters.hpp"
#include "util/types.hpp"

namespace gh::nvm {

/// Which flush instruction the persistence layer issues. The paper's
/// machine (and evaluation) used clflush, which *invalidates* the line —
/// the root cause of the logging schemes' extra cache misses (§2.3).
/// clwb (on CPUs that have it) writes the line back but keeps it cached;
/// the ablation_clwb bench measures how much of the paper's miss
/// inflation is specific to clflush semantics.
enum class FlushInstruction {
  kClflush,     ///< invalidating flush (the paper's setting)
  kClflushOpt,  ///< weakly-ordered invalidating flush
  kClwb,        ///< non-invalidating writeback (falls back if unsupported)
};

/// Flush one cacheline containing `addr` (clflushopt when compiled in,
/// otherwise clflush; portable fallback is a compiler barrier only).
void flush_line(const void* addr);

/// Flush with an explicit instruction choice. Unsupported instructions
/// degrade to the strongest available one; whether the line survives in
/// cache is modelled exactly only by the cache simulator.
void flush_line(const void* addr, FlushInstruction kind);

/// True when the requested instruction keeps the line cached.
constexpr bool flush_keeps_line_cached(FlushInstruction kind) {
  return kind == FlushInstruction::kClwb;
}

/// Store fence ordering prior flushes (sfence on x86).
void store_fence();

/// Counters accumulated by every persistence policy. Benches print these
/// next to latency so the write-amplification argument of the paper
/// (logging ⇒ ~2x flushes) is directly visible.
/// Fields use RelaxedCounter so a persistence policy can be shared by the
/// concurrent wrappers without data races (statistics become approximate
/// under concurrency; exact single-threaded).
struct PersistStats {
  RelaxedCounter stores;          ///< individual 8-byte (or smaller) stores
  RelaxedCounter bytes_written;   ///< payload bytes written to NVM
  RelaxedCounter atomic_stores;   ///< 8-byte failure-atomic publishes
  RelaxedCounter persist_calls;   ///< persist() invocations (flush+fence)
  RelaxedCounter lines_flushed;   ///< cachelines flushed
  RelaxedCounter fences;          ///< store fences issued
  RelaxedCounter delay_ns;        ///< total emulated NVM write latency injected

  void clear() { *this = PersistStats{}; }

  PersistStats& operator+=(const PersistStats& o) {
    stores += o.stores;
    bytes_written += o.bytes_written;
    atomic_stores += o.atomic_stores;
    persist_calls += o.persist_calls;
    lines_flushed += o.lines_flushed;
    fences += o.fences;
    delay_ns += o.delay_ns;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Emulated-NVM configuration.
struct PersistConfig {
  /// Extra latency injected after each cacheline flush, emulating NVM's
  /// slower writes (paper default: 300 ns).
  u64 flush_latency_ns = 300;
  /// When false, skips the real clflush instruction (the cacheline
  /// bookkeeping and latency injection still happen). Useful for unit
  /// tests that only care about counters.
  bool issue_real_flush = true;
  /// Flush instruction (paper setting: invalidating clflush).
  FlushInstruction flush_instruction = FlushInstruction::kClflush;

  static PersistConfig emulated_nvm() { return PersistConfig{}; }
  static PersistConfig dram() { return PersistConfig{.flush_latency_ns = 0}; }
  static PersistConfig counting_only() {
    return PersistConfig{.flush_latency_ns = 0, .issue_real_flush = false};
  }
};

/// First byte of the cacheline containing `p`.
inline const std::byte* line_begin(const void* p) {
  const auto v = reinterpret_cast<std::uintptr_t>(p);
  return reinterpret_cast<const std::byte*>(v - v % kCachelineSize);
}

/// Number of cachelines spanned by [addr, addr+len).
inline u64 lines_spanned(const void* addr, usize len) {
  if (len == 0) return 0;
  const auto first = reinterpret_cast<std::uintptr_t>(addr) / kCachelineSize;
  const auto last = (reinterpret_cast<std::uintptr_t>(addr) + len - 1) / kCachelineSize;
  return last - first + 1;
}

}  // namespace gh::nvm
