// ShadowPM — crash-persistence simulator.
//
// The policy runs the data structure on ordinary "live" memory (standing
// in for the CPU cache + NVM as the running program sees them) while
// maintaining a *shadow image* holding only the bytes guaranteed durable:
// persist(addr, n) copies the full cachelines covering the range from live
// to shadow (clflush persists whole lines, so neighbouring dirty words in
// the same line become durable too) and clears their dirty bits.
//
// A simulated power failure ("crash") can be injected at any persistence
// event. At crash time the durable state is the shadow image *plus an
// arbitrary subset of dirty 8-byte words* — modelling that a write-back
// cache may have evicted any dirty line (or part of one, down to the
// 8-byte atomicity unit) at any moment before the crash. Recovery code is
// then run against the materialised image and invariants are checked.
// This is strictly more adversarial than cutting power on real hardware.
#pragma once

#include <array>
#include <span>
#include <stdexcept>
#include <vector>

#include "nvm/persist.hpp"
#include "util/types.hpp"

namespace gh::nvm {

/// Thrown when the configured crash point is reached. The structure under
/// test must be exception-transparent (no catch) so the harness unwinds to
/// the test.
struct SimulatedCrash : std::exception {
  const char* what() const noexcept override { return "simulated NVM crash"; }
};

/// How unflushed (dirty) words are treated when the crash image is built.
enum class CrashMode {
  kNothingEvicted,  ///< only explicitly persisted data survives
  kAllEvicted,      ///< every dirty word happened to be written back
  kRandomEviction,  ///< each dirty 8-byte word survives with p=1/2 (seeded)
};

class ShadowPM {
 public:
  /// `live` is the memory the structure mutates. It must be 8-byte aligned.
  explicit ShadowPM(std::span<std::byte> live);

  // --- PM policy interface -------------------------------------------------
  void store_u64(u64* dst, u64 v);
  void atomic_store_u64(u64* dst, u64 v);
  void copy(void* dst, const void* src, usize n);
  void fill(void* dst, unsigned char byte, usize n);
  void persist(const void* addr, usize n);
  void flush(const void* addr, usize n);
  void fence();
  void touch_read(const void*, usize) {}
  [[nodiscard]] PersistStats& stats() { return stats_; }
  [[nodiscard]] const PersistStats& stats() const { return stats_; }

  // --- crash control -------------------------------------------------------

  /// Total persistence events (stores + persists + fences) processed so
  /// far. A dry run records this; tests then re-run with crash_at = k for
  /// every k < total.
  [[nodiscard]] u64 event_count() const { return events_; }

  /// Arm a crash: SimulatedCrash is thrown just before event `event_index`
  /// executes. Pass no_crash() to disarm.
  void crash_at_event(u64 event_index) { crash_event_ = event_index; }
  static constexpr u64 no_crash() { return ~0ull; }

  /// Build the post-crash NVM image (same size as the live span).
  [[nodiscard]] std::vector<std::byte> materialize_crash_image(CrashMode mode,
                                                               u64 seed = 0) const;

  /// Copy an image (e.g. a crash image) back over the live span and mark
  /// everything clean, as if the machine rebooted with this NVM content.
  void reset_to_image(std::span<const std::byte> image);

  /// Number of dirty (unflushed) 8-byte words — useful for asserting a
  /// structure persisted everything it promised to.
  [[nodiscard]] u64 dirty_word_count() const;

 private:
  /// One flushed-but-unfenced cacheline: the snapshot flush() took of its
  /// contents. It only becomes durable (copied to shadow) when a later
  /// fence()/persist() retires — a bare clflushopt guarantees nothing.
  struct PendingLine {
    usize offset = 0;  ///< live-span offset
    usize len = 0;     ///< bytes snapshotted (≤ one line; clamped at span edges)
    std::array<std::byte, kCachelineSize> data{};
  };

  void bump_event();
  void mark_dirty(const void* addr, usize n);
  void commit_pending();
  [[nodiscard]] usize word_index(const void* addr) const;

  std::span<std::byte> live_;
  std::vector<std::byte> shadow_;
  std::vector<u64> dirty_;  // bitmap, one bit per 8-byte word
  std::vector<PendingLine> pending_;  ///< flushed, awaiting a fence
  u64 events_ = 0;
  u64 crash_event_ = no_crash();
  PersistStats stats_;
};

}  // namespace gh::nvm
