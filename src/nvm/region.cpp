#include "nvm/region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "nvm/fault_fs.hpp"
#include "util/assert.hpp"

namespace gh::nvm {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

usize page_round(usize bytes) {
  const auto page = static_cast<usize>(sysconf(_SC_PAGESIZE));
  return round_up(bytes, page);
}

/// Closes the owned fd on every exit path unless release()d into an
/// NvmRegion. Preserves errno across the ::close() so the error that
/// started the unwinding — not the close's — is what throw_errno reports.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) {
      const int saved = errno;
      ::close(fd_);
      errno = saved;
    }
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

}  // namespace

NvmRegion::NvmRegion(std::byte* data, usize size, int fd, std::string path)
    : data_(data), size_(size), fd_(fd), path_(std::move(path)) {}

NvmRegion NvmRegion::create_anonymous(usize bytes) {
  const usize size = page_round(bytes);
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw_errno("mmap(anonymous NVM region)");
  return NvmRegion(static_cast<std::byte*>(p), size, -1, {});
}

NvmRegion NvmRegion::create_file(const std::string& path, usize bytes) {
  FaultFs::notify_create(path);  // fault-injection step boundary
  const usize size = page_round(bytes);
  FdGuard fd(::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644));
  if (fd.get() < 0) throw_errno("open(" + path + ")");
  if (::ftruncate(fd.get(), static_cast<off_t>(size)) != 0) {
    throw_errno("ftruncate(" + path + ")");
  }
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd.get(), 0);
  if (p == MAP_FAILED) throw_errno("mmap(" + path + ")");
  return NvmRegion(static_cast<std::byte*>(p), size, fd.release(), path);
}

NvmRegion NvmRegion::open_file(const std::string& path) {
  FdGuard fd(::open(path.c_str(), O_RDWR));
  if (fd.get() < 0) throw_errno("open(" + path + ")");
  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) {
    throw_errno("fstat(" + path + ")");
  }
  const usize size = static_cast<usize>(st.st_size);
  GH_CHECK_MSG(size > 0, "cannot map an empty NVM file");
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd.get(), 0);
  if (p == MAP_FAILED) throw_errno("mmap(" + path + ")");
  return NvmRegion(static_cast<std::byte*>(p), size, fd.release(), path);
}

NvmRegion::NvmRegion(NvmRegion&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)) {}

NvmRegion& NvmRegion::operator=(NvmRegion&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    if (fd_ >= 0) ::close(fd_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

NvmRegion::~NvmRegion() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void NvmRegion::sync() {
  if (data_ != nullptr && fd_ >= 0) {
    FaultFs::notify_sync(path_);  // fault-injection step boundary
    GH_CHECK(::msync(data_, size_, MS_SYNC) == 0);
  }
}

void NvmRegion::sync_range(usize offset, usize len) {
  if (data_ == nullptr || fd_ < 0 || len == 0 || offset >= size_) return;
  FaultFs::notify_sync(path_);  // fault-injection step boundary
  const auto page = static_cast<usize>(sysconf(_SC_PAGESIZE));
  const usize begin = offset - (offset % page);  // msync demands page alignment
  const usize end = std::min(size_, round_up(offset + len, page));
  GH_CHECK(::msync(data_ + begin, end - begin, MS_SYNC) == 0);
}

}  // namespace gh::nvm
