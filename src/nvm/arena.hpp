// PersistentArena — a crash-consistent append-only allocation region.
//
// The same 8-byte-failure-atomic discipline as the hash table, applied to
// variable-size data: records are written and persisted *beyond* the
// committed head, then a single atomic store advances the head over them
// (and is persisted). A crash can only lose the record being appended;
// everything below `head` is complete and immutable. No free list —
// space is reclaimed by rebuilding (see PersistentStringMap::compact),
// which is also the honest answer for NVM allocators that must avoid
// wear-amplifying in-place reuse.
//
// Layout: Header (one cacheline) | data bytes.
#pragma once

#include <optional>
#include <span>

#include "nvm/persist.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::nvm {

template <class PM>
class PersistentArena {
 public:
  static constexpr u64 kMagic = 0x4748415245303031ull;  // "GHARE001"

  struct Header {
    u64 magic;
    u64 capacity;  ///< data bytes available
    u64 head;      ///< committed bytes; the 8-byte atomic commit word
    u64 reserved[5];
  };
  static_assert(sizeof(Header) == 64);

  static usize required_bytes(usize data_capacity) {
    return sizeof(Header) + round_up(data_capacity, kAtomicUnit);
  }

  PersistentArena(PM& pm, std::span<std::byte> mem, bool format) : pm_(&pm) {
    GH_CHECK(mem.size() > sizeof(Header));
    header_ = reinterpret_cast<Header*>(mem.data());
    data_ = mem.data() + sizeof(Header);
    const u64 capacity = round_down(mem.size() - sizeof(Header), kAtomicUnit);
    if (format) {
      pm.store_u64(&header_->magic, kMagic);
      pm.store_u64(&header_->capacity, capacity);
      pm.store_u64(&header_->head, 0);
      pm.persist(header_, sizeof(Header));
    } else {
      GH_CHECK_MSG(header_->magic == kMagic, "not a persistent arena");
      GH_CHECK(header_->capacity <= capacity);
      GH_CHECK_MSG(header_->head <= header_->capacity, "corrupt arena head");
    }
  }

  /// Append `n` bytes; returns the record's offset, or nullopt when the
  /// arena is full. The record is durable when append() returns.
  std::optional<u64> append(const void* data, usize n) {
    const u64 offset = header_->head;
    const u64 len = round_up(n, kAtomicUnit);
    if (offset + len > header_->capacity) return std::nullopt;
    pm_->copy(data_ + offset, data, n);
    if (len != n) pm_->fill(data_ + offset + n, 0, len - n);  // deterministic padding
    pm_->persist(data_ + offset, len);
    // Commit: a crash before this store forgets the record; after it, the
    // record is fully durable (it was persisted first).
    pm_->atomic_store_u64(&header_->head, offset + len);
    pm_->persist(&header_->head, sizeof(u64));
    return offset;
  }

  /// Read-only view of a committed record's bytes.
  [[nodiscard]] std::span<const std::byte> read(u64 offset, usize n) const {
    GH_CHECK_MSG(offset + n <= header_->head, "read beyond committed arena head");
    return {data_ + offset, n};
  }

  [[nodiscard]] u64 head() const { return header_->head; }
  [[nodiscard]] u64 capacity() const { return header_->capacity; }
  [[nodiscard]] u64 remaining() const { return header_->capacity - header_->head; }

  /// Base of the data bytes, for optimistic readers that bounds-check
  /// offsets themselves instead of going through read()'s head check
  /// (a stale reader's head may lag its offset; see concurrent_string_map).
  [[nodiscard]] const std::byte* data() const { return data_; }

 private:
  PM* pm_;
  Header* header_ = nullptr;
  std::byte* data_ = nullptr;
};

}  // namespace gh::nvm
