#include "nvm/shadow_pm.hpp"
#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gh::nvm {

ShadowPM::ShadowPM(std::span<std::byte> live)
    : live_(live),
      shadow_(live.begin(), live.end()),
      dirty_((live.size() / kAtomicUnit + 63) / 64, 0) {
  GH_CHECK_MSG(reinterpret_cast<std::uintptr_t>(live.data()) % kAtomicUnit == 0,
               "live span must be 8-byte aligned");
  GH_CHECK_MSG(live.size() % kAtomicUnit == 0, "live span must be a multiple of 8 bytes");
}

usize ShadowPM::word_index(const void* addr) const {
  const auto* p = static_cast<const std::byte*>(addr);
  GH_DCHECK(p >= live_.data() && p < live_.data() + live_.size());
  return static_cast<usize>(p - live_.data()) / kAtomicUnit;
}

void ShadowPM::bump_event() {
  if (events_ == crash_event_) throw SimulatedCrash{};
  events_++;
}

void ShadowPM::mark_dirty(const void* addr, usize n) {
  if (n == 0) return;
  const usize first = word_index(addr);
  const usize last = word_index(static_cast<const std::byte*>(addr) + n - 1);
  for (usize w = first; w <= last; ++w) dirty_[w / 64] |= 1ull << (w % 64);
}

void ShadowPM::store_u64(u64* dst, u64 v) {
  bump_event();
  *dst = v;
  mark_dirty(dst, sizeof(u64));
  stats_.stores++;
  stats_.bytes_written += sizeof(u64);
}

void ShadowPM::atomic_store_u64(u64* dst, u64 v) {
  bump_event();
  *dst = v;
  mark_dirty(dst, sizeof(u64));
  stats_.atomic_stores++;
  stats_.bytes_written += sizeof(u64);
}

void ShadowPM::copy(void* dst, const void* src, usize n) {
  bump_event();
  std::memmove(dst, src, n);
  mark_dirty(dst, n);
  stats_.stores++;
  stats_.bytes_written += n;
}

void ShadowPM::fill(void* dst, unsigned char byte, usize n) {
  bump_event();
  std::memset(dst, byte, n);
  mark_dirty(dst, n);
  stats_.stores++;
  stats_.bytes_written += n;
}

void ShadowPM::persist(const void* addr, usize n) {
  bump_event();
  stats_.persist_calls++;
  commit_pending();  // persist() contains a fence: earlier flushes retire too
  if (n == 0) {
    stats_.fences++;
    obs::on_pm_persist(0);
    obs::on_pm_fence();
    return;
  }
  // clflush granularity: persist the *whole* cachelines covering the range.
  const std::byte* begin = line_begin(addr);
  const std::byte* end = line_begin(static_cast<const std::byte*>(addr) + n - 1) + kCachelineSize;
  if (begin < live_.data()) begin = live_.data();
  if (end > live_.data() + live_.size()) end = live_.data() + live_.size();
  const usize off = static_cast<usize>(begin - live_.data());
  const usize len = static_cast<usize>(end - begin);
  std::memcpy(shadow_.data() + off, begin, len);
  for (usize w = off / kAtomicUnit; w < (off + len) / kAtomicUnit; ++w) {
    dirty_[w / 64] &= ~(1ull << (w % 64));
  }
  const u64 lines = lines_spanned(addr, n);
  stats_.lines_flushed += lines;
  stats_.fences++;
  obs::on_pm_persist(lines);
  obs::on_pm_fence();
}

void ShadowPM::flush(const void* addr, usize n) {
  bump_event();
  if (n == 0) {
    obs::on_pm_persist(0);
    return;
  }
  // An unfenced clflushopt gives no durability guarantee yet: snapshot the
  // lines' current contents and hold them pending. The covered words keep
  // their dirty bits, so materialize_crash_image can still evict the
  // (identical or newer) live words — strictly adversarial.
  const std::byte* begin = line_begin(addr);
  const std::byte* end = line_begin(static_cast<const std::byte*>(addr) + n - 1) + kCachelineSize;
  if (begin < live_.data()) begin = live_.data();
  if (end > live_.data() + live_.size()) end = live_.data() + live_.size();
  for (const std::byte* p = begin; p < end; p += kCachelineSize) {
    PendingLine line;
    line.offset = static_cast<usize>(p - live_.data());
    line.len = std::min<usize>(kCachelineSize, static_cast<usize>(end - p));
    std::memcpy(line.data.data(), p, line.len);
    pending_.push_back(line);
  }
  const u64 lines = lines_spanned(addr, n);
  stats_.lines_flushed += lines;
  obs::on_pm_persist(lines);
}

void ShadowPM::fence() {
  bump_event();
  commit_pending();
  stats_.fences++;
  obs::on_pm_fence();
}

void ShadowPM::commit_pending() {
  // Applied in flush order, so a line flushed twice lands on its later
  // snapshot. A word's dirty bit is cleared only if the live word still
  // equals the snapshot being committed — a store issued after the flush
  // re-dirtied it and remains subject to arbitrary eviction.
  for (const PendingLine& line : pending_) {
    std::memcpy(shadow_.data() + line.offset, line.data.data(), line.len);
    for (usize w = line.offset / kAtomicUnit; w < (line.offset + line.len) / kAtomicUnit; ++w) {
      u64 live_word = 0;
      u64 snap_word = 0;
      std::memcpy(&live_word, live_.data() + w * kAtomicUnit, kAtomicUnit);
      std::memcpy(&snap_word, line.data.data() + (w * kAtomicUnit - line.offset), kAtomicUnit);
      if (live_word == snap_word) dirty_[w / 64] &= ~(1ull << (w % 64));
    }
  }
  pending_.clear();
}

std::vector<std::byte> ShadowPM::materialize_crash_image(CrashMode mode, u64 seed) const {
  std::vector<std::byte> image = shadow_;
  if (mode == CrashMode::kNothingEvicted) return image;
  Xoshiro256 rng(seed);
  const usize words = live_.size() / kAtomicUnit;
  for (usize w = 0; w < words; ++w) {
    if ((dirty_[w / 64] >> (w % 64)) & 1) {
      const bool evict = mode == CrashMode::kAllEvicted || rng.next_bool();
      if (evict) {
        std::memcpy(image.data() + w * kAtomicUnit, live_.data() + w * kAtomicUnit,
                    kAtomicUnit);
      }
    }
  }
  return image;
}

void ShadowPM::reset_to_image(std::span<const std::byte> image) {
  GH_CHECK(image.size() == live_.size());
  std::memcpy(live_.data(), image.data(), image.size());
  shadow_.assign(image.begin(), image.end());
  std::fill(dirty_.begin(), dirty_.end(), 0);
  pending_.clear();  // a reboot loses in-flight (unfenced) flushes
  crash_event_ = no_crash();
}

u64 ShadowPM::dirty_word_count() const {
  u64 n = 0;
  for (const u64 word : dirty_) n += static_cast<u64>(std::popcount(word));
  return n;
}

}  // namespace gh::nvm
