// Named crash-point registry: intra-operation fault injection for steps
// that live between filesystem operations.
//
// FaultFs (fault_fs.hpp) can only crash at filesystem boundaries
// (create/msync/rename/...). Online-resize migration does most of its
// work *between* those boundaries — group copy, old-group erase, durable
// cursor advance are all PM stores — so the migration code marks each of
// those steps with a named point:
//
//   nvm::crash_point("migrate.group.copied");
//
// Tests install a CrashPointPolicy process-wide to enumerate the points
// (TracePointPolicy) and then crash at the Nth occurrence of a given
// point (CrashAtPointPolicy throws SimulatedCrash, the same exception the
// FaultFs schedules use, so existing abandon()/reopen harnesses apply
// unchanged). When no policy is installed — always, in production — a
// point is one relaxed atomic load and a predicted-not-taken branch.
#pragma once

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "nvm/fault_fs.hpp"

namespace gh::nvm {

/// Process-wide hook. on_point may throw (SimulatedCrash) to simulate a
/// power failure at that step; it runs on whatever thread hit the point,
/// so implementations must be thread-safe.
struct CrashPointPolicy {
  virtual ~CrashPointPolicy() = default;
  virtual void on_point(const char* name) = 0;
};

namespace detail {
inline std::atomic<CrashPointPolicy*>& crash_point_policy() {
  static std::atomic<CrashPointPolicy*> policy{nullptr};
  return policy;
}
}  // namespace detail

/// Mark a named step. No-op (one relaxed load) unless a policy is armed.
inline void crash_point(const char* name) {
  CrashPointPolicy* p = detail::crash_point_policy().load(std::memory_order_relaxed);
  if (p != nullptr) [[unlikely]] p->on_point(name);
}

/// RAII installer, mirroring ScopedFsPolicy. Nesting is not supported —
/// the previous policy is restored on destruction.
class ScopedCrashPoints {
 public:
  explicit ScopedCrashPoints(CrashPointPolicy* policy)
      : previous_(detail::crash_point_policy().exchange(policy)) {}
  ~ScopedCrashPoints() { detail::crash_point_policy().store(previous_); }
  ScopedCrashPoints(const ScopedCrashPoints&) = delete;
  ScopedCrashPoints& operator=(const ScopedCrashPoints&) = delete;

 private:
  CrashPointPolicy* previous_;
};

/// Record-run policy: appends every point name, in order.
struct TracePointPolicy : CrashPointPolicy {
  std::mutex mu;
  std::vector<std::string> trace;
  void on_point(const char* name) override {
    const std::lock_guard<std::mutex> lock(mu);
    trace.emplace_back(name);
  }
};

/// Crash (SimulatedCrash) at the Nth occurrence of any point, counting
/// every point hit — pairs with a TracePointPolicy record run the way
/// CrashScheduleFs::crash_at pairs with its trace.
struct CrashAtPointPolicy : CrashPointPolicy {
  usize crash_at = 0;
  std::atomic<usize> seen{0};
  void on_point(const char* /*name*/) override {
    if (seen.fetch_add(1, std::memory_order_relaxed) == crash_at) throw SimulatedCrash{};
  }
};

}  // namespace gh::nvm
