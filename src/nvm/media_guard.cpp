#include "nvm/media_error.hpp"

#include <signal.h>

#include <atomic>
#include <mutex>

#include "util/assert.hpp"

namespace gh::nvm::detail {
namespace {

struct sigaction g_previous_action;

/// Async-signal-safe: only reads the calling thread's guard stack and
/// either longjmps (guarded fault) or restores the previous disposition
/// and re-raises (unguarded fault — crash loudly, as without the guard).
void sigbus_handler(int signo, siginfo_t* info, void* /*ucontext*/) {
  SigbusGuardState* guard = current_sigbus_guard();
  const auto* addr = static_cast<const std::byte*>(info->si_addr);
  for (; guard != nullptr; guard = guard->outer) {
    if (addr >= guard->begin && addr < guard->begin + guard->size) {
      guard->fault_offset = static_cast<usize>(addr - guard->begin);
      // The longjmp may skip nested inner frames whose ranges did not
      // cover the fault; unwind them here (a plain thread-local pointer
      // write — async-signal-safe) so the landing frame is the top.
      current_sigbus_guard() = guard;
      siglongjmp(guard->jump, 1);
    }
  }
  // Not ours: fall through to the previous disposition. Re-raising with
  // the handler restored reproduces the default fatal behaviour (or the
  // embedding application's own handler).
  ::sigaction(signo, &g_previous_action, nullptr);
  ::raise(signo);
}

void install_handler_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_sigaction = sigbus_handler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    GH_CHECK(::sigaction(SIGBUS, &sa, &g_previous_action) == 0);
  });
}

}  // namespace

SigbusGuardState*& current_sigbus_guard() {
  thread_local SigbusGuardState* top = nullptr;
  return top;
}

void push_sigbus_guard(SigbusGuardState* state) {
  install_handler_once();
  SigbusGuardState*& top = current_sigbus_guard();
  state->outer = top;
  top = state;
}

void pop_sigbus_guard(SigbusGuardState* state) {
  SigbusGuardState*& top = current_sigbus_guard();
  GH_CHECK_MSG(top == state, "media guard pop out of order");
  top = state->outer;
}

}  // namespace gh::nvm::detail
