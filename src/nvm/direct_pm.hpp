// DirectPM — the production persistence policy.
//
// Stores go straight to the mapped region; persist() issues real cacheline
// flushes and a store fence and then spins for the configured emulated NVM
// write latency (one delay per line, matching the paper's methodology of
// adding 300 ns after each clflush). All traffic is counted in
// PersistStats.
//
// Every hash scheme in src/hash is templated over a persistence policy PM
// with this interface:
//
//   void   store_u64(u64* dst, u64 v);
//   void   atomic_store_u64(u64* dst, u64 v);   // 8-byte failure-atomic
//   void   copy(void* dst, const void* src, usize n);
//   void   fill(void* dst, unsigned char byte, usize n);
//   void   persist(const void* addr, usize n);  // flush lines + fence
//   void   flush(const void* addr, usize n);    // flush lines, NO fence
//   void   fence();
//   void   touch_read(const void* addr, usize n);  // read-side hook
//   PersistStats& stats();
//
// DirectPM keeps touch_read a no-op so reads cost nothing; ShadowPM uses
// the store hooks for crash simulation and TracingPM feeds both sides into
// the cache simulator.
#pragma once

#include <atomic>
#include <cstring>

#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"
#include "util/types.hpp"

namespace gh::nvm {

class DirectPM {
 public:
  explicit DirectPM(PersistConfig config = PersistConfig::emulated_nvm())
      : config_(config) {}

  /// Ordinary 8-byte store. Issued as a release atomic so the optimistic
  /// lock-free readers (core/optimistic_read.hpp) can load the same words
  /// with acquire semantics without a data race: any value a reader
  /// obtains this way carries happens-before with everything the writer
  /// stored earlier (e.g. arena record bytes behind a published offset).
  /// On x86 this compiles to the same plain mov as before.
  void store_u64(u64* dst, u64 v) {
    std::atomic_ref<u64>(*dst).store(v, std::memory_order_release);
    stats_.stores++;
    stats_.bytes_written += sizeof(u64);
  }

  /// 8-byte failure-atomic publish: a release store so the payload written
  /// before it is visible first, and a single aligned 8-byte write so it
  /// cannot tear (the paper's failure-atomicity assumption).
  void atomic_store_u64(u64* dst, u64 v) {
    std::atomic_ref<u64>(*dst).store(v, std::memory_order_release);
    stats_.atomic_stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void copy(void* dst, const void* src, usize n) {
    std::memcpy(dst, src, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  void fill(void* dst, unsigned char byte, usize n) {
    std::memset(dst, byte, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  void persist(const void* addr, usize n) {
    stats_.persist_calls++;
    flush(addr, n);
    fence();
  }

  /// Flush the cachelines covering [addr, addr+n) WITHOUT the trailing
  /// fence. The batched mutation paths issue many flushes and a single
  /// fence() per window (clflushopt... + one sfence); durability is only
  /// guaranteed once that fence retires.
  void flush(const void* addr, usize n) {
    obs::PhasePersistScope persist_scope;
    const u64 lines = lines_spanned(addr, n);
    const std::byte* line = line_begin(addr);
    for (u64 i = 0; i < lines; ++i, line += kCachelineSize) {
      if (config_.issue_real_flush) flush_line(line, config_.flush_instruction);
      if (config_.flush_latency_ns != 0) {
        spin_wait_ns(config_.flush_latency_ns);
        stats_.delay_ns += config_.flush_latency_ns;
      }
    }
    stats_.lines_flushed += lines;
    obs::on_pm_persist(lines);
  }

  void fence() {
    obs::PhaseFenceScope fence_scope;
    store_fence();
    stats_.fences++;
    obs::on_pm_fence();
  }

  void touch_read(const void*, usize) {}

  [[nodiscard]] PersistStats& stats() { return stats_; }
  [[nodiscard]] const PersistStats& stats() const { return stats_; }
  [[nodiscard]] const PersistConfig& config() const { return config_; }

 private:
  PersistConfig config_;
  PersistStats stats_;
};

}  // namespace gh::nvm
