#include "nvm/persist.hpp"

#include <sstream>

#include "util/format.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define GH_X86 1
#endif

namespace gh::nvm {

void flush_line(const void* addr) {
#if defined(GH_X86) && defined(GH_HAVE_CLFLUSHOPT)
  _mm_clflushopt(const_cast<void*>(addr));
#elif defined(GH_X86)
  _mm_clflush(const_cast<void*>(addr));
#else
  (void)addr;
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

void flush_line(const void* addr, FlushInstruction kind) {
#ifdef GH_X86
  switch (kind) {
    case FlushInstruction::kClflush:
      _mm_clflush(const_cast<void*>(addr));
      return;
    case FlushInstruction::kClflushOpt:
    case FlushInstruction::kClwb:
      // clwb shares clflushopt's encoding class; without -mclwb at build
      // time (or hardware support) degrade to clflushopt/clflush — same
      // durability, stronger invalidation.
#ifdef GH_HAVE_CLWB
      if (kind == FlushInstruction::kClwb) {
        _mm_clwb(const_cast<void*>(addr));
        return;
      }
#endif
#ifdef GH_HAVE_CLFLUSHOPT
      _mm_clflushopt(const_cast<void*>(addr));
#else
      _mm_clflush(const_cast<void*>(addr));
#endif
      return;
  }
#else
  (void)addr;
  (void)kind;
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

void store_fence() {
#ifdef GH_X86
  _mm_sfence();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

std::string PersistStats::to_string() const {
  std::ostringstream os;
  os << "stores=" << stores << " bytes=" << format_bytes(bytes_written)
     << " atomic=" << atomic_stores << " persists=" << persist_calls
     << " lines_flushed=" << lines_flushed << " fences=" << fences
     << " delay=" << format_ns(static_cast<double>(delay_ns));
  return os.str();
}

}  // namespace gh::nvm
