// WearPM — persistence policy that tracks per-cacheline write wear.
//
// The paper's Table 1 motivates write reduction with NVM endurance limits
// (PCM ~10^8 writes per cell) and §2.1 notes that eliminating duplicate
// copies "can be combined with wear-leveling schemes to further lengthen
// NVM's lifetime". This policy measures exactly that: NVM media writes
// happen when a cacheline is flushed, so persist() increments a per-line
// wear counter. The wear report gives total media writes, the hottest
// line (on every scheme: the cacheline holding the persistent `count`!),
// and distribution statistics — the ablation bench compares schemes on
// all of them.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh::nvm {

struct WearReport {
  u64 total_line_writes = 0;  ///< NVM media line-writes (endurance currency)
  u64 lines_touched = 0;      ///< distinct lines written at least once
  u64 max_line_writes = 0;    ///< wear of the hottest line
  usize hottest_line_offset = 0;
  double mean_writes_per_touched_line = 0;
  /// max / mean over touched lines: >> 1 means wear-leveling would have to
  /// work hard; ~1 means writes are already even.
  double wear_imbalance = 0;
};

class WearPM {
 public:
  explicit WearPM(std::span<std::byte> tracked)
      : tracked_(tracked), wear_((tracked.size() + kCachelineSize - 1) / kCachelineSize, 0) {}

  void store_u64(u64* dst, u64 v) {
    *dst = v;
    stats_.stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void atomic_store_u64(u64* dst, u64 v) {
    *dst = v;
    stats_.atomic_stores++;
    stats_.bytes_written += sizeof(u64);
  }

  void copy(void* dst, const void* src, usize n) {
    std::memcpy(dst, src, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  void fill(void* dst, unsigned char byte, usize n) {
    std::memset(dst, byte, n);
    stats_.stores++;
    stats_.bytes_written += n;
  }

  /// The wear event: a flush writes the line back to the NVM media.
  void persist(const void* addr, usize n) {
    stats_.persist_calls++;
    if (n != 0) {
      const std::byte* line = line_begin(addr);
      const u64 lines = lines_spanned(addr, n);
      for (u64 i = 0; i < lines; ++i, line += kCachelineSize) {
        bump_wear(line);
      }
      stats_.lines_flushed += lines;
      obs::on_pm_persist(lines);
    }
    stats_.fences++;
    obs::on_pm_fence();
  }

  /// Unfenced flush: the write-back (and so the wear event) happens at
  /// flush time; only the ordering fence is deferred to the caller.
  void flush(const void* addr, usize n) {
    if (n == 0) return;
    const std::byte* line = line_begin(addr);
    const u64 lines = lines_spanned(addr, n);
    for (u64 i = 0; i < lines; ++i, line += kCachelineSize) {
      bump_wear(line);
    }
    stats_.lines_flushed += lines;
    obs::on_pm_persist(lines);
  }

  void fence() {
    stats_.fences++;
    obs::on_pm_fence();
  }
  void touch_read(const void*, usize) {}

  [[nodiscard]] PersistStats& stats() { return stats_; }
  [[nodiscard]] const PersistStats& stats() const { return stats_; }

  [[nodiscard]] u64 line_wear(usize line_index) const { return wear_[line_index]; }
  [[nodiscard]] usize line_count() const { return wear_.size(); }

  [[nodiscard]] WearReport report() const {
    WearReport r;
    for (usize i = 0; i < wear_.size(); ++i) {
      const u64 w = wear_[i];
      if (w == 0) continue;
      r.total_line_writes += w;
      r.lines_touched++;
      if (w > r.max_line_writes) {
        r.max_line_writes = w;
        r.hottest_line_offset = i * kCachelineSize;
      }
    }
    if (r.lines_touched != 0) {
      r.mean_writes_per_touched_line =
          static_cast<double>(r.total_line_writes) / static_cast<double>(r.lines_touched);
      r.wear_imbalance =
          static_cast<double>(r.max_line_writes) / r.mean_writes_per_touched_line;
    }
    return r;
  }

  void reset_wear() { std::fill(wear_.begin(), wear_.end(), 0); }

 private:
  void bump_wear(const std::byte* line) {
    if (line >= tracked_.data() && line < tracked_.data() + tracked_.size()) {
      wear_[static_cast<usize>(line - tracked_.data()) / kCachelineSize]++;
    }
  }

  std::span<std::byte> tracked_;
  std::vector<u64> wear_;
  PersistStats stats_;
};

}  // namespace gh::nvm
