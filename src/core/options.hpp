// gh::Options — ONE validated, builder-style configuration surface for
// every map/table in the library.
//
// Before this layer each structure grew its own knob struct — MapOptions,
// StringMapOptions, hash::TableConfig — with overlapping fields under
// slightly different names (hash_seed vs seed1, checksum_groups vs
// group_crc) and no validation beyond assertions deep inside the layout
// code. Options unifies them:
//
//   auto map = gh::GroupHashMap::create_in_memory(
//       gh::Options().initial_cells(1 << 20).emulate_nvm().checksum_groups(false));
//
// Design notes:
//   * Options is deliberately NOT an aggregate: the legacy structs are
//     initialized with designated initializers ({.initial_cells = ...})
//     all over the tests, and keeping Options non-aggregate means brace
//     lists can only ever match the legacy structs — no overload
//     ambiguity, no silent meaning change.
//   * Factories "take it" through implicit conversion: operator
//     MapOptions/StringMapOptions/TableConfig run validate() and then
//     translate the shared knobs, so every existing create/open/make_table
//     signature accepts an Options without a new overload.
//   * validate() throws std::invalid_argument with a named-knob message —
//     at configuration time, not as a GH_CHECK abort after the region is
//     mapped.
//
// The legacy structs remain as thin back-compat carriers (they are the
// on-the-wire parameter types); new code should build an Options.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "core/group_hash_map.hpp"
#include "core/string_map.hpp"
#include "hash/any_table.hpp"
#include "util/types.hpp"

namespace gh {

class Options {
 public:
  Options() = default;

  // --- capacity & geometry ------------------------------------------------
  Options& initial_cells(u64 v) { initial_cells_ = v; return *this; }
  Options& group_size(u32 v) { group_size_ = v; return *this; }
  Options& hash_seed(u64 v) { seed1_ = v; return *this; }
  Options& second_seed(u64 v) { seed2_ = v; return *this; }

  // --- NVM latency model --------------------------------------------------
  Options& flush_latency_ns(u64 v) { flush_latency_ns_ = v; return *this; }
  /// The paper's methodology: 300 ns added after each cacheline flush.
  Options& emulate_nvm() { return flush_latency_ns(300); }

  // --- growth & maintenance -----------------------------------------------
  /// Grow when full: expansion for the integer maps, compaction+doubling
  /// for the string map.
  Options& auto_grow(bool v) { auto_grow_ = v; return *this; }
  Options& retain_retired_regions(bool v) { retain_retired_ = v; return *this; }

  // --- integrity & quarantine policy ---------------------------------------
  Options& checksum_groups(bool v) { checksum_groups_ = v; return *this; }
  Options& verify_on_open(bool v) { verify_on_open_ = v; return *this; }
  Options& scrub_mode(hash::ScrubMode m) { scrub_mode_ = m; return *this; }
  Options& on_lost_cell(std::function<void(const hash::LostCell&)> fn) {
    on_lost_cell_ = std::move(fn);
    return *this;
  }

  // --- observability sinks -------------------------------------------------
  /// Per-op latency histograms (obs/metrics.hpp); on by default, no-op
  /// under GH_OBS_OFF builds.
  Options& record_latency(bool v) { record_latency_ = v; return *this; }
  /// Time 1 in 2^shift ops (0 = every op; default obs::kDefaultSampleShift).
  Options& latency_sample_shift(u32 v) { latency_sample_shift_ = v; return *this; }

  // --- string-map sizing ---------------------------------------------------
  Options& arena_bytes_per_cell(usize v) { arena_bytes_per_cell_ = v; return *this; }

  // --- table-factory knobs (hash::make_table) ------------------------------
  Options& scheme(hash::Scheme s) { scheme_ = s; return *this; }
  Options& wide_cells(bool v) { wide_cells_ = v; return *this; }
  Options& with_wal(bool v, u32 records = 4096) {
    with_wal_ = v;
    wal_records_ = records;
    return *this;
  }
  Options& reserved_levels(u32 v) { reserved_levels_ = v; return *this; }
  Options& zero_memory(bool v) { zero_memory_ = v; return *this; }

  // --- getters (same names, nullary) ---------------------------------------
  [[nodiscard]] u64 initial_cells() const { return initial_cells_; }
  [[nodiscard]] u32 group_size() const { return group_size_; }
  [[nodiscard]] u64 hash_seed() const { return seed1_; }
  [[nodiscard]] u64 second_seed() const { return seed2_; }
  [[nodiscard]] u64 flush_latency_ns() const { return flush_latency_ns_; }
  [[nodiscard]] bool auto_grow() const { return auto_grow_; }
  [[nodiscard]] bool retain_retired_regions() const { return retain_retired_; }
  [[nodiscard]] bool checksum_groups() const { return checksum_groups_; }
  [[nodiscard]] bool verify_on_open() const { return verify_on_open_; }
  [[nodiscard]] hash::ScrubMode scrub_mode() const { return scrub_mode_; }
  [[nodiscard]] bool record_latency() const { return record_latency_; }
  [[nodiscard]] u32 latency_sample_shift() const { return latency_sample_shift_; }
  [[nodiscard]] usize arena_bytes_per_cell() const { return arena_bytes_per_cell_; }
  [[nodiscard]] hash::Scheme scheme() const { return scheme_; }
  [[nodiscard]] bool wide_cells() const { return wide_cells_; }
  [[nodiscard]] bool with_wal() const { return with_wal_; }
  [[nodiscard]] u32 wal_records() const { return wal_records_; }
  [[nodiscard]] u32 reserved_levels() const { return reserved_levels_; }
  [[nodiscard]] bool zero_memory() const { return zero_memory_; }

  /// Reject contradictory or out-of-range knobs with a named-knob
  /// std::invalid_argument. Run by every conversion (so a bad Options can
  /// never reach region allocation) and callable directly.
  void validate() const {
    if (initial_cells_ == 0) {
      throw std::invalid_argument("Options: initial_cells must be nonzero");
    }
    if (group_size_ == 0 || (group_size_ & (group_size_ - 1)) != 0) {
      throw std::invalid_argument("Options: group_size must be a nonzero power of two");
    }
    if (arena_bytes_per_cell_ == 0) {
      throw std::invalid_argument("Options: arena_bytes_per_cell must be nonzero");
    }
    if (with_wal_ && wal_records_ == 0) {
      throw std::invalid_argument("Options: with_wal requires wal_records > 0");
    }
    if (flush_latency_ns_ > 10'000'000) {
      throw std::invalid_argument(
          "Options: flush_latency_ns > 10ms is not a plausible media latency");
    }
    if (reserved_levels_ == 0) {
      throw std::invalid_argument("Options: reserved_levels must be nonzero");
    }
    if (latency_sample_shift_ > 32) {
      throw std::invalid_argument(
          "Options: latency_sample_shift > 32 samples essentially nothing");
    }
  }

  // --- conversions to the legacy knob structs ------------------------------
  [[nodiscard]] MapOptions to_map_options() const {
    validate();
    MapOptions o;
    o.initial_cells = initial_cells_;
    o.group_size = group_size_;
    o.hash_seed = seed1_;
    o.flush_latency_ns = flush_latency_ns_;
    o.auto_expand = auto_grow_;
    o.retain_retired_regions = retain_retired_;
    o.checksum_groups = checksum_groups_;
    o.verify_on_open = verify_on_open_;
    o.scrub_mode = scrub_mode_;
    o.on_lost_cell = on_lost_cell_;
    o.record_latency = record_latency_;
    o.latency_sample_shift = latency_sample_shift_;
    return o;
  }

  [[nodiscard]] StringMapOptions to_string_map_options() const {
    validate();
    StringMapOptions o;
    o.initial_cells = initial_cells_;
    o.group_size = group_size_;
    o.arena_bytes_per_cell = arena_bytes_per_cell_;
    o.flush_latency_ns = flush_latency_ns_;
    o.auto_compact = auto_grow_;
    o.retain_retired_regions = retain_retired_;
    o.checksum_groups = checksum_groups_;
    o.record_latency = record_latency_;
    o.latency_sample_shift = latency_sample_shift_;
    return o;
  }

  [[nodiscard]] hash::TableConfig to_table_config() const {
    validate();
    hash::TableConfig c;
    c.scheme = scheme_;
    u32 log2 = 4;
    while ((1ull << log2) < initial_cells_) ++log2;
    c.total_cells_log2 = log2;
    c.group_size = group_size_;
    c.reserved_levels = reserved_levels_;
    c.wide_cells = wide_cells_;
    c.with_wal = with_wal_;
    c.wal_records = wal_records_;
    c.seed1 = seed1_;
    c.seed2 = seed2_;
    c.zero_memory = zero_memory_;
    c.group_crc = checksum_groups_ && scheme_ == hash::Scheme::kGroup;
    c.record_latency = record_latency_;
    c.latency_sample_shift = latency_sample_shift_;
    return c;
  }

  // Implicit: lets every existing factory (GroupHashMap::create,
  // PersistentStringMap::open, hash::make_table, the concurrent wrapper
  // constructors) accept an Options without adding overloads — and
  // without perturbing the brace-initialized legacy call sites, since a
  // braced list can never select these user-defined conversions.
  operator MapOptions() const { return to_map_options(); }                // NOLINT
  operator StringMapOptions() const { return to_string_map_options(); }  // NOLINT
  operator hash::TableConfig() const { return to_table_config(); }       // NOLINT

  // --- lifting a legacy struct into the unified surface --------------------
  static Options from(const MapOptions& o) {
    Options b;
    b.initial_cells_ = o.initial_cells;
    b.group_size_ = o.group_size;
    b.seed1_ = o.hash_seed;
    b.flush_latency_ns_ = o.flush_latency_ns;
    b.auto_grow_ = o.auto_expand;
    b.retain_retired_ = o.retain_retired_regions;
    b.checksum_groups_ = o.checksum_groups;
    b.verify_on_open_ = o.verify_on_open;
    b.scrub_mode_ = o.scrub_mode;
    b.on_lost_cell_ = o.on_lost_cell;
    b.record_latency_ = o.record_latency;
    b.latency_sample_shift_ = o.latency_sample_shift;
    return b;
  }

  static Options from(const StringMapOptions& o) {
    Options b;
    b.initial_cells_ = o.initial_cells;
    b.group_size_ = o.group_size;
    b.arena_bytes_per_cell_ = o.arena_bytes_per_cell;
    b.flush_latency_ns_ = o.flush_latency_ns;
    b.auto_grow_ = o.auto_compact;
    b.retain_retired_ = o.retain_retired_regions;
    b.checksum_groups_ = o.checksum_groups;
    b.record_latency_ = o.record_latency;
    b.latency_sample_shift_ = o.latency_sample_shift;
    return b;
  }

  static Options from(const hash::TableConfig& c) {
    Options b;
    b.scheme_ = c.scheme;
    b.initial_cells_ = 1ull << c.total_cells_log2;
    b.group_size_ = c.group_size;
    b.reserved_levels_ = c.reserved_levels;
    b.wide_cells_ = c.wide_cells;
    b.with_wal_ = c.with_wal;
    b.wal_records_ = c.wal_records;
    b.seed1_ = c.seed1;
    b.seed2_ = c.seed2;
    b.zero_memory_ = c.zero_memory;
    b.checksum_groups_ = c.group_crc;
    b.record_latency_ = c.record_latency;
    b.latency_sample_shift_ = c.latency_sample_shift;
    return b;
  }

 private:
  u64 initial_cells_ = 1ull << 16;
  u32 group_size_ = 256;
  u64 seed1_ = hash::kDefaultSeed1;
  u64 seed2_ = hash::kDefaultSeed2;
  u64 flush_latency_ns_ = 0;
  bool auto_grow_ = true;
  bool retain_retired_ = false;
  bool checksum_groups_ = true;
  bool verify_on_open_ = true;
  hash::ScrubMode scrub_mode_ = hash::ScrubMode::kDropGroup;
  std::function<void(const hash::LostCell&)> on_lost_cell_;
  bool record_latency_ = true;
  u32 latency_sample_shift_ = obs::kDefaultSampleShift;
  usize arena_bytes_per_cell_ = 48;
  hash::Scheme scheme_ = hash::Scheme::kGroup;
  bool wide_cells_ = false;
  bool with_wal_ = false;
  u32 wal_records_ = 4096;
  u32 reserved_levels_ = 20;
  bool zero_memory_ = false;
};

}  // namespace gh
