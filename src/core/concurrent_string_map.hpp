// ConcurrentStringMap — thread-safe sharded wrapper over
// PersistentStringMap with optimistic lock-free reads.
//
// Keys route to one of N power-of-two shards by an independent hash of
// the key bytes; each shard is a complete in-memory PersistentStringMap
// (fingerprinted Cell32 table + append-only arena), so the paper's
// 8-byte-commit consistency argument is unchanged per shard.
//
// get() runs lock-free: under a seqlock epoch snapshot it probes the
// shard's Cell32 table by fingerprint (acquire loads), bounds-checks the
// record offset against the snapshot's arena window, reads the record's
// value word atomically and verifies the stored key bytes. The key-byte
// reads are plain but race-free: the offset was obtained through an
// acquire load of a cell word that DirectPM published with release
// ordering AFTER the record bytes were written, so happens-before covers
// them; a stale offset only ever lands in retired or committed (hence
// immutable) arena bytes. Any anomaly — failed epoch validation, offset
// or length out of bounds — retries, then falls back to the shard lock
// after kMaxOptimisticAttempts failures. Oversized keys
// (> kMaxOptimisticKeyBytes) skip the optimistic path entirely.
//
// Compaction (auto-triggered by put) rebuilds a shard into a fresh
// region; the old region is retired-but-mapped
// (StringMapOptions::retain_retired_regions) and a fresh ReadSnapshot is
// republished, mirroring the expansion protocol of ConcurrentGroupHashMap.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/string_map.hpp"
#include "util/seqlock.hpp"
#include "util/types.hpp"

namespace gh {

struct ConcurrentStringMapOptions {
  usize shards = 16;  ///< power of two
  StringMapOptions shard_options = {};
  LockMode lock_mode = LockMode::kOptimistic;
};

class ConcurrentStringMap {
 public:
  static constexpr u32 kMaxOptimisticAttempts = 8;
  /// Keys longer than this read through the lock (bounded stack copy on
  /// the optimistic path keeps validation cheap).
  static constexpr usize kMaxOptimisticKeyBytes = 512;

  explicit ConcurrentStringMap(const ConcurrentStringMapOptions& options = {});

  ConcurrentStringMap(const ConcurrentStringMap&) = delete;
  ConcurrentStringMap& operator=(const ConcurrentStringMap&) = delete;

  /// Insert or update. Throws on a detected fingerprint collision.
  void put(std::string_view key, u64 value);

  [[nodiscard]] std::optional<u64> get(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) { return get(key).has_value(); }
  bool erase(std::string_view key);

  /// Batched lookup: keys are bucketed by shard; each shard's sub-batch
  /// probes lock-free under ONE epoch validation, falling back to the
  /// shard lock (and the shard map's prefetching get_batch) on epoch
  /// churn, an oversized key, or a probe anomaly. out[i] receives the
  /// result for keys[i].
  void get_batch(std::span<const std::string_view> keys,
                 std::span<std::optional<u64>> out);

  [[nodiscard]] u64 size();
  [[nodiscard]] usize shard_count() const { return shards_.size(); }
  [[nodiscard]] LockMode lock_mode() const { return mode_; }
  [[nodiscard]] usize shard_index(std::string_view key) const { return shard_of(key); }

  /// One unified stats sample over all shards (see
  /// BasicConcurrentGroupHashMap::snapshot): aggregate counters, merged
  /// per-op latency histograms, and a per-shard brief. Each shard is
  /// sampled under its seqlock's read side, so a concurrent compaction
  /// cannot tear the view.
  [[nodiscard]] obs::Snapshot snapshot();

  /// DEPRECATED: the same numbers snapshot().contention / .per_shard
  /// report.
  [[nodiscard]] const LockContention& shard_contention(usize s) const {
    return shards_[s]->contention;
  }
  [[nodiscard]] LockContention contention() const;

  /// Tests only: lowers (or raises) the optimistic attempt budget; 0 sends
  /// every read straight to the lock fallback.
  void set_max_optimistic_attempts(u32 attempts) { max_optimistic_attempts_ = attempts; }

 private:
  using Snapshot = PersistentStringMap::ReadSnapshot;

  struct ShardState {
    explicit ShardState(const StringMapOptions& options);
    void republish_snapshot_if_moved();

    PersistentStringMap map;
    SeqLock lock;
    std::atomic<const Snapshot*> snapshot{nullptr};
    std::vector<std::unique_ptr<Snapshot>> snapshots;  ///< current + retired
    LockContention contention;
  };

  [[nodiscard]] usize shard_of(std::string_view key) const;

  /// One optimistic probe under an already-validated-stable epoch.
  /// Returns true when `out` holds a trustworthy-if-validated answer;
  /// false when the probe hit an anomaly (torn offset/length, key
  /// mismatch) and the caller must validate-and-escalate.
  static bool optimistic_probe(const Snapshot& snap, std::string_view key,
                               const Key128& fp, std::optional<u64>& out);

  std::vector<std::unique_ptr<ShardState>> shards_;
  LockMode mode_;
  u32 max_optimistic_attempts_ = kMaxOptimisticAttempts;
};

}  // namespace gh
