// ConcurrentGroupHashTable — fine-grained thread safety over ONE group
// hashing table (contrast with ConcurrentGroupHashMap, which shards into
// independent maps).
//
// The key observation: an operation on key k touches exactly its level-1
// cell and the matched level-2 group — both inside group g = index /
// group_size. Group-granular reader-writer locks therefore make the whole
// paper-structure concurrent without changing a single byte of its NVM
// layout or its commit protocol: writers serialize per group, readers of
// the same group proceed in parallel, and operations on different groups
// never touch the same lock. This is the same granularity insight the
// OSDI'18 level-hashing paper applies to buckets.
//
// The global `count` is the one cross-group word; the table runs in
// CountMode::kRecoveryOnly, where it is an exact atomic (see
// util/counters.hpp) and the persistent copy is recomputed by recovery —
// which also removes the count cacheline as a cross-group flush hotspot
// (see ablation_wear).
#pragma once

#include <mutex>
#include <shared_mutex>
#include <vector>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh {

template <class Cell>
class BasicConcurrentGroupHashTable {
 public:
  using key_type = typename Cell::key_type;
  using Table = hash::GroupHashTable<Cell, nvm::DirectPM>;

  struct Params {
    u64 total_cells = 1ull << 16;  ///< both levels; rounded to a power of two
    u32 group_size = 256;
    u64 seed = hash::kDefaultSeed1;
    u64 flush_latency_ns = 0;
    u32 lock_stripes = 1024;  ///< upper bound; clamped to the group count
  };

  explicit BasicConcurrentGroupHashTable(const Params& params)
      : pm_(nvm::PersistConfig{.flush_latency_ns = params.flush_latency_ns}) {
    u64 total = 16;
    while (total < params.total_cells) total <<= 1;
    const typename Table::Params table_params{
        .level_cells = total / 2,
        .group_size = static_cast<u32>(std::min<u64>(params.group_size, total / 2)),
        .seed = params.seed,
        .count_mode = hash::CountMode::kRecoveryOnly};
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(table_params));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(table_params)),
                   table_params, /*format=*/true);
    const u64 groups = table_->level_cells() / table_->group_size();
    u64 stripes = 1;
    while (stripes < std::min<u64>(groups, params.lock_stripes)) stripes <<= 1;
    locks_ = std::vector<std::shared_mutex>(stripes);
    stripe_mask_ = stripes - 1;
    hash_ = hash::SeededHash(table_->seed());
  }

  bool insert(const key_type& key, u64 value) {
    std::unique_lock lock(lock_for(key));
    return table_->insert(key, value);
  }

  [[nodiscard]] std::optional<u64> find(const key_type& key) {
    std::shared_lock lock(lock_for(key));
    return table_->find(key);
  }

  bool update(const key_type& key, u64 value) {
    std::unique_lock lock(lock_for(key));
    return table_->update(key, value);
  }

  /// Insert-or-update under one lock acquisition.
  void put(const key_type& key, u64 value) {
    std::unique_lock lock(lock_for(key));
    if (table_->update(key, value)) return;
    GH_CHECK_MSG(table_->insert(key, value),
                 "concurrent table is full (no auto-expansion at this layer)");
  }

  bool erase(const key_type& key) {
    std::unique_lock lock(lock_for(key));
    return table_->erase(key);
  }

  [[nodiscard]] u64 count() const { return table_->count(); }
  [[nodiscard]] u64 capacity() const { return table_->capacity(); }
  [[nodiscard]] double load_factor() const { return table_->load_factor(); }
  [[nodiscard]] usize lock_stripes() const { return locks_.size(); }

  /// Exclusive recovery: takes every stripe, then runs Algorithm 4.
  hash::RecoveryReport recover() {
    std::vector<std::unique_lock<std::shared_mutex>> all;
    all.reserve(locks_.size());
    for (auto& m : locks_) all.emplace_back(m);
    return table_->recover();
  }

  /// Unsynchronized access for single-threaded phases (setup, teardown).
  [[nodiscard]] Table& unsynchronized_table() { return *table_; }

 private:
  std::shared_mutex& lock_for(const key_type& key) {
    const u64 level1 = hash_(key) & (table_->level_cells() - 1);
    const u64 group = level1 / table_->group_size();
    return locks_[group & stripe_mask_];
  }

  nvm::NvmRegion region_;
  nvm::DirectPM pm_;
  std::optional<Table> table_;
  hash::SeededHash hash_{hash::kDefaultSeed1};
  std::vector<std::shared_mutex> locks_;
  u64 stripe_mask_ = 0;
};

using ConcurrentGroupHashTable = BasicConcurrentGroupHashTable<hash::Cell16>;
using ConcurrentGroupHashTableWide = BasicConcurrentGroupHashTable<hash::Cell32>;

}  // namespace gh
