// ConcurrentGroupHashTable — fine-grained thread safety over ONE group
// hashing table (contrast with ConcurrentGroupHashMap, which shards into
// independent maps).
//
// The key observation: an operation on key k touches exactly its level-1
// cell and the matched level-2 group — both inside group g = index /
// group_size. Group-granular seqlock stripes therefore make the whole
// paper-structure concurrent without changing a single byte of its NVM
// layout or its commit protocol: writers serialize per group; readers of
// ANY group run lock-free, probing with acquire loads and validating the
// stripe's epoch (util/seqlock.hpp), falling back to the stripe lock
// after kMaxOptimisticAttempts failed validations. This replaces the
// earlier reader-writer locks: an uncontended shared_mutex read still
// costs two atomic RMWs on the lock word; a validated optimistic read
// costs none and its cacheline stays shared.
//
// The table never moves (no expansion at this layer), so a single
// immutable TableReadView taken at construction serves all readers — no
// view republication or region retirement is needed here.
//
// The global `count` is the one cross-group word; the table runs in
// CountMode::kRecoveryOnly, where it is an exact atomic (see
// util/counters.hpp) and the persistent copy is recomputed by recovery —
// which also removes the count cacheline as a cross-group flush hotspot
// (see ablation_wear).
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "core/optimistic_read.hpp"
#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "obs/snapshot.hpp"
#include "util/assert.hpp"
#include "util/seqlock.hpp"
#include "util/types.hpp"

namespace gh {

template <class Cell>
class BasicConcurrentGroupHashTable {
 public:
  using key_type = typename Cell::key_type;
  using Table = hash::GroupHashTable<Cell, nvm::DirectPM>;
  using ReadView = core::TableReadView<Cell>;

  static constexpr u32 kMaxOptimisticAttempts = 8;

  struct Params {
    u64 total_cells = 1ull << 16;  ///< both levels; rounded to a power of two
    u32 group_size = 256;
    u64 seed = hash::kDefaultSeed1;
    u64 flush_latency_ns = 0;
    u32 lock_stripes = 1024;  ///< upper bound; clamped to the group count
    LockMode lock_mode = LockMode::kOptimistic;
  };

  explicit BasicConcurrentGroupHashTable(const Params& params)
      : pm_(nvm::PersistConfig{.flush_latency_ns = params.flush_latency_ns}),
        mode_(params.lock_mode) {
    u64 total = 16;
    while (total < params.total_cells) total <<= 1;
    const typename Table::Params table_params{
        .level_cells = total / 2,
        .group_size = static_cast<u32>(std::min<u64>(params.group_size, total / 2)),
        .seed = params.seed,
        .count_mode = hash::CountMode::kRecoveryOnly};
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(table_params));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(table_params)),
                   table_params, /*format=*/true);
    const u64 groups = table_->level_cells() / table_->group_size();
    u64 stripes = 1;
    while (stripes < std::min<u64>(groups, params.lock_stripes)) stripes <<= 1;
    stripes_ = std::vector<Stripe>(stripes);
    stripe_mask_ = stripes - 1;
    hash_ = hash::SeededHash(table_->seed());
    view_ = ReadView::of(*table_);
  }

  bool insert(const key_type& key, u64 value) {
    Stripe& st = stripe_for(key);
    SeqLockWriteGuard guard(st.lock, &st.contention);
    return table_->insert(key, value);
  }

  [[nodiscard]] std::optional<u64> find(const key_type& key) {
    Stripe& st = stripe_for(key);
    if (mode_ == LockMode::kOptimistic) {
      u64 retries = 0;
      for (u32 attempt = 0; attempt < max_optimistic_attempts_; ++attempt) {
        const u64 epoch = st.lock.read_begin();
        if (!SeqLock::epoch_stable(epoch)) {
          ++retries;
          cpu_relax();
          continue;
        }
        const auto result = core::optimistic_find(view_, key);
        if (st.lock.read_validate(epoch)) {
          if (retries != 0) st.contention.read_retries += retries;
          return result;
        }
        ++retries;
      }
      st.contention.read_retries += retries;
      st.contention.read_fallbacks += 1;
    }
    SeqLockReadGuard guard(st.lock);
    return table_->find(key);
  }

  /// Batched lookup: software-prefetches each upcoming key's level-1 cell
  /// and group tag bytes through the immutable view (safe without any
  /// lock — prefetching never reads), then resolves each key with its own
  /// stripe-validated find(); keys in one batch generally span many
  /// stripes, so a single shared epoch does not exist at this layer.
  void find_batch(std::span<const key_type> keys, std::span<std::optional<u64>> out) {
    GH_CHECK_MSG(keys.size() == out.size(), "find_batch spans must have equal size");
    constexpr usize kLookahead = 8;
    for (usize i = 0; i < keys.size(); ++i) {
      if (i + kLookahead < keys.size()) {
        const u64 h = hash_(keys[i + kLookahead]);
        const u64 k = h & view_.mask;
        __builtin_prefetch(&view_.tab1[k]);
        __builtin_prefetch(view_.tags2 + (k - k % view_.group_size));
      }
      out[i] = find(keys[i]);
    }
  }

  bool update(const key_type& key, u64 value) {
    Stripe& st = stripe_for(key);
    SeqLockWriteGuard guard(st.lock, &st.contention);
    return table_->update(key, value);
  }

  /// Insert-or-update under one lock acquisition.
  void put(const key_type& key, u64 value) {
    Stripe& st = stripe_for(key);
    SeqLockWriteGuard guard(st.lock, &st.contention);
    if (table_->update(key, value)) return;
    GH_CHECK_MSG(table_->insert(key, value),
                 "concurrent table is full (no auto-expansion at this layer)");
  }

  bool erase(const key_type& key) {
    Stripe& st = stripe_for(key);
    SeqLockWriteGuard guard(st.lock, &st.contention);
    return table_->erase(key);
  }

  [[nodiscard]] u64 count() const { return table_->count(); }
  [[nodiscard]] u64 capacity() const { return table_->capacity(); }
  [[nodiscard]] double load_factor() const { return table_->load_factor(); }
  [[nodiscard]] usize lock_stripes() const { return stripes_.size(); }
  [[nodiscard]] LockMode lock_mode() const { return mode_; }

  /// Unified stats sample: the table's persist/op/integrity counters plus
  /// stripe contention summed into one obs::Snapshot. Safe against
  /// concurrent writers (all fields are sampled from relaxed counters; the
  /// table itself never moves at this layer).
  [[nodiscard]] obs::Snapshot snapshot() {
    obs::Snapshot s;
    s.source = sizeof(Cell) == 16 ? "ConcurrentGroupHashTable" : "ConcurrentGroupHashTableWide";
    s.size = table_->count();
    s.capacity = table_->capacity();
    s.load_factor = table_->load_factor();
    s.shards = stripes_.size();
    s.persist = obs::PersistSnapshot::from(pm_.stats());
    s.table = obs::TableOpSnapshot::from(table_->stats());
    s.scrub = obs::ScrubSnapshot::from(table_->stats(), hash::ScrubReport{});
    s.contention = obs::ContentionSnapshot::from(contention());
    return s;
  }

  /// DEPRECATED: the same numbers snapshot().contention reports.
  [[nodiscard]] const LockContention& stripe_contention(usize i) const {
    return stripes_[i].contention;
  }
  [[nodiscard]] LockContention contention() const {
    LockContention total;
    for (const Stripe& st : stripes_) total += st.contention;
    return total;
  }

  /// Exclusive recovery: takes every stripe write-side, then runs
  /// Algorithm 4 (optimistic readers see odd epochs throughout and fall
  /// back to the stripe locks, which are held).
  hash::RecoveryReport recover() {
    for (Stripe& st : stripes_) st.lock.write_lock();
    const auto report = table_->recover();
    for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) it->lock.write_unlock();
    return report;
  }

  /// Unsynchronized access for single-threaded phases (setup, teardown).
  [[nodiscard]] Table& unsynchronized_table() { return *table_; }

  /// Tests only: lowers (or raises) the optimistic attempt budget; 0 sends
  /// every read straight to the lock fallback.
  void set_max_optimistic_attempts(u32 attempts) { max_optimistic_attempts_ = attempts; }

 private:
  struct Stripe {
    SeqLock lock;
    LockContention contention;
  };

  Stripe& stripe_for(const key_type& key) {
    const u64 level1 = hash_(key) & (table_->level_cells() - 1);
    const u64 group = level1 / table_->group_size();
    return stripes_[group & stripe_mask_];
  }

  nvm::NvmRegion region_;
  nvm::DirectPM pm_;
  std::optional<Table> table_;
  hash::SeededHash hash_{hash::kDefaultSeed1};
  ReadView view_;
  std::vector<Stripe> stripes_;
  u64 stripe_mask_ = 0;
  LockMode mode_;
  u32 max_optimistic_attempts_ = kMaxOptimisticAttempts;
};

using ConcurrentGroupHashTable = BasicConcurrentGroupHashTable<hash::Cell16>;
using ConcurrentGroupHashTableWide = BasicConcurrentGroupHashTable<hash::Cell32>;

}  // namespace gh
