// Typed errors of the core map layer.
#pragma once

#include <stdexcept>

namespace gh {

/// A write could not be placed AND the capacity rebuild (expand/compact)
/// is currently failing — resource exhaustion such as ENOSPC on the
/// rebuild's temp file or an allocation failure, not data loss. The map
/// stays fully serviceable: reads are unaffected, writes that fit still
/// succeed, and the rebuild is retried with capped exponential backoff on
/// subsequent placement failures, so retrying the failed operation later
/// completes it once space returns.
class MapDegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace gh
