#include "core/string_map.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "nvm/fault_fs.hpp"
#include "trace/md5.hpp"
#include "util/assert.hpp"
#include "util/crc32c.hpp"

namespace gh {
namespace {

constexpr u64 kMagic = 0x4748534d41503031ull;  // "GHSMAP01"
constexpr u64 kVersion = 2;  // v2: + superblock/group checksums
constexpr u64 kStateClean = 0x636c65616eull;
constexpr u64 kStateDirty = 0x6469727479ull;
constexpr usize kSuperblockBytes = 4096;

/// Suffix of the temp file rebuild() (compaction) builds before the
/// rename publish. A crash mid-publish can leave it behind; open()
/// reclaims it.
constexpr const char* kCompactSuffix = ".compact";

/// Suffix of the flight-recorder sidecar (obs/flight_recorder.hpp).
constexpr const char* kFlightSuffix = ".flight";

/// Arena record layout: value (u64) | key_len (u64) | key bytes.
constexpr usize kRecordHeaderBytes = 2 * sizeof(u64);

/// Cap of the exponential compaction backoff, counted in placement-
/// failure events absorbed between retries.
constexpr u64 kMaxCompactBackoff = 64;

u64 pow2_at_least(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

struct PersistentStringMap::Superblock {
  u64 magic;
  u64 version;
  u64 state;  ///< excluded from the checksum; 8-byte atomically flipped
  u64 arena_offset;
  u64 arena_bytes;
  u64 table_offset;
  u64 table_bytes;
  u64 seed;
  u64 crc;  ///< CRC32C of the geometry fields above (state excluded)

  /// Checksum of every immutable field; verified before the geometry is
  /// trusted on open(), recomputed when a rebuild publishes new bounds.
  [[nodiscard]] u32 compute_crc() const {
    u32 c = crc32c_update(~0u, &magic, sizeof(u64));
    c = crc32c_update(c, &version, sizeof(u64));
    c = crc32c_update(c, &arena_offset, sizeof(u64));
    c = crc32c_update(c, &arena_bytes, sizeof(u64));
    c = crc32c_update(c, &table_offset, sizeof(u64));
    c = crc32c_update(c, &table_bytes, sizeof(u64));
    c = crc32c_update(c, &seed, sizeof(u64));
    return ~c;
  }
};

Key128 PersistentStringMap::fingerprint(std::string_view key) {
  trace::Md5 md5;
  md5.update(key.data(), key.size());
  return trace::Md5::to_key(md5.finish());
}

PersistentStringMap::Superblock* PersistentStringMap::superblock() {
  return reinterpret_cast<Superblock*>(region_.data());
}

void PersistentStringMap::init_region(nvm::NvmRegion region,
                                      const StringMapOptions& options, bool fresh) {
  region_ = std::move(region);
  if (!pm_) {
    pm_ = std::make_unique<nvm::DirectPM>(
        nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  }
  if (!recorder_) {
    recorder_ = std::make_unique<obs::OpRecorder>();
    obs_reg_ = obs::Registration(
        "PersistentStringMap" + (path_.empty() ? std::string("(mem)") : ":" + path_),
        recorder_.get());
  }
  gate_.set_shift(options.latency_sample_shift);
  // The flight sidecar comes up BEFORE recovery so the scan of the
  // previous run's rings is available to the recovery report below.
  init_flight(options, fresh);
  if (fresh) {
    const u64 cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
    const usize arena_bytes =
        Arena::required_bytes(std::max<usize>(cells * options.arena_bytes_per_cell, 4096));
    const typename Table::Params params{
        .level_cells = cells / 2,
        .group_size =
            static_cast<u32>(std::min<u64>(pow2_at_least(options.group_size), cells / 2)),
        .group_crc = options.checksum_groups};
    const usize table_bytes = Table::required_bytes(params);
    GH_CHECK(region_.size() >= kSuperblockBytes + arena_bytes + table_bytes);
    arena_.emplace(*pm_, region_.bytes().subspan(kSuperblockBytes, arena_bytes),
                   /*format=*/true);
    table_.emplace(*pm_,
                   region_.bytes().subspan(kSuperblockBytes + arena_bytes, table_bytes),
                   params, /*format=*/true);
    Superblock* sb = superblock();
    pm_->store_u64(&sb->magic, kMagic);
    pm_->store_u64(&sb->version, kVersion);
    pm_->store_u64(&sb->state, kStateDirty);
    pm_->store_u64(&sb->arena_offset, kSuperblockBytes);
    pm_->store_u64(&sb->arena_bytes, arena_bytes);
    pm_->store_u64(&sb->table_offset, kSuperblockBytes + arena_bytes);
    pm_->store_u64(&sb->table_bytes, table_bytes);
    pm_->store_u64(&sb->seed, params.seed);
    pm_->store_u64(&sb->crc, sb->compute_crc());
    pm_->persist(sb, sizeof(Superblock));
  } else {
    Superblock* sb = superblock();
    if (sb->magic != kMagic) throw std::runtime_error("not a PersistentStringMap file");
    if (sb->version != kVersion) throw std::runtime_error("unsupported string-map version");
    // The geometry must checksum before it is trusted: a bit-rot hit on
    // the superblock fails the open instead of forging layout bounds.
    if (sb->crc != sb->compute_crc()) {
      throw std::runtime_error("PersistentStringMap superblock is corrupt (checksum mismatch)");
    }
    // Validate the published geometry before trusting it: a torn or
    // forged superblock must fail the open, not index out of bounds.
    if (sb->arena_offset < kSuperblockBytes || sb->arena_bytes == 0 ||
        sb->arena_bytes > region_.size() ||
        sb->arena_offset > region_.size() - sb->arena_bytes ||
        sb->table_offset < sb->arena_offset + sb->arena_bytes || sb->table_bytes == 0 ||
        sb->table_bytes > region_.size() ||
        sb->table_offset > region_.size() - sb->table_bytes) {
      throw std::runtime_error("PersistentStringMap superblock is corrupt (layout bounds)");
    }
    arena_.emplace(*pm_, region_.bytes().subspan(sb->arena_offset, sb->arena_bytes),
                   /*format=*/false);
    table_.emplace(
        Table::attach(*pm_, region_.bytes().subspan(sb->table_offset, sb->table_bytes)));
    if (sb->state == kStateDirty) {
      const u64 t0 = op_start();
      const u64 f = flight_begin_always(obs::OpKind::kRecover);
      open_recovery_ = table_->recover();
      // Attach the black box's forensics: how many ops the previous run
      // had in flight when it died (what this recovery is repairing).
      open_recovery_.in_flight_ops = flight_scan_.in_flight.size();
      recoveries_++;
      flight_end(f, obs::OpKind::kRecover);
      op_finish(obs::OpKind::kRecover, 0, t0, 0);
      recovered_on_open_ = true;
    }
    mark_state(kStateDirty);
  }
}

void PersistentStringMap::init_flight(const StringMapOptions& options, bool fresh) {
  if constexpr (!obs::kEnabled) return;  // never create a sidecar when compiled out
  if (options.flight_mode == obs::FlightMode::kOff) return;
  const usize need = obs::flight_required_bytes();
  if (path_.empty()) {
    flight_region_ = nvm::NvmRegion::create_anonymous(need);
  } else {
    const std::string fpath = path_ + kFlightSuffix;
    std::error_code ec;
    if (!fresh && std::filesystem::exists(fpath, ec)) {
      // Reopen: read the black box before it is consumed. Anything wrong
      // with the sidecar only costs the forensics — never the map open.
      flight_region_ = nvm::NvmRegion::open_file(fpath);
      flight_scan_ = obs::scan_flight(flight_region_.bytes());
      if (flight_region_.size() < need) {
        flight_region_ = nvm::NvmRegion::create_file(fpath, need);
      }
    } else {
      flight_region_ = nvm::NvmRegion::create_file(fpath, need);
    }
  }
  // The recorder gets its own PM: same latency model as the data path,
  // but black-box flushes never pollute the map's write-efficiency
  // counters (lines_flushed per op is a headline metric of the paper).
  flight_pm_ = std::make_unique<nvm::DirectPM>(
      nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  flight_ = std::make_unique<obs::FlightRecorder>(
      *flight_pm_, flight_region_.bytes());  // formats (consumes) the rings
  flight_->set_mode(options.flight_mode);
  flight_->set_sample_shift(options.flight_sample_shift);
}

PersistentStringMap PersistentStringMap::create(const std::string& path,
                                                const StringMapOptions& options) {
  PersistentStringMap map;
  map.path_ = path;
  map.options_ = options;
  const u64 cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize arena_bytes =
      Arena::required_bytes(std::max<usize>(cells * options.arena_bytes_per_cell, 4096));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = cells / 2,
       .group_size =
           static_cast<u32>(std::min<u64>(pow2_at_least(options.group_size), cells / 2)),
       .group_crc = options.checksum_groups});
  // A stale temp file from a crashed compaction of a previous map at
  // this path must not survive into the new map's lifetime.
  nvm::reclaim_orphan(path + kCompactSuffix);
  map.init_region(
      nvm::NvmRegion::create_file(path, kSuperblockBytes + arena_bytes + table_bytes),
      options, /*fresh=*/true);
  // Make the creation itself durable: the file's directory entry is not
  // guaranteed to survive a power failure until its parent is fsynced.
  if (!nvm::FaultFs::sync_dir(nvm::parent_dir(path))) {
    throw std::runtime_error("failed to fsync parent directory of " + path);
  }
  return map;
}

PersistentStringMap PersistentStringMap::create_in_memory(const StringMapOptions& options) {
  PersistentStringMap map;
  map.options_ = options;
  const u64 cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize arena_bytes =
      Arena::required_bytes(std::max<usize>(cells * options.arena_bytes_per_cell, 4096));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = cells / 2,
       .group_size =
           static_cast<u32>(std::min<u64>(pow2_at_least(options.group_size), cells / 2)),
       .group_crc = options.checksum_groups});
  map.init_region(
      nvm::NvmRegion::create_anonymous(kSuperblockBytes + arena_bytes + table_bytes),
      options, /*fresh=*/true);
  return map;
}

PersistentStringMap PersistentStringMap::open(const std::string& path,
                                              const StringMapOptions& options) {
  PersistentStringMap map;
  map.path_ = path;
  map.options_ = options;
  // A crashed compaction can leave a stale temp file behind. It is never
  // the authoritative copy (only the rename publishes it), so reclaim it
  // before trusting anything at `path`.
  if (nvm::reclaim_orphan(path + kCompactSuffix)) map.orphans_reclaimed_++;
  map.init_region(nvm::NvmRegion::open_file(path), options, /*fresh=*/false);
  return map;
}

PersistentStringMap::~PersistentStringMap() {
  if (region_.valid() && !closed_) close();
}

void PersistentStringMap::mark_state(u64 state) {
  Superblock* sb = superblock();
  pm_->atomic_store_u64(&sb->state, state);
  pm_->persist(&sb->state, sizeof(u64));
}

void PersistentStringMap::close() {
  if (!region_.valid() || closed_) return;
  mark_state(kStateClean);
  region_.sync();
  if (flight_region_.valid() && flight_region_.file_backed()) flight_region_.sync();
  closed_ = true;
}

void PersistentStringMap::abandon() {
  if (!region_.valid() || closed_) return;
  // No mark_state: the superblock stays dirty, exactly like a crash.
  table_.reset();
  arena_.reset();
  region_ = nvm::NvmRegion();
  retired_regions_.clear();
  // The flight sidecar is dropped the same way — no final sync, no
  // cleanup. Its mmap'd writes are in the page cache, so the reopening
  // process scans exactly what a crash would have left durable.
  flight_.reset();
  flight_region_ = nvm::NvmRegion();
  closed_ = true;
  // Observability resets coherently with the simulated crash: every read
  // surface (stats(), snapshot(), op_recorder()) now reports zeros, the
  // same blank slate the recovering open() starts from.
  compactions_ = 0;
  recoveries_ = 0;
  compact_failures_ = 0;
  pm_->stats() = nvm::PersistStats{};
  if (flight_pm_) flight_pm_->stats() = nvm::PersistStats{};
  if (recorder_) recorder_->reset();
}

PersistentStringMap::ReadSnapshot PersistentStringMap::read_snapshot() const {
  ReadSnapshot s;
  s.tab1 = &table().level1_cell(0);
  s.tab2 = &table().level2_cell(0);
  s.mask = table().level_cells() - 1;
  s.group_size = table().group_size();
  s.seed = table().seed();
  s.arena_data = arena().data();
  s.arena_capacity = arena().capacity();
  s.tags = table().tags_shared();
  s.tags1 = s.tags.get();
  s.tags2 = s.tags1 + table().level_cells();
  return s;
}

PersistentStringMap::Record PersistentStringMap::load_record(u64 offset) const {
  const auto header = arena().read(offset, kRecordHeaderBytes);
  u64 value, key_len;
  std::memcpy(&value, header.data(), sizeof(u64));
  std::memcpy(&key_len, header.data() + sizeof(u64), sizeof(u64));
  const auto key_bytes = arena().read(offset + kRecordHeaderBytes, key_len);
  return Record{
      std::string_view(reinterpret_cast<const char*>(key_bytes.data()), key_len), value};
}

std::optional<u64> PersistentStringMap::append_record(std::string_view key, u64 value) {
  std::string buf;
  buf.resize(kRecordHeaderBytes + key.size());
  const u64 key_len = key.size();
  std::memcpy(buf.data(), &value, sizeof(u64));
  std::memcpy(buf.data() + sizeof(u64), &key_len, sizeof(u64));
  std::memcpy(buf.data() + kRecordHeaderBytes, key.data(), key.size());
  return arena().append(buf.data(), buf.size());
}

void PersistentStringMap::put(std::string_view key, u64 value) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const Key128 fp = fingerprint(key);
  const u64 f = flight_begin(obs::OpKind::kInsert, fp.lo);
  if (const auto offset = table().find(fp)) {
    const Record rec = load_record(*offset);
    if (rec.key != key) {
      throw std::runtime_error("fingerprint collision between distinct keys");
    }
    if (rec.value == value) {
      flight_end(f, obs::OpKind::kInsert, fp.lo);
      op_finish(obs::OpKind::kInsert, fp.lo, t0, l0);
      return;
    }
    // In-place 8-byte atomic update of the record's value word.
    auto* value_word = const_cast<std::byte*>(arena().read(*offset, sizeof(u64)).data());
    pm_->atomic_store_u64(reinterpret_cast<u64*>(value_word), value);
    pm_->persist(value_word, sizeof(u64));
    flight_end(f, obs::OpKind::kInsert, fp.lo);
    op_finish(obs::OpKind::kInsert, fp.lo, t0, l0);
    return;
  }
  for (u32 attempt = 0;; ++attempt) {
    if (const auto offset = append_record(key, value)) {
      if (table().insert(fp, *offset)) {
        flight_end(f, obs::OpKind::kInsert, fp.lo);
        op_finish(obs::OpKind::kInsert, fp.lo, t0, l0);
        return;
      }
      // Table full: the appended record becomes garbage the compaction
      // reclaims (the arena has no way to un-append atomically).
    }
    if (!options_.auto_compact) throw std::runtime_error("PersistentStringMap is full");
    const bool ok =
        attempt == 0 ? try_rebuild([this] { compact(); })  // reclaim garbage first
                     : try_rebuild([this] {
                         // Same-size compaction was not enough (e.g. one
                         // over-full group re-hashes identically); force a
                         // doubling.
                         const StringMapStats s = stats();
                         rebuild(pow2_at_least(s.table_capacity * 2),
                                 std::max<usize>(s.arena_live * 2 + 4096, s.arena_capacity));
                         compactions_++;
                       });
    if (!ok) {
      throw MapDegradedError("PersistentStringMap insert deferred: compaction failing (" +
                             last_compact_error_ + "); will retry with backoff");
    }
  }
}

template <class Fn>
bool PersistentStringMap::try_rebuild(Fn&& fn) {
  if (compact_cooldown_ > 0) {
    // Still backing off: absorb this placement failure without retrying.
    compact_cooldown_--;
    return false;
  }
  try {
    fn();
  } catch (const nvm::SimulatedCrash&) {
    throw;  // a simulated power failure must freeze the world, not degrade
  } catch (const std::exception& e) {
    flight_event(obs::FlightEvent::kDegraded, obs::OpKind::kCompact);
    compact_failures_++;
    compact_pending_ = true;
    last_compact_error_ = e.what();
    compact_backoff_ =
        compact_backoff_ == 0 ? 1 : std::min<u64>(compact_backoff_ * 2, kMaxCompactBackoff);
    compact_cooldown_ = compact_backoff_;
    return false;
  }
  compact_pending_ = false;
  compact_backoff_ = 0;
  compact_cooldown_ = 0;
  return true;
}

void PersistentStringMap::get_batch(std::span<const std::string_view> keys,
                                    std::span<std::optional<u64>> out) {
  GH_CHECK_MSG(keys.size() == out.size(), "get_batch spans must have equal size");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  std::vector<Key128> fps(keys.size());
  for (usize i = 0; i < keys.size(); ++i) fps[i] = fingerprint(keys[i]);
  const u64 f = flight_begin(obs::OpKind::kFind, fps[0].lo);
  table().find_batch(fps, out);
  // Verify key bytes, prefetching a few records ahead so the arena loads
  // overlap the byte compares.
  constexpr usize kLookahead = 4;
  for (usize i = 0; i < keys.size(); ++i) {
    if (i + kLookahead < keys.size() && out[i + kLookahead]) {
      __builtin_prefetch(arena().read(*out[i + kLookahead], kRecordHeaderBytes).data());
    }
    if (!out[i]) continue;
    const Record rec = load_record(*out[i]);
    if (rec.key != keys[i]) {
      throw std::runtime_error("fingerprint collision between distinct keys");
    }
    out[i] = rec.value;
  }
  flight_end(f, obs::OpKind::kFind, fps[0].lo);
  op_finish(obs::OpKind::kFind, fps[0].lo, t0, l0);
}

void PersistentStringMap::put_batch(std::span<const std::string_view> keys,
                                    std::span<const u64> values) {
  GH_CHECK_MSG(!closed_, "map is closed");
  GH_CHECK_MSG(keys.size() == values.size(), "put_batch spans must have equal size");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  std::vector<Key128> fps(keys.size());
  for (usize i = 0; i < keys.size(); ++i) fps[i] = fingerprint(keys[i]);
  const u64 f = flight_begin(obs::OpKind::kInsert, fps[0].lo);

  // Windowed two-phase protocol mirroring the table's: per window, one
  // prefetching find_batch sweep splits keys into updates (in-place
  // 8-byte value overwrites, flushed now, fenced once) and news (records
  // appended now, cells inserted through the table's fence-coalesced
  // insert_batch). A duplicate of a record appended earlier in the same
  // window updates that record in place — it is not yet reachable from
  // the table, so this is last-wins exactly like sequential puts;
  // duplicates across windows land on the committed cell via find_batch.
  constexpr usize kWindow = Table::kBatchWindow;
  struct Pending {
    usize idx;   ///< index into keys (first occurrence)
    u64 offset;  ///< appended record
    u64 latest;  ///< latest value stored into the record
  };
  std::array<std::optional<u64>, kWindow> found;
  std::vector<Pending> news;
  std::vector<Key128> new_fps;
  std::vector<u64> new_offsets;
  news.reserve(kWindow);

  usize i = 0;
  u32 grow_attempt = 0;
  while (i < keys.size()) {
    const usize n = std::min<usize>(kWindow, keys.size() - i);
    table().find_batch(std::span(fps).subspan(i, n), std::span(found.data(), n));
    news.clear();
    bool flushed_updates = false;
    bool arena_full = false;
    usize consumed = 0;
    for (usize w = 0; w < n; ++w) {
      const usize idx = i + w;
      if (found[w]) {
        const Record rec = load_record(*found[w]);
        if (rec.key != keys[idx]) {
          throw std::runtime_error("fingerprint collision between distinct keys");
        }
        if (rec.value != values[idx]) {
          auto* value_word =
              const_cast<std::byte*>(arena().read(*found[w], sizeof(u64)).data());
          pm_->atomic_store_u64(reinterpret_cast<u64*>(value_word), values[idx]);
          pm_->flush(value_word, sizeof(u64));
          flushed_updates = true;
        }
        consumed++;
        continue;
      }
      Pending* dup = nullptr;
      for (auto& p : news) {
        if (fps[p.idx] == fps[idx]) {
          dup = &p;
          break;
        }
      }
      if (dup) {
        if (keys[dup->idx] != keys[idx]) {
          throw std::runtime_error("fingerprint collision between distinct keys");
        }
        auto* value_word =
            const_cast<std::byte*>(arena().read(dup->offset, sizeof(u64)).data());
        pm_->atomic_store_u64(reinterpret_cast<u64*>(value_word), values[idx]);
        pm_->flush(value_word, sizeof(u64));
        flushed_updates = true;
        dup->latest = values[idx];
        consumed++;
        continue;
      }
      const auto offset = append_record(keys[idx], values[idx]);
      if (!offset) {
        arena_full = true;
        break;
      }
      news.push_back({idx, *offset, values[idx]});
      consumed++;
    }
    // Durability point of the window. The in-place updates need one
    // fence; the new records' flushes are covered by insert_batch's own
    // pre-commit fence, so cells never commit before their records are
    // durable.
    if (flushed_updates) pm_->fence();
    usize inserted = 0;
    if (!news.empty()) {
      new_fps.clear();
      new_offsets.clear();
      for (const auto& p : news) {
        new_fps.push_back(fps[p.idx]);
        new_offsets.push_back(p.offset);
      }
      inserted = table().insert_batch(new_fps, new_offsets);
    }
    if (inserted < news.size() || arena_full) {
      // Out of table or arena space. Records appended for the
      // not-yet-inserted keys are unreachable and will be reclaimed as
      // garbage by the rebuild; re-apply those keys through put() (at
      // their latest in-batch value), which runs put()'s own
      // compact-then-double escalation.
      if (!options_.auto_compact) throw std::runtime_error("PersistentStringMap is full");
      for (usize u = inserted; u < news.size(); ++u) {
        put(keys[news[u].idx], news[u].latest);
      }
      if (arena_full) {
        const bool ok =
            grow_attempt == 0
                ? try_rebuild([this] { compact(); })
                : try_rebuild([this] {
                    const StringMapStats s = stats();
                    rebuild(pow2_at_least(s.table_capacity * 2),
                            std::max<usize>(s.arena_live * 2 + 4096, s.arena_capacity));
                    compactions_++;
                  });
        grow_attempt++;
        if (!ok) {
          throw MapDegradedError(
              "PersistentStringMap insert deferred: compaction failing (" +
              last_compact_error_ + "); will retry with backoff");
        }
      }
    } else {
      grow_attempt = 0;
    }
    i += consumed;
  }
  flight_end(f, obs::OpKind::kInsert, fps[0].lo);
  op_finish(obs::OpKind::kInsert, fps[0].lo, t0, l0);
}

void PersistentStringMap::erase_batch(std::span<const std::string_view> keys,
                                      std::span<u8> hits) {
  GH_CHECK_MSG(!closed_, "map is closed");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  std::vector<Key128> fps(keys.size());
  for (usize i = 0; i < keys.size(); ++i) fps[i] = fingerprint(keys[i]);
  const u64 f = flight_begin(obs::OpKind::kErase, fps[0].lo);
  table().erase_batch(fps, hits);
  flight_end(f, obs::OpKind::kErase, fps[0].lo);
  op_finish(obs::OpKind::kErase, fps[0].lo, t0, l0);
}

std::optional<u64> PersistentStringMap::get(std::string_view key) {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const Key128 fp = fingerprint(key);
  const u64 f = flight_begin(obs::OpKind::kFind, fp.lo);
  const auto offset = table().find(fp);
  if (!offset) {
    flight_end(f, obs::OpKind::kFind, fp.lo);
    op_finish(obs::OpKind::kFind, fp.lo, t0, l0);
    return std::nullopt;
  }
  const Record rec = load_record(*offset);
  if (rec.key != key) {
    throw std::runtime_error("fingerprint collision between distinct keys");
  }
  flight_end(f, obs::OpKind::kFind, fp.lo);
  op_finish(obs::OpKind::kFind, fp.lo, t0, l0);
  return rec.value;
}

bool PersistentStringMap::contains(std::string_view key) { return get(key).has_value(); }

bool PersistentStringMap::erase(std::string_view key) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const Key128 fp = fingerprint(key);
  const u64 f = flight_begin(obs::OpKind::kErase, fp.lo);
  const bool hit = table().erase(fp);
  flight_end(f, obs::OpKind::kErase, fp.lo);
  op_finish(obs::OpKind::kErase, fp.lo, t0, l0);
  return hit;
}

StringMapStats PersistentStringMap::stats() const {
  StringMapStats s;
  // After abandon() the table/arena are gone and every counter was reset;
  // report the same zeros instead of dereferencing them.
  if (!table_) return s;
  s.items = table().count();
  s.table_capacity = table().capacity();
  s.arena_used = arena().head();
  s.arena_capacity = arena().capacity();
  table().for_each([&](const Key128&, u64 offset) {
    const Record rec = load_record(offset);
    s.arena_live += round_up(kRecordHeaderBytes + rec.key.size(), kAtomicUnit);
  });
  s.compactions = compactions_;
  s.recoveries = recoveries_;
  s.compact_failures = compact_failures_;
  return s;
}

void PersistentStringMap::compact() {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  // Size the new region for current contents with headroom.
  const StringMapStats s = stats();
  const u64 new_cells =
      pow2_at_least(std::max<u64>(s.items * 2, std::max<u64>(s.table_capacity, 16)));
  const usize new_arena = std::max<usize>(s.arena_live * 2 + 4096, s.arena_capacity);
  rebuild(new_cells, new_arena);
  compactions_++;
  op_finish(obs::OpKind::kCompact, 0, t0, l0);
}

obs::Snapshot PersistentStringMap::snapshot() {
  obs::Snapshot s;
  s.source = "PersistentStringMap";
  if (table_) {
    s.size = table().count();
    s.capacity = table().capacity();
    s.load_factor = table().load_factor();
    s.table = obs::TableOpSnapshot::from(table().stats());
    s.scrub = obs::ScrubSnapshot::from(table().stats(), hash::ScrubReport{});
  }
  if (pm_) s.persist = obs::PersistSnapshot::from(pm_->stats());
  s.lifecycle.compactions = compactions_;
  s.lifecycle.compact_failures = compact_failures_;
  s.lifecycle.recoveries = recoveries_;
  s.lifecycle.orphans_reclaimed = orphans_reclaimed_;
  s.lifecycle.degraded = compact_pending_;
  if (recorder_) s.latency = obs::OpLatencySnapshot::from(*recorder_);
  s.flight.enabled = flight_ != nullptr;
  if (flight_scan_.valid_header) {
    s.flight.records_scanned = flight_scan_.records_valid;
    s.flight.records_torn = flight_scan_.records_torn;
    for (const auto& op : flight_scan_.in_flight) {
      s.flight.in_flight_on_open.push_back(
          obs::FlightOpBrief{op.kind, op.phase, op.seqno, op.key_hash});
    }
  }
  return s;
}

void PersistentStringMap::rebuild(u64 new_cells, usize new_arena_data_bytes) {
  // Lifecycle ops always hit the flight recorder (no sampling): a crash
  // mid-compaction is exactly what the black box exists to explain.
  const u64 f = flight_begin_always(obs::OpKind::kCompact, new_cells);
  const usize arena_bytes = Arena::required_bytes(new_arena_data_bytes);
  const typename Table::Params params{
      .level_cells = new_cells / 2,
      .group_size =
          static_cast<u32>(std::min<u64>(table().group_size(), new_cells / 2)),
      .seed = table().seed(),
      .group_crc = table().checksums_enabled()};
  const usize table_bytes = Table::required_bytes(params);
  const usize total = kSuperblockBytes + arena_bytes + table_bytes;

  const bool file_backed = region_.file_backed();
  const std::string tmp_path = path_ + kCompactSuffix;
  nvm::NvmRegion new_region = file_backed ? nvm::NvmRegion::create_file(tmp_path, total)
                                          : nvm::NvmRegion::create_anonymous(total);
  Arena new_arena(*pm_, new_region.bytes().subspan(kSuperblockBytes, arena_bytes),
                  /*format=*/true);
  Table new_table(*pm_,
                  new_region.bytes().subspan(kSuperblockBytes + arena_bytes, table_bytes),
                  params, /*format=*/true);

  bool ok = true;
  table().for_each([&](const Key128& fp, u64 offset) {
    if (!ok) return;
    const Record rec = load_record(offset);
    std::string buf;
    buf.resize(kRecordHeaderBytes + rec.key.size());
    const u64 key_len = rec.key.size();
    std::memcpy(buf.data(), &rec.value, sizeof(u64));
    std::memcpy(buf.data() + sizeof(u64), &key_len, sizeof(u64));
    std::memcpy(buf.data() + kRecordHeaderBytes, rec.key.data(), rec.key.size());
    const auto new_offset = new_arena.append(buf.data(), buf.size());
    if (!new_offset || !new_table.insert(fp, *new_offset)) ok = false;
  });
  GH_CHECK_MSG(ok, "compaction target sizing failed");

  {
    auto* sb = reinterpret_cast<Superblock*>(new_region.data());
    pm_->store_u64(&sb->magic, kMagic);
    pm_->store_u64(&sb->version, kVersion);
    pm_->store_u64(&sb->state, kStateDirty);
    pm_->store_u64(&sb->arena_offset, kSuperblockBytes);
    pm_->store_u64(&sb->arena_bytes, arena_bytes);
    pm_->store_u64(&sb->table_offset, kSuperblockBytes + arena_bytes);
    pm_->store_u64(&sb->table_bytes, table_bytes);
    pm_->store_u64(&sb->seed, params.seed);
    pm_->store_u64(&sb->crc, sb->compute_crc());
    pm_->persist(sb, sizeof(Superblock));
  }
  // Entering the publish window: a crash from here until the swap below
  // leaves the op at phase kPublish in the black box.
  flight_mark(f, obs::OpKind::kCompact, new_cells);
  if (file_backed) {
    // write-back → rename → fsync(parent): the shared durable publish
    // protocol (src/nvm/fault_fs.hpp). Unlinks the temp file before
    // throwing on failure; a SimulatedCrash propagates untouched.
    nvm::publish_region_file(new_region, tmp_path, path_,
                             "failed to publish compacted map file");
  }
  // Preserve operation statistics across the rebuild (the counters are
  // the map's lifetime story, not the region's).
  new_table.stats() = table().stats();
  table_.emplace(std::move(new_table));
  arena_.emplace(std::move(new_arena));
  if (options_.retain_retired_regions) {
    retired_regions_.push_back(std::move(region_));
  }
  region_ = std::move(new_region);
  flight_end(f, obs::OpKind::kCompact, new_cells);
}

}  // namespace gh
