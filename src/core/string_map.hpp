// PersistentStringMap — string keys on top of group hashing.
//
// The paper's cells hold fixed-size keys (63-bit integers or 16-byte
// fingerprints). Real key-value workloads (memcached et al., the paper's
// own motivation in §1) have variable-size string keys. This layer
// composes two of this repository's primitives into a complete answer:
//
//   * keys are fingerprinted to 128 bits (MD5) and indexed by a
//     GroupHashTable<Cell32> — the paper's structure, unchanged;
//   * the full key bytes and the user value live in a PersistentArena
//     record; the hash cell's value field stores the record offset;
//   * get() verifies the stored key bytes, so a fingerprint collision is
//     detected (and reported) rather than silently merged;
//   * value updates are 8-byte atomic in-place overwrites of the record's
//     value word — no new allocation, no logging;
//   * deletes retract the cell (the paper's protocol); the orphaned
//     record is reclaimed by compact(), which rebuilds arena + table into
//     a fresh region and doubles them as needed (auto-triggered when
//     either fills).
//
// Consistency: every mutation is committed by exactly one 8-byte atomic
// store (arena head, cell commit word, or record value word), in the same
// spirit — and with the same recovery scan — as the paper's design.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.hpp"
#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/arena.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/snapshot.hpp"
#include "util/types.hpp"

namespace gh {

struct StringMapOptions {
  u64 initial_cells = 1ull << 12;  ///< hash cells (both levels)
  u32 group_size = 256;
  /// Arena bytes provisioned per hash cell (records are ~24B + key).
  usize arena_bytes_per_cell = 48;
  u64 flush_latency_ns = 0;
  bool auto_compact = true;  ///< rebuild+grow when table or arena fills
  /// Keep superseded regions mapped after compaction instead of unmapping
  /// them. Required by the optimistic concurrent wrapper
  /// (core/concurrent_string_map.hpp): a lock-free reader racing a
  /// compaction may still probe the retired table/arena and must hit
  /// mapped (stale) memory; its seqlock validation then discards the
  /// result.
  bool retain_retired_regions = false;
  /// Maintain per-group CRC32C checksums in the index table (and a
  /// checksummed superblock). Baked into the file at create() time.
  bool checksum_groups = true;
  /// Record per-op latency histograms (see obs/metrics.hpp). Always off
  /// when built with GH_OBS_OFF.
  bool record_latency = true;
  /// Time 1 in 2^shift ops (0 = every op). See obs::kDefaultSampleShift.
  u32 latency_sample_shift = obs::kDefaultSampleShift;
  /// Flight recorder (obs/flight_recorder.hpp): crash-surviving op-event
  /// rings in a `<path>.flight` sidecar (anonymous for in-memory maps).
  /// See MapOptions::flight_mode for the mode semantics. Always off (no
  /// sidecar) under GH_OBS_OFF.
  obs::FlightMode flight_mode = obs::FlightMode::kSampled;
  /// Journal 1 in 2^shift data ops in kSampled mode (0 = every op).
  u32 flight_sample_shift = obs::kFlightSampleShift;
};

/// DEPRECATED back-compat view — read snapshot() instead, which adds
/// persist, scrub, latency and lifecycle data in one sampled struct.
struct StringMapStats {
  u64 items = 0;
  u64 table_capacity = 0;
  u64 arena_used = 0;
  u64 arena_capacity = 0;
  u64 arena_live = 0;  ///< bytes reachable from the table (rest is garbage)
  u64 compactions = 0;
  u64 recoveries = 0;
  u64 compact_failures = 0;  ///< compaction attempts that failed (e.g. ENOSPC)
};

class PersistentStringMap {
 public:
  static PersistentStringMap create(const std::string& path,
                                    const StringMapOptions& options = {});
  static PersistentStringMap create_in_memory(const StringMapOptions& options = {});
  /// Opens an existing map; runs recovery when the last shutdown was not
  /// clean (recovered_on_open() reports it).
  static PersistentStringMap open(const std::string& path,
                                  const StringMapOptions& options = {});

  PersistentStringMap(PersistentStringMap&&) noexcept = default;
  PersistentStringMap& operator=(PersistentStringMap&&) noexcept = default;
  ~PersistentStringMap();

  /// Insert or update. Throws std::runtime_error on a detected
  /// fingerprint collision (probability ~2^-128) and when full with
  /// auto_compact disabled. When the key cannot be placed and the
  /// compaction rebuild is currently failing (ENOSPC, allocation
  /// failure), throws MapDegradedError — the map keeps serving and
  /// retries the rebuild with capped exponential backoff on subsequent
  /// placement failures.
  void put(std::string_view key, u64 value);

  [[nodiscard]] std::optional<u64> get(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key);
  bool erase(std::string_view key);

  /// Batched lookup: fingerprints every key, resolves offsets with the
  /// index table's prefetching find_batch, then verifies each hit's
  /// stored key bytes (collision detection identical to get()). out[i]
  /// receives the result for keys[i].
  void get_batch(std::span<const std::string_view> keys,
                 std::span<std::optional<u64>> out);

  /// Batched insert-or-update with coalesced persist fences: per window,
  /// existing keys get in-place 8-byte value overwrites sharing one
  /// fence, new keys append their records and insert their cells through
  /// the table's fence-coalesced insert_batch. Duplicate keys within the
  /// batch behave as sequential puts (last one wins). Space handling
  /// matches put() — compaction, then forced doubling, MapDegradedError
  /// while the rebuild is failing. Keys are applied in order, so on a
  /// throw every key before the failing one is already durably applied
  /// (and, because updates coalesce per window, in-place updates staged
  /// in the failing window may be applied too).
  void put_batch(std::span<const std::string_view> keys, std::span<const u64> values);

  /// Batched erase with coalesced fences (see
  /// hash::GroupHashTable::erase_batch). When `hits` is non-empty it must
  /// be keys.size() long; hits[i] is set to 1 if keys[i] was present.
  /// Duplicate keys within the batch behave sequentially.
  void erase_batch(std::span<const std::string_view> keys, std::span<u8> hits = {});

  /// Visit every (key, value). Key views are valid only during the call.
  template <class Fn>
  void for_each(Fn&& fn) const {
    table().for_each([&](const Key128&, u64 offset) {
      const Record rec = load_record(offset);
      fn(rec.key, rec.value);
    });
  }

  [[nodiscard]] u64 size() const { return table().count(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] bool recovered_on_open() const { return recovered_on_open_; }
  /// Test hook: full-rescan check of the index table's fingerprint-tag
  /// invariant (see hash::GroupHashTable::verify_tags).
  [[nodiscard]] bool debug_verify_tags() const { return table().verify_tags(); }
  /// DEPRECATED: thin alias over the same counters snapshot() reads; kept
  /// for one release. Safe (returns zeros) after abandon().
  [[nodiscard]] StringMapStats stats() const;

  /// The unified stats sample (obs/snapshot.hpp). Safe to call at any
  /// point of the lifecycle, including after abandon() (all counters
  /// read zero then — abandon resets them coherently, simulating the
  /// crash of the process that owned them).
  [[nodiscard]] obs::Snapshot snapshot();

  /// This map's per-op latency recorder (histograms fed by put/get/erase
  /// timers). Used by the concurrent wrappers to merge shard latencies.
  [[nodiscard]] const obs::OpRecorder& op_recorder() const { return *recorder_; }

  /// Rebuild into a fresh region: drops orphaned arena records and grows
  /// table/arena to fit current contents with headroom. Called
  /// automatically by put() when space runs out (auto_compact).
  void compact();

  /// True while a compaction is owed but failing (see put()). Cleared by
  /// the put whose retried rebuild succeeds.
  [[nodiscard]] bool compact_pending() const { return compact_pending_; }
  [[nodiscard]] bool degraded() const { return compact_pending_; }
  [[nodiscard]] const std::string& last_compact_error() const { return last_compact_error_; }

  void close();

  /// Test hook: drop the mapping WITHOUT marking the map clean, exactly
  /// as a crash would. A file-backed map abandoned this way reopens
  /// through the recovery path (mmap writes are in the page cache, so the
  /// file holds everything stored before the "crash").
  void abandon();

  using Table = hash::GroupHashTable<hash::Cell32, nvm::DirectPM>;
  using Arena = nvm::PersistentArena<nvm::DirectPM>;

  /// MD5 fingerprint a key is indexed under (pure; public for the
  /// concurrent wrapper's lock-free read path).
  static Key128 fingerprint(std::string_view key);

  /// Immutable probing snapshot for optimistic readers: the table's cell
  /// arrays plus the arena's data window. Taken under the writer lock by
  /// the concurrent wrapper; stays dereferenceable (if stale) across
  /// compactions when retain_retired_regions is set.
  struct ReadSnapshot {
    const hash::Cell32* tab1 = nullptr;
    const hash::Cell32* tab2 = nullptr;
    u64 mask = 0;
    u32 group_size = 1;
    u64 seed = 0;
    const std::byte* arena_data = nullptr;
    u64 arena_capacity = 0;
    /// DRAM fingerprint-tag block (hash/tag_probe.hpp). Shared ownership:
    /// a snapshot retired by compaction keeps its (stale) tags alive for
    /// in-flight optimistic readers, exactly like the retained region.
    std::shared_ptr<const u8[]> tags;
    const u8* tags1 = nullptr;
    const u8* tags2 = nullptr;
  };
  [[nodiscard]] ReadSnapshot read_snapshot() const;

  /// Regions retired by compaction while retain_retired_regions is set.
  [[nodiscard]] usize retired_region_count() const { return retired_regions_.size(); }

  /// Stale `.compact` temp files (from a crashed publish) that open()
  /// reclaimed before trusting the map file.
  [[nodiscard]] u64 orphans_reclaimed_on_open() const { return orphans_reclaimed_; }

  /// What the open()-time scan of the `.flight` sidecar found (see
  /// GroupHashMap::flight_scan_on_open for semantics).
  [[nodiscard]] const obs::FlightScan& flight_scan_on_open() const { return flight_scan_; }

  /// The recovery report of the open()-time recovery pass (all zeros
  /// when the map was closed cleanly); `in_flight_ops` carries the
  /// flight recorder's forensics.
  [[nodiscard]] const hash::RecoveryReport& open_recovery_report() const {
    return open_recovery_;
  }

 private:

  struct Superblock;
  struct Record {
    std::string_view key;
    u64 value = 0;
  };

  PersistentStringMap() = default;

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  Arena& arena() { return *arena_; }
  const Arena& arena() const { return *arena_; }
  Superblock* superblock();
  void mark_state(u64 state);
  void init_region(nvm::NvmRegion region, const StringMapOptions& options, bool fresh);
  /// Open/format the `.flight` sidecar (see GroupHashMap::init_flight).
  void init_flight(const StringMapOptions& options, bool fresh);

  // Flight-recorder edges (no-ops when the recorder is off).
  [[nodiscard]] u64 flight_begin(obs::OpKind kind, u64 key_hash) {
    if constexpr (!obs::kEnabled) return 0;
    return flight_ ? flight_->op_begin(kind, key_hash) : 0;
  }
  [[nodiscard]] u64 flight_begin_always(obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return 0;
    return flight_ ? flight_->op_begin_always(kind, key_hash) : 0;
  }
  void flight_mark(u64 token, obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->op_mark(token, kind, key_hash);
  }
  void flight_end(u64 token, obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->op_end(token, kind, key_hash);
  }
  void flight_event(obs::FlightEvent e, obs::OpKind kind) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->event(e, kind);
  }
  Record load_record(u64 offset) const;
  /// Appends a (value, key) record; nullopt when the arena is full.
  std::optional<u64> append_record(std::string_view key, u64 value);
  void rebuild(u64 new_cells, usize new_arena_bytes);
  /// Run `fn` (a compaction/rebuild), degrading gracefully: a failure
  /// (other than SimulatedCrash) records the pending state, arms the
  /// backoff, and returns false instead of throwing.
  template <class Fn>
  bool try_rebuild(Fn&& fn);

  // Per-op observability edges (see any_table_impl.hpp for the pattern).
  // A nonzero t0 means "this op is timed": latency recording is sampled
  // through the SampleGate; an installed trace hook times every op.
  [[nodiscard]] u64 op_start() {
    if constexpr (!obs::kEnabled) return 0;
    const bool sampled = options_.record_latency && gate_.admit();
    if (!sampled && !obs::trace_hook_installed()) return 0;
    return obs::now_ticks();
  }
  [[nodiscard]] u64 lines_before() const {
    if (!obs::trace_hook_installed()) return 0;
    return pm_->stats().lines_flushed.load();
  }
  void op_finish(obs::OpKind kind, u64 key_hash, u64 t0, u64 l0) {
    if constexpr (!obs::kEnabled) return;
    u64 dt = 0;
    if (t0 != 0) {
      dt = obs::now_ticks() - t0;
      if (options_.record_latency) recorder_->record(kind, dt);
    }
    if (obs::trace_hook_installed()) {
      obs::trace_op(kind, key_hash, dt, pm_->stats().lines_flushed.load() - l0);
    }
  }

  std::string path_;
  StringMapOptions options_;
  nvm::NvmRegion region_;
  std::vector<nvm::NvmRegion> retired_regions_;
  std::unique_ptr<nvm::DirectPM> pm_;
  std::optional<Table> table_;
  std::optional<Arena> arena_;
  // Heap-allocated like pm_: the registry holds its address across moves.
  std::unique_ptr<obs::OpRecorder> recorder_;
  obs::SampleGate gate_;
  obs::Registration obs_reg_;
  // Flight recorder sidecar: its own PM (black-box traffic never
  // pollutes the map's write-efficiency counters) over its own region.
  std::unique_ptr<nvm::DirectPM> flight_pm_;
  nvm::NvmRegion flight_region_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::FlightScan flight_scan_;
  hash::RecoveryReport open_recovery_;
  u64 compactions_ = 0;
  u64 recoveries_ = 0;
  u64 compact_failures_ = 0;
  u64 compact_backoff_ = 0;   ///< current backoff window (placement-failure events)
  u64 compact_cooldown_ = 0;  ///< failures to absorb before the next retry
  std::string last_compact_error_;
  u64 orphans_reclaimed_ = 0;
  bool compact_pending_ = false;
  bool recovered_on_open_ = false;
  bool closed_ = false;
};

}  // namespace gh
