// Inspection and integrity checking for group-hashing tables and map
// files — the tooling layer behind the gh_fsck example.
//
// inspect() walks a table read-only and reports occupancy (overall, per
// level, per group), torn cells a recovery pass would scrub, and whether
// the persistent `count` matches a fresh scan. read_map_file_info() peeks
// at a GroupHashMap file's superblock without opening (and therefore
// without recovering) it.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "hash/group_hashing.hpp"
#include "util/types.hpp"

namespace gh {

struct TableInspection {
  u64 capacity = 0;
  u64 count_field = 0;       ///< the persistent count word
  u64 scanned_occupied = 0;  ///< occupied cells found by the scan
  u64 level1_occupied = 0;
  u64 level2_occupied = 0;
  u64 torn_cells = 0;  ///< unoccupied cells holding residual payload bytes
  u32 group_size = 0;
  std::vector<u64> group_level2_occupancy;  ///< items per level-2 group
  u64 max_group_occupancy = 0;
  u64 full_groups = 0;  ///< groups with no level-2 space left
  // Media-integrity view (group hashing with per-group checksums).
  bool checksums_enabled = false;
  u64 checksum_mismatches = 0;  ///< groups failing a fresh read-only re-derivation
  u64 quarantined_groups = 0;   ///< (level, group) pairs currently fenced off
  // Lifetime integrity counters carried over from the table's stats.
  u64 groups_scrubbed = 0;
  u64 cells_scrubbed = 0;
  u64 crc_mismatch_events = 0;
  u64 cells_lost = 0;
  u64 media_errors = 0;

  [[nodiscard]] bool count_consistent() const { return count_field == scanned_occupied; }
  [[nodiscard]] bool clean() const {
    return count_consistent() && torn_cells == 0 && checksum_mismatches == 0;
  }
  [[nodiscard]] double load_factor() const {
    return capacity ? static_cast<double>(scanned_occupied) / static_cast<double>(capacity)
                    : 0.0;
  }
};

/// Read-only structural scan of a group-hashing table.
template <class Cell, class PM>
TableInspection inspect(const hash::GroupHashTable<Cell, PM>& table) {
  TableInspection r;
  r.capacity = table.capacity();
  r.count_field = table.count();
  r.group_size = table.group_size();
  const u64 level_cells = table.level_cells();
  r.group_level2_occupancy.assign(level_cells / r.group_size, 0);
  for (u64 i = 0; i < level_cells; ++i) {
    const Cell& c1 = table.level1_cell(i);
    if (c1.occupied()) {
      r.level1_occupied++;
    } else if (c1.payload_dirty()) {
      r.torn_cells++;
    }
    const Cell& c2 = table.level2_cell(i);
    if (c2.occupied()) {
      r.level2_occupied++;
      r.group_level2_occupancy[i / r.group_size]++;
    } else if (c2.payload_dirty()) {
      r.torn_cells++;
    }
  }
  r.scanned_occupied = r.level1_occupied + r.level2_occupied;
  for (const u64 occ : r.group_level2_occupancy) {
    r.max_group_occupancy = std::max(r.max_group_occupancy, occ);
    if (occ == r.group_size) r.full_groups++;
  }
  r.checksums_enabled = table.checksums_enabled();
  if (r.checksums_enabled) {
    for (u64 g = 0; g < table.num_groups(); ++g) {
      for (u32 level = 0; level < 2; ++level) {
        if (!table.verify_group_checksum(level, g)) r.checksum_mismatches++;
        if (table.group_quarantined(level, g)) r.quarantined_groups++;
      }
    }
  }
  const auto& stats = table.stats();
  r.groups_scrubbed = stats.groups_scrubbed;
  r.cells_scrubbed = stats.cells_scrubbed;
  r.crc_mismatch_events = stats.crc_mismatches;
  r.cells_lost = stats.cells_lost;
  r.media_errors = stats.media_errors;
  return r;
}

/// Per-shard view of a concurrent map: the structural scan plus the
/// shard's seqlock contention counters (read retries, lock fallbacks,
/// writer waits — see util/seqlock.hpp).
struct ShardInspection {
  usize shard = 0;
  TableInspection table;
  u64 read_retries = 0;
  u64 read_fallbacks = 0;
  u64 writer_waits = 0;
};

struct ConcurrentMapInspection {
  std::vector<ShardInspection> shards;
  u64 total_capacity = 0;
  u64 total_occupied = 0;
  u64 total_torn_cells = 0;
  u64 total_checksum_mismatches = 0;
  u64 total_quarantined_groups = 0;
  u64 total_cells_scrubbed = 0;
  u64 total_cells_lost = 0;
  u64 total_media_errors = 0;

  [[nodiscard]] bool clean() const {
    for (const auto& s : shards) {
      if (!s.table.clean()) return false;
    }
    return true;
  }
};

/// Structural scan of every shard of a concurrent map, taken under each
/// shard's lock in turn (writers in other shards proceed unhindered).
/// Works for any wrapper exposing shard_count(), with_shard_table() and
/// shard_contention() — i.e. BasicConcurrentGroupHashMap<Cell>.
template <class ConcurrentMap>
ConcurrentMapInspection inspect_shards(ConcurrentMap& map) {
  ConcurrentMapInspection r;
  r.shards.reserve(map.shard_count());
  for (usize s = 0; s < map.shard_count(); ++s) {
    ShardInspection si;
    si.shard = s;
    map.with_shard_table(s, [&](const auto& table) { si.table = inspect(table); });
    const auto& c = map.shard_contention(s);
    si.read_retries = c.read_retries.load();
    si.read_fallbacks = c.read_fallbacks.load();
    si.writer_waits = c.writer_waits.load();
    r.total_capacity += si.table.capacity;
    r.total_occupied += si.table.scanned_occupied;
    r.total_torn_cells += si.table.torn_cells;
    r.total_checksum_mismatches += si.table.checksum_mismatches;
    r.total_quarantined_groups += si.table.quarantined_groups;
    r.total_cells_scrubbed += si.table.cells_scrubbed;
    r.total_cells_lost += si.table.cells_lost;
    r.total_media_errors += si.table.media_errors;
    r.shards.push_back(std::move(si));
  }
  return r;
}

/// Superblock summary of a GroupHashMap file (no recovery is triggered).
struct MapFileInfo {
  u64 version = 0;
  bool clean = false;   ///< last shutdown was orderly
  u64 cell_size = 0;    ///< 16 (integer keys) or 32 (wide keys)
  u64 table_offset = 0;
  u64 table_bytes = 0;
  u64 group_size = 0;
  u64 level_cells = 0;
  u64 count = 0;
  bool superblock_crc_ok = false;  ///< geometry checksum verified
  bool group_checksums = false;    ///< table carries per-group checksums
};

/// Throws std::runtime_error when the file is not a GroupHashMap.
MapFileInfo read_map_file_info(const std::string& path);

}  // namespace gh
