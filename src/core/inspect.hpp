// Inspection and integrity checking for group-hashing tables and map
// files — the tooling layer behind the gh_fsck example.
//
// inspect() walks a table read-only and reports occupancy (overall, per
// level, per group), torn cells a recovery pass would scrub, and whether
// the persistent `count` matches a fresh scan. read_map_file_info() peeks
// at a GroupHashMap file's superblock without opening (and therefore
// without recovering) it.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "hash/group_hashing.hpp"
#include "util/types.hpp"

namespace gh {

struct TableInspection {
  u64 capacity = 0;
  u64 count_field = 0;       ///< the persistent count word
  u64 scanned_occupied = 0;  ///< occupied cells found by the scan
  u64 level1_occupied = 0;
  u64 level2_occupied = 0;
  u64 torn_cells = 0;  ///< unoccupied cells holding residual payload bytes
  u32 group_size = 0;
  std::vector<u64> group_level2_occupancy;  ///< items per level-2 group
  u64 max_group_occupancy = 0;
  u64 full_groups = 0;  ///< groups with no level-2 space left

  [[nodiscard]] bool count_consistent() const { return count_field == scanned_occupied; }
  [[nodiscard]] bool clean() const { return count_consistent() && torn_cells == 0; }
  [[nodiscard]] double load_factor() const {
    return capacity ? static_cast<double>(scanned_occupied) / static_cast<double>(capacity)
                    : 0.0;
  }
};

/// Read-only structural scan of a group-hashing table.
template <class Cell, class PM>
TableInspection inspect(const hash::GroupHashTable<Cell, PM>& table) {
  TableInspection r;
  r.capacity = table.capacity();
  r.count_field = table.count();
  r.group_size = table.group_size();
  const u64 level_cells = table.level_cells();
  r.group_level2_occupancy.assign(level_cells / r.group_size, 0);
  for (u64 i = 0; i < level_cells; ++i) {
    const Cell& c1 = table.level1_cell(i);
    if (c1.occupied()) {
      r.level1_occupied++;
    } else if (c1.payload_dirty()) {
      r.torn_cells++;
    }
    const Cell& c2 = table.level2_cell(i);
    if (c2.occupied()) {
      r.level2_occupied++;
      r.group_level2_occupancy[i / r.group_size]++;
    } else if (c2.payload_dirty()) {
      r.torn_cells++;
    }
  }
  r.scanned_occupied = r.level1_occupied + r.level2_occupied;
  for (const u64 occ : r.group_level2_occupancy) {
    r.max_group_occupancy = std::max(r.max_group_occupancy, occ);
    if (occ == r.group_size) r.full_groups++;
  }
  return r;
}

/// Superblock summary of a GroupHashMap file (no recovery is triggered).
struct MapFileInfo {
  u64 version = 0;
  bool clean = false;   ///< last shutdown was orderly
  u64 cell_size = 0;    ///< 16 (integer keys) or 32 (wide keys)
  u64 table_offset = 0;
  u64 table_bytes = 0;
  u64 group_size = 0;
  u64 level_cells = 0;
  u64 count = 0;
};

/// Throws std::runtime_error when the file is not a GroupHashMap.
MapFileInfo read_map_file_info(const std::string& path);

}  // namespace gh
