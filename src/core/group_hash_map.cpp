#include "core/group_hash_map.hpp"

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "core/map_format.hpp"
#include "nvm/crash_point.hpp"
#include "nvm/fault_fs.hpp"
#include "util/assert.hpp"

namespace gh {
namespace {

using map_format::kTableOffset;
constexpr u64 kMapMagic = map_format::kMagic;
constexpr u64 kMapVersion = map_format::kVersion;
constexpr u64 kStateClean = map_format::kStateClean;
constexpr u64 kStateDirty = map_format::kStateDirty;

/// Suffix of the temp file expand() builds before the rename publish. A
/// crash mid-publish can leave it behind; open() reclaims it.
constexpr const char* kExpandSuffix = ".expand";

/// Suffix of the flight-recorder sidecar (obs/flight_recorder.hpp).
constexpr const char* kFlightSuffix = ".flight";

/// Suffix of the online-resize migration target. Unlike `.expand` it can
/// hold the only copy of already-drained groups, so it is reclaimed only
/// when the superblock's migration cursor says no migration is armed.
constexpr const char* kMigrateSuffix = ".migrate";

/// Cap of the exponential expansion backoff, counted in placement-failure
/// events absorbed between retries.
constexpr u64 kMaxExpandBackoff = 64;

/// Journal the migration cursor to the flight ring every this many
/// groups: the newest surviving record names the resume point without a
/// ring slot per group.
constexpr u64 kMigrateMarkStride = 32;

u64 pow2_at_least(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// The shared superblock write sequence for a freshly formatted region
/// (create, expand target, migration target). State starts dirty; the
/// migration word starts disarmed.
void write_superblock_fields(nvm::DirectPM& pm, map_format::Superblock* sb, u64 cell_size,
                             usize table_bytes, u32 group_size, u64 seed) {
  pm.store_u64(&sb->magic, kMapMagic);
  pm.store_u64(&sb->version, kMapVersion);
  pm.store_u64(&sb->state, kStateDirty);
  pm.store_u64(&sb->cell_size, cell_size);
  pm.store_u64(&sb->table_offset, kTableOffset);
  pm.store_u64(&sb->table_bytes, table_bytes);
  pm.store_u64(&sb->group_size, group_size);
  pm.store_u64(&sb->seed, seed);
  pm.store_u64(&sb->migration, 0);
  pm.store_u64(&sb->crc, map_format::superblock_crc(*sb));
  pm.persist(sb, sizeof(map_format::Superblock));
}

}  // namespace

template <class Cell>
struct BasicGroupHashMap<Cell>::Superblock : map_format::Superblock {};

template <class Cell>
typename BasicGroupHashMap<Cell>::Superblock* BasicGroupHashMap<Cell>::superblock() {
  return reinterpret_cast<Superblock*>(region_.data());
}

template <class Cell>
void BasicGroupHashMap<Cell>::init_region(nvm::NvmRegion region, const MapOptions& options,
                                          bool fresh) {
  region_ = std::move(region);
  if (!pm_) {
    pm_ = std::make_unique<nvm::DirectPM>(
        nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  }
  if (!recorder_) {
    recorder_ = std::make_unique<obs::OpRecorder>();
    obs_reg_ = obs::Registration(
        std::string(sizeof(Cell) == 16 ? "GroupHashMap" : "GroupHashMapWide") +
            (path_.empty() ? "(mem)" : ":" + path_),
        recorder_.get());
  }
  if (!live_obs_) live_obs_ = std::make_unique<obs::LiveObs>();
  gate_.set_shift(options.latency_sample_shift);
  // The flight sidecar comes up BEFORE recovery so the scan of the
  // previous run's rings is available to the recovery report below.
  init_flight(options, fresh);
  if (fresh) {
    const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
    typename Table::Params params{
        .level_cells = total_cells / 2,
        .group_size = static_cast<u32>(
            std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
        .seed = options.hash_seed,
        // A fresh file (ftruncate) or anonymous mapping is already zero.
        .zero_memory = false,
        .group_crc = options.checksum_groups};
    const usize table_bytes = Table::required_bytes(params);
    GH_CHECK(region_.size() >= kTableOffset + table_bytes);
    table_.emplace(*pm_, region_.bytes().subspan(kTableOffset, table_bytes), params,
                   /*format=*/true);
    write_superblock_fields(*pm_, superblock(), sizeof(Cell), table_bytes,
                            params.group_size, params.seed);
  } else {
    Superblock* sb = superblock();
    if (sb->magic != kMapMagic) throw std::runtime_error("not a GroupHashMap file");
    if (sb->version != kMapVersion) throw std::runtime_error("unsupported map version");
    if (sb->cell_size != sizeof(Cell)) {
      throw std::runtime_error("map was created with a different key width");
    }
    // The geometry must checksum before it is trusted: a bit-rot hit on
    // the superblock fails the open with a typed message instead of
    // mapping the table at forged bounds.
    if (sb->crc != map_format::superblock_crc(*sb)) {
      throw std::runtime_error("GroupHashMap superblock is corrupt (checksum mismatch)");
    }
    // Bounds validation stays as belt and braces (a *consistently*
    // re-checksummed forgery still must not index out of range).
    if (sb->table_offset < kTableOffset || sb->table_bytes == 0 ||
        sb->table_bytes > region_.size() ||
        sb->table_offset > region_.size() - sb->table_bytes) {
      throw std::runtime_error("GroupHashMap superblock is corrupt (table bounds)");
    }
    table_.emplace(
        Table::attach(*pm_, region_.bytes().subspan(sb->table_offset, sb->table_bytes)));
    if (sb->state == kStateDirty) {
      open_recovery_ = recover_now();
      recovered_on_open_ = true;
    } else if (options.verify_on_open && table_->checksums_enabled()) {
      // Clean shutdown: the group checksums are authoritative, so verify
      // everything at rest before serving. (After a recovery they were
      // just rebuilt over whatever the media holds — nothing to verify.)
      open_scrub_ = table_->scrub_groups(
          0, table_->num_groups(), [this](const hash::LostCell& c) { report_loss(c); },
          options.scrub_mode);
    }
    mark_state(kStateDirty);
    // An interrupted online resize leaves a durable cursor. The split
    // image (old table + `.migrate` target) must be reattached before
    // any op runs — whatever this open's online_resize option says.
    // The cursor word self-checksums (it sits outside superblock_crc so
    // it can be advanced with lone 8-byte stores): a word that neither
    // reads disarmed nor checks out is corruption, not a crash state.
    if (!map_format::migration_word_valid(superblock()->migration)) {
      throw std::runtime_error("GroupHashMap migration cursor is corrupt");
    }
    if (map_format::migration_word_active(superblock()->migration)) {
      resume_migration();
    } else if (!path_.empty()) {
      // No migration armed: a `.migrate` file here lost the race with
      // the cursor arm (crashed start) — never authoritative, reclaim.
      if (nvm::reclaim_orphan(path_ + kMigrateSuffix)) orphans_reclaimed_++;
    }
  }
}

template <class Cell>
void BasicGroupHashMap<Cell>::init_flight(const MapOptions& options, bool fresh) {
  if constexpr (!obs::kEnabled) return;  // never create a sidecar when compiled out
  if (options.flight_mode == obs::FlightMode::kOff) return;
  const usize need = obs::flight_required_bytes();
  if (path_.empty()) {
    flight_region_ = nvm::NvmRegion::create_anonymous(need);
  } else {
    const std::string fpath = path_ + kFlightSuffix;
    std::error_code ec;
    if (!fresh && std::filesystem::exists(fpath, ec)) {
      // Reopen: read the black box before it is consumed. Anything wrong
      // with the sidecar (wrong geometry, corrupt header, truncation)
      // only costs the forensics — it must never fail the map open.
      flight_region_ = nvm::NvmRegion::open_file(fpath);
      flight_scan_ = obs::scan_flight(flight_region_.bytes());
      if (flight_region_.size() < need) {
        flight_region_ = nvm::NvmRegion::create_file(fpath, need);
      }
    } else {
      flight_region_ = nvm::NvmRegion::create_file(fpath, need);
    }
  }
  // The recorder gets its own PM: same latency model as the data path,
  // but black-box flushes never pollute the map's write-efficiency
  // counters (lines_flushed per op is a headline metric of the paper).
  flight_pm_ = std::make_unique<nvm::DirectPM>(
      nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  flight_ = std::make_unique<obs::FlightRecorder>(
      *flight_pm_, flight_region_.bytes());  // formats (consumes) the rings
  flight_->set_mode(options.flight_mode);
  flight_->set_sample_shift(options.flight_sample_shift);
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::create(const std::string& path,
                                                        const MapOptions& options) {
  BasicGroupHashMap map;
  map.path_ = path;
  map.options_ = options;
  const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = total_cells / 2,
       .group_size = static_cast<u32>(
           std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
       .group_crc = options.checksum_groups});
  // Stale temp files from a crashed expand()/migration of a previous map
  // at this path must not survive into the new map's lifetime. (create
  // truncates the main file, so the old cursor that could have made the
  // `.migrate` target authoritative dies with it.)
  nvm::reclaim_orphan(path + kExpandSuffix);
  nvm::reclaim_orphan(path + kMigrateSuffix);
  map.init_region(nvm::NvmRegion::create_file(path, kTableOffset + table_bytes), options,
                  /*fresh=*/true);
  // Make the creation itself durable: the file's directory entry is not
  // guaranteed to survive a power failure until its parent is fsynced.
  if (!nvm::FaultFs::sync_dir(nvm::parent_dir(path))) {
    throw std::runtime_error("failed to fsync parent directory of " + path);
  }
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::create_in_memory(const MapOptions& options) {
  BasicGroupHashMap map;
  map.options_ = options;
  const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = total_cells / 2,
       .group_size = static_cast<u32>(
           std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
       .group_crc = options.checksum_groups});
  map.init_region(nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes), options,
                  /*fresh=*/true);
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::open(const std::string& path,
                                                      const MapOptions& options) {
  BasicGroupHashMap map;
  map.path_ = path;
  map.options_ = options;
  // A crashed expand() can leave a stale temp file behind. It is never
  // the authoritative copy (only the rename publishes it), so reclaim it
  // before trusting anything at `path`.
  if (nvm::reclaim_orphan(path + kExpandSuffix)) map.orphans_reclaimed_++;
  map.init_region(nvm::NvmRegion::open_file(path), options, /*fresh=*/false);
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell>::~BasicGroupHashMap() {
  if (region_.valid() && !closed_) close();
}

template <class Cell>
void BasicGroupHashMap<Cell>::mark_state(u64 state) {
  Superblock* sb = superblock();
  pm_->atomic_store_u64(&sb->state, state);
  pm_->persist(&sb->state, sizeof(u64));
}

template <class Cell>
void BasicGroupHashMap<Cell>::close() {
  if (!region_.valid() || closed_) return;
  if (mig_table_) {
    // Clean shutdown mid-migration keeps the split image: both files
    // marked clean, cursor armed — the next open() resumes the drain.
    auto* msb = reinterpret_cast<Superblock*>(mig_region_.data());
    pm_->atomic_store_u64(&msb->state, kStateClean);
    pm_->persist(&msb->state, sizeof(u64));
    mig_region_.sync();
  }
  mark_state(kStateClean);
  region_.sync();
  if (flight_region_.valid() && flight_region_.file_backed()) flight_region_.sync();
  closed_ = true;
}

template <class Cell>
void BasicGroupHashMap<Cell>::abandon() {
  if (!region_.valid() || closed_) return;
  // No mark_state: the superblock stays dirty, exactly like a crash.
  table_.reset();
  region_ = nvm::NvmRegion();
  retired_regions_.clear();
  // Same for the migration target: no final sync, no cursor change —
  // the reopening process resumes from whatever the cursor said.
  clear_migration_state();
  migrations_started_ = migrations_completed_ = migrations_resumed_ = 0;
  emergency_expands_ = help_steps_ = bg_steps_ = keys_migrated_ = 0;
  // The flight sidecar is dropped the same way — no final sync, no
  // cleanup. Its mmap'd writes are in the page cache, so the reopening
  // process scans exactly what a crash would have left durable.
  flight_.reset();
  flight_region_ = nvm::NvmRegion();
  closed_ = true;
  // Observability resets coherently with the simulated crash: every read
  // surface (metrics(), snapshot(), op_recorder()) now reports zeros, the
  // same blank slate the recovering open() starts from.
  metrics_ = MapMetrics{};
  pm_->stats() = nvm::PersistStats{};
  if (flight_pm_) flight_pm_->stats() = nvm::PersistStats{};
  if (recorder_) recorder_->reset();
}

template <class Cell>
void BasicGroupHashMap<Cell>::put_value(const key_type& key, u64 value) {
  for (;;) {
    if (!mig_table_) {
      if (table().update(key, value)) return;
      if (table().insert(key, value)) return;
    } else {
      // New-table-first: readers probe the migration target before the
      // old table, so the latest value must land (or already live) there.
      if (mig_table_->update(key, value)) return;
      if (mig_table_->insert(key, value)) {
        // Drop the now-stale old copy, if any. A crash in between leaves
        // a benign duplicate: new-first reads mask it, and re-migration
        // (or the emergency merge) dedups it.
        table().erase(key);
        return;
      }
    }
    if (!options_.auto_expand) throw std::runtime_error("GroupHashMap is full");
    if (!try_expand()) {
      throw MapDegradedError("GroupHashMap insert deferred: expansion failing (" +
                             last_expand_error_ + "); will retry with backoff");
    }
  }
}

template <class Cell>
void BasicGroupHashMap<Cell>::put(const key_type& key, u64 value) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(key));
  put_value(key, value);
  flight_end(f, obs::OpKind::kInsert, trace_key(key));
  // Help-along runs inside the timed window: the stall it causes is part
  // of the latency a caller observes, and phase attribution books it
  // under migrate_help.
  help_migrate();
  op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::get_batch(std::span<const key_type> keys,
                                        std::span<std::optional<u64>> out) {
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kFind, trace_key(keys[0]));
  if (!mig_table_) {
    table().find_batch(keys, out);
  } else {
    // New-then-old, batched: probe the migration target first, then
    // re-probe only the misses against the old table.
    mig_table_->find_batch(keys, out);
    std::vector<key_type> miss_keys;
    std::vector<usize> miss_idx;
    for (usize i = 0; i < keys.size(); ++i) {
      if (!out[i]) {
        miss_keys.push_back(keys[i]);
        miss_idx.push_back(i);
      }
    }
    if (!miss_keys.empty()) {
      std::vector<std::optional<u64>> miss_out(miss_keys.size());
      table().find_batch(miss_keys, miss_out);
      for (usize j = 0; j < miss_idx.size(); ++j) out[miss_idx[j]] = miss_out[j];
    }
  }
  flight_end(f, obs::OpKind::kFind, trace_key(keys[0]));
  op_finish(obs::OpKind::kFind, trace_key(keys[0]), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::put_batch(std::span<const key_type> keys,
                                        std::span<const u64> values) {
  GH_CHECK_MSG(!closed_, "map is closed");
  GH_CHECK_MSG(keys.size() == values.size(), "put_batch spans must have equal size");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(keys[0]));
  // upsert_batch applies a strict prefix and returns its length; a short
  // return means a placement failed, so expand (with put()'s failure
  // semantics) and resubmit the remainder. While a migration runs the
  // coalesced-fence fast path cannot span two tables, so the remainder
  // degrades to per-key routing — still strictly in order.
  usize done = 0;
  while (done < keys.size()) {
    if (mig_table_) {
      put_value(keys[done], values[done]);
      ++done;
      continue;
    }
    done += table().upsert_batch(keys.subspan(done), values.subspan(done));
    if (done == keys.size()) break;
    if (!options_.auto_expand) throw std::runtime_error("GroupHashMap is full");
    if (!try_expand()) {
      throw MapDegradedError("GroupHashMap insert deferred: expansion failing (" +
                             last_expand_error_ + "); will retry with backoff");
    }
  }
  flight_end(f, obs::OpKind::kInsert, trace_key(keys[0]));
  help_migrate();
  op_finish(obs::OpKind::kInsert, trace_key(keys[0]), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::erase_batch(std::span<const key_type> keys,
                                          std::span<u8> hits) {
  GH_CHECK_MSG(!closed_, "map is closed");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kErase, trace_key(keys[0]));
  if (!mig_table_) {
    table().erase_batch(keys, hits);
  } else {
    // Old table first (see erase() for the crash-window argument), then
    // the migration target; a hit in either counts.
    table().erase_batch(keys, hits);
    std::vector<u8> mig_hits(keys.size(), 0);
    mig_table_->erase_batch(keys, mig_hits);
    if (!hits.empty()) {
      for (usize i = 0; i < keys.size(); ++i) hits[i] = hits[i] | mig_hits[i];
    }
  }
  flight_end(f, obs::OpKind::kErase, trace_key(keys[0]));
  help_migrate();
  op_finish(obs::OpKind::kErase, trace_key(keys[0]), t0, l0);
}

template <class Cell>
std::optional<u64> BasicGroupHashMap<Cell>::get(const key_type& key) {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kFind, trace_key(key));
  // New-then-old while a migration runs: a key's latest committed value
  // is either only in the target (fresh write / migrated) or only a
  // benign duplicate's authoritative copy — the target always wins.
  std::optional<u64> r;
  if (mig_table_) r = mig_table_->find(key);
  if (!r) r = table().find(key);
  flight_end(f, obs::OpKind::kFind, trace_key(key));
  op_finish(obs::OpKind::kFind, trace_key(key), t0, l0);
  return r;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::contains(const key_type& key) {
  return get(key).has_value();
}

template <class Cell>
u64 BasicGroupHashMap<Cell>::increment(const key_type& key, u64 delta) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(key));
  // One probe: find the cell, bump its value in place; fall back to an
  // insert when the key is new. During a migration the in-place bump is
  // only safe in the target (old-table cells can hold stale losers), so
  // an old-table hit is read there but written new-table-first.
  u64 next = delta;
  if (mig_table_) {
    if (const auto current = mig_table_->find(key)) {
      next = *current + delta;
      GH_CHECK(mig_table_->update(key, next));
    } else {
      if (const auto old = table().find(key)) next = *old + delta;
      put_value(key, next);
    }
  } else if (const auto current = table().find(key)) {
    next = *current + delta;
    GH_CHECK(table().update(key, next));
  } else {
    put_value(key, delta);
  }
  flight_end(f, obs::OpKind::kInsert, trace_key(key));
  help_migrate();
  op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
  return next;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::erase(const key_type& key) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kErase, trace_key(key));
  // Old-table copy first: a crash between the two erases then reads as
  // "the erase did not land" (the target still serves the latest value),
  // never as a resurrected stale old copy.
  bool hit = table().erase(key);
  if (mig_table_) hit = mig_table_->erase(key) || hit;
  flight_end(f, obs::OpKind::kErase, trace_key(key));
  help_migrate();
  op_finish(obs::OpKind::kErase, trace_key(key), t0, l0);
  return hit;
}

template <class Cell>
hash::RecoveryReport BasicGroupHashMap<Cell>::recover_now() {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin_always(obs::OpKind::kRecover);
  auto report = table().recover();
  // Attach the black box's forensics: how many ops the previous run had
  // in flight when it died (what this recovery is repairing after).
  report.in_flight_ops = flight_scan_.in_flight.size();
  metrics_.recoveries++;
  flight_end(f, obs::OpKind::kRecover);
  op_finish(obs::OpKind::kRecover, 0, t0, l0);
  return report;
}

template <class Cell>
void BasicGroupHashMap<Cell>::report_loss(const hash::LostCell& cell) {
  if (options_.on_lost_cell) options_.on_lost_cell(cell);
}

template <class Cell>
hash::ScrubReport BasicGroupHashMap<Cell>::scrub(u64 max_groups) {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  hash::ScrubReport report;
  const u64 ngroups = table().num_groups();
  if (ngroups == 0 || !table().checksums_enabled()) return report;
  const u64 f = flight_begin_always(obs::OpKind::kScrub);
  // Wrap-around cursor: each call resumes where the last one stopped, so
  // a periodic scrub(k) tick eventually covers the whole table.
  u64 remaining = std::min(max_groups, ngroups);
  while (remaining > 0) {
    if (scrub_cursor_ >= ngroups) scrub_cursor_ = 0;
    const u64 chunk = std::min(remaining, ngroups - scrub_cursor_);
    report += table().scrub_groups(
        scrub_cursor_, chunk, [this](const hash::LostCell& c) { report_loss(c); },
        options_.scrub_mode);
    scrub_cursor_ = (scrub_cursor_ + chunk) % ngroups;
    remaining -= chunk;
  }
  if (report.groups_quarantined > 0) {
    flight_event(obs::FlightEvent::kQuarantine, obs::OpKind::kScrub);
  }
  flight_end(f, obs::OpKind::kScrub);
  op_finish(obs::OpKind::kScrub, 0, t0, l0);
  return report;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::try_expand() {
  if (expand_cooldown_ > 0) {
    // Still backing off: absorb this placement failure without retrying.
    expand_cooldown_--;
    return false;
  }
  try {
    if (mig_table_) {
      // A placement failed while a resize is already migrating: there is
      // no second target to start, so merge both tables now (blocking).
      emergency_expand();
    } else if (options_.online_resize) {
      start_migration();
    } else {
      expand();
    }
  } catch (const nvm::SimulatedCrash&) {
    throw;  // a simulated power failure must freeze the world, not degrade
  } catch (const std::exception& e) {
    metrics_.expand_failures++;
    expand_pending_ = true;
    last_expand_error_ = e.what();
    // Journal the degradation: after a crash the black box shows the map
    // was limping, even if no expansion was mid-publish.
    flight_event(obs::FlightEvent::kDegraded, obs::OpKind::kExpand);
    // The first failure keeps cooldown at zero — a transient fault (one
    // full disk scan, a single ENOSPC blip) costs exactly one retried
    // expansion. Only consecutive failures open a backoff window, and it
    // doubles up to the cap from there.
    expand_cooldown_ = expand_backoff_;
    expand_backoff_ =
        expand_backoff_ == 0 ? 1 : std::min<u64>(expand_backoff_ * 2, kMaxExpandBackoff);
    return false;
  }
  expand_pending_ = false;
  expand_backoff_ = 0;
  expand_cooldown_ = 0;
  return true;
}

template <class Cell>
const MapMetrics& BasicGroupHashMap<Cell>::metrics() {
  // After abandon() the table is gone; serve the (reset) stored sample
  // instead of dereferencing it.
  if (table_) metrics_.table = table().stats();
  if (pm_) metrics_.persist = pm_->stats();
  return metrics_;
}

template <class Cell>
obs::Snapshot BasicGroupHashMap<Cell>::snapshot() {
  obs::Snapshot s;
  s.source = sizeof(Cell) == 16 ? "GroupHashMap" : "GroupHashMapWide";
  if (table_) {
    s.size = size();
    s.capacity = capacity();
    s.load_factor = load_factor();
    s.table = obs::TableOpSnapshot::from(table().stats());
    if (mig_table_) s.table += obs::TableOpSnapshot::from(mig_table_->stats());
    s.scrub = obs::ScrubSnapshot::from(table().stats(), open_scrub_);
  } else {
    // Abandoned (simulated crash): counters were reset coherently there.
    s.table = obs::TableOpSnapshot::from(metrics_.table);
    s.scrub = obs::ScrubSnapshot::from(metrics_.table, open_scrub_);
  }
  if (pm_) s.persist = obs::PersistSnapshot::from(pm_->stats());
  s.lifecycle.expansions = metrics_.expansions;
  s.lifecycle.expand_failures = metrics_.expand_failures;
  s.lifecycle.recoveries = metrics_.recoveries;
  s.lifecycle.orphans_reclaimed = orphans_reclaimed_;
  s.lifecycle.degraded = expand_pending_;
  s.lifecycle.expand_backoff = expand_backoff_;
  s.lifecycle.expand_cooldown = expand_cooldown_;
  s.migration.active = mig_table_ ? 1 : 0;
  s.migration.cursor = mig_cursor_;
  s.migration.total_groups = mig_total_groups_;
  s.migration.groups_migrated = help_steps_ + bg_steps_;
  s.migration.keys_migrated = keys_migrated_;
  s.migration.started = migrations_started_;
  s.migration.completed = migrations_completed_;
  s.migration.resumed = migrations_resumed_;
  s.migration.emergency_expands = emergency_expands_;
  s.migration.help_steps = help_steps_;
  s.migration.bg_steps = bg_steps_;
  if (recorder_) s.latency = obs::OpLatencySnapshot::from(*recorder_);
  if (live_obs_) s.phases = live_obs_->phases.snapshot();
  s.flight.enabled = flight_ != nullptr;
  if (flight_scan_.valid_header) {
    s.flight.records_scanned = flight_scan_.records_valid;
    s.flight.records_torn = flight_scan_.records_torn;
    for (const obs::InFlightOp& op : flight_scan_.in_flight) {
      s.flight.in_flight_on_open.push_back(
          obs::FlightOpBrief{op.kind, op.phase, op.seqno, op.key_hash});
    }
  }
  return s;
}

template <class Cell>
void BasicGroupHashMap<Cell>::expand() {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin_always(obs::OpKind::kExpand, table().capacity());
  u64 new_total = 2 * table().capacity();
  for (;;) {
    typename Table::Params params{
        .level_cells = new_total / 2,
        .group_size = static_cast<u32>(std::min<u64>(table().group_size(), new_total / 2)),
        .seed = table().seed(),
        .zero_memory = false,
        // The rebuild inherits the image's integrity setting. Rebuilding
        // into fresh memory also clears any quarantine: cells re-inserted
        // here land on trusted media with freshly maintained checksums.
        .group_crc = table().checksums_enabled()};
    const usize table_bytes = Table::required_bytes(params);
    const bool file_backed = region_.file_backed();
    const std::string tmp_path = path_ + kExpandSuffix;
    nvm::NvmRegion new_region =
        file_backed ? nvm::NvmRegion::create_file(tmp_path, kTableOffset + table_bytes)
                    : nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes);
    Table new_table(*pm_, new_region.bytes().subspan(kTableOffset, table_bytes), params,
                    /*format=*/true);
    bool refill_ok = true;
    table().for_each([&](const key_type& k, u64 v) {
      if (refill_ok && !new_table.insert(k, v)) refill_ok = false;
    });
    if (!refill_ok) {
      // Pathological grouping in the bigger table; double again.
      new_total *= 2;
      if (file_backed) nvm::FaultFs::remove(tmp_path);
      continue;
    }
    // Publish the new table: superblock, sync, then atomically replace the
    // old file. The mapping of the new file survives the rename.
    write_superblock_fields(*pm_, reinterpret_cast<Superblock*>(new_region.data()),
                            sizeof(Cell), table_bytes, params.group_size, params.seed);
    // Journal the publish step: if the rename protocol below crashes, the
    // black box shows an expansion that reached `publish` but not
    // `finish` — the exact op recovery is repairing after.
    flight_mark(f, obs::OpKind::kExpand, new_total);
    if (file_backed) {
      // write-back → rename → fsync(parent): the shared durable publish
      // protocol (src/nvm/fault_fs.hpp). Unlinks the temp file before
      // throwing on failure; a SimulatedCrash propagates untouched.
      nvm::publish_region_file(new_region, tmp_path, path_,
                               "failed to publish expanded map file");
    }
    // Preserve operation statistics across the rebuild.
    new_table.stats() = table().stats();
    table_.emplace(std::move(new_table));
    if (options_.retain_retired_regions) {
      retired_regions_.push_back(std::move(region_));
    }
    region_ = std::move(new_region);
    metrics_.expansions++;
    structure_version_++;
    scrub_cursor_ = 0;  // group numbering changed with the geometry
    flight_end(f, obs::OpKind::kExpand, new_total);
    op_finish(obs::OpKind::kExpand, 0, t0, l0);
    return;
  }
}

// --- Online resize: the incremental migration state machine ----------------
//
// Phases (each durably ordered by an fsync/rename or an 8-byte committed
// store, and each named in the flight recorder):
//
//   start      create + format `<path>.migrate` (own superblock, dirty)
//   published  target durable (msync + parent-dir fsync), cursor armed
//   cursor=g   groups [0,g) drained: copied into the target and erased
//              from the old table, cursor advanced with one committed
//              8-byte store per group
//   finalize   cursor == num_groups, old table empty: target synced and
//              renamed over `path` (the expand() publish protocol)
//   retire     old region unmapped; the target is the map
//
// Crash anywhere: the cursor word in the old superblock names the resume
// point; duplicates from a group interrupted between copy and erase are
// masked by new-table-first reads and skipped by the idempotent re-copy.

template <class Cell>
void BasicGroupHashMap<Cell>::set_migration_word(u64 word) {
  Superblock* sb = superblock();
  pm_->atomic_store_u64(&sb->migration, word);
  pm_->persist(&sb->migration, sizeof(u64));
  // The cursor is the resume point after a power failure — push it to the
  // file (one-page msync), not just through the NVM persist model.
  region_.sync_range(offsetof(map_format::Superblock, migration), sizeof(u64));
}

template <class Cell>
void BasicGroupHashMap<Cell>::clear_migration_state() {
  mig_table_.reset();
  mig_region_ = nvm::NvmRegion();
  mig_cursor_ = 0;
  mig_total_groups_ = 0;
  mig_flight_token_ = 0;
  mig_marked_cursor_ = 0;
  if (live_obs_) live_obs_->set_migration(0, 0, 0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::start_migration() {
  GH_CHECK(!mig_table_);
  mig_flight_token_ = flight_begin_always(
      obs::OpKind::kMigrate,
      obs::encode_migration_mark(obs::MigrationPhase::kStart, 0));
  const u64 new_total = 2 * table().capacity();
  typename Table::Params params{
      .level_cells = new_total / 2,
      .group_size = static_cast<u32>(std::min<u64>(table().group_size(), new_total / 2)),
      .seed = table().seed(),
      .zero_memory = false,
      .group_crc = table().checksums_enabled()};
  const usize table_bytes = Table::required_bytes(params);
  const bool file_backed = region_.file_backed();
  const std::string mig_path = path_ + kMigrateSuffix;
  nvm::NvmRegion mig_region =
      file_backed ? nvm::NvmRegion::create_file(mig_path, kTableOffset + table_bytes)
                  : nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes);
  Table mig_table(*pm_, mig_region.bytes().subspan(kTableOffset, table_bytes), params,
                  /*format=*/true);
  write_superblock_fields(*pm_,
                          reinterpret_cast<Superblock*>(mig_region.data()), sizeof(Cell),
                          table_bytes, params.group_size, params.seed);
  nvm::crash_point("migrate.start.formatted");
  if (file_backed) {
    // The target must be durable (content and directory entry) before the
    // cursor can point at it: an armed cursor whose target is missing is
    // unrecoverable by design, so this ordering is load-bearing.
    mig_region.sync();
    if (!nvm::FaultFs::sync_dir(nvm::parent_dir(path_))) {
      throw std::runtime_error("failed to fsync parent directory of " + mig_path);
    }
  }
  mig_region_ = std::move(mig_region);
  mig_table_.emplace(std::move(mig_table));
  mig_cursor_ = 0;
  mig_marked_cursor_ = 0;
  mig_total_groups_ = table().num_groups();
  if (live_obs_) live_obs_->set_migration(1, 0, mig_total_groups_);
  set_migration_word(map_format::encode_migration_word(0));
  nvm::crash_point("migrate.cursor.armed");
  flight_mark(mig_flight_token_, obs::OpKind::kMigrate,
              obs::encode_migration_mark(obs::MigrationPhase::kPublished, 0));
  migrations_started_++;
  structure_version_++;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::migrate_one_group(u64 g) {
  std::vector<key_type> keys;
  std::vector<u64> values;
  table().for_each_in_group(g, [&](const key_type& k, u64 v) {
    keys.push_back(k);
    values.push_back(v);
  });
  if (keys.empty()) return true;
  // Re-migration after a crash must not clobber values written to the
  // target since the copy (target values are the authoritative ones), so
  // only keys the target does not hold yet are moved.
  std::vector<std::optional<u64>> present(keys.size());
  mig_table_->find_batch(keys, present);
  std::vector<key_type> move_keys;
  std::vector<u64> move_values;
  move_keys.reserve(keys.size());
  move_values.reserve(keys.size());
  for (usize i = 0; i < keys.size(); ++i) {
    if (!present[i]) {
      move_keys.push_back(keys[i]);
      move_values.push_back(values[i]);
    }
  }
  if (mig_table_->insert_batch(move_keys, move_values) < move_keys.size()) {
    // The double-sized target cannot place this group's keys
    // (pathological grouping). The copied-but-not-erased prefix is a
    // benign duplicate set: new-first reads mask it and the emergency
    // merge dedups it.
    return false;
  }
  nvm::crash_point("migrate.group.copied");
  table().erase_batch(keys, {});
  nvm::crash_point("migrate.group.erased");
  keys_migrated_ += keys.size();
  return true;
}

template <class Cell>
u64 BasicGroupHashMap<Cell>::do_migrate(u64 max_groups) {
  u64 done = 0;
  while (mig_table_ && done < max_groups && mig_cursor_ < mig_total_groups_) {
    if (!migrate_one_group(mig_cursor_)) {
      // Target full: fall back to the blocking merge, with try_expand's
      // backoff semantics — a failing merge leaves the migration armed
      // and retries later instead of wedging the drain loop.
      if (!try_expand()) break;
      continue;  // migration is gone; the loop condition exits
    }
    mig_cursor_++;
    done++;
    if (live_obs_) live_obs_->set_migration(1, mig_cursor_, mig_total_groups_);
    set_migration_word(map_format::encode_migration_word(static_cast<u32>(mig_cursor_)));
    nvm::crash_point("migrate.cursor.advanced");
    if (mig_cursor_ - mig_marked_cursor_ >= kMigrateMarkStride ||
        mig_cursor_ == mig_total_groups_) {
      flight_mark(mig_flight_token_, obs::OpKind::kMigrate,
                  obs::encode_migration_mark(obs::MigrationPhase::kCursor, mig_cursor_));
      mig_marked_cursor_ = mig_cursor_;
    }
  }
  if (mig_table_ && mig_cursor_ >= mig_total_groups_) {
    if (expand_cooldown_ > 0) {
      // A previously failed finalize armed the backoff; absorb.
      expand_cooldown_--;
    } else {
      try {
        finalize_migration();
        expand_pending_ = false;
        expand_backoff_ = 0;
        expand_cooldown_ = 0;
      } catch (const nvm::SimulatedCrash&) {
        throw;
      } catch (const std::exception& e) {
        // Same degrade-don't-wedge contract as try_expand: the drain is
        // complete, only the rename publish is owed — keep serving from
        // the split image and retry with capped backoff.
        metrics_.expand_failures++;
        expand_pending_ = true;
        last_expand_error_ = e.what();
        flight_event(obs::FlightEvent::kDegraded, obs::OpKind::kMigrate);
        expand_cooldown_ = expand_backoff_;
        expand_backoff_ = expand_backoff_ == 0
                              ? 1
                              : std::min<u64>(expand_backoff_ * 2, kMaxExpandBackoff);
      }
    }
  }
  return done;
}

template <class Cell>
void BasicGroupHashMap<Cell>::help_migrate() {
  if (!mig_table_ || options_.migrate_groups_per_op == 0) return;
  // When the enclosing data op is phase-collecting, the whole help
  // bracket books under migrate_help (persist/fence inside it are
  // suppressed — their time is part of the help stall, not of the op's
  // own persistence). When it is not, the kMigrate op_start below may
  // claim collection itself and the migration's persist/fence phases
  // attribute to the kMigrate row.
  obs::PhaseHelpScope help_scope;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  help_steps_ += do_migrate(options_.migrate_groups_per_op);
  op_finish(obs::OpKind::kMigrate, 0, t0, l0);
}

template <class Cell>
u64 BasicGroupHashMap<Cell>::migrate_step(u64 max_groups) {
  GH_CHECK_MSG(!closed_, "map is closed");
  if (!mig_table_ || max_groups == 0) return 0;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 n = do_migrate(max_groups);
  bg_steps_ += n;
  op_finish(obs::OpKind::kMigrate, 0, t0, l0);
  return n;
}

template <class Cell>
void BasicGroupHashMap<Cell>::finalize_migration() {
  GH_CHECK(mig_table_);
  GH_CHECK_MSG(table().count() == 0, "finalize with undrained old table");
  flight_mark(mig_flight_token_, obs::OpKind::kMigrate,
              obs::encode_migration_mark(obs::MigrationPhase::kFinalize, mig_cursor_));
  nvm::crash_point("migrate.finalize");
  if (region_.file_backed()) {
    // The expand() publish protocol — but spelled out instead of using
    // publish_region_file, because its failure cleanup unlinks the temp
    // file and the `.migrate` target holds the only copy of the data.
    // On failure the split image stays intact and the caller retries.
    mig_region_.sync();
    nvm::crash_point("migrate.finalize.synced");
    if (!nvm::FaultFs::rename(path_ + kMigrateSuffix, path_)) {
      throw std::runtime_error("failed to publish migrated map file " + path_);
    }
    nvm::crash_point("migrate.finalize.renamed");
    if (!nvm::FaultFs::sync_dir(nvm::parent_dir(path_))) {
      throw std::runtime_error("failed to fsync parent directory of " + path_);
    }
  }
  // Preserve operation statistics across the rebuild (the expand()
  // convention: the pre-resize history wins over the target's own
  // migration-time counters).
  mig_table_->stats() = table().stats();
  table_.emplace(std::move(*mig_table_));
  if (options_.retain_retired_regions) {
    retired_regions_.push_back(std::move(region_));
  }
  region_ = std::move(mig_region_);
  flight_end(mig_flight_token_, obs::OpKind::kMigrate,
             obs::encode_migration_mark(obs::MigrationPhase::kRetire, mig_cursor_));
  clear_migration_state();
  nvm::crash_point("migrate.retired");
  migrations_completed_++;
  structure_version_++;
  scrub_cursor_ = 0;  // group numbering changed with the geometry
}

template <class Cell>
void BasicGroupHashMap<Cell>::emergency_expand() {
  GH_CHECK(mig_table_);
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  flight_mark(mig_flight_token_, obs::OpKind::kMigrate,
              obs::encode_migration_mark(obs::MigrationPhase::kEmergency, mig_cursor_));
  nvm::crash_point("migrate.emergency");
  u64 new_total = 2 * mig_table_->capacity();
  for (;;) {
    typename Table::Params params{
        .level_cells = new_total / 2,
        .group_size = static_cast<u32>(std::min<u64>(table().group_size(), new_total / 2)),
        .seed = table().seed(),
        .zero_memory = false,
        .group_crc = table().checksums_enabled()};
    const usize table_bytes = Table::required_bytes(params);
    const bool file_backed = region_.file_backed();
    const std::string tmp_path = path_ + kExpandSuffix;
    nvm::NvmRegion new_region =
        file_backed ? nvm::NvmRegion::create_file(tmp_path, kTableOffset + table_bytes)
                    : nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes);
    Table new_table(*pm_, new_region.bytes().subspan(kTableOffset, table_bytes), params,
                    /*format=*/true);
    bool refill_ok = true;
    mig_table_->for_each([&](const key_type& k, u64 v) {
      if (refill_ok && !new_table.insert(k, v)) refill_ok = false;
    });
    // Old-table cells lose to their migrated copies: a group interrupted
    // between copy and erase holds stale duplicates, and the target's
    // value is the authoritative one.
    table().for_each([&](const key_type& k, u64 v) {
      if (refill_ok && !new_table.find(k) && !new_table.insert(k, v)) refill_ok = false;
    });
    if (!refill_ok) {
      new_total *= 2;
      if (file_backed) nvm::FaultFs::remove(tmp_path);
      continue;
    }
    write_superblock_fields(*pm_, reinterpret_cast<Superblock*>(new_region.data()),
                            sizeof(Cell), table_bytes, params.group_size, params.seed);
    if (file_backed) {
      // Publishing the merged file disarms the cursor (the new
      // superblock's word is zero), so a crash after the rename leaves
      // the stale `.migrate` as a reclaimable orphan, not live data.
      nvm::publish_region_file(new_region, tmp_path, path_,
                               "failed to publish emergency-expanded map file");
    }
    nvm::crash_point("migrate.emergency.published");
    new_table.stats() = table().stats();
    table_.emplace(std::move(new_table));
    if (options_.retain_retired_regions) {
      retired_regions_.push_back(std::move(region_));
      retired_regions_.push_back(std::move(mig_region_));
    }
    region_ = std::move(new_region);
    flight_end(mig_flight_token_, obs::OpKind::kMigrate,
               obs::encode_migration_mark(obs::MigrationPhase::kEmergency, mig_cursor_));
    clear_migration_state();
    if (region_.file_backed()) nvm::FaultFs::remove(path_ + kMigrateSuffix);
    emergency_expands_++;
    metrics_.expansions++;
    structure_version_++;
    scrub_cursor_ = 0;
    op_finish(obs::OpKind::kExpand, 0, t0, l0);
    return;
  }
}

template <class Cell>
void BasicGroupHashMap<Cell>::resume_migration() {
  const u64 cursor = map_format::migration_word_cursor(superblock()->migration);
  const std::string mig_path = path_ + kMigrateSuffix;
  std::error_code ec;
  if (!std::filesystem::exists(mig_path, ec)) {
    // The cursor is only armed after the target's directory entry is
    // fsynced, so a missing target means tampering or filesystem loss —
    // groups below the cursor have no other copy. Refuse, don't guess.
    throw std::runtime_error("GroupHashMap migration target missing: " + mig_path);
  }
  nvm::NvmRegion mig_region = nvm::NvmRegion::open_file(mig_path);
  auto* msb = reinterpret_cast<Superblock*>(mig_region.data());
  if (msb->magic != kMapMagic || msb->version != kMapVersion ||
      msb->cell_size != sizeof(Cell) ||
      msb->crc != map_format::superblock_crc(*msb)) {
    throw std::runtime_error("GroupHashMap migration target is corrupt: " + mig_path);
  }
  if (msb->table_offset < kTableOffset || msb->table_bytes == 0 ||
      msb->table_bytes > mig_region.size() ||
      msb->table_offset > mig_region.size() - msb->table_bytes) {
    throw std::runtime_error("GroupHashMap migration target is corrupt (table bounds)");
  }
  mig_region_ = std::move(mig_region);
  msb = reinterpret_cast<Superblock*>(mig_region_.data());
  mig_table_.emplace(Table::attach(
      *pm_, mig_region_.bytes().subspan(msb->table_offset, msb->table_bytes)));
  if (msb->state == kStateDirty) {
    // The target died mid-write just like the main table would have;
    // Algorithm-4 it back to consistency before reads trust it.
    mig_table_->recover();
    metrics_.recoveries++;
  } else {
    pm_->atomic_store_u64(&msb->state, kStateDirty);
    pm_->persist(&msb->state, sizeof(u64));
  }
  mig_total_groups_ = table().num_groups();
  mig_cursor_ = std::min(cursor, mig_total_groups_);
  mig_marked_cursor_ = mig_cursor_;
  if (live_obs_) live_obs_->set_migration(1, mig_cursor_, mig_total_groups_);
  migrations_resumed_++;
  structure_version_++;
  mig_flight_token_ = flight_begin_always(
      obs::OpKind::kMigrate,
      obs::encode_migration_mark(obs::MigrationPhase::kResume, mig_cursor_));
  // A crash can land between the final cursor advance and the rename:
  // the drain is already complete and only the finalize is owed.
  if (mig_cursor_ >= mig_total_groups_) finalize_migration();
}

template <class Cell>
bool BasicGroupHashMap<Cell>::debug_verify_tags() const {
  if (table_ && !table().verify_tags()) return false;
  return !mig_table_ || mig_table_->verify_tags();
}

template <class Cell>
bool BasicGroupHashMap<Cell>::debug_verify_group_checksums() const {
  const auto verify = [](const Table& t) {
    if (!t.checksums_enabled()) return true;
    for (u64 g = 0; g < t.num_groups(); ++g) {
      for (u32 level = 0; level < 2; ++level) {
        if (!t.group_quarantined(level, g) && !t.verify_group_checksum(level, g)) {
          return false;
        }
      }
    }
    return true;
  };
  if (table_ && !verify(table())) return false;
  return !mig_table_ || verify(*mig_table_);
}

template class BasicGroupHashMap<hash::Cell16>;
template class BasicGroupHashMap<hash::Cell32>;

}  // namespace gh
