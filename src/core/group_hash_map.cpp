#include "core/group_hash_map.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/map_format.hpp"
#include "nvm/fault_fs.hpp"
#include "util/assert.hpp"

namespace gh {
namespace {

using map_format::kTableOffset;
constexpr u64 kMapMagic = map_format::kMagic;
constexpr u64 kMapVersion = map_format::kVersion;
constexpr u64 kStateClean = map_format::kStateClean;
constexpr u64 kStateDirty = map_format::kStateDirty;

/// Suffix of the temp file expand() builds before the rename publish. A
/// crash mid-publish can leave it behind; open() reclaims it.
constexpr const char* kExpandSuffix = ".expand";

/// Suffix of the flight-recorder sidecar (obs/flight_recorder.hpp).
constexpr const char* kFlightSuffix = ".flight";

/// Cap of the exponential expansion backoff, counted in placement-failure
/// events absorbed between retries.
constexpr u64 kMaxExpandBackoff = 64;

u64 pow2_at_least(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

template <class Cell>
struct BasicGroupHashMap<Cell>::Superblock : map_format::Superblock {};

template <class Cell>
typename BasicGroupHashMap<Cell>::Superblock* BasicGroupHashMap<Cell>::superblock() {
  return reinterpret_cast<Superblock*>(region_.data());
}

template <class Cell>
void BasicGroupHashMap<Cell>::init_region(nvm::NvmRegion region, const MapOptions& options,
                                          bool fresh) {
  region_ = std::move(region);
  if (!pm_) {
    pm_ = std::make_unique<nvm::DirectPM>(
        nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  }
  if (!recorder_) {
    recorder_ = std::make_unique<obs::OpRecorder>();
    obs_reg_ = obs::Registration(
        std::string(sizeof(Cell) == 16 ? "GroupHashMap" : "GroupHashMapWide") +
            (path_.empty() ? "(mem)" : ":" + path_),
        recorder_.get());
  }
  gate_.set_shift(options.latency_sample_shift);
  // The flight sidecar comes up BEFORE recovery so the scan of the
  // previous run's rings is available to the recovery report below.
  init_flight(options, fresh);
  if (fresh) {
    const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
    typename Table::Params params{
        .level_cells = total_cells / 2,
        .group_size = static_cast<u32>(
            std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
        .seed = options.hash_seed,
        // A fresh file (ftruncate) or anonymous mapping is already zero.
        .zero_memory = false,
        .group_crc = options.checksum_groups};
    const usize table_bytes = Table::required_bytes(params);
    GH_CHECK(region_.size() >= kTableOffset + table_bytes);
    table_.emplace(*pm_, region_.bytes().subspan(kTableOffset, table_bytes), params,
                   /*format=*/true);
    Superblock* sb = superblock();
    pm_->store_u64(&sb->magic, kMapMagic);
    pm_->store_u64(&sb->version, kMapVersion);
    pm_->store_u64(&sb->state, kStateDirty);
    pm_->store_u64(&sb->cell_size, sizeof(Cell));
    pm_->store_u64(&sb->table_offset, kTableOffset);
    pm_->store_u64(&sb->table_bytes, table_bytes);
    pm_->store_u64(&sb->group_size, params.group_size);
    pm_->store_u64(&sb->seed, params.seed);
    pm_->store_u64(&sb->crc, map_format::superblock_crc(*sb));
    pm_->persist(sb, sizeof(Superblock));
  } else {
    Superblock* sb = superblock();
    if (sb->magic != kMapMagic) throw std::runtime_error("not a GroupHashMap file");
    if (sb->version != kMapVersion) throw std::runtime_error("unsupported map version");
    if (sb->cell_size != sizeof(Cell)) {
      throw std::runtime_error("map was created with a different key width");
    }
    // The geometry must checksum before it is trusted: a bit-rot hit on
    // the superblock fails the open with a typed message instead of
    // mapping the table at forged bounds.
    if (sb->crc != map_format::superblock_crc(*sb)) {
      throw std::runtime_error("GroupHashMap superblock is corrupt (checksum mismatch)");
    }
    // Bounds validation stays as belt and braces (a *consistently*
    // re-checksummed forgery still must not index out of range).
    if (sb->table_offset < kTableOffset || sb->table_bytes == 0 ||
        sb->table_bytes > region_.size() ||
        sb->table_offset > region_.size() - sb->table_bytes) {
      throw std::runtime_error("GroupHashMap superblock is corrupt (table bounds)");
    }
    table_.emplace(
        Table::attach(*pm_, region_.bytes().subspan(sb->table_offset, sb->table_bytes)));
    if (sb->state == kStateDirty) {
      open_recovery_ = recover_now();
      recovered_on_open_ = true;
    } else if (options.verify_on_open && table_->checksums_enabled()) {
      // Clean shutdown: the group checksums are authoritative, so verify
      // everything at rest before serving. (After a recovery they were
      // just rebuilt over whatever the media holds — nothing to verify.)
      open_scrub_ = table_->scrub_groups(
          0, table_->num_groups(), [this](const hash::LostCell& c) { report_loss(c); },
          options.scrub_mode);
    }
    mark_state(kStateDirty);
  }
}

template <class Cell>
void BasicGroupHashMap<Cell>::init_flight(const MapOptions& options, bool fresh) {
  if constexpr (!obs::kEnabled) return;  // never create a sidecar when compiled out
  if (options.flight_mode == obs::FlightMode::kOff) return;
  const usize need = obs::flight_required_bytes();
  if (path_.empty()) {
    flight_region_ = nvm::NvmRegion::create_anonymous(need);
  } else {
    const std::string fpath = path_ + kFlightSuffix;
    std::error_code ec;
    if (!fresh && std::filesystem::exists(fpath, ec)) {
      // Reopen: read the black box before it is consumed. Anything wrong
      // with the sidecar (wrong geometry, corrupt header, truncation)
      // only costs the forensics — it must never fail the map open.
      flight_region_ = nvm::NvmRegion::open_file(fpath);
      flight_scan_ = obs::scan_flight(flight_region_.bytes());
      if (flight_region_.size() < need) {
        flight_region_ = nvm::NvmRegion::create_file(fpath, need);
      }
    } else {
      flight_region_ = nvm::NvmRegion::create_file(fpath, need);
    }
  }
  // The recorder gets its own PM: same latency model as the data path,
  // but black-box flushes never pollute the map's write-efficiency
  // counters (lines_flushed per op is a headline metric of the paper).
  flight_pm_ = std::make_unique<nvm::DirectPM>(
      nvm::PersistConfig{.flush_latency_ns = options.flush_latency_ns});
  flight_ = std::make_unique<obs::FlightRecorder>(
      *flight_pm_, flight_region_.bytes());  // formats (consumes) the rings
  flight_->set_mode(options.flight_mode);
  flight_->set_sample_shift(options.flight_sample_shift);
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::create(const std::string& path,
                                                        const MapOptions& options) {
  BasicGroupHashMap map;
  map.path_ = path;
  map.options_ = options;
  const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = total_cells / 2,
       .group_size = static_cast<u32>(
           std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
       .group_crc = options.checksum_groups});
  // A stale temp file from a crashed expand() of a previous map at this
  // path must not survive into the new map's lifetime.
  nvm::reclaim_orphan(path + kExpandSuffix);
  map.init_region(nvm::NvmRegion::create_file(path, kTableOffset + table_bytes), options,
                  /*fresh=*/true);
  // Make the creation itself durable: the file's directory entry is not
  // guaranteed to survive a power failure until its parent is fsynced.
  if (!nvm::FaultFs::sync_dir(nvm::parent_dir(path))) {
    throw std::runtime_error("failed to fsync parent directory of " + path);
  }
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::create_in_memory(const MapOptions& options) {
  BasicGroupHashMap map;
  map.options_ = options;
  const u64 total_cells = pow2_at_least(std::max<u64>(options.initial_cells, 16));
  const usize table_bytes = Table::required_bytes(
      {.level_cells = total_cells / 2,
       .group_size = static_cast<u32>(
           std::min<u64>(pow2_at_least(options.group_size), total_cells / 2)),
       .group_crc = options.checksum_groups});
  map.init_region(nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes), options,
                  /*fresh=*/true);
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell> BasicGroupHashMap<Cell>::open(const std::string& path,
                                                      const MapOptions& options) {
  BasicGroupHashMap map;
  map.path_ = path;
  map.options_ = options;
  // A crashed expand() can leave a stale temp file behind. It is never
  // the authoritative copy (only the rename publishes it), so reclaim it
  // before trusting anything at `path`.
  if (nvm::reclaim_orphan(path + kExpandSuffix)) map.orphans_reclaimed_++;
  map.init_region(nvm::NvmRegion::open_file(path), options, /*fresh=*/false);
  return map;
}

template <class Cell>
BasicGroupHashMap<Cell>::~BasicGroupHashMap() {
  if (region_.valid() && !closed_) close();
}

template <class Cell>
void BasicGroupHashMap<Cell>::mark_state(u64 state) {
  Superblock* sb = superblock();
  pm_->atomic_store_u64(&sb->state, state);
  pm_->persist(&sb->state, sizeof(u64));
}

template <class Cell>
void BasicGroupHashMap<Cell>::close() {
  if (!region_.valid() || closed_) return;
  mark_state(kStateClean);
  region_.sync();
  if (flight_region_.valid() && flight_region_.file_backed()) flight_region_.sync();
  closed_ = true;
}

template <class Cell>
void BasicGroupHashMap<Cell>::abandon() {
  if (!region_.valid() || closed_) return;
  // No mark_state: the superblock stays dirty, exactly like a crash.
  table_.reset();
  region_ = nvm::NvmRegion();
  retired_regions_.clear();
  // The flight sidecar is dropped the same way — no final sync, no
  // cleanup. Its mmap'd writes are in the page cache, so the reopening
  // process scans exactly what a crash would have left durable.
  flight_.reset();
  flight_region_ = nvm::NvmRegion();
  closed_ = true;
  // Observability resets coherently with the simulated crash: every read
  // surface (metrics(), snapshot(), op_recorder()) now reports zeros, the
  // same blank slate the recovering open() starts from.
  metrics_ = MapMetrics{};
  pm_->stats() = nvm::PersistStats{};
  if (flight_pm_) flight_pm_->stats() = nvm::PersistStats{};
  if (recorder_) recorder_->reset();
}

template <class Cell>
void BasicGroupHashMap<Cell>::put(const key_type& key, u64 value) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(key));
  if (table().update(key, value)) {
    flight_end(f, obs::OpKind::kInsert, trace_key(key));
    op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
    return;
  }
  while (!table().insert(key, value)) {
    if (!options_.auto_expand) throw std::runtime_error("GroupHashMap is full");
    if (!try_expand()) {
      throw MapDegradedError("GroupHashMap insert deferred: expansion failing (" +
                             last_expand_error_ + "); will retry with backoff");
    }
  }
  flight_end(f, obs::OpKind::kInsert, trace_key(key));
  op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::get_batch(std::span<const key_type> keys,
                                        std::span<std::optional<u64>> out) {
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kFind, trace_key(keys[0]));
  table().find_batch(keys, out);
  flight_end(f, obs::OpKind::kFind, trace_key(keys[0]));
  op_finish(obs::OpKind::kFind, trace_key(keys[0]), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::put_batch(std::span<const key_type> keys,
                                        std::span<const u64> values) {
  GH_CHECK_MSG(!closed_, "map is closed");
  GH_CHECK_MSG(keys.size() == values.size(), "put_batch spans must have equal size");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(keys[0]));
  // upsert_batch applies a strict prefix and returns its length; a short
  // return means a placement failed, so expand (with put()'s failure
  // semantics) and resubmit the remainder.
  usize done = 0;
  while (done < keys.size()) {
    done += table().upsert_batch(keys.subspan(done), values.subspan(done));
    if (done == keys.size()) break;
    if (!options_.auto_expand) throw std::runtime_error("GroupHashMap is full");
    if (!try_expand()) {
      throw MapDegradedError("GroupHashMap insert deferred: expansion failing (" +
                             last_expand_error_ + "); will retry with backoff");
    }
  }
  flight_end(f, obs::OpKind::kInsert, trace_key(keys[0]));
  op_finish(obs::OpKind::kInsert, trace_key(keys[0]), t0, l0);
}

template <class Cell>
void BasicGroupHashMap<Cell>::erase_batch(std::span<const key_type> keys,
                                          std::span<u8> hits) {
  GH_CHECK_MSG(!closed_, "map is closed");
  if (keys.empty()) return;
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kErase, trace_key(keys[0]));
  table().erase_batch(keys, hits);
  flight_end(f, obs::OpKind::kErase, trace_key(keys[0]));
  op_finish(obs::OpKind::kErase, trace_key(keys[0]), t0, l0);
}

template <class Cell>
std::optional<u64> BasicGroupHashMap<Cell>::get(const key_type& key) {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kFind, trace_key(key));
  auto r = table().find(key);
  flight_end(f, obs::OpKind::kFind, trace_key(key));
  op_finish(obs::OpKind::kFind, trace_key(key), t0, l0);
  return r;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::contains(const key_type& key) {
  return get(key).has_value();
}

template <class Cell>
u64 BasicGroupHashMap<Cell>::increment(const key_type& key, u64 delta) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kInsert, trace_key(key));
  // One probe: find the cell, bump its value in place; fall back to an
  // insert when the key is new.
  if (const auto current = table().find(key)) {
    const u64 next = *current + delta;
    GH_CHECK(table().update(key, next));
    flight_end(f, obs::OpKind::kInsert, trace_key(key));
    op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
    return next;
  }
  while (!table().insert(key, delta)) {
    if (!options_.auto_expand) throw std::runtime_error("GroupHashMap is full");
    if (!try_expand()) {
      throw MapDegradedError("GroupHashMap insert deferred: expansion failing (" +
                             last_expand_error_ + "); will retry with backoff");
    }
  }
  flight_end(f, obs::OpKind::kInsert, trace_key(key));
  op_finish(obs::OpKind::kInsert, trace_key(key), t0, l0);
  return delta;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::erase(const key_type& key) {
  GH_CHECK_MSG(!closed_, "map is closed");
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin(obs::OpKind::kErase, trace_key(key));
  const bool hit = table().erase(key);
  flight_end(f, obs::OpKind::kErase, trace_key(key));
  op_finish(obs::OpKind::kErase, trace_key(key), t0, l0);
  return hit;
}

template <class Cell>
hash::RecoveryReport BasicGroupHashMap<Cell>::recover_now() {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin_always(obs::OpKind::kRecover);
  auto report = table().recover();
  // Attach the black box's forensics: how many ops the previous run had
  // in flight when it died (what this recovery is repairing after).
  report.in_flight_ops = flight_scan_.in_flight.size();
  metrics_.recoveries++;
  flight_end(f, obs::OpKind::kRecover);
  op_finish(obs::OpKind::kRecover, 0, t0, l0);
  return report;
}

template <class Cell>
void BasicGroupHashMap<Cell>::report_loss(const hash::LostCell& cell) {
  if (options_.on_lost_cell) options_.on_lost_cell(cell);
}

template <class Cell>
hash::ScrubReport BasicGroupHashMap<Cell>::scrub(u64 max_groups) {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  hash::ScrubReport report;
  const u64 ngroups = table().num_groups();
  if (ngroups == 0 || !table().checksums_enabled()) return report;
  const u64 f = flight_begin_always(obs::OpKind::kScrub);
  // Wrap-around cursor: each call resumes where the last one stopped, so
  // a periodic scrub(k) tick eventually covers the whole table.
  u64 remaining = std::min(max_groups, ngroups);
  while (remaining > 0) {
    if (scrub_cursor_ >= ngroups) scrub_cursor_ = 0;
    const u64 chunk = std::min(remaining, ngroups - scrub_cursor_);
    report += table().scrub_groups(
        scrub_cursor_, chunk, [this](const hash::LostCell& c) { report_loss(c); },
        options_.scrub_mode);
    scrub_cursor_ = (scrub_cursor_ + chunk) % ngroups;
    remaining -= chunk;
  }
  if (report.groups_quarantined > 0) {
    flight_event(obs::FlightEvent::kQuarantine, obs::OpKind::kScrub);
  }
  flight_end(f, obs::OpKind::kScrub);
  op_finish(obs::OpKind::kScrub, 0, t0, l0);
  return report;
}

template <class Cell>
bool BasicGroupHashMap<Cell>::try_expand() {
  if (expand_cooldown_ > 0) {
    // Still backing off: absorb this placement failure without retrying.
    expand_cooldown_--;
    return false;
  }
  try {
    expand();
  } catch (const nvm::SimulatedCrash&) {
    throw;  // a simulated power failure must freeze the world, not degrade
  } catch (const std::exception& e) {
    metrics_.expand_failures++;
    expand_pending_ = true;
    last_expand_error_ = e.what();
    // Journal the degradation: after a crash the black box shows the map
    // was limping, even if no expansion was mid-publish.
    flight_event(obs::FlightEvent::kDegraded, obs::OpKind::kExpand);
    // The first failure keeps cooldown at zero — a transient fault (one
    // full disk scan, a single ENOSPC blip) costs exactly one retried
    // expansion. Only consecutive failures open a backoff window, and it
    // doubles up to the cap from there.
    expand_cooldown_ = expand_backoff_;
    expand_backoff_ =
        expand_backoff_ == 0 ? 1 : std::min<u64>(expand_backoff_ * 2, kMaxExpandBackoff);
    return false;
  }
  expand_pending_ = false;
  expand_backoff_ = 0;
  expand_cooldown_ = 0;
  return true;
}

template <class Cell>
const MapMetrics& BasicGroupHashMap<Cell>::metrics() {
  // After abandon() the table is gone; serve the (reset) stored sample
  // instead of dereferencing it.
  if (table_) metrics_.table = table().stats();
  if (pm_) metrics_.persist = pm_->stats();
  return metrics_;
}

template <class Cell>
obs::Snapshot BasicGroupHashMap<Cell>::snapshot() {
  obs::Snapshot s;
  s.source = sizeof(Cell) == 16 ? "GroupHashMap" : "GroupHashMapWide";
  if (table_) {
    s.size = table().count();
    s.capacity = table().capacity();
    s.load_factor = table().load_factor();
    s.table = obs::TableOpSnapshot::from(table().stats());
    s.scrub = obs::ScrubSnapshot::from(table().stats(), open_scrub_);
  } else {
    // Abandoned (simulated crash): counters were reset coherently there.
    s.table = obs::TableOpSnapshot::from(metrics_.table);
    s.scrub = obs::ScrubSnapshot::from(metrics_.table, open_scrub_);
  }
  if (pm_) s.persist = obs::PersistSnapshot::from(pm_->stats());
  s.lifecycle.expansions = metrics_.expansions;
  s.lifecycle.expand_failures = metrics_.expand_failures;
  s.lifecycle.recoveries = metrics_.recoveries;
  s.lifecycle.orphans_reclaimed = orphans_reclaimed_;
  s.lifecycle.degraded = expand_pending_;
  if (recorder_) s.latency = obs::OpLatencySnapshot::from(*recorder_);
  s.flight.enabled = flight_ != nullptr;
  if (flight_scan_.valid_header) {
    s.flight.records_scanned = flight_scan_.records_valid;
    s.flight.records_torn = flight_scan_.records_torn;
    for (const obs::InFlightOp& op : flight_scan_.in_flight) {
      s.flight.in_flight_on_open.push_back(
          obs::FlightOpBrief{op.kind, op.phase, op.seqno, op.key_hash});
    }
  }
  return s;
}

template <class Cell>
void BasicGroupHashMap<Cell>::expand() {
  const u64 t0 = op_start();
  const u64 l0 = lines_before();
  const u64 f = flight_begin_always(obs::OpKind::kExpand, table().capacity());
  u64 new_total = 2 * table().capacity();
  for (;;) {
    typename Table::Params params{
        .level_cells = new_total / 2,
        .group_size = static_cast<u32>(std::min<u64>(table().group_size(), new_total / 2)),
        .seed = table().seed(),
        .zero_memory = false,
        // The rebuild inherits the image's integrity setting. Rebuilding
        // into fresh memory also clears any quarantine: cells re-inserted
        // here land on trusted media with freshly maintained checksums.
        .group_crc = table().checksums_enabled()};
    const usize table_bytes = Table::required_bytes(params);
    const bool file_backed = region_.file_backed();
    const std::string tmp_path = path_ + kExpandSuffix;
    nvm::NvmRegion new_region =
        file_backed ? nvm::NvmRegion::create_file(tmp_path, kTableOffset + table_bytes)
                    : nvm::NvmRegion::create_anonymous(kTableOffset + table_bytes);
    Table new_table(*pm_, new_region.bytes().subspan(kTableOffset, table_bytes), params,
                    /*format=*/true);
    bool refill_ok = true;
    table().for_each([&](const key_type& k, u64 v) {
      if (refill_ok && !new_table.insert(k, v)) refill_ok = false;
    });
    if (!refill_ok) {
      // Pathological grouping in the bigger table; double again.
      new_total *= 2;
      if (file_backed) nvm::FaultFs::remove(tmp_path);
      continue;
    }
    // Publish the new table: superblock, sync, then atomically replace the
    // old file. The mapping of the new file survives the rename.
    {
      auto* sb = reinterpret_cast<Superblock*>(new_region.data());
      pm_->store_u64(&sb->magic, kMapMagic);
      pm_->store_u64(&sb->version, kMapVersion);
      pm_->store_u64(&sb->state, kStateDirty);
      pm_->store_u64(&sb->cell_size, sizeof(Cell));
      pm_->store_u64(&sb->table_offset, kTableOffset);
      pm_->store_u64(&sb->table_bytes, table_bytes);
      pm_->store_u64(&sb->group_size, params.group_size);
      pm_->store_u64(&sb->seed, params.seed);
      pm_->store_u64(&sb->crc, map_format::superblock_crc(*sb));
      pm_->persist(sb, sizeof(Superblock));
    }
    // Journal the publish step: if the rename protocol below crashes, the
    // black box shows an expansion that reached `publish` but not
    // `finish` — the exact op recovery is repairing after.
    flight_mark(f, obs::OpKind::kExpand, new_total);
    if (file_backed) {
      // write-back → rename → fsync(parent): the shared durable publish
      // protocol (src/nvm/fault_fs.hpp). Unlinks the temp file before
      // throwing on failure; a SimulatedCrash propagates untouched.
      nvm::publish_region_file(new_region, tmp_path, path_,
                               "failed to publish expanded map file");
    }
    // Preserve operation statistics across the rebuild.
    new_table.stats() = table().stats();
    table_.emplace(std::move(new_table));
    if (options_.retain_retired_regions) {
      retired_regions_.push_back(std::move(region_));
    }
    region_ = std::move(new_region);
    metrics_.expansions++;
    scrub_cursor_ = 0;  // group numbering changed with the geometry
    flight_end(f, obs::OpKind::kExpand, new_total);
    op_finish(obs::OpKind::kExpand, 0, t0, l0);
    return;
  }
}

template class BasicGroupHashMap<hash::Cell16>;
template class BasicGroupHashMap<hash::Cell32>;

}  // namespace gh
