// ConcurrentGroupHashMap — thread-safe sharded wrapper over GroupHashMap
// with optimistic lock-free reads.
//
// Keys are routed to one of N power-of-two shards by an independent hash;
// each shard is a complete GroupHashMap, so per-shard recovery/expansion
// is unchanged and the paper's consistency argument holds verbatim: every
// shard commits with the same 8-byte atomic protocol.
//
// Concurrency (this layer's contribution):
//   * writers (put/erase) take the shard's seqlock exclusively; the
//     epoch goes odd around mutation + persist;
//   * readers (get) run LOCK-FREE: snapshot the epoch, probe through an
//     immutable TableReadView with acquire loads, and validate the epoch
//     — retrying on a mismatch and falling back to the lock after
//     kMaxOptimisticAttempts failures so writer churn cannot starve them
//     (see util/seqlock.hpp and core/optimistic_read.hpp);
//   * expansion publishes a fresh view and retires (never unmaps) the old
//     region, so a stale reader touches only mapped memory and is then
//     rejected by validation.
//
// Per-shard contention counters (read retries, fallback acquisitions,
// writer waits) are exact and surfaced via contention()/shard_contention()
// and the inspect machinery (core/inspect.hpp: inspect_shards()).
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/group_hash_map.hpp"
#include "core/optimistic_read.hpp"
#include "hash/hash_functions.hpp"
#include "util/assert.hpp"
#include "util/seqlock.hpp"
#include "util/types.hpp"

namespace gh {

template <class Cell>
class BasicConcurrentGroupHashMap {
 public:
  using key_type = typename Cell::key_type;
  using Shard = BasicGroupHashMap<Cell>;
  using Table = typename Shard::Table;
  using ReadView = core::TableReadView<Cell>;

  /// Optimistic attempts before a reader falls back to the shard lock.
  static constexpr u32 kMaxOptimisticAttempts = 8;

  /// In-memory concurrent map with `shards` (power of two) shards. The
  /// total cell budget options.initial_cells is split across shards with
  /// a ceiling divide, so the summed capacity is never below the request.
  explicit BasicConcurrentGroupHashMap(usize shards = 16, const MapOptions& options = {},
                                       LockMode mode = LockMode::kOptimistic)
      : mode_(mode) {
    GH_CHECK_MSG(is_pow2(shards), "shard count must be a power of two");
    MapOptions per_shard = options;
    per_shard.initial_cells =
        std::max<u64>((options.initial_cells + shards - 1) / shards, 64);
    per_shard.retain_retired_regions = true;
    shards_.reserve(shards);
    for (usize i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<ShardState>(per_shard));
    }
  }

  void put(const key_type& key, u64 value) {
    ShardState& sh = shard(key);
    SeqLockWriteGuard guard(sh.lock, &sh.contention);
    sh.map.put(key, value);
    sh.republish_view_if_moved();
  }

  [[nodiscard]] std::optional<u64> get(const key_type& key) {
    ShardState& sh = shard(key);
    if (mode_ == LockMode::kOptimistic) {
      u64 retries = 0;
      for (u32 attempt = 0; attempt < max_optimistic_attempts_; ++attempt) {
        const u64 epoch = sh.lock.read_begin();
        if (!SeqLock::epoch_stable(epoch)) {
          ++retries;
          cpu_relax();
          continue;
        }
        const ReadView* view = sh.view.load(std::memory_order_acquire);
        const auto result = core::optimistic_find(*view, key);
        if (sh.lock.read_validate(epoch)) {
          if (retries != 0) sh.contention.read_retries += retries;
          return result;
        }
        ++retries;
      }
      sh.contention.read_retries += retries;
      sh.contention.read_fallbacks += 1;
    }
    SeqLockReadGuard guard(sh.lock);
    return sh.map.get(key);
  }

  bool erase(const key_type& key) {
    ShardState& sh = shard(key);
    SeqLockWriteGuard guard(sh.lock, &sh.contention);
    // Help-along migration means ANY mutating op can restructure the
    // shard (start, drain, or finalize a resize), so every write path
    // republishes, not just put.
    const bool hit = sh.map.erase(key);
    sh.republish_view_if_moved();
    return hit;
  }

  /// Batched lookup: keys are bucketed by shard; each shard's sub-batch
  /// resolves under ONE optimistic epoch validation (all its tag scans
  /// and cell reads together — the same one-epoch argument as a single
  /// optimistic_find), retrying and finally falling back to the shard
  /// lock plus the map's prefetching get_batch. out[i] receives the
  /// result for keys[i].
  void get_batch(std::span<const key_type> keys, std::span<std::optional<u64>> out) {
    GH_CHECK_MSG(keys.size() == out.size(), "get_batch spans must have equal size");
    if (keys.empty()) return;
    std::vector<std::vector<u32>> buckets = bucket_by_shard(keys);
    std::vector<key_type> sub_keys;
    std::vector<std::optional<u64>> sub_out;
    for (usize s = 0; s < shards_.size(); ++s) {
      if (buckets[s].empty()) continue;
      sub_keys.clear();
      for (const u32 i : buckets[s]) sub_keys.push_back(keys[i]);
      sub_out.assign(sub_keys.size(), std::nullopt);
      shard_get_batch(*shards_[s], sub_keys, sub_out);
      for (usize w = 0; w < buckets[s].size(); ++w) out[buckets[s][w]] = sub_out[w];
    }
  }

  /// Batched insert-or-update: each shard's sub-batch runs under one
  /// write-lock acquisition through the shard map's fence-coalescing
  /// put_batch. A key always routes to the same shard and in-shard order
  /// follows batch order, so duplicate keys keep sequential last-wins
  /// semantics.
  void put_batch(std::span<const key_type> keys, std::span<const u64> values) {
    GH_CHECK_MSG(keys.size() == values.size(), "put_batch spans must have equal size");
    if (keys.empty()) return;
    std::vector<std::vector<u32>> buckets = bucket_by_shard(keys);
    std::vector<key_type> sub_keys;
    std::vector<u64> sub_vals;
    for (usize s = 0; s < shards_.size(); ++s) {
      if (buckets[s].empty()) continue;
      sub_keys.clear();
      sub_vals.clear();
      for (const u32 i : buckets[s]) {
        sub_keys.push_back(keys[i]);
        sub_vals.push_back(values[i]);
      }
      ShardState& sh = *shards_[s];
      SeqLockWriteGuard guard(sh.lock, &sh.contention);
      sh.map.put_batch(sub_keys, sub_vals);
      sh.republish_view_if_moved();
    }
  }

  /// Batched erase with per-shard fence coalescing. When `hits` is
  /// non-empty it must be keys.size() long; hits[i] is set to 1 if
  /// keys[i] was present.
  void erase_batch(std::span<const key_type> keys, std::span<u8> hits = {}) {
    GH_CHECK_MSG(hits.empty() || hits.size() == keys.size(),
                 "erase_batch hits span must match keys");
    if (keys.empty()) return;
    std::vector<std::vector<u32>> buckets = bucket_by_shard(keys);
    std::vector<key_type> sub_keys;
    std::vector<u8> sub_hits;
    for (usize s = 0; s < shards_.size(); ++s) {
      if (buckets[s].empty()) continue;
      sub_keys.clear();
      for (const u32 i : buckets[s]) sub_keys.push_back(keys[i]);
      if (!hits.empty()) sub_hits.assign(sub_keys.size(), 0);
      ShardState& sh = *shards_[s];
      SeqLockWriteGuard guard(sh.lock, &sh.contention);
      sh.map.erase_batch(sub_keys, hits.empty() ? std::span<u8>{} : std::span<u8>(sub_hits));
      sh.republish_view_if_moved();
      if (!hits.empty()) {
        for (usize w = 0; w < buckets[s].size(); ++w) hits[buckets[s][w]] = sub_hits[w];
      }
    }
  }

  [[nodiscard]] u64 size() {
    u64 total = 0;
    for (auto& sh : shards_) {
      SeqLockReadGuard guard(sh->lock);
      total += sh->map.size();
    }
    return total;
  }

  /// Summed cell capacity across shards (≥ the requested initial_cells
  /// rounded up per shard; grows with expansion).
  [[nodiscard]] u64 capacity() {
    u64 total = 0;
    for (auto& sh : shards_) {
      SeqLockReadGuard guard(sh->lock);
      total += sh->map.capacity();
    }
    return total;
  }

  [[nodiscard]] usize shard_count() const { return shards_.size(); }
  [[nodiscard]] LockMode lock_mode() const { return mode_; }

  /// Shard a key routes to (tests target one shard's lock with this).
  [[nodiscard]] usize shard_index(const key_type& key) const { return shard_of(key); }

  /// One unified stats sample over all shards: the aggregate persist /
  /// table-op / scrub / contention / lifecycle counters, merged per-op
  /// latency histograms, and a per-shard brief. Each shard is sampled
  /// under its seqlock's read side, so a concurrent expansion cannot tear
  /// the view and the carried-over counters survive intact.
  [[nodiscard]] obs::Snapshot snapshot() {
    obs::Snapshot total;
    total.source = sizeof(Cell) == 16 ? "ConcurrentGroupHashMap" : "ConcurrentGroupHashMapWide";
    total.shards = shards_.size();
    for (usize i = 0; i < shards_.size(); ++i) {
      ShardState& sh = *shards_[i];
      SeqLockReadGuard guard(sh.lock);
      obs::Snapshot s = sh.map.snapshot();
      s.contention = obs::ContentionSnapshot::from(sh.contention);
      total.per_shard.push_back(obs::ShardBrief{i, s.size, s.capacity, s.contention,
                                                s.lifecycle.expansions,
                                                s.lifecycle.degraded});
      total.absorb(s);
    }
    return total;
  }

  /// DEPRECATED: contention counters of one shard / aggregated over all
  /// shards — the same numbers snapshot().contention / .per_shard report.
  [[nodiscard]] const LockContention& shard_contention(usize s) const {
    return shards_[s]->contention;
  }
  [[nodiscard]] LockContention contention() const {
    LockContention total;
    for (const auto& sh : shards_) total += sh->contention;
    return total;
  }

  /// Run `fn(const Table&)` on one shard's table under its lock (readers
  /// excluded from writers only — safe for read-only scans; used by
  /// inspect_shards()).
  template <class Fn>
  auto with_shard_table(usize s, Fn&& fn) {
    SeqLockReadGuard guard(shards_[s]->lock);
    return fn(static_cast<const Table&>(shards_[s]->map.raw_table()));
  }

  /// Tests only: lowers (or raises) the optimistic attempt budget; 0 sends
  /// every read straight to the lock fallback.
  void set_max_optimistic_attempts(u32 attempts) { max_optimistic_attempts_ = attempts; }

 private:
  struct ShardState {
    explicit ShardState(const MapOptions& options)
        : map(Shard::create_in_memory(options)) {
      auto initial = std::make_unique<ReadView>(ReadView::of(map.raw_table()));
      view.store(initial.get(), std::memory_order_release);
      views.push_back(std::move(initial));
    }

    /// After a mutation: if the probe geometry changed (expansion, or an
    /// online-resize start/drain/finalize — tracked by the map's
    /// structure_version), publish a fresh view: dual (target + old
    /// table) while a migration runs, single otherwise. Old views are
    /// retired, not freed — a racing reader may still hold one, and the
    /// map's retained regions keep the cells it points at mapped. Called
    /// with the shard seqlock held exclusively.
    void republish_view_if_moved() {
      const u64 version = map.structure_version();
      if (version == published_version) return;
      const Table& table = map.raw_table();
      auto fresh = std::make_unique<ReadView>(
          map.migration_table() ? ReadView::dual(*map.migration_table(), table)
                                : ReadView::of(table));
      fresh->version = version;
      published_version = version;
      view.store(fresh.get(), std::memory_order_release);
      views.push_back(std::move(fresh));
    }

    Shard map;
    SeqLock lock;
    std::atomic<const ReadView*> view{nullptr};
    std::vector<std::unique_ptr<ReadView>> views;  ///< current + retired
    LockContention contention;
    u64 published_version = 0;  ///< map.structure_version() of `view`
  };

  ShardState& shard(const key_type& key) { return *shards_[shard_of(key)]; }

  [[nodiscard]] std::vector<std::vector<u32>> bucket_by_shard(
      std::span<const key_type> keys) const {
    std::vector<std::vector<u32>> buckets(shards_.size());
    for (usize i = 0; i < keys.size(); ++i) {
      buckets[shard_of(keys[i])].push_back(static_cast<u32>(i));
    }
    return buckets;
  }

  /// One shard's share of get_batch: the whole sub-batch probes under a
  /// single epoch check. Validation failure retries the sub-batch, then
  /// falls back to the lock (where the shard map's prefetching find_batch
  /// still applies).
  void shard_get_batch(ShardState& sh, std::span<const key_type> keys,
                       std::span<std::optional<u64>> out) {
    if (mode_ == LockMode::kOptimistic) {
      u64 retries = 0;
      for (u32 attempt = 0; attempt < max_optimistic_attempts_; ++attempt) {
        const u64 epoch = sh.lock.read_begin();
        if (!SeqLock::epoch_stable(epoch)) {
          ++retries;
          cpu_relax();
          continue;
        }
        const ReadView* view = sh.view.load(std::memory_order_acquire);
        for (usize i = 0; i < keys.size(); ++i) {
          out[i] = core::optimistic_find(*view, keys[i]);
        }
        if (sh.lock.read_validate(epoch)) {
          if (retries != 0) sh.contention.read_retries += retries;
          return;
        }
        ++retries;
      }
      sh.contention.read_retries += retries;
      sh.contention.read_fallbacks += 1;
    }
    SeqLockReadGuard guard(sh.lock);
    sh.map.get_batch(keys, out);
  }

  [[nodiscard]] usize shard_of(const key_type& key) const {
    // Shard routing must be independent of the in-table hash; use a
    // distinct fixed seed.
    return static_cast<usize>(hash::SeededHash(0xc3a5c85c97cb3127ull)(key)) &
           (shards_.size() - 1);
  }

  std::vector<std::unique_ptr<ShardState>> shards_;
  LockMode mode_;
  u32 max_optimistic_attempts_ = kMaxOptimisticAttempts;
};

using ConcurrentGroupHashMap = BasicConcurrentGroupHashMap<hash::Cell16>;
using ConcurrentGroupHashMapWide = BasicConcurrentGroupHashMap<hash::Cell32>;

}  // namespace gh
