// ConcurrentGroupHashMap — thread-safe sharded wrapper over GroupHashMap.
//
// The paper evaluates single-threaded request latency; concurrency is a
// natural extension for a library release. Keys are routed to one of N
// power-of-two shards by an independent hash; each shard is a complete
// GroupHashMap guarded by its own mutex, so threads touching different
// shards never contend and per-shard recovery/expansion is unchanged.
// This preserves the paper's consistency argument verbatim: every shard
// commits with the same 8-byte atomic protocol.
#pragma once

#include <mutex>
#include <vector>

#include "core/group_hash_map.hpp"
#include "hash/hash_functions.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh {

template <class Cell>
class BasicConcurrentGroupHashMap {
 public:
  using key_type = typename Cell::key_type;
  using Shard = BasicGroupHashMap<Cell>;

  /// In-memory concurrent map with `shards` (power of two) shards, each
  /// starting at options.initial_cells / shards cells.
  explicit BasicConcurrentGroupHashMap(usize shards = 16, const MapOptions& options = {})
      : locks_(shards) {
    GH_CHECK_MSG(is_pow2(shards), "shard count must be a power of two");
    MapOptions per_shard = options;
    per_shard.initial_cells = std::max<u64>(options.initial_cells / shards, 64);
    shards_.reserve(shards);
    for (usize i = 0; i < shards; ++i) {
      shards_.push_back(Shard::create_in_memory(per_shard));
    }
  }

  void put(const key_type& key, u64 value) {
    const usize s = shard_of(key);
    std::lock_guard lock(locks_[s]);
    shards_[s].put(key, value);
  }

  [[nodiscard]] std::optional<u64> get(const key_type& key) {
    const usize s = shard_of(key);
    std::lock_guard lock(locks_[s]);
    return shards_[s].get(key);
  }

  bool erase(const key_type& key) {
    const usize s = shard_of(key);
    std::lock_guard lock(locks_[s]);
    return shards_[s].erase(key);
  }

  [[nodiscard]] u64 size() {
    u64 total = 0;
    for (usize s = 0; s < shards_.size(); ++s) {
      std::lock_guard lock(locks_[s]);
      total += shards_[s].size();
    }
    return total;
  }

  [[nodiscard]] usize shard_count() const { return shards_.size(); }

 private:
  [[nodiscard]] usize shard_of(const key_type& key) const {
    // Shard routing must be independent of the in-table hash; use a
    // distinct fixed seed.
    return static_cast<usize>(hash::SeededHash(0xc3a5c85c97cb3127ull)(key)) &
           (shards_.size() - 1);
  }

  std::vector<Shard> shards_;
  std::vector<std::mutex> locks_;
};

using ConcurrentGroupHashMap = BasicConcurrentGroupHashMap<hash::Cell16>;
using ConcurrentGroupHashMapWide = BasicConcurrentGroupHashMap<hash::Cell32>;

}  // namespace gh
