// On-NVM file format of a GroupHashMap: the superblock page that precedes
// the table. Shared by the map implementation (group_hash_map.cpp) and
// the read-only tooling (inspect.cpp / gh_fsck).
//
// Layout:
//   [0, 4096)   Superblock (magic, version, clean/dirty state, geometry)
//   [4096, ...) GroupHashTable (its own 64-byte header + two cell levels)
#pragma once

#include "util/types.hpp"

namespace gh::map_format {

inline constexpr u64 kMagic = 0x47484d4150303031ull;  // "GHMAP001"
inline constexpr u64 kVersion = 1;
inline constexpr u64 kStateClean = 0x636c65616eull;  // "clean"
inline constexpr u64 kStateDirty = 0x6469727479ull;  // "dirty"
inline constexpr usize kTableOffset = 4096;          // superblock page

struct Superblock {
  u64 magic;
  u64 version;
  u64 state;  ///< kStateClean / kStateDirty; 8-byte atomically flipped
  u64 cell_size;
  u64 table_offset;
  u64 table_bytes;
  u64 group_size;
  u64 seed;
};

}  // namespace gh::map_format
