// On-NVM file format of a GroupHashMap: the superblock page that precedes
// the table. Shared by the map implementation (group_hash_map.cpp) and
// the read-only tooling (inspect.cpp / gh_fsck).
//
// Layout:
//   [0, 4096)   Superblock (magic, version, clean/dirty state, geometry)
//   [4096, ...) GroupHashTable (its own 64-byte header + two cell levels)
//
// The superblock carries a CRC32C over its geometry fields so a bit-rot
// hit on the metadata page fails the open with a typed error instead of
// mapping the table at forged bounds. The mutable `state` word (flipped
// clean/dirty by an 8-byte atomic store on every open/close) is excluded
// from the checksum; it is self-validating — only the two known
// enumerator values are accepted.
#pragma once

#include "util/crc32c.hpp"
#include "util/types.hpp"

namespace gh::map_format {

inline constexpr u64 kMagic = 0x47484d4150303031ull;  // "GHMAP001"
inline constexpr u64 kVersion = 2;                    // v2: + superblock/group checksums
inline constexpr u64 kStateClean = 0x636c65616eull;  // "clean"
inline constexpr u64 kStateDirty = 0x6469727479ull;  // "dirty"
inline constexpr usize kTableOffset = 4096;          // superblock page

struct Superblock {
  u64 magic;
  u64 version;
  u64 state;  ///< kStateClean / kStateDirty; 8-byte atomically flipped
  u64 cell_size;
  u64 table_offset;
  u64 table_bytes;
  u64 group_size;
  u64 seed;
  u64 crc;        ///< CRC32C of the geometry fields above (state excluded)
  u64 migration;  ///< online-resize cursor word; 0 = no migration (see below)
};

// ---------------------------------------------------------------------------
// Online-resize migration cursor.
//
// One 8-byte word, advanced with a single atomic store + persist per
// migrated group (the paper's commit-word discipline — never torn):
//
//   bits [0,31)   cursor: index of the next source group to migrate
//   bit  31       active flag
//   bits [32,64)  CRC32C of the low 32 bits
//
// The word is NOT covered by superblock_crc (it mutates thousands of
// times per resize); it is self-validating instead, like `state`. A zero
// word means "no migration in progress" — which is also what every image
// written before this field existed reads as, keeping format v2 intact.

inline constexpr u32 kMigrationActiveBit = 0x8000'0000u;

inline u64 encode_migration_word(u32 cursor_group) {
  const u32 payload = kMigrationActiveBit | cursor_group;
  const u32 check = ~crc32c_update(~0u, &payload, sizeof(payload));
  return (static_cast<u64>(check) << 32) | payload;
}

/// True iff `word` is zero (inactive) or a well-formed active cursor.
inline bool migration_word_valid(u64 word) {
  if (word == 0) return true;
  const u32 payload = static_cast<u32>(word);
  const u32 check = ~crc32c_update(~0u, &payload, sizeof(payload));
  return (payload & kMigrationActiveBit) != 0 && static_cast<u32>(word >> 32) == check;
}

inline bool migration_word_active(u64 word) { return word != 0; }

inline u32 migration_word_cursor(u64 word) {
  return static_cast<u32>(word) & ~kMigrationActiveBit;
}

/// Checksum of every immutable superblock field. Recomputed when a
/// rebuild (expand) publishes new geometry; verified before the geometry
/// is trusted on open().
inline u32 superblock_crc(const Superblock& sb) {
  u32 c = crc32c_update(~0u, &sb.magic, sizeof(u64));
  c = crc32c_update(c, &sb.version, sizeof(u64));
  c = crc32c_update(c, &sb.cell_size, sizeof(u64));
  c = crc32c_update(c, &sb.table_offset, sizeof(u64));
  c = crc32c_update(c, &sb.table_bytes, sizeof(u64));
  c = crc32c_update(c, &sb.group_size, sizeof(u64));
  c = crc32c_update(c, &sb.seed, sizeof(u64));
  return ~c;
}

}  // namespace gh::map_format
