#include "core/concurrent_string_map.hpp"

#include <algorithm>
#include <cstring>

#include "core/optimistic_read.hpp"
#include "hash/hash_functions.hpp"
#include "util/assert.hpp"

namespace gh {
namespace {

/// Arena record layout (see string_map.cpp): value | key_len | key bytes.
constexpr u64 kRecordHeaderBytes = 2 * sizeof(u64);

/// Shard routing must be independent of the in-table fingerprint hash:
/// FNV-1a over the key bytes with a distinct basis.
usize shard_hash(std::string_view key) {
  u64 h = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<usize>(hash::fmix64(h));
}

}  // namespace

ConcurrentStringMap::ShardState::ShardState(const StringMapOptions& options)
    : map(PersistentStringMap::create_in_memory(options)) {
  auto initial = std::make_unique<Snapshot>(map.read_snapshot());
  snapshot.store(initial.get(), std::memory_order_release);
  snapshots.push_back(std::move(initial));
}

void ConcurrentStringMap::ShardState::republish_snapshot_if_moved() {
  const Snapshot fresh = map.read_snapshot();
  const Snapshot* current = snapshot.load(std::memory_order_relaxed);
  if (current->tab1 == fresh.tab1 && current->arena_data == fresh.arena_data) return;
  auto next = std::make_unique<Snapshot>(fresh);
  snapshot.store(next.get(), std::memory_order_release);
  snapshots.push_back(std::move(next));
}

ConcurrentStringMap::ConcurrentStringMap(const ConcurrentStringMapOptions& options)
    : mode_(options.lock_mode) {
  GH_CHECK_MSG(is_pow2(options.shards), "shard count must be a power of two");
  StringMapOptions per_shard = options.shard_options;
  per_shard.initial_cells =
      std::max<u64>((options.shard_options.initial_cells + options.shards - 1) /
                        options.shards,
                    64);
  per_shard.retain_retired_regions = true;
  shards_.reserve(options.shards);
  for (usize i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(per_shard));
  }
}

usize ConcurrentStringMap::shard_of(std::string_view key) const {
  return shard_hash(key) & (shards_.size() - 1);
}

bool ConcurrentStringMap::optimistic_probe(const Snapshot& snap, std::string_view key,
                                           const Key128& fp, std::optional<u64>& out) {
  core::TableReadView<hash::Cell32> view;
  view.tab1 = snap.tab1;
  view.tab2 = snap.tab2;
  view.mask = snap.mask;
  view.group_size = snap.group_size;
  view.hash = hash::SeededHash(snap.seed);
  view.tags = snap.tags;
  view.tags1 = snap.tags1;
  view.tags2 = snap.tags2;
  const auto offset = core::optimistic_find(view, fp);
  if (!offset.has_value()) {
    out = std::nullopt;  // absent (trustworthy iff the epoch validates)
    return true;
  }
  // A torn/stale cell can surface a garbage offset: never dereference
  // outside the snapshot's arena window.
  if (*offset + kRecordHeaderBytes > snap.arena_capacity) return false;
  const auto* record = reinterpret_cast<const u64*>(snap.arena_data + *offset);
  const u64 value = core::atomic_load_acquire(record[0]);
  const u64 key_len = core::atomic_load_acquire(record[1]);
  if (key_len != key.size()) return false;  // collision or torn — escalate
  if (*offset + kRecordHeaderBytes + key_len > snap.arena_capacity) return false;
  // Plain reads, race-free: the offset came from an acquire-loaded cell
  // word released AFTER these bytes were written (DirectPM), and
  // committed records are immutable except their value word.
  if (std::memcmp(snap.arena_data + *offset + kRecordHeaderBytes, key.data(),
                  key_len) != 0) {
    return false;
  }
  out = value;
  return true;
}

std::optional<u64> ConcurrentStringMap::get(std::string_view key) {
  ShardState& sh = *shards_[shard_of(key)];
  if (mode_ == LockMode::kOptimistic && key.size() <= kMaxOptimisticKeyBytes) {
    const Key128 fp = PersistentStringMap::fingerprint(key);
    u64 retries = 0;
    for (u32 attempt = 0; attempt < max_optimistic_attempts_; ++attempt) {
      const u64 epoch = sh.lock.read_begin();
      if (!SeqLock::epoch_stable(epoch)) {
        ++retries;
        cpu_relax();
        continue;
      }
      const Snapshot* snap = sh.snapshot.load(std::memory_order_acquire);
      std::optional<u64> result;
      const bool conclusive = optimistic_probe(*snap, key, fp, result);
      if (sh.lock.read_validate(epoch) && conclusive) {
        if (retries != 0) sh.contention.read_retries += retries;
        return result;
      }
      // Inconclusive-but-valid means a genuine key/fingerprint anomaly:
      // let the locked path re-check and report it.
      if (conclusive) ++retries;
      else break;
    }
    sh.contention.read_retries += retries;
    sh.contention.read_fallbacks += 1;
  }
  SeqLockReadGuard guard(sh.lock);
  return sh.map.get(key);
}

void ConcurrentStringMap::get_batch(std::span<const std::string_view> keys,
                                    std::span<std::optional<u64>> out) {
  GH_CHECK_MSG(keys.size() == out.size(), "get_batch spans must have equal size");
  if (keys.empty()) return;
  std::vector<std::vector<u32>> buckets(shards_.size());
  for (usize i = 0; i < keys.size(); ++i) {
    buckets[shard_of(keys[i])].push_back(static_cast<u32>(i));
  }
  std::vector<std::string_view> sub_keys;
  std::vector<Key128> sub_fps;
  std::vector<std::optional<u64>> sub_out;
  for (usize s = 0; s < shards_.size(); ++s) {
    if (buckets[s].empty()) continue;
    ShardState& sh = *shards_[s];
    sub_keys.clear();
    bool optimistic_eligible = mode_ == LockMode::kOptimistic;
    for (const u32 i : buckets[s]) {
      sub_keys.push_back(keys[i]);
      if (keys[i].size() > kMaxOptimisticKeyBytes) optimistic_eligible = false;
    }
    sub_out.assign(sub_keys.size(), std::nullopt);
    bool resolved = false;
    if (optimistic_eligible) {
      sub_fps.clear();
      for (const auto k : sub_keys) sub_fps.push_back(PersistentStringMap::fingerprint(k));
      u64 retries = 0;
      for (u32 attempt = 0; attempt < max_optimistic_attempts_; ++attempt) {
        const u64 epoch = sh.lock.read_begin();
        if (!SeqLock::epoch_stable(epoch)) {
          ++retries;
          cpu_relax();
          continue;
        }
        const Snapshot* snap = sh.snapshot.load(std::memory_order_acquire);
        bool conclusive = true;
        for (usize w = 0; w < sub_keys.size() && conclusive; ++w) {
          conclusive = optimistic_probe(*snap, sub_keys[w], sub_fps[w], sub_out[w]);
        }
        if (sh.lock.read_validate(epoch) && conclusive) {
          if (retries != 0) sh.contention.read_retries += retries;
          resolved = true;
          break;
        }
        if (conclusive) {
          ++retries;
        } else {
          break;  // genuine anomaly: let the locked path re-check and report
        }
      }
      if (!resolved) {
        sh.contention.read_retries += retries;
        sh.contention.read_fallbacks += 1;
      }
    }
    if (!resolved) {
      SeqLockReadGuard guard(sh.lock);
      sh.map.get_batch(sub_keys, sub_out);
    }
    for (usize w = 0; w < buckets[s].size(); ++w) out[buckets[s][w]] = sub_out[w];
  }
}

void ConcurrentStringMap::put(std::string_view key, u64 value) {
  ShardState& sh = *shards_[shard_of(key)];
  SeqLockWriteGuard guard(sh.lock, &sh.contention);
  sh.map.put(key, value);
  sh.republish_snapshot_if_moved();
}

bool ConcurrentStringMap::erase(std::string_view key) {
  ShardState& sh = *shards_[shard_of(key)];
  SeqLockWriteGuard guard(sh.lock, &sh.contention);
  return sh.map.erase(key);
}

u64 ConcurrentStringMap::size() {
  u64 total = 0;
  for (auto& sh : shards_) {
    SeqLockReadGuard guard(sh->lock);
    total += sh->map.size();
  }
  return total;
}

LockContention ConcurrentStringMap::contention() const {
  LockContention total;
  for (const auto& sh : shards_) total += sh->contention;
  return total;
}

obs::Snapshot ConcurrentStringMap::snapshot() {
  obs::Snapshot total;
  total.source = "ConcurrentStringMap";
  total.shards = shards_.size();
  for (usize i = 0; i < shards_.size(); ++i) {
    ShardState& sh = *shards_[i];
    SeqLockReadGuard guard(sh.lock);
    obs::Snapshot s = sh.map.snapshot();
    s.contention = obs::ContentionSnapshot::from(sh.contention);
    total.per_shard.push_back(obs::ShardBrief{i, s.size, s.capacity, s.contention,
                                              s.lifecycle.compactions,
                                              s.lifecycle.degraded});
    total.absorb(s);
  }
  return total;
}

}  // namespace gh
