// Parallel recovery — a multicore extension of the paper's Algorithm 4.
//
// Recovery scans the whole table (the paper measures 630 ms for a 1 GiB
// table, Table 3). The scan is embarrassingly parallel: cells are
// independent, scrubbing one never touches another, and the only shared
// state — the recomputed `count` — reduces over slices. This splits the
// index space across threads, each with its own persistence policy
// instance (so flush statistics and latency injection stay per-thread),
// and publishes the merged count once at the end. The result is
// bit-identical to the sequential Algorithm 4.
#pragma once

#include <thread>
#include <vector>

#include "hash/group_hashing.hpp"
#include "nvm/direct_pm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace gh {

struct ParallelRecoveryResult {
  hash::RecoveryReport report;
  u32 threads_used = 0;
  /// Merged NVM traffic of every worker policy (scrub stores, flushes,
  /// fences, injected latency). Also folded into the table's own policy
  /// stats, so recovery cost accounting matches the sequential path.
  nvm::PersistStats persist;
};

/// Recover `table` using up to `threads` workers (0 = hardware
/// concurrency). The table's own persistence configuration is replicated
/// per worker.
template <class Cell>
ParallelRecoveryResult parallel_recover(
    hash::GroupHashTable<Cell, nvm::DirectPM>& table, u32 threads = 0) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const u64 level_cells = table.level_cells();
  threads = static_cast<u32>(std::min<u64>(threads, std::max<u64>(1, level_cells / 1024)));
  if (threads <= 1) {
    // Sequential fallback: traffic lands directly in the table's own
    // policy (as recover() always does), so `persist` stays zero here.
    ParallelRecoveryResult r;
    r.report = table.recover();
    r.threads_used = 1;
    return r;
  }

  const nvm::PersistConfig config = table.pm().config();
  std::vector<hash::RecoveryReport> slices(threads);
  std::vector<nvm::PersistStats> worker_stats(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // Slices must be group-aligned when checksums are enabled: each slice
  // rebuilds the checksums of exactly the groups it owns, so a group may
  // not straddle two workers.
  u64 chunk = (level_cells + threads - 1) / threads;
  if (table.checksums_enabled()) chunk = round_up(chunk, table.group_size());
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&table, &slices, &worker_stats, config, t, chunk, level_cells] {
      const u64 begin = t * chunk;
      const u64 end = std::min(level_cells, begin + chunk);
      nvm::DirectPM worker_pm(config);
      if (begin < end) slices[t] = table.recover_slice(begin, end, worker_pm);
      worker_stats[t] = worker_pm.stats();
    });
  }
  for (auto& w : workers) w.join();

  ParallelRecoveryResult result;
  result.threads_used = threads;
  for (const auto& s : slices) {
    result.report.cells_scanned += s.cells_scanned;
    result.report.cells_scrubbed += s.cells_scrubbed;
    result.report.recovered_count += s.recovered_count;
    result.report.media_errors += s.media_errors;
  }
  for (const auto& s : worker_stats) result.persist += s;
  // Fold worker traffic into the table's own policy so the map-level
  // metrics see the same flush/fence totals the sequential recover()
  // would have produced (plus the count publish below).
  table.pm().stats() += result.persist;
  table.set_recovered_count(result.report.recovered_count);
  return result;
}

}  // namespace gh
