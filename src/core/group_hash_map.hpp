// GroupHashMap — the user-facing persistent key-value map built on group
// hashing. This is the library API a downstream application adopts:
//
//   auto map = gh::GroupHashMap::create("/mnt/pmem/index.gh", {});
//   map.put(42, 1000);
//   map.close();                       // clean shutdown
//   ...
//   auto map2 = gh::GroupHashMap::open("/mnt/pmem/index.gh");
//   // after a crash, open() runs Algorithm-4 recovery automatically
//
// On top of the raw table (src/hash/group_hashing.hpp) this layer adds:
//   * a superblock with magic/version and a clean/dirty state flag, so
//     open() knows whether the last shutdown was orderly;
//   * checked semantics: put() is an upsert, duplicate inserts cannot
//     create duplicate cells;
//   * automatic expansion: when an insert finds its level-2 group full
//     (the paper's "capacity needs to be expanded" signal) the map
//     rebuilds into a table twice the size — for file-backed maps via
//     write-new-file + atomic rename;
//   * a choice of key widths: GroupHashMap (63-bit integer keys) and
//     GroupHashMapWide (128-bit keys, e.g. content fingerprints).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/errors.hpp"
#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "util/types.hpp"

namespace gh {

struct MapOptions {
  /// Total cell budget (level 1 + level 2); rounded up to a power of two.
  u64 initial_cells = 1ull << 16;
  /// Cells per group (paper default 256; power of two).
  u32 group_size = 256;
  u64 hash_seed = hash::kDefaultSeed1;
  /// Emulated NVM write latency injected after each cacheline flush.
  /// 0 = run at memory speed (real persistent memory, or no emulation).
  u64 flush_latency_ns = 0;
  /// Double the table (rebuild) when an insert fails instead of throwing.
  bool auto_expand = true;
  /// Keep the old region mapped (instead of unmapping it) when expansion
  /// rebuilds into a new one. Required by the optimistic concurrent
  /// wrapper: a lock-free reader racing an expansion may still probe the
  /// retired table, and must hit mapped (stale) memory — its seqlock
  /// validation then discards the result. Doubling bounds the total
  /// retired footprint below the live table's size.
  bool retain_retired_regions = false;
  /// Maintain per-group CRC32C checksums in the table (and a checksummed
  /// superblock), so at-rest corruption is detected instead of served.
  /// Costs one extra 8-byte flush per mutation; bench/ablation_integrity
  /// measures it. The setting is baked into the file at create() time —
  /// open() follows whatever the image says.
  bool checksum_groups = true;
  /// Verify every group checksum when open()ing a cleanly closed map.
  /// Groups that fail are quarantined and their cells reported through
  /// on_lost_cell; open_scrub_report() summarises what was found. (A
  /// dirty open runs recovery instead, which rebuilds the checksums.)
  bool verify_on_open = true;
  /// What scrub/verification does with the occupied cells of a group
  /// whose checksum fails (see hash::ScrubMode).
  hash::ScrubMode scrub_mode = hash::ScrubMode::kDropGroup;
  /// Invoked for every cell a scrub pass drops or salvages — the hook an
  /// application uses to re-ingest lost keys from an upstream source.
  std::function<void(const hash::LostCell&)> on_lost_cell = nullptr;
  /// Record per-op latency histograms (see obs/metrics.hpp). Always off
  /// when built with GH_OBS_OFF.
  bool record_latency = true;
  /// Time 1 in 2^shift ops (0 = every op). See obs::kDefaultSampleShift
  /// for why timing every op is expensive on virtualized TSCs.
  u32 latency_sample_shift = obs::kDefaultSampleShift;
  /// Flight recorder (obs/flight_recorder.hpp): a crash-surviving ring
  /// of op-event records in a `<path>.flight` sidecar (anonymous memory
  /// for in-memory maps). kSampled journals 1 in 2^flight_sample_shift
  /// data ops plus every lifecycle op; kFull journals everything; kOff
  /// writes nothing and creates no sidecar. Always off (and no sidecar
  /// is ever created) under GH_OBS_OFF.
  obs::FlightMode flight_mode = obs::FlightMode::kSampled;
  /// Journal 1 in 2^shift data ops in kSampled mode (0 = every op).
  u32 flight_sample_shift = obs::kFlightSampleShift;
  /// Resize incrementally instead of with one blocking rebuild. When an
  /// insert needs capacity, a double-sized migration target is created
  /// and published (`<path>.migrate`, own superblock), and groups are
  /// rehashed into it a few at a time by the mutating ops themselves
  /// ("help-along", bounded by migrate_groups_per_op) plus any explicit
  /// migrate_step() calls from a maintenance tick. Reads probe new-then-
  /// old while the migration runs. The migration cursor is durable (an
  /// 8-byte self-checksummed word in the superblock), so a crash
  /// mid-resize resumes where it stopped instead of restarting — and an
  /// image with an interrupted migration always resumes on open(),
  /// whatever this flag says. Off by default: blocking expand().
  bool online_resize = false;
  /// Groups each mutating op migrates while a migration is active (the
  /// help-along bound — the knob trading per-op stall for migration
  /// drain rate). 0 = ops never help; only migrate_step() advances.
  u32 migrate_groups_per_op = 1;
};

/// DEPRECATED back-compat view — read snapshot() instead, which adds
/// scrub, latency and lifecycle data in one sampled struct.
struct MapMetrics {
  hash::TableStats table;
  nvm::PersistStats persist;
  u64 expansions = 0;
  u64 recoveries = 0;
  u64 expand_failures = 0;  ///< expansion attempts that failed (e.g. ENOSPC)
};

template <class Cell>
class BasicGroupHashMap {
 public:
  using key_type = typename Cell::key_type;
  using Table = hash::GroupHashTable<Cell, nvm::DirectPM>;

  /// Create a fresh file-backed map (truncates an existing file).
  static BasicGroupHashMap create(const std::string& path, const MapOptions& options = {});

  /// Create a map backed by anonymous memory (contents die with the
  /// process; useful for tests and volatile caches).
  static BasicGroupHashMap create_in_memory(const MapOptions& options = {});

  /// Open an existing file-backed map. If the map was not closed cleanly,
  /// recovery (Algorithm 4) runs before the map is usable;
  /// recovered_on_open() reports that it did.
  static BasicGroupHashMap open(const std::string& path, const MapOptions& options = {});

  BasicGroupHashMap(BasicGroupHashMap&&) noexcept = default;
  BasicGroupHashMap& operator=(BasicGroupHashMap&&) noexcept = default;
  ~BasicGroupHashMap();

  /// Insert or update. May expand the map; throws std::runtime_error when
  /// the map is full and auto_expand is off. When the key cannot be
  /// placed and expansion is currently failing (ENOSPC, allocation
  /// failure), throws MapDegradedError instead — the map keeps serving at
  /// elevated load factor and retries the expansion with capped
  /// exponential backoff on subsequent placement failures.
  void put(const key_type& key, u64 value);

  [[nodiscard]] std::optional<u64> get(const key_type& key);
  [[nodiscard]] bool contains(const key_type& key);

  /// Read-modify-write in one lookup: adds `delta` to the key's value
  /// (inserting `delta` if absent) and returns the new value. The value
  /// overwrite is a single 8-byte atomic store, so a crash leaves either
  /// the old or the new counter — never a torn one.
  u64 increment(const key_type& key, u64 delta = 1);

  /// Batched lookup with software prefetching (see
  /// hash::GroupHashTable::find_batch). out[i] receives the result for
  /// keys[i].
  void get_batch(std::span<const key_type> keys, std::span<std::optional<u64>> out);

  /// Batched insert-or-update with coalesced persist fences (see
  /// hash::GroupHashTable::upsert_batch): within a window, payload
  /// flushes share one fence and commit flushes share another, so the
  /// fence cost amortises across keys while each cell still commits with
  /// its own 8-byte atomic store. Keys are applied strictly in order;
  /// duplicate keys within the batch behave as sequential puts (last one
  /// wins). Expansion (and its failure modes) matches put(): throws
  /// std::runtime_error when full with auto_expand off, MapDegradedError
  /// when expansion is failing — keys before the failing one are already
  /// durably applied.
  void put_batch(std::span<const key_type> keys, std::span<const u64> values);

  /// Removes the key; returns whether it was present.
  bool erase(const key_type& key);

  /// Batched erase with coalesced persist fences (see
  /// hash::GroupHashTable::erase_batch). When `hits` is non-empty it must
  /// be keys.size() long; hits[i] is set to 1 if keys[i] was present.
  /// Duplicate keys within the batch behave sequentially (the second
  /// erase of a key misses).
  void erase_batch(std::span<const key_type> keys, std::span<u8> hits = {});

  /// Visit all (key, value) pairs. During an online resize the live set
  /// is split across the migration target and the old table (disjoint:
  /// a group's cells are erased from the old table only after they are
  /// committed in the new one), so both are walked.
  template <class Fn>
  void for_each(Fn&& fn) const {
    if (mig_table_) mig_table_->for_each(fn);
    table().for_each(fn);
  }

  [[nodiscard]] u64 size() const {
    return table().count() + (mig_table_ ? mig_table_->count() : 0);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] u64 capacity() const {
    return table().capacity() + (mig_table_ ? mig_table_->capacity() : 0);
  }
  [[nodiscard]] double load_factor() const {
    const u64 cap = capacity();
    return cap == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(cap);
  }
  [[nodiscard]] bool recovered_on_open() const { return recovered_on_open_; }
  /// DEPRECATED: thin alias over the same counters snapshot() reads; kept
  /// for one release. Safe (returns the frozen/zeroed sample) after
  /// abandon().
  [[nodiscard]] const MapMetrics& metrics();
  [[nodiscard]] const std::string& path() const { return path_; }

  /// The unified stats sample (obs/snapshot.hpp): persist + table-op +
  /// scrub + lifecycle + per-op latency in one plain-value struct. Safe
  /// to call at any point of the lifecycle, including after abandon()
  /// (all counters read zero then — abandon resets them, simulating the
  /// crash of the process that owned them).
  [[nodiscard]] obs::Snapshot snapshot();

  /// This map's per-op latency recorder (histograms fed by put/get/erase
  /// timers). Used by the concurrent wrappers to merge shard latencies.
  [[nodiscard]] const obs::OpRecorder& op_recorder() const { return *recorder_; }

  /// Atomically-readable live view (phase attribution + migration
  /// gauges): the ONLY map state another thread may poll while this
  /// thread mutates the map (gh_serve's stats ticker). Everything else,
  /// snapshot() included, is owner-thread-only.
  [[nodiscard]] const obs::LiveObs* live_obs() const { return live_obs_.get(); }

  /// Direct access to the underlying table, for the concurrent wrappers
  /// (optimistic read-view snapshots) and inspection tooling. The
  /// reference is invalidated by expansion — callers synchronize.
  [[nodiscard]] Table& raw_table() { return table(); }
  [[nodiscard]] const Table& raw_table() const { return table(); }

  /// Regions retired by expansion while retain_retired_regions is set.
  [[nodiscard]] usize retired_region_count() const { return retired_regions_.size(); }

  /// Force an Algorithm-4 recovery pass (normally done by open()).
  hash::RecoveryReport recover_now();

  /// Incremental integrity pass: verify the checksums of up to
  /// `max_groups` groups, resuming where the previous call stopped and
  /// wrapping around — call it from a background maintenance tick to
  /// bound per-call latency. Groups that fail are quarantined and their
  /// cells reported through MapOptions::on_lost_cell. No-op (empty
  /// report) when the map was created without checksum_groups.
  hash::ScrubReport scrub(u64 max_groups = ~0ull);

  /// True while an online resize is draining groups into the new table.
  [[nodiscard]] bool migration_active() const { return mig_table_.has_value(); }

  /// Next source group the migration will drain (groups below it are
  /// already moved and erased from the old table). Meaningful only while
  /// migration_active().
  [[nodiscard]] u64 migration_cursor() const { return mig_cursor_; }

  /// The in-progress migration target table (nullptr when inactive) —
  /// for the concurrent wrapper's dual-table read view and inspection.
  [[nodiscard]] const Table* migration_table() const {
    return mig_table_ ? &*mig_table_ : nullptr;
  }

  /// Advance an active migration by up to `max_groups` source groups,
  /// finalizing (rename publish + old-region retire) when the cursor
  /// reaches the end. Returns the number of groups drained; 0 when no
  /// migration is active. This is the background-drain hook — the
  /// service shard worker calls it on idle ticks so a resize completes
  /// even without write traffic.
  u64 migrate_step(u64 max_groups);

  /// Bumped whenever the probe geometry changes: expansion, migration
  /// start/finalize/emergency, compaction. The concurrent wrapper
  /// compares it to decide when to republish its read view.
  [[nodiscard]] u64 structure_version() const { return structure_version_; }

  /// Test hooks: verify the DRAM fingerprint tags / per-group CRCs of
  /// every live table (both of them mid-migration).
  [[nodiscard]] bool debug_verify_tags() const;
  [[nodiscard]] bool debug_verify_group_checksums() const;

  /// True while an expansion is owed but failing (see put()). Cleared by
  /// the insert whose retried expansion succeeds.
  [[nodiscard]] bool expand_pending() const { return expand_pending_; }
  [[nodiscard]] bool degraded() const { return expand_pending_; }
  [[nodiscard]] const std::string& last_expand_error() const { return last_expand_error_; }

  /// What open()-time verification found on a cleanly closed map (all
  /// zeros when recovery ran instead, or verification is disabled).
  [[nodiscard]] const hash::ScrubReport& open_scrub_report() const { return open_scrub_; }
  [[nodiscard]] bool corruption_detected_on_open() const { return !open_scrub_.clean(); }

  /// Mark the map clean and sync it. Called by the destructor; calling it
  /// explicitly makes shutdown errors observable.
  void close();

  /// Test hook: drop the mapping WITHOUT marking the map clean, exactly
  /// as a crash would. A file-backed map abandoned this way reopens
  /// through the recovery path (mmap writes are in the page cache, so the
  /// file holds everything stored before the "crash").
  void abandon();

  /// Stale `.expand` temp files (from a crashed publish) that open()
  /// reclaimed before trusting the map file.
  [[nodiscard]] u64 orphans_reclaimed_on_open() const { return orphans_reclaimed_; }

  /// What the open()-time scan of the `.flight` sidecar found: the ops
  /// that were in flight when the previous process died, torn-record
  /// counts, etc. Empty (valid_header = false) for a fresh map, with the
  /// recorder off, or under GH_OBS_OFF. The sidecar is consumed by
  /// open() — the scan is this run's only copy.
  [[nodiscard]] const obs::FlightScan& flight_scan_on_open() const { return flight_scan_; }

  /// The recovery report of the open()-time recovery pass (all zeros when
  /// the map was closed cleanly). `in_flight_ops` carries the flight
  /// recorder's forensics.
  [[nodiscard]] const hash::RecoveryReport& open_recovery_report() const {
    return open_recovery_;
  }

 private:
  struct Superblock;

  BasicGroupHashMap() = default;

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  Superblock* superblock();
  void mark_state(u64 state);
  void expand();
  /// Grow capacity, degrading gracefully: a failure (other than
  /// SimulatedCrash) records the pending-expand state, arms the backoff,
  /// and returns false instead of throwing. Dispatches on the resize
  /// mode: blocking expand() by default, start_migration() under
  /// online_resize, and the blocking emergency merge when a placement
  /// fails while a migration is already running.
  bool try_expand();
  /// The scalar upsert core shared by put/put_batch/increment: routes
  /// writes new-table-first during a migration so readers (which probe
  /// new-then-old) always see the latest committed value.
  void put_value(const key_type& key, u64 value);

  // --- Online-resize state machine (see DESIGN.md, "Online resize") ---
  /// Create + durably publish the `.migrate` target and arm the cursor.
  void start_migration();
  /// Rehash one source group into the target and erase it from the old
  /// table. Idempotent (keys already present in the target are skipped),
  /// so re-running the cursor group after a crash is safe. Returns false
  /// when the target could not place a key — the caller must fall back
  /// to the blocking emergency merge.
  [[nodiscard]] bool migrate_one_group(u64 g);
  /// Drain up to max_groups groups, advancing the durable cursor after
  /// each, and finalize when the cursor reaches the end.
  u64 do_migrate(u64 max_groups);
  /// Help-along hook every mutating op calls while a migration runs.
  void help_migrate();
  /// Publish the fully drained target over `path_` (rename + dir fsync)
  /// and retire the old region.
  void finalize_migration();
  /// Blocking escape hatch: merge old + target into one bigger table
  /// (the target filled up mid-migration, or a second capacity miss hit
  /// while migrating). Clears the migration state.
  void emergency_expand();
  /// open()-time continuation of an interrupted migration: attach (and
  /// if dirty, recover) the `.migrate` target named by the durable
  /// cursor, then keep draining incrementally.
  void resume_migration();
  /// 8-byte atomic advance of the self-checksummed cursor word in the
  /// old superblock, persisted and (file-backed) msync'd.
  void set_migration_word(u64 word);
  void clear_migration_state();
  void report_loss(const hash::LostCell& cell);
  void init_region(nvm::NvmRegion region, const MapOptions& options, bool fresh);
  /// Open/format the `.flight` sidecar and stand up the recorder. Called
  /// by init_region BEFORE recovery so the crash forensics of the
  /// previous run are available to the recovery report. Never throws for
  /// sidecar-content reasons: a corrupt sidecar is reformatted.
  void init_flight(const MapOptions& options, bool fresh);

  // Flight-recorder edges (no-ops when the recorder is off).
  [[nodiscard]] u64 flight_begin(obs::OpKind kind, u64 key_hash) {
    if constexpr (!obs::kEnabled) return 0;
    return flight_ ? flight_->op_begin(kind, key_hash) : 0;
  }
  [[nodiscard]] u64 flight_begin_always(obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return 0;
    return flight_ ? flight_->op_begin_always(kind, key_hash) : 0;
  }
  void flight_mark(u64 token, obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->op_mark(token, kind, key_hash);
  }
  void flight_end(u64 token, obs::OpKind kind, u64 key_hash = 0) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->op_end(token, kind, key_hash);
  }
  void flight_event(obs::FlightEvent e, obs::OpKind kind) {
    if constexpr (!obs::kEnabled) return;
    if (flight_) flight_->event(e, kind);
  }

  // Per-op observability edges (see any_table_impl.hpp for the pattern).
  // A nonzero t0 means "this op is timed": latency recording is sampled
  // through the SampleGate; an installed trace hook or an active
  // request trace (the service stamped this thread) times every op. A
  // timed op also claims the thread's phase-collection scratch (unless
  // an enclosing op, e.g. put → expand, already owns it); op_finish
  // folds the scratch into live_obs_->phases and emits spans when the
  // thread is inside a sampled trace.
  [[nodiscard]] u64 op_start() {
    if constexpr (!obs::kEnabled) return 0;
    const bool sampled = options_.record_latency && gate_.admit();
    if (!sampled && !obs::trace_hook_installed() && !obs::thread_trace_sampled()) {
      return 0;
    }
    const u64 t0 = obs::now_ticks();
    obs::phase_collect_begin(t0);
    return t0;
  }
  [[nodiscard]] u64 lines_before() const {
    if (!obs::trace_hook_installed()) return 0;
    return pm_->stats().lines_flushed.load();
  }
  void op_finish(obs::OpKind kind, u64 key_hash, u64 t0, u64 l0) {
    if constexpr (!obs::kEnabled) return;
    u64 dt = 0;
    if (t0 != 0) {
      dt = obs::now_ticks() - t0;
      if (options_.record_latency) recorder_->record(kind, dt);
      if (live_obs_) obs::phase_collect_finish(live_obs_->phases, kind, t0, dt);
    }
    if (obs::trace_hook_installed()) {
      obs::trace_op(kind, key_hash, dt, pm_->stats().lines_flushed.load() - l0);
    }
  }
  static u64 trace_key(const key_type& key) {
    if constexpr (std::is_same_v<key_type, u64>) {
      return key;
    } else {
      return key.lo;
    }
  }

  std::string path_;
  MapOptions options_;
  nvm::NvmRegion region_;
  std::vector<nvm::NvmRegion> retired_regions_;
  // Heap-allocated so the table's pointer to it stays valid across moves.
  std::unique_ptr<nvm::DirectPM> pm_;
  std::optional<Table> table_;
  // Heap-allocated like pm_: the registry holds its address across moves.
  std::unique_ptr<obs::OpRecorder> recorder_;
  // Phase attribution + atomic migration-gauge mirrors: the fields a
  // live reader (gh_serve's stats thread) may poll while the owning
  // worker mutates the map. Heap-held so the map stays movable.
  std::unique_ptr<obs::LiveObs> live_obs_;
  obs::SampleGate gate_;
  obs::Registration obs_reg_;
  // Flight recorder sidecar: its own PM (so black-box traffic never
  // pollutes the map's write-efficiency counters) over its own region.
  std::unique_ptr<nvm::DirectPM> flight_pm_;
  nvm::NvmRegion flight_region_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::FlightScan flight_scan_;
  hash::RecoveryReport open_recovery_;
  MapMetrics metrics_;
  hash::ScrubReport open_scrub_;
  std::string last_expand_error_;
  // Online-resize state: the migration target table over its own region,
  // plus the in-memory copy of the durable cursor. mig_table_ engaged ==
  // migration active.
  nvm::NvmRegion mig_region_;
  std::optional<Table> mig_table_;
  u64 mig_cursor_ = 0;
  u64 mig_total_groups_ = 0;
  u64 mig_flight_token_ = 0;
  u64 mig_marked_cursor_ = 0;  ///< last cursor journaled to the flight ring
  u64 structure_version_ = 0;
  u64 migrations_started_ = 0;
  u64 migrations_completed_ = 0;
  u64 migrations_resumed_ = 0;
  u64 emergency_expands_ = 0;
  u64 help_steps_ = 0;     ///< groups drained by help-along writers
  u64 bg_steps_ = 0;       ///< groups drained by explicit migrate_step()
  u64 keys_migrated_ = 0;
  u64 scrub_cursor_ = 0;
  u64 expand_backoff_ = 0;   ///< current backoff window (placement-failure events)
  u64 expand_cooldown_ = 0;  ///< failures to absorb before the next retry
  u64 orphans_reclaimed_ = 0;
  bool expand_pending_ = false;
  bool recovered_on_open_ = false;
  bool closed_ = false;
};

/// 63-bit integer keys in 16-byte cells (the paper's RandomNum /
/// Bag-of-Words item shape).
using GroupHashMap = BasicGroupHashMap<hash::Cell16>;

/// 128-bit keys in 32-byte cells (the paper's Fingerprint item shape).
using GroupHashMapWide = BasicGroupHashMap<hash::Cell32>;

}  // namespace gh
