#include "core/inspect.hpp"

#include <stdexcept>

#include "core/map_format.hpp"
#include "nvm/direct_pm.hpp"
#include "hash/cells.hpp"
#include "nvm/region.hpp"

namespace gh {

MapFileInfo read_map_file_info(const std::string& path) {
  nvm::NvmRegion region = nvm::NvmRegion::open_file(path);
  if (region.size() < map_format::kTableOffset + 64) {
    throw std::runtime_error("file too small to be a GroupHashMap: " + path);
  }
  const auto* sb = reinterpret_cast<const map_format::Superblock*>(region.data());
  if (sb->magic != map_format::kMagic) {
    throw std::runtime_error("not a GroupHashMap file: " + path);
  }
  MapFileInfo info;
  info.version = sb->version;
  info.clean = sb->state == map_format::kStateClean;
  info.cell_size = sb->cell_size;
  info.table_offset = sb->table_offset;
  info.table_bytes = sb->table_bytes;
  info.group_size = sb->group_size;
  info.superblock_crc_ok = sb->crc == map_format::superblock_crc(*sb);
  // The table header layout is cell-size independent; Cell16's suffices
  // for the geometry fields.
  using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;
  const auto* th = reinterpret_cast<const Table::Header*>(region.data() + sb->table_offset);
  info.level_cells = th->level_cells;
  info.count = th->count;
  info.group_checksums = (th->flags & Table::kFlagGroupCrc) != 0;
  return info;
}

}  // namespace gh
