// Lock-free optimistic probing of a group-hashing table.
//
// The paper's commit protocol (§3.3) publishes every insert/delete with
// one 8-byte atomic store of the cell's commit word, which makes the
// table naturally readable without locks: a reader that (1) snapshots a
// shard's seqlock epoch, (2) probes with atomic loads, and (3) validates
// the epoch has observed a state some quiescent moment could have shown.
// Torn or stale intermediate states are rejected by the validation and
// retried (see util/seqlock.hpp for the fence discipline).
//
// Two pieces live here:
//
//   * TableReadView — an immutable snapshot of the probing parameters
//     (cell pointers, mask, group size, hash seed). The concurrent
//     wrappers publish a fresh heap-allocated view whenever expansion
//     replaces a shard's table, and retire — but never free — the old
//     view and its region, so a stale reader dereferences only mapped
//     memory and is then corrected by epoch validation.
//
//   * optimistic_find — Algorithm 2 over a view, using acquire loads on
//     every cell word. Acquire pairs with DirectPM's release stores, so a
//     matching commit word guarantees the payload read afterwards is the
//     one published with it (or newer — in which case validation fails).
//
// All loads are atomic, so this path is clean under ThreadSanitizer by
// construction rather than by suppression.
// Fingerprint-tag filtering on this path scans the group's DRAM tag
// bytes with per-byte relaxed atomic loads (NOT the SIMD sweep — mixed
// plain/atomic accesses of bytes a writer is mutating would race; the
// seqlock epoch validation is what makes the filtered result trustworthy:
// a writer racing with the scan holds the write lock, so validation fails
// and the probe retries). The view holds shared ownership of the tag
// block, so a retired view's tags outlive the expansion that replaced
// the table, exactly like the retained region.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "hash/hash_functions.hpp"
#include "hash/tag_probe.hpp"
#include "util/types.hpp"

namespace gh::core {

[[nodiscard]] inline u64 atomic_load_acquire(const u64& word) {
  return std::atomic_ref<u64>(const_cast<u64&>(word)).load(std::memory_order_acquire);
}

/// Immutable probing snapshot of one GroupHashTable — or, during an
/// online resize, of the pair (migration target, draining old table).
/// Values, not references: a view stays usable (if stale) after the
/// table object it was taken from is re-emplaced by expansion.
template <class Cell>
struct TableReadView {
  const Cell* tab1 = nullptr;
  const Cell* tab2 = nullptr;
  u64 mask = 0;
  u32 group_size = 1;
  hash::SeededHash hash{0};
  std::shared_ptr<const u8[]> tags;  ///< keeps the DRAM tag block alive
  const u8* tags1 = nullptr;
  const u8* tags2 = nullptr;
  // Secondary probe set: the draining old table while a migration runs
  // (null old_tab1 = single-table view). The primary set above is the
  // migration target — reads are new-table-first, so a key duplicated by
  // a crash between copy and erase resolves to its authoritative copy.
  // Both tables share the hash seed (the resize preserves it), so one
  // hash computation serves both probes.
  const Cell* old_tab1 = nullptr;
  const Cell* old_tab2 = nullptr;
  u64 old_mask = 0;
  u32 old_group_size = 1;
  std::shared_ptr<const u8[]> old_tags;
  const u8* old_tags1 = nullptr;
  const u8* old_tags2 = nullptr;
  /// structure_version() of the map this view was published for.
  u64 version = 0;

  template <class PM>
  [[nodiscard]] static TableReadView of(const hash::GroupHashTable<Cell, PM>& table) {
    TableReadView v;
    v.tab1 = &table.level1_cell(0);
    v.tab2 = &table.level2_cell(0);
    v.mask = table.level_cells() - 1;
    v.group_size = table.group_size();
    v.hash = hash::SeededHash(table.seed());
    v.tags = table.tags_shared();
    v.tags1 = v.tags.get();
    v.tags2 = v.tags1 + table.level_cells();
    return v;
  }

  /// Dual-table view for an online resize: probe `primary` (the
  /// migration target) first, then `old` on a miss.
  template <class PM>
  [[nodiscard]] static TableReadView dual(const hash::GroupHashTable<Cell, PM>& primary,
                                          const hash::GroupHashTable<Cell, PM>& old) {
    TableReadView v = of(primary);
    v.old_tab1 = &old.level1_cell(0);
    v.old_tab2 = &old.level2_cell(0);
    v.old_mask = old.level_cells() - 1;
    v.old_group_size = old.group_size();
    v.old_tags = old.tags_shared();
    v.old_tags1 = v.old_tags.get();
    v.old_tags2 = v.old_tags1 + old.level_cells();
    return v;
  }
};

/// Atomic-read equivalent of Cell16::matches + value fetch.
[[nodiscard]] inline std::optional<u64> optimistic_read_cell(const hash::Cell16& cell,
                                                             u64 key) {
  const u64 word0 = atomic_load_acquire(cell.word0);
  if (word0 != (key | hash::Cell16::kOccupiedBit)) return std::nullopt;
  return atomic_load_acquire(cell.value);
}

/// Atomic-read equivalent of Cell32::matches + value fetch.
[[nodiscard]] inline std::optional<u64> optimistic_read_cell(const hash::Cell32& cell,
                                                             const Key128& key) {
  const u64 meta = atomic_load_acquire(cell.meta);
  if (meta != (hash::Cell32::kOccupiedBit | hash::Cell32::tag_of(key))) return std::nullopt;
  if (atomic_load_acquire(cell.key_lo) != key.lo) return std::nullopt;
  if (atomic_load_acquire(cell.key_hi) != key.hi) return std::nullopt;
  return atomic_load_acquire(cell.value);
}

/// One table's share of Algorithm 2: tag-filtered probe of a level-1
/// cell and its level-2 group through one probe-parameter set.
template <class Cell>
[[nodiscard]] std::optional<u64> optimistic_probe(const Cell* tab1, const Cell* tab2,
                                                  u64 mask, u32 group_size,
                                                  const u8* tags1, const u8* tags2, u64 h,
                                                  const typename Cell::key_type& key) {
  const u64 k = h & mask;
  const u8 tag = hash::tag_of_hash(h);
  if (hash::tag_load_relaxed(tags1 + k) == tag) {
    if (const auto hit = optimistic_read_cell(tab1[k], key)) return hit;
  }
  const u64 j = k - k % group_size;
  for (u32 i = 0; i < group_size; ++i) {
    if (hash::tag_load_relaxed(tags2 + j + i) != tag) continue;
    if (const auto hit = optimistic_read_cell(tab2[j + i], key)) return hit;
  }
  return std::nullopt;
}

/// Algorithm 2 over a view, tag-filtered. The tag scan and the cell reads
/// happen under ONE epoch check (the caller validates after this
/// returns): a validated probe implies no writer touched the shard, so
/// the tag⟺cell invariant held for the whole scan and the filter cannot
/// have produced a false negative. The result is only meaningful if that
/// validation succeeds. A dual view (mid-resize) probes the migration
/// target first and the old table on a miss — one epoch covers both, so
/// "miss in the target, then its group migrates, then hit stale in the
/// old table" cannot validate.
template <class Cell>
[[nodiscard]] std::optional<u64> optimistic_find(const TableReadView<Cell>& view,
                                                 const typename Cell::key_type& key) {
  const u64 h = view.hash(key);
  if (const auto hit = optimistic_probe(view.tab1, view.tab2, view.mask, view.group_size,
                                        view.tags1, view.tags2, h, key)) {
    return hit;
  }
  if (view.old_tab1 == nullptr) return std::nullopt;
  return optimistic_probe(view.old_tab1, view.old_tab2, view.old_mask,
                          view.old_group_size, view.old_tags1, view.old_tags2, h, key);
}

}  // namespace gh::core
