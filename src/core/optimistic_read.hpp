// Lock-free optimistic probing of a group-hashing table.
//
// The paper's commit protocol (§3.3) publishes every insert/delete with
// one 8-byte atomic store of the cell's commit word, which makes the
// table naturally readable without locks: a reader that (1) snapshots a
// shard's seqlock epoch, (2) probes with atomic loads, and (3) validates
// the epoch has observed a state some quiescent moment could have shown.
// Torn or stale intermediate states are rejected by the validation and
// retried (see util/seqlock.hpp for the fence discipline).
//
// Two pieces live here:
//
//   * TableReadView — an immutable snapshot of the probing parameters
//     (cell pointers, mask, group size, hash seed). The concurrent
//     wrappers publish a fresh heap-allocated view whenever expansion
//     replaces a shard's table, and retire — but never free — the old
//     view and its region, so a stale reader dereferences only mapped
//     memory and is then corrected by epoch validation.
//
//   * optimistic_find — Algorithm 2 over a view, using acquire loads on
//     every cell word. Acquire pairs with DirectPM's release stores, so a
//     matching commit word guarantees the payload read afterwards is the
//     one published with it (or newer — in which case validation fails).
//
// All loads are atomic, so this path is clean under ThreadSanitizer by
// construction rather than by suppression.
// Fingerprint-tag filtering on this path scans the group's DRAM tag
// bytes with per-byte relaxed atomic loads (NOT the SIMD sweep — mixed
// plain/atomic accesses of bytes a writer is mutating would race; the
// seqlock epoch validation is what makes the filtered result trustworthy:
// a writer racing with the scan holds the write lock, so validation fails
// and the probe retries). The view holds shared ownership of the tag
// block, so a retired view's tags outlive the expansion that replaced
// the table, exactly like the retained region.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "hash/hash_functions.hpp"
#include "hash/tag_probe.hpp"
#include "util/types.hpp"

namespace gh::core {

[[nodiscard]] inline u64 atomic_load_acquire(const u64& word) {
  return std::atomic_ref<u64>(const_cast<u64&>(word)).load(std::memory_order_acquire);
}

/// Immutable probing snapshot of one GroupHashTable. Values, not
/// references: a view stays usable (if stale) after the table object it
/// was taken from is re-emplaced by expansion.
template <class Cell>
struct TableReadView {
  const Cell* tab1 = nullptr;
  const Cell* tab2 = nullptr;
  u64 mask = 0;
  u32 group_size = 1;
  hash::SeededHash hash{0};
  std::shared_ptr<const u8[]> tags;  ///< keeps the DRAM tag block alive
  const u8* tags1 = nullptr;
  const u8* tags2 = nullptr;

  template <class PM>
  [[nodiscard]] static TableReadView of(const hash::GroupHashTable<Cell, PM>& table) {
    TableReadView v;
    v.tab1 = &table.level1_cell(0);
    v.tab2 = &table.level2_cell(0);
    v.mask = table.level_cells() - 1;
    v.group_size = table.group_size();
    v.hash = hash::SeededHash(table.seed());
    v.tags = table.tags_shared();
    v.tags1 = v.tags.get();
    v.tags2 = v.tags1 + table.level_cells();
    return v;
  }
};

/// Atomic-read equivalent of Cell16::matches + value fetch.
[[nodiscard]] inline std::optional<u64> optimistic_read_cell(const hash::Cell16& cell,
                                                             u64 key) {
  const u64 word0 = atomic_load_acquire(cell.word0);
  if (word0 != (key | hash::Cell16::kOccupiedBit)) return std::nullopt;
  return atomic_load_acquire(cell.value);
}

/// Atomic-read equivalent of Cell32::matches + value fetch.
[[nodiscard]] inline std::optional<u64> optimistic_read_cell(const hash::Cell32& cell,
                                                             const Key128& key) {
  const u64 meta = atomic_load_acquire(cell.meta);
  if (meta != (hash::Cell32::kOccupiedBit | hash::Cell32::tag_of(key))) return std::nullopt;
  if (atomic_load_acquire(cell.key_lo) != key.lo) return std::nullopt;
  if (atomic_load_acquire(cell.key_hi) != key.hi) return std::nullopt;
  return atomic_load_acquire(cell.value);
}

/// Algorithm 2 over a view, tag-filtered. The tag scan and the cell reads
/// happen under ONE epoch check (the caller validates after this
/// returns): a validated probe implies no writer touched the shard, so
/// the tag⟺cell invariant held for the whole scan and the filter cannot
/// have produced a false negative. The result is only meaningful if that
/// validation succeeds.
template <class Cell>
[[nodiscard]] std::optional<u64> optimistic_find(const TableReadView<Cell>& view,
                                                 const typename Cell::key_type& key) {
  const u64 h = view.hash(key);
  const u64 k = h & view.mask;
  const u8 tag = hash::tag_of_hash(h);
  if (hash::tag_load_relaxed(view.tags1 + k) == tag) {
    if (const auto hit = optimistic_read_cell(view.tab1[k], key)) return hit;
  }
  const u64 j = k - k % view.group_size;
  for (u32 i = 0; i < view.group_size; ++i) {
    if (hash::tag_load_relaxed(view.tags2 + j + i) != tag) continue;
    if (const auto hit = optimistic_read_cell(view.tab2[j + i], key)) return hit;
  }
  return std::nullopt;
}

}  // namespace gh::core
