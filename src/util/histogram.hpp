// Latency histogram with logarithmic buckets plus exact mean/min/max.
// Benches record one sample per request and report mean and tail
// percentiles the way the paper reports "average latency of requesting an
// item".
#pragma once

#include <array>
#include <string>

#include "util/types.hpp"

namespace gh {

class Histogram {
 public:
  Histogram() = default;

  void record(u64 value);
  void merge(const Histogram& other);
  void clear();

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 min() const { return count_ ? min_ : 0; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Approximate percentile (q in [0,100]) from the log-bucketed counts.
  [[nodiscard]] double percentile(double q) const;

  /// e.g. "n=1000 mean=812ns p50=790ns p99=1.2us max=3.1us"
  [[nodiscard]] std::string summary() const;

 private:
  // Buckets: 64 powers-of-two ranges, each split into 16 linear sub-buckets
  // => ~6% relative error on percentiles.
  static constexpr usize kSub = 16;
  static constexpr usize kBuckets = 64 * kSub;

  static usize bucket_for(u64 v);
  static double bucket_midpoint(usize b);

  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
  double sum_ = 0;
};

}  // namespace gh
