// Nanosecond clocks and calibrated spin-waits. The NVM emulation layer
// injects extra write latency after each cacheline flush with
// spin_wait_ns(); the bench harness uses Stopwatch for per-request
// latency.
#pragma once

#include <chrono>

#include "util/types.hpp"

namespace gh {

/// Monotonic wall-clock in nanoseconds.
inline u64 now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Busy-wait for approximately `ns` nanoseconds. Uses the TSC when
/// available (calibrated once at startup) so very short waits (tens to
/// hundreds of ns — the scale of emulated NVM write latency) do not pay a
/// syscall or a full steady_clock read per iteration.
void spin_wait_ns(u64 ns);

/// Cycles-per-nanosecond of the calibrated TSC (0 if TSC unavailable).
double tsc_ghz();

/// Simple stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  [[nodiscard]] u64 elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  [[nodiscard]] double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  u64 start_;
};

}  // namespace gh
