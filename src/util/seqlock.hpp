// SeqLock — a versioned writer lock enabling optimistic lock-free reads.
//
// The paper's commit protocol makes every mutation visible through one
// 8-byte atomic store, so a reader that observes a quiescent version
// counter around its probe has seen a consistent table. Writers serialize
// on a mutex and bump the epoch to odd before mutating and back to even
// after (Linux seqlock discipline, mapped to the C++ memory model per
// Boehm, "Can seqlocks get along with programming language memory
// models?", MSPC'12):
//
//   writer:  lock; epoch=odd; fence(release); ...stores...; epoch=even(release); unlock
//   reader:  e1=epoch(acquire); if even { ...loads...; fence(acquire);
//            e2=epoch(relaxed); valid iff e1==e2 }
//
// The release fence after the odd store keeps the mutation's stores from
// becoming visible before the odd epoch; the final release store keeps
// them visible before the even epoch. A reader that raced a writer fails
// validation and retries; after a bounded number of failures it falls
// back to acquiring the mutex (read_lock), which excludes writers without
// touching the epoch — so writer churn can never starve a reader.
//
// All data read optimistically must itself be accessed with atomic
// operations (the cells' words are written via DirectPM's atomic stores),
// both for the standard's data-race rules and for clean ThreadSanitizer
// runs — TSan does not model fences, but atomic-atomic accesses are never
// reported.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "util/counters.hpp"
#include "util/types.hpp"

namespace gh {

/// Read-path policy of the concurrent wrappers. kPessimistic reproduces
/// the pre-seqlock behaviour (every read takes the shard lock) and exists
/// as the measured baseline in bench/concurrency and as an escape hatch;
/// kOptimistic is the default lock-free read protocol.
enum class LockMode {
  kOptimistic,
  kPessimistic,
};

/// Pause hint for spin retries (PAUSE on x86; compiler barrier elsewhere).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Contention statistics for one seqlock (one shard / stripe). Exact
/// (fetch_add) because they sit off the optimistic fast path: a read that
/// validates on the first attempt touches none of them.
struct LockContention {
  AtomicCounter read_retries;    ///< optimistic attempts that failed validation
  AtomicCounter read_fallbacks;  ///< reads that gave up and took the lock
  AtomicCounter writer_waits;    ///< write acquisitions that found the lock held

  LockContention() = default;
  LockContention(const LockContention&) = default;
  LockContention& operator=(const LockContention&) = default;

  LockContention& operator+=(const LockContention& o) {
    read_retries += o.read_retries.load();
    read_fallbacks += o.read_fallbacks.load();
    writer_waits += o.writer_waits.load();
    return *this;
  }

  [[nodiscard]] std::string to_string() const {
    return "read_retries=" + std::to_string(read_retries.load()) +
           " read_fallbacks=" + std::to_string(read_fallbacks.load()) +
           " writer_waits=" + std::to_string(writer_waits.load());
  }
};

class SeqLock {
 public:
  SeqLock() = default;
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  /// Begin an optimistic read. The returned epoch is stable (even) unless
  /// a writer is mid-mutation; callers seeing an odd epoch should retry
  /// (or fall back) without probing.
  [[nodiscard]] u64 read_begin() const {
    return epoch_.load(std::memory_order_acquire);
  }

  static constexpr bool epoch_stable(u64 e) { return (e & 1) == 0; }

  /// Validate an optimistic read begun at `e`. True means no writer ran
  /// during the probe and every value read is consistent.
  [[nodiscard]] bool read_validate(u64 e) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return epoch_.load(std::memory_order_relaxed) == e;
  }

  /// Exclusive writer section: epoch goes odd on entry, even on exit.
  void write_lock(LockContention* contention = nullptr) {
    if (!mu_.try_lock()) {
      if (contention != nullptr) contention->writer_waits += 1;
      mu_.lock();
    }
    epoch_.store(epoch_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  void write_unlock() {
    epoch_.store(epoch_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
    mu_.unlock();
  }

  /// Pessimistic reader fallback: excludes writers, leaves the epoch even
  /// (concurrent optimistic readers stay valid).
  void read_lock() { mu_.lock(); }
  void read_unlock() { mu_.unlock(); }

  [[nodiscard]] u64 epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> epoch_{0};
  std::mutex mu_;
};

/// RAII writer guard.
class SeqLockWriteGuard {
 public:
  explicit SeqLockWriteGuard(SeqLock& lock, LockContention* contention = nullptr)
      : lock_(lock) {
    lock_.write_lock(contention);
  }
  ~SeqLockWriteGuard() { lock_.write_unlock(); }
  SeqLockWriteGuard(const SeqLockWriteGuard&) = delete;
  SeqLockWriteGuard& operator=(const SeqLockWriteGuard&) = delete;

 private:
  SeqLock& lock_;
};

/// RAII fallback-reader guard.
class SeqLockReadGuard {
 public:
  explicit SeqLockReadGuard(SeqLock& lock) : lock_(lock) { lock_.read_lock(); }
  ~SeqLockReadGuard() { lock_.read_unlock(); }
  SeqLockReadGuard(const SeqLockReadGuard&) = delete;
  SeqLockReadGuard& operator=(const SeqLockReadGuard&) = delete;

 private:
  SeqLock& lock_;
};

}  // namespace gh
