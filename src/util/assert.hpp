// Lightweight checked assertions. GH_CHECK is always on (used on cold
// paths: construction, recovery, file-format validation); GH_DCHECK
// compiles out in release builds and may be used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gh::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "GH_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace gh::detail

#define GH_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) ::gh::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GH_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::gh::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define GH_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define GH_DCHECK(expr) GH_CHECK(expr)
#endif
