// Human-readable formatting and a fixed-width table printer used by the
// figure/table bench harnesses to emit the same rows the paper reports.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace gh {

/// "812ns", "1.25us", "3.1ms", "2.4s"
std::string format_ns(double ns);

/// "512B", "1.5KiB", "128MiB", "1GiB"
std::string format_bytes(u64 bytes);

/// "1234567" -> "1,234,567"
std::string format_count(u64 n);

/// Fixed-precision double, e.g. format_double(0.8213, 3) == "0.821".
std::string format_double(double v, int precision);

/// Minimal aligned-column table printer.
///
///   TablePrinter t({"scheme", "insert", "query"});
///   t.add_row({"group", "812ns", "301ns"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gh
