// Counters safe to touch from multiple threads.
//
// RelaxedCounter — statistics counter. Increments use a relaxed
// load-add-store (plain mov/add/mov on x86: no lock prefix, no overhead
// on the single-threaded hot paths where all the paper's measurements
// run). Under true concurrency increments may be lost — statistics are
// documented as approximate there — but the behaviour is defined, unlike
// racing on a plain u64.
//
// AtomicCounter — exact counter (fetch_add). Used where correctness
// depends on the value (the table's logical count) or where tests assert
// on it (the seqlock contention counters in util/seqlock.hpp), and where
// the per-op cost of one lock-prefixed add is irrelevant.
#pragma once

#include <atomic>

#include "util/types.hpp"

namespace gh {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter(u64 v = 0) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(u64 v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  void operator++(int) { add(1); }
  RelaxedCounter& operator++() {
    add(1);
    return *this;
  }
  RelaxedCounter& operator+=(u64 d) {
    add(d);
    return *this;
  }

  [[nodiscard]] u64 load() const { return v_.load(std::memory_order_relaxed); }
  operator u64() const { return load(); }  // NOLINT(google-explicit-constructor)

 private:
  void add(u64 d) { v_.store(v_.load(std::memory_order_relaxed) + d, std::memory_order_relaxed); }

  std::atomic<u64> v_;
};

class AtomicCounter {
 public:
  constexpr AtomicCounter(u64 v = 0) : v_(v) {}  // NOLINT(google-explicit-constructor)
  AtomicCounter(const AtomicCounter& o) : v_(o.load()) {}
  AtomicCounter& operator=(const AtomicCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator=(u64 v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  AtomicCounter& operator+=(u64 d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

  /// Atomically zero the counter and return the previous value (interval
  /// sampling: per-phase contention deltas in benches/tests).
  u64 reset() { return v_.exchange(0, std::memory_order_relaxed); }

  [[nodiscard]] u64 load() const { return v_.load(std::memory_order_relaxed); }
  operator u64() const { return load(); }  // NOLINT(google-explicit-constructor)

 private:
  std::atomic<u64> v_;
};

}  // namespace gh
