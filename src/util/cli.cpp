#include "util/cli.hpp"

#include <cstdlib>
#include <vector>

namespace gh {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key, std::string def) const {
  return get(key).value_or(std::move(def));
}

u64 Cli::get_u64(const std::string& key, u64 def) const {
  const auto v = get(key);
  return v ? std::strtoull(v->c_str(), nullptr, 0) : def;
}

double Cli::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Cli::has(const std::string& key) const { return options_.count(key) != 0; }

u64 env_u64(const std::string& name, u64 def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::strtoull(v, nullptr, 0) : def;
}

std::string env_str(const std::string& name, std::string def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : def;
}

u32 bench_scale_shift() {
  const std::string v = env_str("GH_SCALE", "5");
  if (v == "paper") return 0;
  return static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
}

}  // namespace gh
