#include "util/format.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace gh {
namespace {

std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string format_ns(double ns) {
  if (ns < 1000.0) return printf_str("%.0f", ns) + "ns";
  if (ns < 1e6) return printf_str("%.2f", ns / 1e3) + "us";
  if (ns < 1e9) return printf_str("%.2f", ns / 1e6) + "ms";
  return printf_str("%.2f", ns / 1e9) + "s";
}

std::string format_bytes(u64 bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return std::to_string(bytes) + "B";
  return printf_str(v < 10 ? "%.2f" : "%.1f", v) + kUnits[unit];
}

std::string format_count(u64 n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const usize first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (usize i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_double(double v, int precision) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", precision);
  return printf_str(fmt, v);
}

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  GH_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<usize> width(header_.size());
  for (usize c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (usize c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  usize total = 0;
  for (usize c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace gh
