// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum protecting
// this repository's persistent metadata against silent media corruption.
//
// The paper's consistency story (§3.5) assumes NVM returns exactly the
// bytes that were persisted; real persistent memory additionally exhibits
// bit rot and uncorrectable (poisoned) lines. CRC32C is the standard
// answer (iSCSI, ext4, Btrfs, and the PM-native hashing literature all
// use it) because x86 ships a hardware instruction for it: when compiled
// with SSE4.2 the byte loop below becomes one `crc32` instruction per
// 8 bytes; the portable table fallback is used otherwise.
//
// Group checksums (hash/group_hashing.hpp) need an *incremental* update:
// recomputing a whole group's CRC on every 16-byte cell mutation would
// turn a one-cacheline write into a multi-kilobyte scan. Instead of a
// positional CRC over the concatenated group bytes, the group checksum is
// defined as the XOR of per-cell digests,
//
//   group_digest = XOR over cells i of crc32c(cell_bytes, seed = i)
//
// which is order-independent, so a single-cell change updates in O(cell):
// XOR out the old cell's digest, XOR in the new one. Seeding each digest
// with the cell's index makes two swapped cells (or a cell sliding to a
// neighbouring slot) change the checksum, which a plain XOR of unseeded
// CRCs would miss.
#pragma once

#include <cstring>

#include "util/types.hpp"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace gh {

namespace detail {

/// Byte-at-a-time table for the software fallback, generated at compile
/// time (reflected polynomial 0x82F63B78).
struct Crc32cTable {
  u32 t[256];
  constexpr Crc32cTable() : t{} {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};
inline constexpr Crc32cTable kCrc32cTable{};

}  // namespace detail

/// Raw CRC32C update: feeds `len` bytes into state `crc` (no init/final
/// complement — callers compose these below).
inline u32 crc32c_update(u32 crc, const void* data, usize len) {
  const auto* p = static_cast<const unsigned char*>(data);
#if defined(__SSE4_2__)
  u64 c = crc;
  while (len >= 8) {
    u64 word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    len -= 8;
  }
  crc = static_cast<u32>(c);
  while (len-- > 0) crc = _mm_crc32_u8(crc, *p++);
#else
  while (len-- > 0) crc = detail::kCrc32cTable.t[(crc ^ *p++) & 0xff] ^ (crc >> 8);
#endif
  return crc;
}

/// Standard CRC32C of a byte range (init ~0, final complement). Matches
/// the RFC 3720 test vectors.
inline u32 crc32c(const void* data, usize len) {
  return ~crc32c_update(~0u, data, len);
}

/// CRC32C seeded with an arbitrary 64-bit value mixed in ahead of the
/// data — the per-cell digest primitive for the incremental group
/// checksum (seed = cell index), and a cheap way to domain-separate
/// checksums of different structures.
inline u32 crc32c_seeded(u64 seed, const void* data, usize len) {
  u32 crc = crc32c_update(~0u, &seed, sizeof(seed));
  return ~crc32c_update(crc, data, len);
}

}  // namespace gh
