// Deterministic, fast pseudo-random generators used by workload
// generators, hash seeding and the crash simulator. Implemented from
// scratch (splitmix64 for seeding, xoshiro256** as the workhorse) so runs
// are reproducible across platforms and standard-library versions.
#pragma once

#include <array>

#include "util/types.hpp"

namespace gh {

/// splitmix64 — used to expand a single seed into generator state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit constexpr Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr u64 min() { return 0; }
  static constexpr u64 max() { return ~0ull; }

  constexpr u64 operator()() { return next(); }

  constexpr u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr u64 next_below(u64 bound) {
    // 128-bit multiply keeps the distribution exactly uniform for any bound.
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>(next()) * bound;
    u64 lo = static_cast<u64>(m);
    if (lo < bound) {
      const u64 threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<u128>(next()) * bound;
        lo = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  constexpr bool next_bool() { return (next() & 1) != 0; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace gh
