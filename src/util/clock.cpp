#include "util/clock.hpp"

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define GH_HAVE_RDTSC 1
#endif

namespace gh {
namespace {

#ifdef GH_HAVE_RDTSC
// Calibrate TSC frequency against the steady clock once, lazily. A ~20 ms
// window gives better than 1% accuracy, plenty for emulated-latency waits.
double calibrate_tsc_ghz() {
  const u64 t0 = now_ns();
  const u64 c0 = __rdtsc();
  u64 t1 = t0;
  while (t1 - t0 < 20'000'000) t1 = now_ns();
  const u64 c1 = __rdtsc();
  return static_cast<double>(c1 - c0) / static_cast<double>(t1 - t0);
}

double tsc_ghz_cached() {
  static const double ghz = calibrate_tsc_ghz();
  return ghz;
}
#endif

}  // namespace

double tsc_ghz() {
#ifdef GH_HAVE_RDTSC
  return tsc_ghz_cached();
#else
  return 0.0;
#endif
}

void spin_wait_ns(u64 ns) {
  if (ns == 0) return;
#ifdef GH_HAVE_RDTSC
  const double ghz = tsc_ghz_cached();
  const u64 target = static_cast<u64>(static_cast<double>(ns) * ghz);
  const u64 start = __rdtsc();
  while (__rdtsc() - start < target) {
    _mm_pause();
  }
#else
  const u64 start = now_ns();
  while (now_ns() - start < ns) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
#endif
}

}  // namespace gh
