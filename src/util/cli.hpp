// Minimal command-line / environment option parsing shared by benches and
// examples: --key=value flags plus GH_* environment overrides so the whole
// bench suite can be scaled with a single env var.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gh {

class Cli {
 public:
  /// Parses "--key=value" and "--flag" arguments; anything else is kept as
  /// a positional argument.
  Cli(int argc, char** argv);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, std::string def) const;
  [[nodiscard]] u64 get_u64(const std::string& key, u64 def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// GH_<NAME> environment lookup with default (used for bench scaling).
u64 env_u64(const std::string& name, u64 def);
std::string env_str(const std::string& name, std::string def);

/// Bench scale factor: number of bits to *subtract* from the paper's table
/// sizes. GH_SCALE=0 (or GH_SCALE=paper) runs paper-size tables; default
/// subtracts 5 bits (32x smaller) so the full suite completes quickly.
u32 bench_scale_shift();

}  // namespace gh
