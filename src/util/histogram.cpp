#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/format.hpp"

namespace gh {

usize Histogram::bucket_for(u64 v) {
  if (v < kSub) return static_cast<usize>(v);
  const u32 msb = 63 - static_cast<u32>(std::countl_zero(v));
  // Linear sub-bucket from the bits just below the MSB.
  const u64 sub = (v >> (msb - 4)) & (kSub - 1);
  const usize b = static_cast<usize>(msb) * kSub + static_cast<usize>(sub);
  return std::min(b, kBuckets - 1);
}

double Histogram::bucket_midpoint(usize b) {
  if (b < kSub) return static_cast<double>(b);
  const usize msb = b / kSub;
  const usize sub = b % kSub;
  const double base = std::ldexp(1.0, static_cast<int>(msb));
  const double step = base / kSub;
  return base + (static_cast<double>(sub) + 0.5) * step;
}

void Histogram::record(u64 value) {
  buckets_[bucket_for(value)]++;
  count_++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

void Histogram::merge(const Histogram& other) {
  for (usize i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void Histogram::clear() { *this = Histogram{}; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(count_ - 1);
  u64 seen = 0;
  for (usize b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) > target) {
      return std::clamp(bucket_midpoint(b), static_cast<double>(min()),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::summary() const {
  if (count_ == 0) return "n=0";
  return "n=" + std::to_string(count_) + " mean=" + format_ns(mean()) +
         " p50=" + format_ns(percentile(50)) + " p99=" + format_ns(percentile(99)) +
         " max=" + format_ns(static_cast<double>(max_));
}

}  // namespace gh
