// Fundamental fixed-width aliases and small shared types used across the
// group-hashing codebase.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gh {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// A 128-bit key (e.g. an MD5 fingerprint), stored as two little-endian
/// 64-bit words. Used by the 32-byte cell layout.
struct Key128 {
  u64 lo = 0;
  u64 hi = 0;

  friend constexpr bool operator==(const Key128&, const Key128&) = default;
};

/// Cacheline size assumed by the persistence layer and the cache simulator.
inline constexpr usize kCachelineSize = 64;

/// NVM failure-atomicity unit (the paper's 8-byte atomic-write assumption).
inline constexpr usize kAtomicUnit = 8;

constexpr u64 round_up(u64 v, u64 align) { return (v + align - 1) / align * align; }
constexpr u64 round_down(u64 v, u64 align) { return v / align * align; }
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr u32 log2_floor(u64 v) {
  u32 r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace gh
