// Shared harness for the figure/table benches.
//
// Methodology (paper §4.2): build the table, insert items until the load
// factor reaches the operating point, then time 1000 inserts, 1000
// queries and 1000 deletes and report the average latency per request.
// The cache-efficiency benches run the same phases against the cache
// simulator and report average L3 misses per request.
//
// Scaling: paper-size tables (2^23-2^25 cells) with a 300 ns flush delay
// take minutes per configuration, so GH_SCALE (default 5) subtracts that
// many bits from every table size; GH_SCALE=paper (or 0) reproduces the
// full-size runs. GH_NVM_LATENCY_NS overrides the emulated write latency
// and GH_OPS the number of timed requests per phase.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "cachesim/cache_sim.hpp"
#include "hash/any_table.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "nvm/tracing_pm.hpp"
#include "trace/workload.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gh::bench {

struct BenchEnv {
  u32 scale_shift = 5;       ///< bits subtracted from the paper's table sizes
  u64 flush_latency_ns = 300;
  u64 ops = 1000;            ///< timed requests per phase (paper: 1000)
  u64 seed = 42;

  static BenchEnv from_env();
};

/// Paper table sizes (log2 cells) per trace, minus the scale shift.
u32 cells_log2_for(trace::TraceKind kind, u32 scale_shift);

/// A workload with enough unique keys to fill `cells_log2` to
/// `max_load_factor` with headroom plus `extra_ops` request keys.
trace::Workload sized_workload(trace::TraceKind kind, u32 cells_log2,
                               double max_load_factor, u64 extra_ops, u64 seed);

/// Keys of a workload as uniform Key128 views.
std::vector<Key128> workload_keys(const trace::Workload& w);

hash::TableConfig scheme_config(hash::Scheme scheme, bool with_wal, u32 cells_log2,
                                bool wide_cells, u32 group_size = 256);

/// Per-phase results of one latency run.
struct LatencyResult {
  double insert_ns = 0;
  double query_ns = 0;
  double delete_ns = 0;
  double achieved_load_factor = 0;
  u64 fill_failures = 0;
  nvm::PersistStats persist;
};

LatencyResult run_latency(const hash::TableConfig& cfg, const trace::Workload& workload,
                          double load_factor, const BenchEnv& env);

/// Per-phase L3 miss counts from the cache simulator.
struct MissResult {
  double insert_misses = 0;
  double query_misses = 0;
  double delete_misses = 0;
  double achieved_load_factor = 0;
};

MissResult run_misses(const hash::TableConfig& cfg, const trace::Workload& workload,
                      double load_factor, const BenchEnv& env);

/// Insert items until the first insert failure; returns the load factor at
/// that point (the paper's space-utilisation metric, Fig. 7).
double run_space_utilization(const hash::TableConfig& cfg, const trace::Workload& workload);

/// Standard bench banner: what is being reproduced and at what scale.
void print_banner(const std::string& title, const std::string& paper_ref,
                  const BenchEnv& env);

/// Compiler barrier keeping a value observably alive (google-benchmark's
/// DoNotOptimize, for the benches that do not link google-benchmark).
template <class T>
inline void do_not_optimize(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace gh::bench
