// Ablation — what does the 8-byte failure-atomic commit actually buy?
//
// Group hashing with its native commit-word protocol vs the SAME scheme
// wrapped in the undo log the baselines use. The delta isolates the
// paper's first contribution (consistency without duplicate copies) from
// its second (group sharing), which both variants share.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: 8-byte atomic commit vs undo logging on group hashing",
               "isolates contribution (1) of the ICPP'18 paper", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  TablePrinter t({"variant", "insert", "query", "delete", "flushes/op", "bytes/op"});
  double plain_ins = 0, logged_ins = 0;
  for (const bool wal : {false, true}) {
    const auto cfg = scheme_config(hash::Scheme::kGroup, wal, bits, false);
    const LatencyResult r = run_latency(cfg, workload, 0.5, env);
    const double ops_total = static_cast<double>(3 * env.ops);
    t.add_row({wal ? "group + undo log" : "group (8-byte atomic commit)",
               format_ns(r.insert_ns), format_ns(r.query_ns), format_ns(r.delete_ns),
               format_double(static_cast<double>(r.persist.lines_flushed) / ops_total, 2),
               format_double(static_cast<double>(r.persist.bytes_written) / ops_total, 1)});
    (wal ? logged_ins : plain_ins) = r.insert_ns;
  }
  t.print(std::cout);
  std::cout << "\nLogging overhead on group hashing inserts: "
            << format_double(logged_ins / plain_ins, 2)
            << "x — the cost the commit-word protocol eliminates.\n";
  return 0;
}
