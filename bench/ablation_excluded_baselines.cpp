// Ablation — the baselines the paper excludes, quantified (§4.1).
//
// Chained hashing: "performs poorly under memory pressure due to frequent
// memory allocation and free calls" — visible as extra persist traffic
// per op and scattered chain nodes (more misses).
// 2-choice hashing: "too low space utilization ratio" — visible in the
// utilisation column.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: the excluded baselines (chained, 2-choice)",
               "quantifies the exclusion argument of ICPP'18 section 4.1", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.4, env.ops * 2, env.seed);
  const trace::Workload util_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 1.2, 0, env.seed + 1);

  // 2-choice cannot reach load factor 0.5; compare everything at 0.4.
  TablePrinter t(
      {"scheme", "insert", "query", "delete", "flushes/op", "space_utilization"});
  for (const hash::Scheme scheme : {hash::Scheme::kGroup, hash::Scheme::kChained,
                                    hash::Scheme::kTwoChoice}) {
    const auto cfg = scheme_config(scheme, false, bits, false);
    const LatencyResult r = run_latency(cfg, workload, 0.35, env);
    const double util = run_space_utilization(cfg, util_workload);
    t.add_row({cfg.display_name(), format_ns(r.insert_ns), format_ns(r.query_ns),
               format_ns(r.delete_ns),
               format_double(static_cast<double>(r.persist.lines_flushed) /
                                 static_cast<double>(3 * env.ops), 2),
               format_double(util, 3)});
  }
  t.print(std::cout);
  std::cout << "\nChained pays allocator persists on every op; 2-choice gives up "
               "far below group hashing's ~0.82.\n";
  return 0;
}
