// Google-benchmark micro suite: raw operation throughput of the public
// GroupHashMap API and the underlying schemes, without NVM latency
// emulation (GH_NVM_LATENCY_NS applies if set). Complements the figure
// benches, which reproduce the paper's methodology.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/group_hash_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace gh;

constexpr u64 kCells = 1 << 16;

hash::TableConfig micro_config(hash::Scheme scheme, bool wal) {
  return bench::scheme_config(scheme, wal, 16, false);
}

void bench_scheme_insert(benchmark::State& state, hash::Scheme scheme, bool wal) {
  const auto cfg = micro_config(scheme, wal);
  const u64 latency = env_u64("GH_NVM_LATENCY_NS", 0);
  nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = latency});
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);
  Xoshiro256 rng(7);
  std::vector<Key128> keys;
  const u64 fill = kCells / 2;
  for (u64 i = 0; i < fill; ++i) keys.push_back(Key128{rng.next() & hash::Cell16::kMaxKey, 0});
  usize i = 0;
  for (auto _ : state) {
    if (i == keys.size()) {
      // Refill: erase everything (untimed) and start over.
      state.PauseTiming();
      for (const Key128& k : keys) table->erase(k);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(table->insert(keys[i++], 1));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_scheme_find(benchmark::State& state, hash::Scheme scheme) {
  const auto cfg = micro_config(scheme, false);
  nvm::DirectPM pm(nvm::PersistConfig::dram());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);
  Xoshiro256 rng(7);
  std::vector<Key128> keys;
  for (u64 i = 0; i < kCells / 2; ++i) {
    const Key128 k{rng.next() & hash::Cell16::kMaxKey, 0};
    if (table->insert(k, 1)) keys.push_back(k);
  }
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->find(keys[i]));
    i = (i + 1) % keys.size();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_map_put(benchmark::State& state) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = kCells});
  Xoshiro256 rng(11);
  for (auto _ : state) {
    map.put(rng.next_below(kCells * 4) + 1, 42);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_map_get_hit(benchmark::State& state) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = kCells});
  for (u64 k = 1; k <= kCells / 2; ++k) map.put(k, k);
  Xoshiro256 rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.get(rng.next_below(kCells / 2) + 1));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_map_get_miss(benchmark::State& state) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = kCells});
  for (u64 k = 1; k <= kCells / 2; ++k) map.put(k, k);
  Xoshiro256 rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.get((rng.next_below(1u << 20)) + (1ull << 33)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_map_increment(benchmark::State& state) {
  auto map = GroupHashMap::create_in_memory({.initial_cells = kCells});
  Xoshiro256 rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.increment(rng.next_below(kCells / 4) + 1));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void bench_map_get_vs_batch(benchmark::State& state) {
  // Batched lookup with software prefetching vs one-at-a-time gets.
  const bool batched = state.range(0) != 0;
  auto map = GroupHashMap::create_in_memory({.initial_cells = kCells});
  for (u64 k = 1; k <= kCells / 2; ++k) map.put(k, k);
  Xoshiro256 rng(29);
  constexpr usize kBatch = 256;
  std::vector<u64> keys(kBatch);
  std::vector<std::optional<u64>> out(kBatch);
  for (auto _ : state) {
    for (auto& k : keys) k = rng.next_below(kCells / 2) + 1;
    if (batched) {
      map.get_batch(keys, out);
    } else {
      for (usize i = 0; i < kBatch; ++i) out[i] = map.get(keys[i]);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kBatch);
}

void bench_recovery_scan(benchmark::State& state) {
  const auto cfg = micro_config(hash::Scheme::kGroup, false);
  nvm::DirectPM pm(nvm::PersistConfig::dram());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);
  Xoshiro256 rng(19);
  while (table->load_factor() < 0.5) {
    table->insert(Key128{rng.next() & hash::Cell16::kMaxKey, 0}, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->recover());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(hash::table_required_bytes(cfg)));
}

BENCHMARK_CAPTURE(bench_scheme_insert, group, hash::Scheme::kGroup, false);
BENCHMARK_CAPTURE(bench_scheme_insert, group_logged, hash::Scheme::kGroup, true);
BENCHMARK_CAPTURE(bench_scheme_insert, linear, hash::Scheme::kLinear, false);
BENCHMARK_CAPTURE(bench_scheme_insert, pfht, hash::Scheme::kPfht, false);
BENCHMARK_CAPTURE(bench_scheme_insert, path, hash::Scheme::kPath, false);
BENCHMARK_CAPTURE(bench_scheme_find, group, hash::Scheme::kGroup);
BENCHMARK_CAPTURE(bench_scheme_find, linear, hash::Scheme::kLinear);
BENCHMARK_CAPTURE(bench_scheme_find, pfht, hash::Scheme::kPfht);
BENCHMARK_CAPTURE(bench_scheme_find, path, hash::Scheme::kPath);
BENCHMARK(bench_map_put);
BENCHMARK(bench_map_get_hit);
BENCHMARK(bench_map_get_miss);
BENCHMARK(bench_map_increment);
BENCHMARK(bench_map_get_vs_batch)->Arg(0)->ArgName("scalar");
BENCHMARK(bench_map_get_vs_batch)->Arg(1)->ArgName("batched");
BENCHMARK(bench_recovery_scan);

}  // namespace

BENCHMARK_MAIN();
