// Ablation — batched multi-op API vs scalar loops.
//
// Two mechanisms ride on the batch entry points (hash/group_hashing.hpp):
//
//   * get_batch software-prefetches each upcoming key's level-1 cell and
//     level-2 tag lines, so the random-access misses of neighbouring
//     lookups overlap instead of serialising — the same cache argument
//     the paper makes for cells *within* a group (§3.2), applied *across*
//     independent requests;
//   * put_batch / erase_batch coalesce persist fences: payload flushes of
//     a window share one fence and commit flushes share another, while
//     every cell still commits with its own 8-byte atomic store (§3.3's
//     crash discipline per cell, amortised ordering cost per window).
//
// This ablation measures both against the scalar loops on the same map:
// wall-clock speedup for lookups, fences-per-op for mutations. The lookup
// phase runs at >=1M keys by default so the working set dwarfs the LLC —
// prefetching shows nothing on a cache-resident table.
#include <chrono>

#include "bench_common.hpp"
#include "core/group_hash_map.hpp"
#include "hash/tag_probe.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, gh::u64 ops) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         static_cast<double>(ops);
}

const char* simd_name(gh::hash::SimdLevel level) {
  switch (level) {
    case gh::hash::SimdLevel::kScalar: return "scalar";
    case gh::hash::SimdLevel::kSse2: return "sse2";
    case gh::hash::SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  const u64 nkeys = cli.get_u64("keys", 1u << 20);
  const usize batch = static_cast<usize>(cli.get_u64("batch", 256));

  print_banner("Ablation: batched multi-op vs scalar",
               "prefetched probing + fence coalescing on the paper's structure", env);
  std::cout << "keys " << nkeys << ", batch size " << batch << ", tag probe simd: "
            << simd_name(hash::active_simd_level()) << "\n\n";

  MapOptions opts;
  u64 cells = 64;
  while (cells < nkeys * 2) cells <<= 1;  // ~0.5 load factor across both levels
  opts.initial_cells = cells;
  opts.flush_latency_ns = 0;  // wall-clock phases; fence counts are latency-free

  Xoshiro256 rng(env.seed);
  std::vector<u64> keys(nkeys);
  for (u64 i = 0; i < nkeys; ++i) keys[i] = (rng.next() >> 1) | 1;  // bit63 clear, nonzero
  std::vector<u64> values(nkeys);
  for (u64 i = 0; i < nkeys; ++i) values[i] = i + 1;

  TablePrinter t({"op", "scalar_ns", "batch_ns", "speedup", "scalar_fences/op",
                  "batch_fences/op"});

  // --- put: scalar loop vs put_batch (fence coalescing) ---
  auto scalar_map = GroupHashMap::create_in_memory(opts);
  u64 f0 = scalar_map.snapshot().persist.fences;
  auto t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) scalar_map.put(keys[i], values[i]);
  auto t1 = Clock::now();
  const double put_scalar_ns = ns_per_op(t0, t1, nkeys);
  const double put_scalar_fences =
      static_cast<double>(scalar_map.snapshot().persist.fences - f0) /
      static_cast<double>(nkeys);

  auto batch_map = GroupHashMap::create_in_memory(opts);
  f0 = batch_map.snapshot().persist.fences;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    batch_map.put_batch(std::span(keys).subspan(i, n), std::span(values).subspan(i, n));
  }
  t1 = Clock::now();
  const double put_batch_ns = ns_per_op(t0, t1, nkeys);
  const double put_batch_fences =
      static_cast<double>(batch_map.snapshot().persist.fences - f0) /
      static_cast<double>(nkeys);
  t.add_row({"put", format_double(put_scalar_ns, 1), format_double(put_batch_ns, 1),
             format_double(put_scalar_ns / put_batch_ns, 2),
             format_double(put_scalar_fences, 2), format_double(put_batch_fences, 2)});

  // --- get: scalar loop vs get_batch (software prefetch) ---
  // Shuffled request order defeats any residual streaming pattern.
  std::vector<u64> lookups = keys;
  for (u64 i = nkeys - 1; i > 0; --i) std::swap(lookups[i], lookups[rng.next_below(i + 1)]);
  u64 live = 0;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) live += batch_map.get(lookups[i]).has_value();
  t1 = Clock::now();
  do_not_optimize(live);
  const double get_scalar_ns = ns_per_op(t0, t1, nkeys);

  std::vector<std::optional<u64>> out(batch);
  u64 live2 = 0;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    batch_map.get_batch(std::span(lookups).subspan(i, n), std::span(out).first(n));
    for (usize w = 0; w < n; ++w) live2 += out[w].has_value();
  }
  t1 = Clock::now();
  do_not_optimize(live2);
  GH_CHECK(live == live2);
  const double get_batch_ns = ns_per_op(t0, t1, nkeys);
  t.add_row({"get", format_double(get_scalar_ns, 1), format_double(get_batch_ns, 1),
             format_double(get_scalar_ns / get_batch_ns, 2), "-", "-"});

  // --- erase: scalar loop vs erase_batch (fence coalescing) ---
  f0 = scalar_map.snapshot().persist.fences;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) scalar_map.erase(keys[i]);
  t1 = Clock::now();
  const double erase_scalar_ns = ns_per_op(t0, t1, nkeys);
  const double erase_scalar_fences =
      static_cast<double>(scalar_map.snapshot().persist.fences - f0) /
      static_cast<double>(nkeys);

  f0 = batch_map.snapshot().persist.fences;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    batch_map.erase_batch(std::span(keys).subspan(i, n));
  }
  t1 = Clock::now();
  const double erase_batch_ns = ns_per_op(t0, t1, nkeys);
  const double erase_batch_fences =
      static_cast<double>(batch_map.snapshot().persist.fences - f0) /
      static_cast<double>(nkeys);
  GH_CHECK(batch_map.size() == 0);
  t.add_row({"erase", format_double(erase_scalar_ns, 1), format_double(erase_batch_ns, 1),
             format_double(erase_scalar_ns / erase_batch_ns, 2),
             format_double(erase_scalar_fences, 2), format_double(erase_batch_fences, 2)});

  t.print(std::cout);
  std::cout << "\nget speedup comes from overlapping the misses of neighbouring "
               "lookups (prefetch), put/erase savings from one fence per window "
               "instead of one per op — each cell still commits with its own "
               "8-byte atomic store.\n";
  return 0;
}
