// Ablation — group sharing's dependence on the hardware stream prefetcher.
//
// The paper's cache argument (§3.2): "a single memory access can prefetch
// the following cells belonging to the same cacheline". Within a line
// that is true on any CPU; ACROSS lines it relies on the adjacent-line /
// stream prefetchers of the evaluation machine. Running the cache
// simulator with the prefetcher disabled shows how much of group
// hashing's miss advantage is prefetcher-dependent — and that path
// hashing (scattered probes) gains nothing from it either way.
#include "bench_common.hpp"


#include "util/rng.hpp"
int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: stream prefetcher on/off (cache simulator)",
               "stress-tests the cache-efficiency mechanism behind ICPP'18 Fig. 6", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPath, true},
  };

  for (const u32 degree : {0u, 2u, 4u}) {
    std::cout << "prefetch degree " << degree << (degree == 0 ? " (disabled)" : "") << "\n";
    TablePrinter t({"scheme", "insert_L3miss", "query_L3miss", "delete_L3miss"});
    for (const Contender& c : contenders) {
      const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
      const usize bytes = hash::table_required_bytes(cfg);
      cachesim::CacheConfig cache_cfg = cachesim::CacheConfig::scaled_l3(bytes / 8);
      cache_cfg.prefetch_degree = degree;
      cachesim::CacheSim sim(cache_cfg);
      nvm::TracingPM pm(sim);
      nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
      auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);

      const auto keys = workload_keys(workload);
      const u64 target = table->capacity() / 2;
      usize next = 0;
      std::vector<usize> inserted;
      while (table->count() < target && next < keys.size()) {
        if (table->insert(keys[next], 1)) inserted.push_back(next);
        ++next;
      }
      Xoshiro256 rng(env.seed);
      u64 start = sim.llc_misses();
      for (u64 i = 0; i < env.ops && next < keys.size(); ++i, ++next) {
        table->insert(keys[next], 1);
      }
      const double ins = static_cast<double>(sim.llc_misses() - start) /
                         static_cast<double>(env.ops);
      start = sim.llc_misses();
      for (u64 i = 0; i < env.ops; ++i) {
        (void)table->find(keys[inserted[rng.next_below(inserted.size())]]);
      }
      const double qry = static_cast<double>(sim.llc_misses() - start) /
                         static_cast<double>(env.ops);
      start = sim.llc_misses();
      for (u64 i = 0; i < env.ops; ++i) {
        table->erase(keys[inserted[i]]);
      }
      const double del = static_cast<double>(sim.llc_misses() - start) /
                         static_cast<double>(env.ops);
      t.add_row({cfg.display_name(), format_double(ins, 2), format_double(qry, 2),
                 format_double(del, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Without a prefetcher, long group scans cost one miss per line and "
               "group sharing loses its cross-line advantage — the paper's design "
               "implicitly assumes the stream prefetcher every modern x86 ships.\n";
  return 0;
}
