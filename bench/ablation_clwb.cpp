// Ablation — flush-instruction semantics: clflush (invalidating, the
// paper's machine) vs clwb (non-invalidating writeback, available on
// newer CPUs).
//
// The paper's §2.3 argument says logging hurts partly because "clflush
// ... flushes a cacheline by explicitly invalidating it, which will incur
// a cache miss when reading the same memory address later". clwb removes
// that invalidation. This ablation replays Fig. 2(b)/Fig. 6 on the cache
// simulator under both semantics: with clwb the miss inflation of the
// logging schemes largely disappears, while the NVM *write* traffic — the
// part group hashing eliminates by design — is unchanged. Group hashing
// helps on both kinds of machines; the cache-miss half of the argument is
// clflush-era specific.
#include "bench_common.hpp"

#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: clflush vs clwb flush semantics",
               "re-examines the ICPP'18 miss-inflation argument on clwb-era CPUs", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPath, true},
  };

  for (const nvm::FlushInstruction instr :
       {nvm::FlushInstruction::kClflush, nvm::FlushInstruction::kClwb}) {
    const bool clwb = nvm::flush_keeps_line_cached(instr);
    std::cout << (clwb ? "clwb (writeback, line stays cached)"
                       : "clflush (invalidating — the paper's setting)")
              << "\n";
    TablePrinter t({"scheme", "insert_L3miss", "query_L3miss", "delete_L3miss",
                    "flushes/op"});
    for (const Contender& c : contenders) {
      const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
      const usize bytes = hash::table_required_bytes(cfg);
      cachesim::CacheSim sim(cachesim::CacheConfig::scaled_l3(bytes / 8));
      nvm::TracingPM pm(sim, instr);
      nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
      auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);

      const auto keys = workload_keys(workload);
      const u64 target = table->capacity() / 2;
      usize next = 0;
      std::vector<usize> inserted;
      while (table->count() < target && next < keys.size()) {
        if (table->insert(keys[next], 1)) inserted.push_back(next);
        ++next;
      }
      Xoshiro256 rng(env.seed);
      pm.stats().clear();
      u64 start = sim.llc_misses();
      for (u64 i = 0; i < env.ops && next < keys.size(); ++i, ++next) {
        table->insert(keys[next], 1);
      }
      const double ins =
          static_cast<double>(sim.llc_misses() - start) / static_cast<double>(env.ops);
      start = sim.llc_misses();
      for (u64 i = 0; i < env.ops; ++i) {
        (void)table->find(keys[inserted[rng.next_below(inserted.size())]]);
      }
      const double qry =
          static_cast<double>(sim.llc_misses() - start) / static_cast<double>(env.ops);
      start = sim.llc_misses();
      for (u64 i = 0; i < env.ops; ++i) table->erase(keys[inserted[i]]);
      const double del =
          static_cast<double>(sim.llc_misses() - start) / static_cast<double>(env.ops);
      t.add_row({cfg.display_name(), format_double(ins, 2), format_double(qry, 2),
                 format_double(del, 2),
                 format_double(static_cast<double>(pm.stats().lines_flushed) /
                                   static_cast<double>(3 * env.ops), 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "clwb removes the invalidate-then-re-miss penalty of logging, but the "
               "flushes/op column — the NVM write traffic group hashing eliminates — "
               "is identical under both instructions.\n";
  return 0;
}
