// Extension bench — group hashing vs level hashing (OSDI'18), the
// successor NVM scheme from the path-hashing authors.
//
// Published months after the group-hashing paper, level hashing attacks
// the same three-way trade-off (writes, cache behaviour, utilisation)
// with 4-slot buckets + bounded movement instead of shared groups. This
// bench puts both on the same harness: latency, misses, utilisation and
// write traffic at the paper's two load factors.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Extension: group hashing vs level hashing (OSDI'18)",
               "forward comparison against the successor scheme", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.75, env.ops * 2, env.seed);
  const trace::Workload util_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 1.2, 0, env.seed + 1);

  for (const double lf : {0.5, 0.75}) {
    std::cout << "load factor " << lf << "\n";
    TablePrinter t({"scheme", "insert", "query", "delete", "query_L3miss", "flushes/op",
                    "utilization"});
    for (const hash::Scheme scheme : {hash::Scheme::kGroup, hash::Scheme::kLevel}) {
      const auto cfg = scheme_config(scheme, false, bits, false);
      const LatencyResult lat = run_latency(cfg, workload, lf, env);
      const MissResult mis = run_misses(cfg, workload, lf, env);
      const double util = run_space_utilization(cfg, util_workload);
      t.add_row({cfg.display_name(), format_ns(lat.insert_ns), format_ns(lat.query_ns),
                 format_ns(lat.delete_ns), format_double(mis.query_misses, 2),
                 format_double(static_cast<double>(lat.persist.lines_flushed) /
                                   static_cast<double>(3 * env.ops), 2),
                 format_double(util, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Level hashing buys utilization with 4-slot buckets + bounded movement; "
               "group hashing keeps the simpler zero-movement protocol and rides the "
               "prefetcher on its contiguous groups.\n";
  return 0;
}
