// Ablation — sensitivity to the emulated NVM write latency.
//
// The paper fixes the post-clflush delay at 300 ns (PCM-class writes).
// Sweeping it from 0 (DRAM) to 600 ns (slow PCM) shows how much of each
// scheme's request latency is NVM-write-bound: schemes with more flushes
// per op (logging variants, linear's delete) degrade fastest, so group
// hashing's advantage *grows* with write latency.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: NVM write-latency sweep (0-600ns)",
               "methodology sensitivity for the ICPP'18 emulation", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPath, true},
  };

  for (const u64 latency : {0ull, 150ull, 300ull, 600ull}) {
    BenchEnv sweep_env = env;
    sweep_env.flush_latency_ns = latency;
    std::cout << "write latency " << latency << "ns\n";
    TablePrinter t({"scheme", "insert", "delete"});
    for (const Contender& c : contenders) {
      const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
      const LatencyResult r = run_latency(cfg, workload, 0.5, sweep_env);
      t.add_row({cfg.display_name(), format_ns(r.insert_ns), format_ns(r.delete_ns)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
