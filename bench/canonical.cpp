// Canonical perf-trajectory harness.
//
// One binary, fixed seeds and sizes, machine-readable output: every PR
// runs this and commits the resulting BENCH_PR<N>.json at the repo root;
// tools/bench_check diffs the newest file against its predecessor and
// fails CI on a >10% regression of any pinned metric. The point is not
// absolute numbers (CI machines vary) but the *trajectory* — a change
// that silently halves batched-get throughput shows up as a ratio shift
// in the same run.
//
// Phases (all single map unless noted):
//   insert / query-hit / query-miss / delete  — scalar ns/op
//   batch_get / batch_put / batch_erase       — batched ns/op + speedups
//   fences per op, scalar vs batched put      — the §3.3 coalescing win
//   concurrent_get_xN                         — read scaling, 1/2/4 threads
//   recovery                                  — Algorithm 4 wall time
//   service_ycsbc                             — sharded front-end QPS, p99,
//                                               batched-vs-naive ingest ratio
//
// --smoke shrinks everything for the CI fast lane (numbers still emitted,
// ratios still sane); --out=<path> overrides the JSON destination.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "core/concurrent_map.hpp"
#include "core/group_hash_map.hpp"
#include "hash/tag_probe.hpp"
#include "obs/span.hpp"
#include "service/service.hpp"
#include "service/ycsb_driver.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, gh::u64 ops) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         static_cast<double>(ops);
}

struct Metric {
  std::string name;
  double value = 0;
  /// "lower" = regression when it grows >10%, "higher" = when it shrinks.
  const char* direction = "lower";
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");
  const u64 nkeys = cli.get_u64("keys", smoke ? (1u << 14) : (1u << 20));
  const usize batch = static_cast<usize>(cli.get_u64("batch", 256));
  const u64 seed = 42;  // pinned: the trajectory only means something on fixed inputs
  const std::string out_path = cli.get_or("out", "BENCH_PR10.json");

  BenchEnv env = BenchEnv::from_env();
  env.seed = seed;
  print_banner("Canonical perf trajectory", "pinned-seed harness gating every PR", env);

  // Machine-speed calibration: a fixed dependent-chain LCG loop whose ns/iter
  // tracks how fast this box runs serial integer work *right now*. Emitted in
  // the JSON config so tools/bench_check can rescale absolute-time metrics
  // between runs recorded under different machine conditions (shared CI cores
  // drift 10-30% run to run) instead of flagging the drift as a regression.
  double calibration_ns = 0;
  {
    constexpr u64 kCalIters = 1u << 25;
    u64 acc = 0x9e3779b97f4a7c15ull;
    const auto c0 = Clock::now();
    for (u64 i = 0; i < kCalIters; ++i)
      acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    const auto c1 = Clock::now();
    do_not_optimize(acc);
    calibration_ns = ns_per_op(c0, c1, kCalIters);
  }

  std::cout << "keys " << nkeys << (smoke ? " (smoke)" : "") << ", batch " << batch
            << ", simd level " << static_cast<int>(hash::active_simd_level())
            << ", calibration " << calibration_ns << " ns/iter\n\n";

  MapOptions opts;
  u64 cells = 64;
  while (cells < nkeys * 2) cells <<= 1;
  opts.initial_cells = cells;
  opts.flush_latency_ns = 0;

  Xoshiro256 rng(seed);
  std::vector<u64> keys(nkeys), values(nkeys), misses(nkeys);
  for (u64 i = 0; i < nkeys; ++i) keys[i] = (rng.next() >> 1) | 1;
  for (u64 i = 0; i < nkeys; ++i) values[i] = i + 1;
  for (u64 i = 0; i < nkeys; ++i) misses[i] = (rng.next() >> 1) | 1;
  std::vector<u64> lookups = keys;
  for (u64 i = nkeys - 1; i > 0; --i) std::swap(lookups[i], lookups[rng.next_below(i + 1)]);

  std::vector<Metric> metrics;

  // --- scalar phases ---
  auto map = GroupHashMap::create_in_memory(opts);
  u64 fences0 = map.snapshot().persist.fences;
  auto t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) map.put(keys[i], values[i]);
  auto t1 = Clock::now();
  const double insert_ns = ns_per_op(t0, t1, nkeys);
  const double insert_fences = static_cast<double>(map.snapshot().persist.fences - fences0) /
                               static_cast<double>(nkeys);
  metrics.push_back({"insert_ns_per_op", insert_ns});
  metrics.push_back({"insert_fences_per_op", insert_fences});

  // --- sampled tracing overhead (same insert loop, thread trace installed
  // on every 2^kTraceSampleShift-th op, the service's sampled admission
  // rate). Clamped to a small floor: the honest value hovers near zero and
  // a ratio diff against ~0 would flag pure noise as a regression.
  {
    auto tmap = GroupHashMap::create_in_memory(opts);
    const u64 mask = (u64{1} << obs::kTraceSampleShift) - 1;
    t0 = Clock::now();
    for (u64 i = 0; i < nkeys; ++i) {
      if ((i & mask) == 0) {
        obs::set_thread_trace(obs::SpanCollector::global().next_trace_id(),
                              /*parent_span=*/0, /*sampled=*/true);
        tmap.put(keys[i], values[i]);
        obs::clear_thread_trace();
      } else {
        tmap.put(keys[i], values[i]);
      }
    }
    t1 = Clock::now();
    const double traced_ns = ns_per_op(t0, t1, nkeys);
    const double pct =
        std::max(0.01, insert_ns > 0 ? 100.0 * (traced_ns - insert_ns) / insert_ns : 0.0);
    metrics.push_back({"trace_sampled_overhead_pct", pct});
  }

  u64 hits = 0;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) hits += map.get(lookups[i]).has_value();
  t1 = Clock::now();
  do_not_optimize(hits);
  GH_CHECK(hits == nkeys);
  const double get_ns = ns_per_op(t0, t1, nkeys);
  metrics.push_back({"query_hit_ns_per_op", get_ns});

  u64 neg = 0;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) neg += map.get(misses[i]).has_value();
  t1 = Clock::now();
  do_not_optimize(neg);
  metrics.push_back({"query_miss_ns_per_op", ns_per_op(t0, t1, nkeys)});

  // --- batched phases (fresh map for batch_put so the work matches) ---
  std::vector<std::optional<u64>> out(batch);
  u64 bhits = 0;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    map.get_batch(std::span(lookups).subspan(i, n), std::span(out).first(n));
    for (usize w = 0; w < n; ++w) bhits += out[w].has_value();
  }
  t1 = Clock::now();
  do_not_optimize(bhits);
  GH_CHECK(bhits == nkeys);
  const double batch_get_ns = ns_per_op(t0, t1, nkeys);
  metrics.push_back({"batch_get_ns_per_op", batch_get_ns});
  metrics.push_back({"batch_get_speedup", get_ns / batch_get_ns, "higher"});

  auto bmap = GroupHashMap::create_in_memory(opts);
  fences0 = bmap.snapshot().persist.fences;
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    bmap.put_batch(std::span(keys).subspan(i, n), std::span(values).subspan(i, n));
  }
  t1 = Clock::now();
  const double batch_put_ns = ns_per_op(t0, t1, nkeys);
  const double batch_put_fences =
      static_cast<double>(bmap.snapshot().persist.fences - fences0) /
      static_cast<double>(nkeys);
  metrics.push_back({"batch_put_ns_per_op", batch_put_ns});
  metrics.push_back({"batch_put_fences_per_op", batch_put_fences});
  metrics.push_back({"batch_put_fence_reduction", insert_fences / batch_put_fences, "higher"});

  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; i += batch) {
    const usize n = std::min<usize>(batch, nkeys - i);
    bmap.erase_batch(std::span(keys).subspan(i, n));
  }
  t1 = Clock::now();
  GH_CHECK(bmap.size() == 0);
  metrics.push_back({"batch_erase_ns_per_op", ns_per_op(t0, t1, nkeys)});

  // --- scalar delete (on the still-full scalar map) ---
  t0 = Clock::now();
  for (u64 i = 0; i < nkeys; ++i) map.erase(keys[i]);
  t1 = Clock::now();
  GH_CHECK(map.size() == 0);
  metrics.push_back({"delete_ns_per_op", ns_per_op(t0, t1, nkeys)});

  // --- concurrent read scaling ---
  {
    ConcurrentGroupHashMap cmap(/*shards=*/16, opts);
    for (u64 i = 0; i < nkeys; ++i) cmap.put(keys[i], values[i]);
    for (const u32 nthreads : {1u, 2u, 4u}) {
      const u64 per = nkeys / nthreads;
      std::atomic<u64> total{0};
      t0 = Clock::now();
      std::vector<std::thread> workers;
      for (u32 t = 0; t < nthreads; ++t) {
        workers.emplace_back([&, t] {
          u64 local = 0;
          for (u64 i = t * per; i < (t + 1) * per; ++i) {
            local += cmap.get(lookups[i]).has_value();
          }
          total += local;
        });
      }
      for (auto& w : workers) w.join();
      t1 = Clock::now();
      do_not_optimize(total.load());
      metrics.push_back({"concurrent_get_x" + std::to_string(nthreads) + "_ns_per_op",
                         ns_per_op(t0, t1, per * nthreads)});
    }
  }

  // --- recovery (Algorithm 4 over a dirty full table) ---
  {
    auto rmap = GroupHashMap::create_in_memory(opts);
    for (u64 i = 0; i < nkeys; ++i) rmap.put(keys[i], values[i]);
    t0 = Clock::now();
    const auto report = rmap.recover_now();
    t1 = Clock::now();
    do_not_optimize(report);
    metrics.push_back(
        {"recovery_ms",
         static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()) /
             1000.0});
  }

  // --- resize stall: blocking expand vs online incremental migration ---
  // Insert into a deliberately undersized map and time every put
  // individually; the worst single op IS the resize story. Blocking
  // expand() pays a full format+rehash inside one unlucky put; the
  // online path amortizes the rehash across help-along steps, so its
  // worst op is bounded by migrate_groups_per_op (plus one target
  // format at start).
  {
    const u64 rkeys = smoke ? (1u << 14) : (1u << 18);
    MapOptions ropts;
    ropts.initial_cells = 1024;
    ropts.flush_latency_ns = 0;
    const auto worst_put_us = [&](bool online) {
      ropts.online_resize = online;
      auto rmap = GroupHashMap::create_in_memory(ropts);
      double worst_ns = 0;
      for (u64 i = 0; i < rkeys; ++i) {
        const auto p0 = Clock::now();
        rmap.put(keys[i], values[i]);
        const auto p1 = Clock::now();
        worst_ns = std::max(worst_ns, ns_per_op(p0, p1, 1));
      }
      GH_CHECK(rmap.size() == rkeys);
      return worst_ns / 1000.0;
    };
    const double blocking_us = worst_put_us(false);
    const double online_us = worst_put_us(true);
    metrics.push_back({"resize_max_stall_blocking_us", blocking_us});
    metrics.push_back({"resize_max_stall_us", online_us});
    metrics.push_back(
        {"resize_stall_improvement", online_us > 0 ? blocking_us / online_us : 0, "higher"});
  }

  // --- service front-end (YCSB-C through the sharded ingest path) ---
  {
    service::ServiceOptions sopts;
    sopts.shards = 4;
    service::DriverOptions dopts;
    dopts.clients = 4;
    dopts.batch = 64;
    dopts.keys = smoke ? (1u << 13) : (1u << 16);
    dopts.ops_per_client = smoke ? 20'000 : 200'000;
    dopts.seed = seed;
    dopts.mix = service::mix_for("c");
    u64 scells = 64;
    while (scells < dopts.keys * 2 / sopts.shards) scells <<= 1;
    sopts.map_options.initial_cells = scells;
    sopts.map_options.flush_latency_ns = 0;

    const auto run_service = [&](bool naive) {
      sopts.naive = naive;
      service::ShardServer server(sopts);
      const service::DriverReport r = service::run_ycsb(server, dopts);
      server.stop();
      return r;
    };
    const service::DriverReport batched = run_service(false);
    const service::DriverReport naive = run_service(true);
    metrics.push_back({"service_ycsbc_qps", batched.qps, "higher"});
    metrics.push_back({"service_ycsbc_get_p99_ns", batched.latency.find.p99_ns});
    // The batched/naive speedup is printed for context but no longer
    // pinned: an A/B of identical binaries across box states moved the
    // ratio well past the gate threshold (the two service runs schedule
    // independently, and a ratio cannot be rescaled by the serial
    // calibration loop). Pinning the naive QPS absolutely keeps the
    // same regression coverage — both legs gate, both rescale.
    metrics.push_back({"service_naive_qps", naive.qps, "higher"});
    std::cout << "service batched/naive speedup: "
              << format_double(naive.qps > 0 ? batched.qps / naive.qps : 0, 2) << "x\n";

    // Forced mid-run resize: same driver, YCSB-B, but shards start 64
    // cells deep with online resize on — every shard migrates several
    // times while serving. The pinned p99 is the tail clients actually
    // see during a resize, the number the tentpole exists to protect.
    sopts.naive = false;
    sopts.map_options.initial_cells = 64;
    sopts.map_options.online_resize = true;
    dopts.mix = service::mix_for("b");
    service::ShardServer resize_server(sopts);
    const service::DriverReport under_resize = service::run_ycsb(resize_server, dopts);
    resize_server.stop();
    const obs::Snapshot resize_snap = resize_server.snapshot();
    GH_CHECK(resize_snap.migration.started > 0);  // the run must actually resize
    metrics.push_back({"service_resize_ycsbb_qps", under_resize.qps, "higher"});
    metrics.push_back({"service_resize_ycsbb_get_p99_ns", under_resize.latency.find.p99_ns});
  }

  // --- report ---
  TablePrinter t({"metric", "value", "direction"});
  for (const Metric& m : metrics) {
    t.add_row({m.name, format_double(m.value, 3), m.direction});
  }
  t.print(std::cout);

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"canonical\",\n  \"version\": 1,\n";
  json << "  \"config\": {\"keys\": " << nkeys << ", \"batch\": " << batch
       << ", \"seed\": " << seed << ", \"smoke\": " << (smoke ? "true" : "false")
       << ", \"simd_level\": " << static_cast<int>(hash::active_simd_level())
       << ", \"calibration_ns\": " << calibration_ns << "},\n";
  json << "  \"metrics\": {\n";
  for (usize i = 0; i < metrics.size(); ++i) {
    json << "    \"" << metrics[i].name << "\": {\"value\": "
         << format_double(metrics[i].value, 6) << ", \"direction\": \""
         << metrics[i].direction << "\"}" << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";
  json.close();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
