// Ablation — negative lookups, the case the paper does NOT evaluate.
//
// The paper's query phase only requests items that exist. A query for an
// ABSENT key is group hashing's structural weak spot: after missing the
// level-1 cell it must scan the entire matched level-2 group (group_size
// cells; deletion holes forbid early exit), while linear probing stops at
// the first hole, PFHT checks 8 slots + stash, and path checks 2 x levels
// cells. This bench measures hit vs miss latency and probe counts —
// honest due diligence a downstream user needs before adopting the
// scheme for membership-test-heavy workloads.
#include "bench_common.hpp"

#include "util/clock.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops * 4);

  print_banner("Ablation: negative (absent-key) lookups",
               "evaluates the case ICPP'18's query phase leaves out", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops, env.seed);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},  {hash::Scheme::kGroup2H, false},
      {hash::Scheme::kLinear, true},  {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, true},    {hash::Scheme::kLevel, false},
  };

  TablePrinter t({"scheme", "hit_query", "miss_query", "miss/hit", "probes/miss"});
  for (const Contender& c : contenders) {
    const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
    nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
    const usize bytes = hash::table_required_bytes(cfg);
    nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
    auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);

    const auto keys = workload_keys(workload);
    const u64 target = table->capacity() / 2;
    usize next = 0;
    std::vector<usize> inserted;
    while (table->count() < target && next < keys.size()) {
      if (table->insert(keys[next], 1)) inserted.push_back(next);
      ++next;
    }

    Xoshiro256 rng(env.seed);
    Histogram hit, miss;
    for (u64 i = 0; i < env.ops; ++i) {
      const Key128& k = keys[inserted[rng.next_below(inserted.size())]];
      const u64 t0 = now_ns();
      const auto v = table->find(k);
      hit.record(now_ns() - t0);
      GH_CHECK(v.has_value());
    }
    table->stats().clear();
    for (u64 i = 0; i < env.ops; ++i) {
      // Absent keys: outside the 2^26 RandomNum domain entirely.
      const Key128 k{(1ull << 27) + rng.next_below(1ull << 40), 0};
      const u64 t0 = now_ns();
      const auto v = table->find(k);
      miss.record(now_ns() - t0);
      GH_CHECK(!v.has_value());
    }
    const double probes_per_miss =
        static_cast<double>(table->stats().probes) / static_cast<double>(env.ops);
    t.add_row({cfg.display_name(), format_ns(hit.mean()), format_ns(miss.mean()),
               format_double(miss.mean() / hit.mean(), 1) + "x",
               format_double(probes_per_miss, 1)});
  }
  t.print(std::cout);
  std::cout << "\nGroup hashing's miss path scans the whole group (group_size cells; "
               "holes from deletes forbid early exit) — a real cost the paper's "
               "hit-only query phase never shows. Applications with many negative "
               "lookups should pair the table with a Bloom-style filter.\n";
  return 0;
}
