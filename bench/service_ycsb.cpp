// Service-level YCSB bench — the sharded front-end under mixed traffic.
//
// Drives the ShardServer with the A/B/C core-workload mixes at ≥4
// shards / ≥4 client threads over a Zipf(0.99) keyspace, reporting
// aggregate QPS and p50/p99/p999 end-to-end tail latency from the
// service obs histograms. YCSB-C additionally runs the NAIVE
// one-op-per-request baseline so the batched-ingest win (grouped shard
// visits → one find_batch per visit, PR 6's prefetch + fence-coalescing
// path) shows up as a speedup ratio on the same machine and seed. A last
// YCSB-B run starts the shards 64 cells deep with online resize on, so
// the tail columns show what clients see while every shard migrates
// incrementally mid-run.
//
//   service_ycsb [--shards=4] [--clients=4] [--ops=100000 per client]
//                [--keys=65536] [--batch=64] [--seed from GH_SEED]
#include <iostream>

#include "bench_common.hpp"
#include "service/service.hpp"
#include "service/ycsb_driver.hpp"

namespace {

using namespace gh;
using namespace gh::bench;

struct RunResult {
  service::DriverReport report;
  obs::Snapshot snapshot;
};

RunResult run(const service::ServiceOptions& sopts, const service::DriverOptions& dopts) {
  service::ShardServer server(sopts);
  RunResult r;
  r.report = service::run_ycsb(server, dopts);
  server.stop();
  r.snapshot = server.snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  print_banner("Service: sharded front-end, YCSB mixes",
               "batched ingest vs one-op-per-request across shard workers", env);

  service::ServiceOptions sopts;
  sopts.shards = static_cast<u32>(cli.get_u64("shards", 4));
  sopts.batch_window = static_cast<u32>(cli.get_u64("window", 64));

  service::DriverOptions dopts;
  dopts.clients = static_cast<u32>(cli.get_u64("clients", 4));
  dopts.batch = static_cast<u32>(cli.get_u64("batch", 64));
  dopts.keys = cli.get_u64("keys", 1u << 16);
  dopts.ops_per_client = cli.get_u64("ops", 100'000);
  dopts.seed = env.seed;

  u64 cells = 64;
  while (cells < dopts.keys * 2 / sopts.shards) cells <<= 1;
  sopts.map_options.initial_cells = cells;
  sopts.map_options.flush_latency_ns = env.flush_latency_ns;

  std::cout << sopts.shards << " shards, " << dopts.clients << " clients, batch "
            << dopts.batch << ", " << format_count(dopts.keys) << " keys, "
            << format_count(dopts.ops_per_client) << " ops/client, Zipf(0.99)\n\n";

  TablePrinter t({"workload", "mode", "qps", "get p50", "get p99", "get p999"});
  double ycsbc_batched = 0, ycsbc_naive = 0;
  for (const char* w : {"a", "b", "c"}) {
    dopts.mix = service::mix_for(w);
    sopts.naive = false;
    const RunResult batched = run(sopts, dopts);
    t.add_row({dopts.mix.name, "batched",
               format_double(batched.report.qps / 1000.0, 1) + " kops/s",
               format_ns(batched.report.latency.find.p50_ns),
               format_ns(batched.report.latency.find.p99_ns),
               format_ns(batched.report.latency.find.p999_ns)});
    if (std::string(w) == "c") {
      ycsbc_batched = batched.report.qps;
      sopts.naive = true;
      const RunResult naive = run(sopts, dopts);
      ycsbc_naive = naive.report.qps;
      t.add_row({dopts.mix.name, "naive",
                 format_double(naive.report.qps / 1000.0, 1) + " kops/s",
                 format_ns(naive.report.latency.find.p50_ns),
                 format_ns(naive.report.latency.find.p99_ns),
                 format_ns(naive.report.latency.find.p999_ns)});
    }
  }
  // Forced mid-run resize: undersized shards with online resize on, so
  // every shard migrates repeatedly while serving YCSB-B. The row's p99
  // is the tail clients see DURING incremental migrations — with the
  // blocking expand this column would carry the whole rehash.
  {
    service::ServiceOptions ropts = sopts;
    ropts.naive = false;
    ropts.map_options.initial_cells = 64;
    ropts.map_options.online_resize = true;
    dopts.mix = service::mix_for("b");
    const RunResult resized = run(ropts, dopts);
    t.add_row({"ycsb-b+resize", "batched",
               format_double(resized.report.qps / 1000.0, 1) + " kops/s",
               format_ns(resized.report.latency.find.p50_ns),
               format_ns(resized.report.latency.find.p99_ns),
               format_ns(resized.report.latency.find.p999_ns)});
    t.print(std::cout);
    const obs::MigrationSnapshot& mig = resized.snapshot.migration;
    std::cout << "\nresize run: " << mig.started << " migrations started, " << mig.completed
              << " completed, " << mig.emergency_expands << " emergency merges, "
              << mig.help_steps << " help-along steps, " << mig.bg_steps
              << " idle-drain steps\n";
  }
  if (ycsbc_naive > 0) {
    std::cout << "\nYCSB-C batched ingest speedup over naive: "
              << format_double(ycsbc_batched / ycsbc_naive, 2) << "x\n";
  }
  return 0;
}
