// Figure 2 — "The consistency cost of different hashing schemes."
//
// (a) average request latency and (b) average L3 cache misses for linear
// probing, PFHT and path hashing, each with and without the logging
// scheme, on the RandomNum trace at load factor 0.5. The paper's
// headline numbers: logging versions are ~1.95x slower and produce
// ~2.16x more L3 misses on insert/delete.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Fig 2: consistency cost of logging",
               "ICPP'18 group hashing, Figure 2 (RandomNum, load factor 0.5)", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  struct Row {
    hash::Scheme scheme;
    bool wal;
  };
  const Row rows[] = {
      {hash::Scheme::kLinear, false}, {hash::Scheme::kLinear, true},
      {hash::Scheme::kPfht, false},   {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, false},   {hash::Scheme::kPath, true},
  };

  TablePrinter latency({"scheme", "insert", "query", "delete", "flushes/op"});
  TablePrinter misses({"scheme", "insert_L3miss", "query_L3miss", "delete_L3miss"});

  struct Agg {
    double plain_ins = 0, plain_del = 0, log_ins = 0, log_del = 0;
    double plain_miss = 0, log_miss = 0;
  } agg;

  for (const Row& row : rows) {
    const auto cfg = scheme_config(row.scheme, row.wal, bits, false);
    const LatencyResult lat = run_latency(cfg, workload, 0.5, env);
    const MissResult mis = run_misses(cfg, workload, 0.5, env);
    const double flushes_per_op =
        static_cast<double>(lat.persist.lines_flushed) / static_cast<double>(3 * env.ops);
    latency.add_row({cfg.display_name(), format_ns(lat.insert_ns), format_ns(lat.query_ns),
                     format_ns(lat.delete_ns), format_double(flushes_per_op, 2)});
    misses.add_row({cfg.display_name(), format_double(mis.insert_misses, 2),
                    format_double(mis.query_misses, 2), format_double(mis.delete_misses, 2)});
    if (row.wal) {
      agg.log_ins += lat.insert_ns;
      agg.log_del += lat.delete_ns;
      agg.log_miss += mis.insert_misses + mis.delete_misses;
    } else {
      agg.plain_ins += lat.insert_ns;
      agg.plain_del += lat.delete_ns;
      agg.plain_miss += mis.insert_misses + mis.delete_misses;
    }
  }

  std::cout << "(a) Average request latency\n";
  latency.print(std::cout);
  std::cout << "\n(b) Average L3 cache misses per request (cache simulator)\n";
  misses.print(std::cout);

  const double slowdown = (agg.log_ins + agg.log_del) / (agg.plain_ins + agg.plain_del);
  const double miss_ratio = agg.log_miss / agg.plain_miss;
  std::cout << "\nLogging slowdown on insert+delete: " << format_double(slowdown, 2)
            << "x (paper: ~1.95x)\n"
            << "Logging L3-miss inflation on insert+delete: " << format_double(miss_ratio, 2)
            << "x (paper: ~2.16x)\n";
  return 0;
}
