// Figure 7 — "Space utilization ratios of different hashing schemes."
//
// Load factor at the first insert failure, per scheme per trace. Expected
// shape: path hashing highest, PFHT slightly below it, group hashing
// around 82% (the paper's trade-off for cache-friendly groups). Linear
// probing is omitted, as in the paper: it fills to 1.0 by construction.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  (void)cli;

  print_banner("Fig 7: space utilization at first insert failure",
               "ICPP'18 group hashing, Figure 7", env);

  TablePrinter t({"trace", "PFHT", "path", "group"});
  for (const trace::TraceKind kind :
       {trace::TraceKind::kRandomNum, trace::TraceKind::kBagOfWords,
        trace::TraceKind::kFingerprint}) {
    // Space utilisation needs no latency emulation and is noisy at tiny
    // sizes; use a few bits more than the latency benches if scaled.
    const u32 bits = std::max(cells_log2_for(kind, env.scale_shift), 14u);
    const bool wide = kind == trace::TraceKind::kFingerprint;
    const trace::Workload workload = sized_workload(kind, bits, 1.1, 0, env.seed);

    std::vector<std::string> row{trace::trace_name(kind)};
    for (const hash::Scheme scheme :
         {hash::Scheme::kPfht, hash::Scheme::kPath, hash::Scheme::kGroup}) {
      const auto cfg = scheme_config(scheme, false, bits, wide);
      row.push_back(format_double(run_space_utilization(cfg, workload), 3));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nPaper: path > PFHT > group (~0.82); linear probing omitted "
               "(fills to 1.0 by construction).\n";
  return 0;
}
