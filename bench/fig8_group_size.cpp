// Figure 8 — "Group size vs request latency and space utilization."
//
// Group hashing on the RandomNum trace at load factor 0.5, sweeping the
// group size from 64 to 1024. Expected shape: latency rises with group
// size (larger groups mean longer collision scans); utilisation rises
// with group size, passing ~80% at 256 — the paper's rationale for the
// default of 256.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  // Per-request variance is dominated by where in its group each key
  // lands; average over more requests than the latency figures need.
  env.ops = cli.get_u64("ops", env.ops * 8);

  print_banner("Fig 8: effect of the group size",
               "ICPP'18 group hashing, Figure 8 (RandomNum, load factor 0.5)", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload lat_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);
  const trace::Workload util_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 1.1, 0, env.seed + 1);

  TablePrinter t({"group_size", "insert", "query", "delete", "space_utilization"});
  for (const u32 group_size : {64u, 128u, 256u, 512u, 1024u}) {
    const auto cfg = scheme_config(hash::Scheme::kGroup, false, bits, false, group_size);
    const LatencyResult lat = run_latency(cfg, lat_workload, 0.5, env);
    const double util = run_space_utilization(cfg, util_workload);
    t.add_row({std::to_string(group_size), format_ns(lat.insert_ns),
               format_ns(lat.query_ns), format_ns(lat.delete_ns), format_double(util, 3)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: latencies grow with group size; utilization exceeds 80% at 256 "
               "(the chosen default).\n";
  return 0;
}
