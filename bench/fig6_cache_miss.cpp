// Figure 6 — "The average L3 cache miss number of requesting an item."
//
// Same contender matrix as Fig. 5, measured on the deterministic cache
// simulator (the PAPI substitute; see DESIGN.md). Expected shape: group
// hashing fewest misses; linear good on insert/query, poor on delete;
// PFHT-L vs path-L crossover between load factors 0.5 and 0.75.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Fig 6: average L3 cache misses per request",
               "ICPP'18 group hashing, Figure 6 (cache simulator standing in for PAPI)",
               env);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, true},
  };

  for (const trace::TraceKind kind :
       {trace::TraceKind::kRandomNum, trace::TraceKind::kBagOfWords,
        trace::TraceKind::kFingerprint}) {
    const u32 bits = cells_log2_for(kind, env.scale_shift);
    const bool wide = kind == trace::TraceKind::kFingerprint;
    const trace::Workload workload = sized_workload(kind, bits, 0.75, env.ops * 2, env.seed);
    for (const double lf : {0.5, 0.75}) {
      std::cout << trace::trace_name(kind) << ", load factor " << lf << "\n";
      TablePrinter t({"scheme", "insert_L3miss", "query_L3miss", "delete_L3miss"});
      for (const Contender& c : contenders) {
        const auto cfg = scheme_config(c.scheme, c.wal, bits, wide);
        const MissResult r = run_misses(cfg, workload, lf, env);
        t.add_row({cfg.display_name(), format_double(r.insert_misses, 2),
                   format_double(r.query_misses, 2), format_double(r.delete_misses, 2)});
      }
      t.print(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}
