// Ablation — NVM endurance: media writes and wear distribution per scheme.
//
// The paper motivates write reduction with NVM's limited endurance
// (Table 1: PCM ~10^8 writes) and claims group hashing's elimination of
// duplicate-copy writes "can be combined with wear-leveling schemes to
// further lengthen NVM's lifetime". This bench counts actual media
// line-writes per scheme for the same workload: total writes (lifetime
// currency), the hottest line, and the wear imbalance a wear-leveler
// would have to flatten. Cuckoo hashing's cascading displacement writes
// are included as the cautionary extreme.
#include "bench_common.hpp"

#include "nvm/wear_pm.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: NVM media writes and wear per scheme",
               "quantifies the endurance argument of ICPP'18 sections 1-2", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.7, env.ops, env.seed);
  const auto keys = workload_keys(workload);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false}, {hash::Scheme::kGroup, true},
      {hash::Scheme::kLinear, true}, {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, true},   {hash::Scheme::kCuckoo, false},
  };

  TablePrinter t({"scheme", "media_line_writes", "writes/insert", "hottest_line",
                  "imbalance(max/mean)"});
  for (const Contender& c : contenders) {
    const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
    const usize bytes = hash::table_required_bytes(cfg);
    nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
    nvm::WearPM pm(region.bytes().first(bytes));
    auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);

    // Identical insert+delete churn for every scheme: fill to 0.6, then
    // delete and re-insert a rotating window.
    u64 inserted = 0;
    usize next = 0;
    const u64 target = static_cast<u64>(static_cast<double>(table->capacity()) * 0.6);
    while (table->count() < target && next < keys.size()) {
      if (table->insert(keys[next], 1)) ++inserted;
      ++next;
    }
    for (usize i = 0; i < env.ops && i < next; ++i) {
      table->erase(keys[i]);
      table->insert(keys[i], 2);
      inserted++;
    }

    const nvm::WearReport r = pm.report();
    t.add_row({cfg.display_name(), format_count(r.total_line_writes),
               format_double(static_cast<double>(r.total_line_writes) /
                                 static_cast<double>(inserted), 2),
               format_count(r.max_line_writes) + " @" + format_bytes(r.hottest_line_offset),
               format_double(r.wear_imbalance, 1)});
  }
  t.print(std::cout);
  std::cout << "\nThe hottest line is the header cacheline holding the persistent "
               "`count` on every scheme — the one candidate the paper's "
               "wear-leveling remark applies to most.\n";
  return 0;
}
