// Extension bench — multithreaded read/write scaling of the concurrent
// wrappers (the paper evaluates single-threaded latency only; concurrency
// is the obvious deployment question for a library release).
//
// For each read mix (50 / 95 / 100 % gets) and thread count, runs the
// SAME workload against the sharded map with pessimistic locking (every
// read takes the shard mutex — the pre-seqlock baseline) and with
// optimistic seqlock reads, plus the striped single table in both modes.
// Reports aggregate Mops/s, the seqlock-vs-mutex ratio, and the seqlock
// contention counters (read retries / lock fallbacks / writer waits), so
// the cost of validation failures is visible next to the win.
#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/concurrent_map.hpp"
#include "core/concurrent_table.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  const u64 ops_per_thread = cli.get_u64("ops", 200'000);
  const usize shards = cli.get_u64("shards", 64);
  const u64 key_space = 1 << 18;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  print_banner("Extension: concurrent read/write scaling (mutex vs seqlock reads)",
               "beyond the paper: lock-free reads over the same structure", env);
  std::cout << shards << " shards, " << format_count(ops_per_thread)
            << " ops/thread, " << format_count(key_space) << " keys, "
            << hw << " hardware threads\n";

  // Aggregate Mops/s of a put/get mix across `threads` workers.
  auto run_workload = [&](auto&& put, auto&& get, usize threads, double get_fraction) {
    std::atomic<u64> total_ops{0};
    Stopwatch sw;
    std::vector<std::thread> workers;
    for (usize tid = 0; tid < threads; ++tid) {
      workers.emplace_back([&, tid] {
        Xoshiro256 rng(env.seed + tid);
        for (u64 i = 0; i < ops_per_thread; ++i) {
          const u64 k = rng.next_below(key_space) + 1;
          if (rng.next_double() < get_fraction) {
            get(k);
          } else {
            put(k, i);
          }
        }
        total_ops.fetch_add(ops_per_thread);
      });
    }
    for (auto& w : workers) w.join();
    return static_cast<double>(total_ops.load()) / sw.elapsed_s() / 1e6;
  };

  auto run_map = [&](LockMode mode, usize threads, double get_fraction,
                     LockContention* contention_out) {
    ConcurrentGroupHashMap map(shards, {.initial_cells = 1 << 20}, mode);
    for (u64 k = 1; k <= key_space; ++k) map.put(k, k);
    const double mops = run_workload(
        [&](u64 k, u64 v) { map.put(k, v); },
        [&](u64 k) { do_not_optimize(map.get(k)); }, threads, get_fraction);
    if (contention_out != nullptr) *contention_out = map.contention();
    return mops;
  };

  auto run_table = [&](LockMode mode, usize threads, double get_fraction) {
    ConcurrentGroupHashTable table(
        {.total_cells = 1 << 20, .group_size = 256, .lock_mode = mode});
    for (u64 k = 1; k <= key_space; ++k) table.put(k, k);
    return run_workload(
        [&](u64 k, u64 v) { table.put(k, v); },
        [&](u64 k) { do_not_optimize(table.find(k)); }, threads, get_fraction);
  };

  for (const int read_pct : {50, 95, 100}) {
    const double get_fraction = read_pct / 100.0;
    std::cout << "\n== " << read_pct << "% get / " << (100 - read_pct)
              << "% put ==\n";
    TablePrinter t({"threads", "map mutex", "map seqlock", "map ratio",
                    "table mutex", "table seqlock", "retries", "fallbacks",
                    "writer waits"});
    for (usize threads = 1; threads <= 16; threads *= 2) {
      const double map_mutex =
          run_map(LockMode::kPessimistic, threads, get_fraction, nullptr);
      LockContention contention;
      const double map_seq =
          run_map(LockMode::kOptimistic, threads, get_fraction, &contention);
      const double tab_mutex = run_table(LockMode::kPessimistic, threads, get_fraction);
      const double tab_seq = run_table(LockMode::kOptimistic, threads, get_fraction);
      t.add_row({std::to_string(threads), format_double(map_mutex, 2),
                 format_double(map_seq, 2), format_double(map_seq / map_mutex, 2) + "x",
                 format_double(tab_mutex, 2), format_double(tab_seq, 2),
                 std::to_string(contention.read_retries.load()),
                 std::to_string(contention.read_fallbacks.load()),
                 std::to_string(contention.writer_waits.load())});
    }
    t.print(std::cout);
  }
  std::cout << "\nThroughput in Mops/s; ratio = seqlock / mutex on the sharded map.\n"
            << "(Scaling beyond 1x thread columns is only meaningful on multicore"
               " hosts; contention columns are from the seqlock map run.)\n";
  return 0;
}
