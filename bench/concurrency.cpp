// Extension bench — multithreaded throughput of the sharded concurrent
// wrapper (the paper evaluates single-threaded latency only; concurrency
// is the obvious deployment question for a library release).
//
// Mixed workload (configurable get fraction) over ConcurrentGroupHashMap
// with varying thread counts; reports aggregate Mops/s and scaling
// relative to one thread.
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "core/concurrent_map.hpp"
#include "core/concurrent_table.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  const u64 ops_per_thread = cli.get_u64("ops", 200'000);
  const double get_fraction = cli.get_double("get_fraction", 0.8);
  const usize shards = cli.get_u64("shards", 64);

  print_banner("Extension: concurrent throughput (sharded GroupHashMap)",
               "beyond the paper: multi-threaded scaling of the same structure", env);

  std::cout << "mixed workload: " << static_cast<int>(get_fraction * 100) << "% get, "
            << static_cast<int>((1 - get_fraction) * 100) << "% put, " << shards
            << " shards, " << format_count(ops_per_thread) << " ops/thread\n\n";

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // Two designs: N independent sharded maps vs ONE table with per-group
  // reader-writer locks (core/concurrent_table.hpp).
  auto run_workload = [&](auto&& put, auto&& get, usize threads) {
    std::atomic<u64> total_ops{0};
    Stopwatch sw;
    std::vector<std::thread> workers;
    for (usize tid = 0; tid < threads; ++tid) {
      workers.emplace_back([&, tid] {
        Xoshiro256 rng(env.seed + tid);
        u64 done = 0;
        for (u64 i = 0; i < ops_per_thread; ++i) {
          const u64 k = rng.next_below(1 << 18) + 1;
          if (rng.next_double() < get_fraction) {
            get(k);
          } else {
            put(k, i);
          }
          ++done;
        }
        total_ops.fetch_add(done);
      });
    }
    for (auto& w : workers) w.join();
    return static_cast<double>(total_ops.load()) / sw.elapsed_s() / 1e6;
  };

  TablePrinter t({"threads", "sharded maps", "striped-lock table"});
  for (usize threads = 1; threads <= hw * 2; threads *= 2) {
    ConcurrentGroupHashMap sharded(shards, {.initial_cells = 1 << 20});
    for (u64 k = 1; k <= (1 << 18); ++k) sharded.put(k, k);
    const double sharded_mops = run_workload(
        [&](u64 k, u64 v) { sharded.put(k, v); },
        [&](u64 k) { do_not_optimize(sharded.get(k)); }, threads);

    ConcurrentGroupHashTable striped({.total_cells = 1 << 20, .group_size = 256});
    for (u64 k = 1; k <= (1 << 18); ++k) striped.put(k, k);
    const double striped_mops = run_workload(
        [&](u64 k, u64 v) { striped.put(k, v); },
        [&](u64 k) { do_not_optimize(striped.find(k)); }, threads);

    t.add_row({std::to_string(threads), format_double(sharded_mops, 2) + " Mops/s",
               format_double(striped_mops, 2) + " Mops/s"});
  }
  t.print(std::cout);
  std::cout << "\n(Scaling columns are only meaningful on multicore hosts.)\n";
  return 0;
}
