// Ablation — the cost of eagerly persisting the global `count` field,
// MEASURED by running both policies.
//
// The paper's protocol atomically updates and persists `count` after
// every insert/delete (Algorithms 1 and 3) even though recovery recounts
// it anyway (Algorithm 4). GroupHashTable implements both policies
// (CountMode::kEager / kRecoveryOnly); this bench runs the same workload
// under each and reports the latency and flush deltas, plus the wear on
// the count cacheline that the eager mode concentrates.
#include "bench_common.hpp"

#include "hash/cells.hpp"
#include "util/clock.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops * 2);

  print_banner("Ablation: eager vs recovery-only `count` persistence",
               "measures (not estimates) the cost of the ICPP'18 count protocol", env);

  using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;
  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);

  TablePrinter t({"count mode", "insert", "delete", "flushes/mutation", "count consistent"});
  double eager_insert = 0, lazy_insert = 0;
  for (const hash::CountMode mode :
       {hash::CountMode::kEager, hash::CountMode::kRecoveryOnly}) {
    const Table::Params params{.level_cells = (1ull << bits) / 2,
                               .group_size = 256,
                               .count_mode = mode};
    nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
    nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(Table::required_bytes(params));
    Table table(pm, region.bytes().first(Table::required_bytes(params)), params, true);

    const u64 target = table.capacity() / 2;
    usize next = 0;
    std::vector<u64> inserted;
    while (table.count() < target && next < workload.keys64.size()) {
      const u64 k = workload.keys64[next++];
      if (table.insert(k, trace::value_for_key(k))) inserted.push_back(k);
    }

    pm.stats().clear();
    Histogram ins, del;
    u64 timed = 0;
    for (; timed < env.ops && next < workload.keys64.size(); ++timed, ++next) {
      const u64 t0 = now_ns();
      table.insert(workload.keys64[next], 1);
      ins.record(now_ns() - t0);
    }
    for (u64 i = 0; i < env.ops && i < inserted.size(); ++i) {
      const u64 t0 = now_ns();
      table.erase(inserted[i]);
      del.record(now_ns() - t0);
    }
    const double flushes_per_mut =
        static_cast<double>(pm.stats().lines_flushed) / static_cast<double>(2 * env.ops);

    // The recovery-only mode's on-NVM count is stale; recovery must still
    // restore exactness.
    const u64 logical = table.count();
    const auto report = table.recover();
    const bool consistent = report.recovered_count == logical;

    const bool eager = mode == hash::CountMode::kEager;
    (eager ? eager_insert : lazy_insert) = ins.mean();
    t.add_row({eager ? "eager (paper, Algorithms 1/3)" : "recovery-only",
               format_ns(ins.mean()), format_ns(del.mean()),
               format_double(flushes_per_mut, 2), consistent ? "yes (post-recovery)" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nMeasured saving of dropping the eager count flush: "
            << format_ns(eager_insert - lazy_insert) << "/insert ("
            << format_double((eager_insert - lazy_insert) / eager_insert * 100, 1)
            << "%). Recovery recomputes the exact count either way (Algorithm 4).\n";
  return 0;
}
