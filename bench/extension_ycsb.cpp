// Extension bench — YCSB-style mixed workloads.
//
// The paper times isolated phases (insert, then query, then delete).
// Production key-value traffic interleaves them; the YCSB core workloads
// are the standard shapes:
//   A: 50% read / 50% update        (session store)
//   B: 95% read / 5% update         (photo tagging)
//   C: 100% read                    (caches)
//   D: 95% read / 5% insert, recent keys hot (status feeds)
// Run over the consistency-matched contenders with Zipf-distributed key
// popularity; reports throughput per workload.
#include "bench_common.hpp"

#include "trace/zipf.hpp"
#include "util/clock.hpp"

namespace {

using namespace gh;
using namespace gh::bench;

struct Mix {
  const char* name;
  double read = 0;
  double update = 0;
  double insert = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  const u64 ops = cli.get_u64("ops", 50'000);

  print_banner("Extension: YCSB-style mixed workloads",
               "beyond the paper: interleaved production traffic shapes", env);

  const Mix mixes[] = {
      {"A (50r/50u)", 0.50, 0.50, 0.0},
      {"B (95r/5u)", 0.95, 0.05, 0.0},
      {"C (100r)", 1.00, 0.00, 0.0},
      {"D (95r/5i)", 0.95, 0.00, 0.05},
  };

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, true},
  };

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, ops, env.seed);
  const auto keys = workload_keys(workload);

  for (const Mix& mix : mixes) {
    std::cout << "YCSB-" << mix.name << ", " << format_count(ops) << " ops, Zipf(0.99) "
              << "key popularity\n";
    TablePrinter t({"scheme", "throughput", "mean_latency"});
    for (const Contender& c : contenders) {
      const auto cfg = scheme_config(c.scheme, c.wal, bits, false);
      nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
      const usize bytes = hash::table_required_bytes(cfg);
      nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
      auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);

      // Preload to load factor 0.5.
      const u64 target = table->capacity() / 2;
      usize next = 0;
      std::vector<usize> loaded;
      while (table->count() < target && next < keys.size()) {
        if (table->insert(keys[next], 1)) loaded.push_back(next);
        ++next;
      }
      const trace::ZipfSampler zipf(loaded.size(), 0.99);
      Xoshiro256 rng(env.seed);

      Stopwatch sw;
      u64 done = 0;
      for (u64 i = 0; i < ops; ++i) {
        const double r = rng.next_double();
        if (r < mix.read) {
          const Key128& k = keys[loaded[zipf.sample(rng)]];
          do_not_optimize(table->find(k));
        } else if (r < mix.read + mix.update) {
          // Update = delete + reinsert for schemes without in-place update
          // (uniform across contenders for fairness).
          const Key128& k = keys[loaded[zipf.sample(rng)]];
          if (table->erase(k)) table->insert(k, i);
        } else if (next < keys.size()) {
          table->insert(keys[next++], i);
        }
        ++done;
      }
      const double secs = sw.elapsed_s();
      t.add_row({cfg.display_name(),
                 format_double(static_cast<double>(done) / secs / 1000.0, 1) + " kops/s",
                 format_ns(secs * 1e9 / static_cast<double>(done))});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
