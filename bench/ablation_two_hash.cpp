// Ablation — the paper's own rejected design (§4.4): group hashing with
// TWO hash functions.
//
//   "Although two hash functions can be used in our group hashing to
//    improve the space utilization ratio, the continuity of the collision
//    resolution cells is damaged, more L3 cache misses would be produced."
//
// This bench puts numbers on that sentence: utilisation up, misses and
// latency up. Group sizes are swept so the trade-off is visible across
// the Fig. 8 dimension too.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops * 4);

  print_banner("Ablation: one vs two hash functions in group hashing",
               "quantifies the trade-off stated in ICPP'18 section 4.4", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload lat_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, env.ops * 2, env.seed);
  const trace::Workload util_workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 1.1, 0, env.seed + 1);

  for (const u32 group_size : {64u, 256u, 1024u}) {
    std::cout << "group size " << group_size << "\n";
    TablePrinter t({"variant", "insert", "query", "delete", "query_L3miss",
                    "space_utilization"});
    for (const hash::Scheme scheme : {hash::Scheme::kGroup, hash::Scheme::kGroup2H}) {
      const auto cfg = scheme_config(scheme, false, bits, false, group_size);
      const LatencyResult lat = run_latency(cfg, lat_workload, 0.5, env);
      const MissResult mis = run_misses(cfg, lat_workload, 0.5, env);
      const double util = run_space_utilization(cfg, util_workload);
      t.add_row({scheme == hash::Scheme::kGroup ? "1 hash (paper design)" : "2 hashes",
                 format_ns(lat.insert_ns), format_ns(lat.query_ns),
                 format_ns(lat.delete_ns), format_double(mis.query_misses, 2),
                 format_double(util, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Two hash functions buy utilization and pay for it in scattered "
               "probes — the paper's reason for staying with one.\n";
  return 0;
}
