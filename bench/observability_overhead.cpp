// Observability overhead — the acceptance gate for the obs layer.
//
// Two questions:
//   1. primitive cost: what does one hook cost in isolation (rdtsc pair,
//      histogram record, striped counter add)?
//   2. end-to-end cost: insert/query throughput on a GroupHashMap at the
//      paper's 300 ns flush model, with per-op latency recording ON vs
//      OFF (MapOptions::record_latency). Target: ≤ 2% regression with
//      recording on; a GH_OBS_OFF build compiles every hook away and
//      must measure ~0%.
//
// Flags: --keys=N (default 200k), --reps=N primitive loop count.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/group_hash_map.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace gh;
using bench::do_not_optimize;

double ns_per_iter(u64 reps, const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         static_cast<double>(reps);
}

struct MapRun {
  double insert_ns = 0;
  double query_ns = 0;
};

MapRun run_map(u64 keys, u64 flush_ns, bool record_latency, u32 sample_shift,
               obs::FlightMode flight = obs::FlightMode::kOff,
               obs::TraceMode trace = obs::TraceMode::kOff) {
  auto map = BasicGroupHashMap<hash::Cell16>::create_in_memory(
      {.initial_cells = 4 * keys, .flush_latency_ns = flush_ns,
       .record_latency = record_latency, .latency_sample_shift = sample_shift,
       .flight_mode = flight});
  // Tracing legs emulate what the service does per traced request:
  // install a thread trace around the op so op_finish emits the op span
  // plus its phase children. kSampled traces 1 op in 2^kTraceSampleShift,
  // kFull every op.
  const u64 trace_mask = trace == obs::TraceMode::kFull
                             ? 0
                             : (u64{1} << obs::kTraceSampleShift) - 1;
  MapRun r;
  {
    const auto t0 = std::chrono::steady_clock::now();
    if (trace == obs::TraceMode::kOff) {
      for (u64 k = 1; k <= keys; ++k) map.put(k, k);
    } else {
      for (u64 k = 1; k <= keys; ++k) {
        if ((k & trace_mask) == 0) {
          const u64 tid = obs::SpanCollector::global().next_trace_id();
          obs::set_thread_trace(tid, 0, true);
          map.put(k, k);
          obs::clear_thread_trace();
        } else {
          map.put(k, k);
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.insert_ns = static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
                  static_cast<double>(keys);
  }
  {
    u64 hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 k = 1; k <= keys; ++k) hits += map.get(k).has_value();
    const auto t1 = std::chrono::steady_clock::now();
    do_not_optimize(hits);
    r.query_ns = static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
                 static_cast<double>(keys);
  }
  return r;
}

struct Leg {
  bool record_latency;
  u32 sample_shift;
  obs::FlightMode flight;
  obs::TraceMode trace = obs::TraceMode::kOff;
  MapRun best{0, 0};
};

// The insert path is dominated by the calibrated 300 ns flush spin, whose
// run-to-run variance (VM scheduling, frequency) is larger than the hook
// cost being measured. Best-of-N is the standard noise-robust estimator,
// and the legs are interleaved within each round — running all rounds of
// one leg back-to-back would fold minute-scale host drift into the
// leg-vs-leg comparison the acceptance gate is built on.
void best_of_interleaved(std::vector<Leg>& legs, int rounds, u64 keys,
                         u64 flush_ns) {
  for (int i = 0; i < rounds; ++i) {
    for (Leg& leg : legs) {
      const MapRun r = run_map(keys, flush_ns, leg.record_latency, leg.sample_shift,
                               leg.flight, leg.trace);
      if (i == 0) {
        leg.best = r;
      } else {
        leg.best.insert_ns = std::min(leg.best.insert_ns, r.insert_ns);
        leg.best.query_ns = std::min(leg.best.query_ns, r.query_ns);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto env = bench::BenchEnv::from_env();
  const u64 keys = cli.get_u64("keys", 200'000);
  const u64 reps = cli.get_u64("reps", 2'000'000);

  bench::print_banner("observability overhead (obs layer acceptance)",
                      "repo extension: metrics registry + op tracing", env);
  std::printf("obs hooks compiled: %s\n\n", obs::kEnabled ? "ON" : "OFF (GH_OBS_OFF)");

  // --- primitive costs ------------------------------------------------------
  {
    TablePrinter t({"primitive", "ns/op"});
    u64 sink = 0;
    t.add_row({"rdtsc pair (op_start+op_finish timing)",
               format_double(ns_per_iter(reps, [&] {
                 for (u64 i = 0; i < reps; ++i) sink += obs::now_ticks() - obs::now_ticks();
               }), 2)});
    obs::LatencyHistogram hist;
    t.add_row({"LatencyHistogram::record",
               format_double(ns_per_iter(reps, [&] {
                 for (u64 i = 0; i < reps; ++i) hist.record(i & 0xffff);
               }), 2)});
    obs::StripedCounter counter;
    t.add_row({"StripedCounter::add",
               format_double(ns_per_iter(reps, [&] {
                 for (u64 i = 0; i < reps; ++i) counter.add(1);
               }), 2)});
    do_not_optimize(sink);
    do_not_optimize(hist);
    t.print(std::cout);
  }

  // --- end-to-end map overhead ---------------------------------------------
  std::printf("\nGroupHashMap, %s keys, flush latency %llu ns:\n",
              format_count(keys).c_str(),
              static_cast<unsigned long long>(env.flush_latency_ns));
  // Warm-up run (page faults, allocator) discarded.
  run_map(keys / 4, env.flush_latency_ns, true, obs::kDefaultSampleShift);
  const int rounds = static_cast<int>(cli.get_u64("rounds", 3));
  // Flight-recorder legs ride on the latency-off baseline so each
  // overhead number isolates one instrument.
  std::vector<Leg> legs = {
      {/*record_latency=*/false, obs::kDefaultSampleShift, obs::FlightMode::kOff},
      {/*record_latency=*/true, obs::kDefaultSampleShift, obs::FlightMode::kOff},
      {/*record_latency=*/true, /*sample_shift=*/0, obs::FlightMode::kOff},
      {/*record_latency=*/false, obs::kDefaultSampleShift, obs::FlightMode::kSampled},
      {/*record_latency=*/false, obs::kDefaultSampleShift, obs::FlightMode::kFull},
      // Tracing legs ride on the default latency-on config (tracing in
      // production runs on top of the always-on instruments).
      {/*record_latency=*/true, obs::kDefaultSampleShift, obs::FlightMode::kOff,
       obs::TraceMode::kSampled},
      {/*record_latency=*/true, obs::kDefaultSampleShift, obs::FlightMode::kOff,
       obs::TraceMode::kFull},
  };
  best_of_interleaved(legs, rounds, keys, env.flush_latency_ns);
  const MapRun& off = legs[0].best;
  const MapRun& on = legs[1].best;
  const MapRun& every = legs[2].best;
  const MapRun& flight_sampled = legs[3].best;
  const MapRun& flight_full = legs[4].best;
  const MapRun& trace_sampled = legs[5].best;
  const MapRun& trace_full = legs[6].best;

  TablePrinter t({"config", "insert ns/op", "query ns/op"});
  t.add_row({"record_latency=off", format_double(off.insert_ns, 1),
             format_double(off.query_ns, 1)});
  t.add_row({"on, sampled 1/64 (default)", format_double(on.insert_ns, 1),
             format_double(on.query_ns, 1)});
  t.add_row({"on, every op (shift=0)", format_double(every.insert_ns, 1),
             format_double(every.query_ns, 1)});
  t.add_row({"flight recorder, sampled 1/128", format_double(flight_sampled.insert_ns, 1),
             format_double(flight_sampled.query_ns, 1)});
  t.add_row({"flight recorder, every op", format_double(flight_full.insert_ns, 1),
             format_double(flight_full.query_ns, 1)});
  t.add_row({"tracing, sampled 1/64", format_double(trace_sampled.insert_ns, 1),
             format_double(trace_sampled.query_ns, 1)});
  t.add_row({"tracing, every op (full)", format_double(trace_full.insert_ns, 1),
             format_double(trace_full.query_ns, 1)});
  const double insert_pct = off.insert_ns > 0
                                ? 100.0 * (on.insert_ns - off.insert_ns) / off.insert_ns
                                : 0;
  const double query_pct = off.query_ns > 0
                               ? 100.0 * (on.query_ns - off.query_ns) / off.query_ns
                               : 0;
  const double flight_pct =
      off.insert_ns > 0
          ? 100.0 * (flight_sampled.insert_ns - off.insert_ns) / off.insert_ns
          : 0;
  // Tracing rides on the latency-on leg, so its overhead is measured
  // against that baseline, not the all-off one.
  const double trace_pct =
      on.insert_ns > 0
          ? 100.0 * (trace_sampled.insert_ns - on.insert_ns) / on.insert_ns
          : 0;
  t.add_row({"latency overhead", format_double(insert_pct, 2) + "%",
             format_double(query_pct, 2) + "%"});
  t.add_row({"flight overhead (sampled)", format_double(flight_pct, 2) + "%", "-"});
  t.add_row({"tracing overhead (sampled)", format_double(trace_pct, 2) + "%", "-"});
  t.print(std::cout);
  std::printf("\nacceptance: insert overhead %s 2%% target%s\n",
              insert_pct <= 2.0 ? "within" : "ABOVE",
              obs::kEnabled ? "" : " (hooks compiled out; expect ~0%)");
  std::printf("acceptance: flight recorder (sampled) insert overhead %s 2%% target%s\n",
              flight_pct <= 2.0 ? "within" : "ABOVE",
              obs::kEnabled ? "" : " (hooks compiled out; expect ~0%)");
  std::printf("acceptance: tracing (sampled) insert overhead %s 2%% target%s\n",
              trace_pct <= 2.0 ? "within" : "ABOVE",
              obs::kEnabled ? "" : " (hooks compiled out; expect ~0%)");
  return 0;
}
