// Table 3 — "Recovery time for different hash table sizes."
//
// Group hashing on the RandomNum trace at load factor 0.5: wall-clock of
// the Algorithm-4 recovery scan vs the execution time of loading the
// table, across table sizes. Paper sizes are 128 MiB-1 GiB; GH_SCALE
// shrinks them proportionally (the ratio row — recovery under 1% of load
// time — is the scale-free result).
#include "bench_common.hpp"

#include "core/parallel_recovery.hpp"
#include "hash/cells.hpp"
#include "util/clock.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  (void)cli;

  print_banner("Table 3: failure recovery time",
               "ICPP'18 group hashing, Table 3 (RandomNum, load factor 0.5)", env);

  TablePrinter t({"table_size", "cells", "recovery", "parallel_rec", "rec_flushes",
                  "load_time", "recovery/load"});

  // Paper sizes: 128MiB..1GiB of 16-byte cells => 2^23..2^26 cells.
  for (const u32 paper_bits : {23u, 24u, 25u, 26u}) {
    const u32 bits = paper_bits > env.scale_shift ? paper_bits - env.scale_shift : 13;
    using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;
    const Table::Params params{.level_cells = (1ull << bits) / 2, .group_size = 256};
    const usize table_bytes = Table::required_bytes(params);

    nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
    nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_bytes);
    Table table(pm, region.bytes().first(table_bytes), params, /*format=*/true);

    const trace::Workload workload =
        sized_workload(trace::TraceKind::kRandomNum, bits, 0.5, 0, env.seed);
    const u64 target = table.capacity() / 2;

    Stopwatch load;
    for (const u64 k : workload.keys64) {
      if (table.count() >= target) break;
      table.insert(k, trace::value_for_key(k));
    }
    const double load_ms = load.elapsed_ms();

    const u64 flushes_before_seq = pm.stats().lines_flushed;
    Stopwatch rec;
    const auto report = table.recover();
    const double rec_ms = rec.elapsed_ms();
    GH_CHECK(report.recovered_count == table.count());
    const u64 seq_flushes = pm.stats().lines_flushed - flushes_before_seq;

    // Extension: the same scan split across cores (see
    // core/parallel_recovery.hpp); results are identical, only faster,
    // and the merged worker PersistStats prove the NVM traffic is the
    // same (the sequential scan already scrubbed, so the parallel pass
    // flushes only the recomputed count — both columns are shown).
    Stopwatch prec;
    const auto parallel = parallel_recover(table);
    const double prec_ms = prec.elapsed_ms();
    GH_CHECK(parallel.report.recovered_count == report.recovered_count);

    t.add_row({format_bytes(table_bytes), format_count(table.capacity()),
               format_ns(rec_ms * 1e6),
               format_ns(prec_ms * 1e6) + " (" + std::to_string(parallel.threads_used) +
                   "t)",
               format_count(seq_flushes) + "/" +
                   format_count(parallel.persist.lines_flushed),
               format_ns(load_ms * 1e6),
               format_double(rec_ms / load_ms * 100.0, 2) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nPaper (full scale): 77.8ms/8.4s (128MiB) ... 630ms/67.4s (1GiB), "
               "ratio ~0.93% at every size. The parallel column is this repo's "
               "multicore extension of Algorithm 4.\n";
  return 0;
}
