// Ablation — integrity tax: what per-group CRC32C checksums cost.
//
// The paper's consistency argument covers crashes (the 8-byte atomic
// commit word); it says nothing about media faults. This repo adds
// optional per-group checksums (XOR of seeded per-cell CRC32C digests,
// maintained incrementally: one extra 8-byte flush per mutation) so
// at-rest corruption is detected instead of served. This bench prices
// that choice three ways:
//
//   1. request latency — insert/query/delete with checksums off vs on,
//      narrow and wide cells, at the paper's 0.7 operating point;
//   2. media traffic — extra flushed lines per insert (the endurance
//      currency of ablation_wear);
//   3. scrub throughput — how fast a background verification pass covers
//      a clean table, full-scan and per-64-group incremental tick.
#include "bench_common.hpp"

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "util/clock.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: per-group checksum overhead and scrub throughput",
               "integrity extension beyond ICPP'18 (crash-only) consistency", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.7, env.ops, env.seed);

  struct Variant {
    const char* name;
    bool wide;
    bool crc;
  };
  const Variant variants[] = {
      {"group", false, false},
      {"group+crc", false, true},
      {"group-wide", true, false},
      {"group-wide+crc", true, true},
  };

  const auto keys = workload_keys(workload);
  TablePrinter t({"variant", "insert", "query", "delete", "flushes/insert"});
  double insert_ns[2][2] = {};  // [wide][crc]
  for (const Variant& v : variants) {
    hash::TableConfig cfg = scheme_config(hash::Scheme::kGroup, false, bits, v.wide);
    cfg.group_crc = v.crc;
    const LatencyResult r = run_latency(cfg, workload, 0.7, env);
    insert_ns[v.wide][v.crc] = r.insert_ns;

    // Media traffic, measured directly (latency emulation off): flushed
    // lines per successful insert. The checksum variant pays one extra
    // line — the group's crc word — per mutation.
    nvm::DirectPM count_pm(nvm::PersistConfig{.flush_latency_ns = 0});
    const usize bytes = hash::table_required_bytes(cfg);
    nvm::NvmRegion traffic_region = nvm::NvmRegion::create_anonymous(bytes);
    auto traffic_table =
        hash::make_table(count_pm, traffic_region.bytes().first(bytes), cfg, true);
    const u64 fill_target =
        static_cast<u64>(static_cast<double>(traffic_table->capacity()) * 0.7);
    const u64 flushed_before = count_pm.stats().lines_flushed;
    u64 inserted = 0;
    for (const Key128& k : keys) {
      if (traffic_table->count() >= fill_target) break;
      if (traffic_table->insert(k, 1)) ++inserted;
    }
    const double flushes_per_insert =
        static_cast<double>(count_pm.stats().lines_flushed - flushed_before) /
        static_cast<double>(std::max<u64>(1, inserted));

    t.add_row({v.name, format_ns(r.insert_ns), format_ns(r.query_ns),
               format_ns(r.delete_ns), format_double(flushes_per_insert, 2)});
  }
  t.print(std::cout);
  std::cout << "\nInsert overhead of +crc: "
            << format_double((insert_ns[0][1] / insert_ns[0][0] - 1.0) * 100.0, 1)
            << "% narrow, "
            << format_double((insert_ns[1][1] / insert_ns[1][0] - 1.0) * 100.0, 1)
            << "% wide (one extra flushed line per mutation; queries are "
               "checksum-free).\n\n";

  // Scrub throughput on a clean checksummed table at the same load.
  using Table = hash::GroupHashTable<hash::Cell16, nvm::DirectPM>;
  const Table::Params params{.level_cells = (1ull << bits) / 2,
                             .group_size = 256,
                             .group_crc = true};
  const usize table_bytes = Table::required_bytes(params);
  nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_bytes);
  Table table(pm, region.bytes().first(table_bytes), params, /*format=*/true);
  const u64 target = static_cast<u64>(static_cast<double>(table.capacity()) * 0.7);
  for (const u64 k : workload.keys64) {
    if (table.count() >= target) break;
    table.insert(k, trace::value_for_key(k));
  }

  const auto ignore_loss = [](const hash::LostCell&) {};
  Stopwatch full;
  const hash::ScrubReport report = table.scrub_groups(0, ~u64{0}, ignore_loss);
  const double full_ms = full.elapsed_ms();
  GH_CHECK(report.clean());

  constexpr u64 kTickGroups = 64;
  Stopwatch tick;
  const hash::ScrubReport one_tick = table.scrub_groups(0, kTickGroups, ignore_loss);
  const double tick_ms = tick.elapsed_ms();

  const double bytes_scanned =
      static_cast<double>(report.cells_scanned) * sizeof(hash::Cell16);
  TablePrinter s({"pass", "groups", "cells", "time", "groups/s", "MB/s"});
  s.add_row({"full scan", format_count(report.groups_checked),
             format_count(report.cells_scanned), format_ns(full_ms * 1e6),
             format_count(static_cast<u64>(
                 static_cast<double>(report.groups_checked) / (full_ms / 1e3))),
             format_double(bytes_scanned / 1e6 / (full_ms / 1e3), 0)});
  s.add_row({"64-group tick", format_count(one_tick.groups_checked),
             format_count(one_tick.cells_scanned), format_ns(tick_ms * 1e6),
             format_count(static_cast<u64>(
                 static_cast<double>(one_tick.groups_checked) / (tick_ms / 1e3))),
             "-"});
  s.print(std::cout);
  std::cout << "\nScrub is read-only on a clean table (no flushes): a "
               "maintenance tick of "
            << kTickGroups << " groups bounds per-call latency while the wrap-around "
               "cursor covers the whole table across ticks.\n";
  return 0;
}
