#include "bench_common.hpp"

#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gh::bench {

BenchEnv BenchEnv::from_env() {
  BenchEnv env;
  env.scale_shift = bench_scale_shift();
  env.flush_latency_ns = env_u64("GH_NVM_LATENCY_NS", 300);
  env.ops = env_u64("GH_OPS", 1000);
  env.seed = env_u64("GH_SEED", 42);
  return env;
}

u32 cells_log2_for(trace::TraceKind kind, u32 scale_shift) {
  u32 paper_bits = 23;  // RandomNum (§4.1)
  switch (kind) {
    case trace::TraceKind::kRandomNum:
      paper_bits = 23;
      break;
    case trace::TraceKind::kBagOfWords:
      paper_bits = 24;
      break;
    case trace::TraceKind::kFingerprint:
      paper_bits = 25;
      break;
  }
  const u32 scaled = paper_bits > scale_shift ? paper_bits - scale_shift : 12;
  return std::max(scaled, 12u);
}

trace::Workload sized_workload(trace::TraceKind kind, u32 cells_log2,
                               double max_load_factor, u64 extra_ops, u64 seed) {
  const u64 cells = 1ull << cells_log2;
  // 1.3x headroom: fills skip keys rejected by a full group/bucket.
  u64 n = static_cast<u64>(static_cast<double>(cells) * max_load_factor * 1.3) + extra_ops;
  if (kind == trace::TraceKind::kRandomNum) {
    n = std::min<u64>(n, 1ull << 26);  // the paper's key domain
  }
  return trace::make_workload(kind, n, seed);
}

std::vector<Key128> workload_keys(const trace::Workload& w) {
  std::vector<Key128> keys;
  keys.reserve(w.size());
  if (w.wide_keys) {
    keys = w.keys128;
  } else {
    for (const u64 k : w.keys64) keys.push_back(Key128{k, 0});
  }
  return keys;
}

hash::TableConfig scheme_config(hash::Scheme scheme, bool with_wal, u32 cells_log2,
                                bool wide_cells, u32 group_size) {
  hash::TableConfig cfg;
  cfg.scheme = scheme;
  cfg.with_wal = with_wal;
  cfg.total_cells_log2 = cells_log2;
  cfg.wide_cells = wide_cells;
  cfg.group_size = group_size;
  cfg.reserved_levels = 20;  // paper's path-hashing setting
  return cfg;
}

namespace {

/// Shared phase driver: fills `table` to the load factor, then executes
/// the three timed phases, invoking `measure(phase_fn)` wrappers provided
/// by the caller so latency and miss benches share the exact same op
/// sequence.
template <class PM>
struct PhasePlan {
  std::vector<Key128> insert_keys;  // timed inserts
  std::vector<Key128> query_keys;   // timed queries (of inserted items)
  std::vector<Key128> delete_keys;  // timed deletes (of inserted items)
  u64 fill_failures = 0;
  double achieved_load_factor = 0;
};

template <class PM>
PhasePlan<PM> fill_table(hash::AnyTable<PM>& table, const std::vector<Key128>& keys,
                         double load_factor, u64 ops, u64 seed) {
  PhasePlan<PM> plan;
  const u64 target = static_cast<u64>(static_cast<double>(table.capacity()) * load_factor);
  usize next = 0;
  std::vector<usize> inserted;
  inserted.reserve(target);
  while (table.count() < target && next < keys.size()) {
    const Key128& k = keys[next];
    if (table.insert(k, trace::value_for_key(k))) {
      inserted.push_back(next);
    } else {
      plan.fill_failures++;
    }
    ++next;
  }
  plan.achieved_load_factor = table.load_factor();

  // Timed-phase keys: fresh keys for inserts; random committed keys for
  // queries; distinct random committed keys for deletes.
  Xoshiro256 rng(seed);
  for (u64 i = 0; i < ops && next < keys.size(); ++i, ++next) {
    plan.insert_keys.push_back(keys[next]);
  }
  GH_CHECK_MSG(inserted.size() >= ops, "fill too small for the request phases");
  for (u64 i = 0; i < ops; ++i) {
    plan.query_keys.push_back(keys[inserted[rng.next_below(inserted.size())]]);
  }
  // Sample distinct delete victims from the filled set.
  for (u64 i = 0; i < ops; ++i) {
    const usize j = i + rng.next_below(inserted.size() - i);
    std::swap(inserted[i], inserted[j]);
    plan.delete_keys.push_back(keys[inserted[i]]);
  }
  return plan;
}

}  // namespace

LatencyResult run_latency(const hash::TableConfig& cfg, const trace::Workload& workload,
                          double load_factor, const BenchEnv& env) {
  nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);

  const std::vector<Key128> keys = workload_keys(workload);
  auto plan = fill_table(*table, keys, load_factor, env.ops, env.seed);

  LatencyResult result;
  result.achieved_load_factor = plan.achieved_load_factor;
  result.fill_failures = plan.fill_failures;
  pm.stats().clear();

  Histogram h;
  for (const Key128& k : plan.insert_keys) {
    const u64 t0 = now_ns();
    table->insert(k, trace::value_for_key(k));
    h.record(now_ns() - t0);
  }
  result.insert_ns = h.mean();

  h.clear();
  for (const Key128& k : plan.query_keys) {
    const u64 t0 = now_ns();
    const auto v = table->find(k);
    h.record(now_ns() - t0);
    GH_CHECK(v.has_value());
  }
  result.query_ns = h.mean();

  h.clear();
  for (const Key128& k : plan.delete_keys) {
    const u64 t0 = now_ns();
    const bool ok = table->erase(k);
    h.record(now_ns() - t0);
    GH_CHECK(ok);
  }
  result.delete_ns = h.mean();
  result.persist = pm.stats();
  return result;
}

MissResult run_misses(const hash::TableConfig& cfg, const trace::Workload& workload,
                      double load_factor, const BenchEnv& env) {
  const usize table_bytes = hash::table_required_bytes(cfg);
  // Keep the paper's table:LLC ratio (~128 MiB-1 GiB tables against a
  // 15 MiB L3, i.e. roughly 8-64x) when tables are scaled down.
  cachesim::CacheSim sim(cachesim::CacheConfig::scaled_l3(table_bytes / 8));
  nvm::TracingPM pm(sim);
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_bytes);
  auto table = hash::make_table(pm, region.bytes().first(table_bytes), cfg, true);

  const std::vector<Key128> keys = workload_keys(workload);
  auto plan = fill_table(*table, keys, load_factor, env.ops, env.seed);

  MissResult result;
  result.achieved_load_factor = plan.achieved_load_factor;

  u64 start = sim.llc_misses();
  for (const Key128& k : plan.insert_keys) table->insert(k, trace::value_for_key(k));
  result.insert_misses = static_cast<double>(sim.llc_misses() - start) /
                         static_cast<double>(plan.insert_keys.size());

  start = sim.llc_misses();
  for (const Key128& k : plan.query_keys) GH_CHECK(table->find(k).has_value());
  result.query_misses = static_cast<double>(sim.llc_misses() - start) /
                        static_cast<double>(plan.query_keys.size());

  start = sim.llc_misses();
  for (const Key128& k : plan.delete_keys) GH_CHECK(table->erase(k));
  result.delete_misses = static_cast<double>(sim.llc_misses() - start) /
                         static_cast<double>(plan.delete_keys.size());
  return result;
}

double run_space_utilization(const hash::TableConfig& cfg, const trace::Workload& workload) {
  nvm::DirectPM pm(nvm::PersistConfig::counting_only());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(hash::table_required_bytes(cfg));
  auto table =
      hash::make_table(pm, region.bytes().first(hash::table_required_bytes(cfg)), cfg, true);
  const std::vector<Key128> keys = workload_keys(workload);
  for (const Key128& k : keys) {
    if (!table->insert(k, 1)) break;  // utilisation = load factor at first failure
  }
  return table->load_factor();
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  const BenchEnv& env) {
  std::cout << "=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n"
            << "scale=1/" << (1u << env.scale_shift) << " of paper table sizes"
            << "  nvm_write_latency=" << env.flush_latency_ns << "ns"
            << "  ops/phase=" << env.ops << "\n\n";
}

}  // namespace gh::bench
