// Figure 5 — "The average latency of requesting an item."
//
// Group hashing vs linear-L, PFHT-L and path-L (all with consistency
// guarantees) across the three traces and load factors 0.5 / 0.75, for
// insert, query and delete. Expected shape: group hashing lowest
// everywhere; linear-L good insert/query but poor delete; PFHT-L ahead of
// path-L at lf 0.5, behind at 0.75; Fingerprint slower than the 16-byte
// traces on insert/delete.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Fig 5: average request latency",
               "ICPP'18 group hashing, Figure 5 (3 traces x load factors 0.5/0.75)", env);

  struct Contender {
    hash::Scheme scheme;
    bool wal;
  };
  // The paper's consistency-matched comparison: the baselines carry the
  // logging scheme, group hashing runs its bare 8-byte-commit protocol.
  const Contender contenders[] = {
      {hash::Scheme::kGroup, false},
      {hash::Scheme::kLinear, true},
      {hash::Scheme::kPfht, true},
      {hash::Scheme::kPath, true},
  };

  for (const trace::TraceKind kind :
       {trace::TraceKind::kRandomNum, trace::TraceKind::kBagOfWords,
        trace::TraceKind::kFingerprint}) {
    const u32 bits = cells_log2_for(kind, env.scale_shift);
    const bool wide = kind == trace::TraceKind::kFingerprint;
    const trace::Workload workload = sized_workload(kind, bits, 0.75, env.ops * 2, env.seed);
    for (const double lf : {0.5, 0.75}) {
      std::cout << trace::trace_name(kind) << ", load factor " << lf << " (2^" << bits
                << " cells, " << workload.item_bytes << "B items)\n";
      TablePrinter t({"scheme", "insert", "query", "delete", "achieved_lf"});
      for (const Contender& c : contenders) {
        const auto cfg = scheme_config(c.scheme, c.wal, bits, wide);
        const LatencyResult r = run_latency(cfg, workload, lf, env);
        t.add_row({cfg.display_name(), format_ns(r.insert_ns), format_ns(r.query_ns),
                   format_ns(r.delete_ns), format_double(r.achieved_load_factor, 3)});
      }
      t.print(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}
