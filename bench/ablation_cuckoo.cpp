// Ablation — why PFHT bounds displacements: classic cuckoo hashing's
// eviction cascades vs PFHT's ≤1 displacement vs group hashing's zero.
//
// Near high load a cuckoo insert can rewrite dozens of cells, each a
// persisted NVM write; the displacement column counts them directly and
// the flush column shows the resulting write amplification. This
// quantifies the design lineage: cuckoo -> PFHT (bounded) -> group
// hashing (none).
#include "bench_common.hpp"

#include "util/clock.hpp"

int main(int argc, char** argv) {
  using namespace gh;
  using namespace gh::bench;
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_env();
  env.ops = cli.get_u64("ops", env.ops);

  print_banner("Ablation: displacement cascades (cuckoo vs PFHT vs group)",
               "motivates the bounded-displacement lineage behind ICPP'18", env);

  const u32 bits = cells_log2_for(trace::TraceKind::kRandomNum, env.scale_shift);
  const trace::Workload workload =
      sized_workload(trace::TraceKind::kRandomNum, bits, 0.9, env.ops * 2, env.seed);

  for (const double lf : {0.3, 0.45}) {
    std::cout << "load factor " << lf
              << " (2-choice single-slot cuckoo saturates near 0.5)\n";
    TablePrinter t({"scheme", "insert", "displacements/insert", "flushes/op"});
    for (const hash::Scheme scheme :
         {hash::Scheme::kCuckoo, hash::Scheme::kPfht, hash::Scheme::kGroup}) {
      const auto cfg = scheme_config(scheme, false, bits, false);
      // Measure displacement counts with a dedicated run (stats are not
      // part of LatencyResult).
      nvm::DirectPM pm(nvm::PersistConfig{.flush_latency_ns = env.flush_latency_ns});
      const usize bytes = hash::table_required_bytes(cfg);
      nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(bytes);
      auto table = hash::make_table(pm, region.bytes().first(bytes), cfg, true);
      const auto keys = workload_keys(workload);
      const u64 target = static_cast<u64>(static_cast<double>(table->capacity()) * lf);
      usize next = 0;
      while (table->count() < target && next < keys.size()) {
        table->insert(keys[next], 1);
        ++next;
      }
      table->stats().clear();
      pm.stats().clear();
      Histogram h;
      u64 timed = 0;
      for (; timed < env.ops && next < keys.size(); ++next, ++timed) {
        const u64 t0 = now_ns();
        table->insert(keys[next], 1);
        h.record(now_ns() - t0);
      }
      t.add_row({cfg.display_name(), format_ns(h.mean()),
                 format_double(static_cast<double>(table->stats().displacements) /
                                   static_cast<double>(timed), 3),
                 format_double(static_cast<double>(pm.stats().lines_flushed) /
                                   static_cast<double>(timed), 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
