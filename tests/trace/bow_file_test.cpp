#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/workload.hpp"

namespace gh::trace {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

TEST(BagOfWordsFile, ParsesUciFormat) {
  const std::string path = temp_path("gh_bow_ok.txt");
  // 3 docs, vocabulary of 10, 5 doc/word pairs — the UCI docword layout.
  write_file(path,
             "3\n10\n5\n"
             "1 2 4\n"
             "1 7 1\n"
             "2 2 2\n"
             "3 1 9\n"
             "3 10 1\n");
  const Workload w = load_bag_of_words_file(path);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.keys64[0], (1ull << 32) | 2);
  EXPECT_EQ(w.keys64[1], (1ull << 32) | 7);
  EXPECT_EQ(w.keys64[2], (2ull << 32) | 2);
  EXPECT_EQ(w.keys64[3], (3ull << 32) | 1);
  EXPECT_EQ(w.keys64[4], (3ull << 32) | 10);
  EXPECT_EQ(w.kind, TraceKind::kBagOfWords);
  EXPECT_EQ(w.item_bytes, 16u);
  std::filesystem::remove(path);
}

TEST(BagOfWordsFile, MaxKeysTruncates) {
  const std::string path = temp_path("gh_bow_trunc.txt");
  write_file(path, "2\n5\n3\n1 1 1\n1 2 1\n2 3 1\n");
  const Workload w = load_bag_of_words_file(path, 2);
  EXPECT_EQ(w.size(), 2u);
  std::filesystem::remove(path);
}

TEST(BagOfWordsFile, KeysMatchSyntheticEncoding) {
  // Real-file keys and synthetic keys share the encoding, so either can
  // drive the same benches.
  const std::string path = temp_path("gh_bow_enc.txt");
  write_file(path, "1\n141043\n1\n1 141043 1\n");
  const Workload real = load_bag_of_words_file(path);
  const Workload synthetic = make_bag_of_words(10, 1);
  EXPECT_EQ(real.keys64[0] >> 32, 1u);
  EXPECT_EQ(real.keys64[0] & 0xffffffffull, 141043u);
  EXPECT_EQ(real.item_bytes, synthetic.item_bytes);
  EXPECT_EQ(real.wide_keys, synthetic.wide_keys);
  std::filesystem::remove(path);
}

TEST(BagOfWordsFile, RejectsMissingFile) {
  EXPECT_THROW(load_bag_of_words_file(temp_path("gh_bow_nope.txt")), std::runtime_error);
}

TEST(BagOfWordsFile, RejectsMalformedHeader) {
  const std::string path = temp_path("gh_bow_badhdr.txt");
  write_file(path, "not numbers at all\n");
  EXPECT_THROW(load_bag_of_words_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BagOfWordsFile, RejectsTruncatedData) {
  const std::string path = temp_path("gh_bow_short.txt");
  write_file(path, "2\n5\n3\n1 1 1\n");  // promises 3 pairs, delivers 1
  EXPECT_THROW(load_bag_of_words_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BagOfWordsFile, RejectsOutOfRangeIds) {
  const std::string path = temp_path("gh_bow_range.txt");
  write_file(path, "2\n5\n1\n3 1 1\n");  // docID 3 > D=2
  EXPECT_THROW(load_bag_of_words_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gh::trace
