#include "trace/md5.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace gh::trace {
namespace {

std::string md5_hex(const std::string& input) { return Md5::to_hex(Md5::hash(input)); }

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      md5_hex("12345678901234567890123456789012345678901234567890123456789012345678901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingMatchesOneShot) {
  const std::string input(1000, 'x');
  Md5 h;
  // Feed in awkward chunk sizes that straddle the 64-byte block boundary.
  usize off = 0;
  for (const usize chunk : {1u, 63u, 64u, 65u, 100u, 300u}) {
    h.update(input.data() + off, std::min(chunk, input.size() - off));
    off += std::min(chunk, input.size() - off);
  }
  h.update(input.data() + off, input.size() - off);
  EXPECT_EQ(Md5::to_hex(h.finish()), md5_hex(input));
}

TEST(Md5, ExactBlockSizedInputs) {
  // Inputs of exactly 55, 56, 63, 64, 119, 120 bytes exercise the padding
  // corner cases (56 is where the length no longer fits the final block).
  for (const usize n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string input(n, 'b');
    Md5 stream;
    for (char c : input) stream.update(&c, 1);
    EXPECT_EQ(Md5::to_hex(stream.finish()), md5_hex(input)) << "n=" << n;
  }
}

TEST(Md5, ResetAllowsReuse) {
  Md5 h;
  h.update("abc", 3);
  (void)h.finish();
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(Md5::to_hex(h.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, ToKeyRoundTripsDigestBytes) {
  const auto digest = Md5::hash(std::string("abc"));
  const Key128 key = Md5::to_key(digest);
  u8 lo[8], hi[8];
  std::memcpy(lo, &key.lo, 8);
  std::memcpy(hi, &key.hi, 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(lo[i], digest[i]);
    EXPECT_EQ(hi[i], digest[8 + i]);
  }
}

TEST(Md5, DistinctInputsDistinctDigests) {
  std::vector<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    const std::string hex = md5_hex("input-" + std::to_string(i));
    for (const auto& prev : seen) EXPECT_NE(hex, prev);
    seen.push_back(hex);
  }
}

}  // namespace
}  // namespace gh::trace
