#include "trace/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

namespace gh::trace {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceFile, RoundTrip) {
  OpTrace trace;
  trace.name = "unit";
  trace.wide_keys = true;
  trace.ops = {
      {OpType::kInsert, {1, 2}, 3},
      {OpType::kQuery, {4, 5}, 0},
      {OpType::kDelete, {6, 7}, 0},
  };
  const std::string path = temp_path("gh_trace_roundtrip.bin");
  save_trace(trace, path);
  const OpTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.name, trace.name);
  EXPECT_EQ(loaded.wide_keys, trace.wide_keys);
  ASSERT_EQ(loaded.ops.size(), trace.ops.size());
  for (usize i = 0; i < trace.ops.size(); ++i) EXPECT_EQ(loaded.ops[i], trace.ops[i]);
  std::filesystem::remove(path);
}

TEST(TraceFile, EmptyTrace) {
  OpTrace trace;
  trace.name = "";
  const std::string path = temp_path("gh_trace_empty.bin");
  save_trace(trace, path);
  const OpTrace loaded = load_trace(path);
  EXPECT_TRUE(loaded.ops.empty());
  EXPECT_TRUE(loaded.name.empty());
  std::filesystem::remove(path);
}

TEST(TraceFile, RejectsGarbage) {
  const std::string path = temp_path("gh_trace_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a trace file at all", 1, 23, f);
  std::fclose(f);
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFile) {
  EXPECT_THROW(load_trace(temp_path("gh_trace_missing.bin")), std::runtime_error);
}

TEST(MakeOpTrace, FillPhasePrecedesOps) {
  const Workload w = make_random_num(1000, 1);
  const OpTrace trace = make_op_trace(w, 500, 200, 0.5, 0.25, 42);
  ASSERT_GE(trace.ops.size(), 500u);
  for (usize i = 0; i < 500; ++i) {
    EXPECT_EQ(trace.ops[i].type, OpType::kInsert);
    EXPECT_EQ(trace.ops[i].key.lo, w.keys64[i]);
    EXPECT_EQ(trace.ops[i].value, value_for_key(w.keys64[i]));
  }
}

TEST(MakeOpTrace, MixRoughlyHonoursFractions) {
  const Workload w = make_random_num(10000, 2);
  const OpTrace trace = make_op_trace(w, 1000, 5000, 0.6, 0.2, 7);
  usize queries = 0, deletes = 0, inserts = 0;
  for (usize i = 1000; i < trace.ops.size(); ++i) {
    switch (trace.ops[i].type) {
      case OpType::kQuery:
        ++queries;
        break;
      case OpType::kDelete:
        ++deletes;
        break;
      case OpType::kInsert:
        ++inserts;
        break;
    }
  }
  const double n = static_cast<double>(trace.ops.size() - 1000);
  EXPECT_NEAR(queries / n, 0.6, 0.05);
  EXPECT_NEAR(deletes / n, 0.2, 0.05);
  EXPECT_NEAR(inserts / n, 0.2, 0.05);
}

TEST(MakeOpTrace, DeletesTargetLiveKeysOnly) {
  const Workload w = make_random_num(5000, 3);
  const OpTrace trace = make_op_trace(w, 1000, 3000, 0.3, 0.3, 9);
  std::set<u64> live;
  for (const TraceOp& op : trace.ops) {
    switch (op.type) {
      case OpType::kInsert:
        EXPECT_TRUE(live.insert(op.key.lo).second) << "duplicate insert";
        break;
      case OpType::kDelete:
        EXPECT_TRUE(live.count(op.key.lo)) << "delete of dead key";
        live.erase(op.key.lo);
        break;
      case OpType::kQuery:
        EXPECT_TRUE(live.count(op.key.lo)) << "query of dead key";
        break;
    }
  }
}

TEST(MakeOpTrace, DeterministicPerSeed) {
  const Workload w = make_random_num(2000, 4);
  const OpTrace a = make_op_trace(w, 500, 500, 0.5, 0.2, 11);
  const OpTrace b = make_op_trace(w, 500, 500, 0.5, 0.2, 11);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (usize i = 0; i < a.ops.size(); ++i) EXPECT_EQ(a.ops[i], b.ops[i]);
}

}  // namespace
}  // namespace gh::trace
