#include "trace/permute.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gh::trace {
namespace {

TEST(Feistel, IsBijectiveOnSmallEvenDomain) {
  const FeistelPermutation perm(10, 42);  // 1024 values
  std::vector<bool> seen(1024, false);
  for (u64 i = 0; i < 1024; ++i) {
    const u64 v = perm(i);
    ASSERT_LT(v, 1024u);
    ASSERT_FALSE(seen[v]) << "collision at input " << i;
    seen[v] = true;
  }
}

TEST(Feistel, IsBijectiveOnSmallOddDomain) {
  // Odd bit widths exercise the cycle-walking path.
  const FeistelPermutation perm(11, 7);  // 2048 values
  std::vector<bool> seen(2048, false);
  for (u64 i = 0; i < 2048; ++i) {
    const u64 v = perm(i);
    ASSERT_LT(v, 2048u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Feistel, DeterministicPerSeed) {
  const FeistelPermutation a(20, 123), b(20, 123);
  for (u64 i = 0; i < 1000; ++i) EXPECT_EQ(a(i), b(i));
}

TEST(Feistel, DifferentSeedsGiveDifferentPermutations) {
  const FeistelPermutation a(16, 1), b(16, 2);
  int same = 0;
  for (u64 i = 0; i < 1000; ++i) {
    if (a(i) == b(i)) ++same;
  }
  EXPECT_LT(same, 10);  // expected ~1000/65536
}

TEST(Feistel, OutputLooksUniform) {
  // Map the first half of a 2^20 domain; outputs should spread over the
  // whole range, not cluster in the input half.
  const FeistelPermutation perm(20, 99);
  u64 in_upper_half = 0;
  constexpr u64 kProbe = 10000;
  for (u64 i = 0; i < kProbe; ++i) {
    if (perm(i) >= (1ull << 19)) ++in_upper_half;
  }
  EXPECT_NEAR(static_cast<double>(in_upper_half), kProbe / 2.0, kProbe * 0.05);
}

TEST(Feistel, MinimumAndLargeWidths) {
  const FeistelPermutation tiny(2, 5);
  std::set<u64> seen;
  for (u64 i = 0; i < 4; ++i) seen.insert(tiny(i));
  EXPECT_EQ(seen.size(), 4u);

  const FeistelPermutation wide(26, 5);  // the RandomNum trace width
  EXPECT_EQ(wide.domain(), 1ull << 26);
  std::set<u64> wide_seen;
  for (u64 i = 0; i < 10000; ++i) {
    const u64 v = wide(i);
    EXPECT_LT(v, 1ull << 26);
    wide_seen.insert(v);
  }
  EXPECT_EQ(wide_seen.size(), 10000u);
}

}  // namespace
}  // namespace gh::trace
