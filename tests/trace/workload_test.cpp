#include "trace/workload.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "hash/cells.hpp"

namespace gh::trace {
namespace {

TEST(RandomNumWorkload, ShapeMatchesPaper) {
  const Workload w = make_random_num(10000, 1);
  EXPECT_EQ(w.kind, TraceKind::kRandomNum);
  EXPECT_FALSE(w.wide_keys);
  EXPECT_EQ(w.item_bytes, 16u);
  EXPECT_EQ(w.size(), 10000u);
  for (const u64 k : w.keys64) EXPECT_LT(k, 1ull << 26);  // paper's key domain
}

TEST(RandomNumWorkload, KeysAreUnique) {
  const Workload w = make_random_num(100000, 2);
  std::unordered_set<u64> seen(w.keys64.begin(), w.keys64.end());
  EXPECT_EQ(seen.size(), w.keys64.size());
}

TEST(RandomNumWorkload, DeterministicPerSeed) {
  const Workload a = make_random_num(1000, 3), b = make_random_num(1000, 3);
  EXPECT_EQ(a.keys64, b.keys64);
  const Workload c = make_random_num(1000, 4);
  EXPECT_NE(a.keys64, c.keys64);
}

TEST(BagOfWordsWorkload, ShapeAndUniqueness) {
  const Workload w = make_bag_of_words(50000, 1);
  EXPECT_EQ(w.kind, TraceKind::kBagOfWords);
  EXPECT_FALSE(w.wide_keys);
  EXPECT_EQ(w.item_bytes, 16u);
  EXPECT_EQ(w.size(), 50000u);
  std::unordered_set<u64> seen(w.keys64.begin(), w.keys64.end());
  EXPECT_EQ(seen.size(), w.keys64.size());
}

TEST(BagOfWordsWorkload, KeysEncodeDocAndWord) {
  const Workload w = make_bag_of_words(10000, 2);
  std::set<u64> docs, words;
  for (const u64 k : w.keys64) {
    docs.insert(k >> 32);
    words.insert(k & 0xffffffffull);
    EXPECT_LT(k & 0xffffffffull, 141043u);  // PubMed vocabulary bound
  }
  EXPECT_GT(docs.size(), 100u);   // many documents
  EXPECT_GT(words.size(), 500u);  // many distinct words
}

TEST(BagOfWordsWorkload, WordFrequenciesAreSkewed) {
  const Workload w = make_bag_of_words(50000, 3);
  std::unordered_map<u64, int> freq;
  for (const u64 k : w.keys64) freq[k & 0xffffffffull]++;
  int max_freq = 0;
  for (const auto& [word, n] : freq) max_freq = std::max(max_freq, n);
  // Zipf skew: the hottest word appears in far more documents than the
  // uniform expectation.
  const double uniform = static_cast<double>(w.size()) / 141043.0;
  EXPECT_GT(max_freq, uniform * 50);
}

TEST(BagOfWordsWorkload, NarrowKeysFitCell16) {
  const Workload w = make_bag_of_words(10000, 4);
  for (const u64 k : w.keys64) EXPECT_LE(k, hash::Cell16::kMaxKey);
}

TEST(FingerprintWorkload, ShapeMatchesPaper) {
  const Workload w = make_fingerprint(10000, 1);
  EXPECT_EQ(w.kind, TraceKind::kFingerprint);
  EXPECT_TRUE(w.wide_keys);
  EXPECT_EQ(w.item_bytes, 32u);
  EXPECT_EQ(w.size(), 10000u);
}

TEST(FingerprintWorkload, KeysAreUniqueAndWellMixed) {
  const Workload w = make_fingerprint(20000, 2);
  std::set<std::pair<u64, u64>> seen;
  u64 lo_or = 0, lo_and = ~0ull;
  for (const Key128& k : w.keys128) {
    EXPECT_TRUE(seen.insert({k.lo, k.hi}).second);
    lo_or |= k.lo;
    lo_and &= k.lo;
  }
  EXPECT_EQ(lo_or, ~0ull);  // every bit appears set somewhere
  EXPECT_EQ(lo_and, 0u);    // and clear somewhere
}

TEST(FingerprintWorkload, DeterministicPerSeed) {
  const Workload a = make_fingerprint(100, 5), b = make_fingerprint(100, 5);
  for (usize i = 0; i < 100; ++i) EXPECT_EQ(a.keys128[i], b.keys128[i]);
}

TEST(WorkloadFactory, DispatchesAllKinds) {
  for (const TraceKind kind :
       {TraceKind::kRandomNum, TraceKind::kBagOfWords, TraceKind::kFingerprint}) {
    const Workload w = make_workload(kind, 100, 1);
    EXPECT_EQ(w.kind, kind);
    EXPECT_EQ(w.size(), 100u);
    EXPECT_STREQ(trace_name(kind), w.name.c_str());
  }
}

TEST(ValueForKey, DeterministicAndDiscriminating) {
  EXPECT_EQ(value_for_key(u64{1}), value_for_key(u64{1}));
  EXPECT_NE(value_for_key(u64{1}), value_for_key(u64{2}));
  EXPECT_NE(value_for_key(Key128{1, 0}), value_for_key(Key128{0, 1}));
}

}  // namespace
}  // namespace gh::trace
