#include "trace/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gh::trace {
namespace {

TEST(Zipf, StaysInDomain) {
  ZipfSampler zipf(100, 1.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 100u);
  }
}

TEST(Zipf, SingleElementDomain) {
  ZipfSampler zipf(1, 1.0);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, RankZeroIsMostFrequent) {
  ZipfSampler zipf(1000, 1.0);
  Xoshiro256 rng(3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(Zipf, MatchesTheoreticalFrequencies) {
  constexpr usize kN = 100;
  constexpr double kS = 1.0;
  ZipfSampler zipf(kN, kS);
  Xoshiro256 rng(4);
  constexpr int kDraws = 200000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[zipf.sample(rng)]++;
  double harmonic = 0;
  for (usize k = 1; k <= kN; ++k) harmonic += 1.0 / static_cast<double>(k);
  for (const usize rank : {0u, 1u, 4u, 9u}) {
    const double expected = kDraws / (static_cast<double>(rank + 1) * harmonic);
    EXPECT_NEAR(counts[rank], expected, expected * 0.15) << "rank " << rank;
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  constexpr usize kN = 10;
  ZipfSampler zipf(kN, 0.0);
  Xoshiro256 rng(5);
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.sample(rng)]++;
  for (usize k = 0; k < kN; ++k) {
    EXPECT_NEAR(counts[k], kDraws / kN, kDraws / kN * 0.1);
  }
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  Xoshiro256 rng(6);
  ZipfSampler mild(100, 0.5), steep(100, 1.5);
  int mild_zero = 0, steep_zero = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.sample(rng) == 0) ++mild_zero;
    if (steep.sample(rng) == 0) ++steep_zero;
  }
  EXPECT_GT(steep_zero, mild_zero * 2);
}

}  // namespace
}  // namespace gh::trace
