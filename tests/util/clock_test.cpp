#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace gh {
namespace {

TEST(Clock, NowIsMonotonic) {
  const u64 a = now_ns();
  const u64 b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Clock, SpinWaitZeroReturnsImmediately) {
  const u64 start = now_ns();
  spin_wait_ns(0);
  EXPECT_LT(now_ns() - start, 1'000'000u);
}

TEST(Clock, SpinWaitApproximatesRequestedDelay) {
  // The NVM emulation depends on this: a 300 ns request must wait at
  // least ~300 ns and not grossly more.
  spin_wait_ns(1);  // trigger the one-time TSC calibration outside the timing
  constexpr u64 kDelay = 100'000;  // 100 us, large enough to measure reliably
  const u64 start = now_ns();
  spin_wait_ns(kDelay);
  const u64 elapsed = now_ns() - start;
  EXPECT_GE(elapsed, kDelay * 9 / 10);
  EXPECT_LT(elapsed, kDelay * 20);  // generous upper bound for noisy CI
}

TEST(Clock, SpinWaitShortDelaysAccumulate) {
  // 1000 x 300 ns should take ~300 us in total.
  const u64 start = now_ns();
  for (int i = 0; i < 1000; ++i) spin_wait_ns(300);
  const u64 elapsed = now_ns() - start;
  EXPECT_GE(elapsed, 250'000u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  spin_wait_ns(1'000'000);
  EXPECT_GE(sw.elapsed_ns(), 900'000u);
  EXPECT_GT(sw.elapsed_ms(), 0.9);
  sw.reset();
  EXPECT_LT(sw.elapsed_ns(), 1'000'000u);
}

}  // namespace
}  // namespace gh
