#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gh {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValueOptions) {
  const Cli cli = make_cli({"--cells=4096", "--trace=RandomNum"});
  EXPECT_EQ(cli.get_u64("cells", 0), 4096u);
  EXPECT_EQ(cli.get_or("trace", ""), "RandomNum");
}

TEST(Cli, ParsesBareFlags) {
  const Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_or("verbose", ""), "1");
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_u64("missing", 7), 7u);
  EXPECT_EQ(cli.get_double("missing", 0.5), 0.5);
  EXPECT_FALSE(cli.get("missing").has_value());
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make_cli({"file1", "--opt=1", "file2"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, ParsesHexAndDouble) {
  const Cli cli = make_cli({"--mask=0xff", "--ratio=0.75"});
  EXPECT_EQ(cli.get_u64("mask", 0), 255u);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0), 0.75);
}

TEST(Env, U64Override) {
  ::setenv("GH_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("GH_TEST_ENV_U64", 0), 123u);
  ::unsetenv("GH_TEST_ENV_U64");
  EXPECT_EQ(env_u64("GH_TEST_ENV_U64", 9), 9u);
}

TEST(Env, BenchScaleShift) {
  ::setenv("GH_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale_shift(), 0u);
  ::setenv("GH_SCALE", "3", 1);
  EXPECT_EQ(bench_scale_shift(), 3u);
  ::unsetenv("GH_SCALE");
  EXPECT_EQ(bench_scale_shift(), 5u);
}

}  // namespace
}  // namespace gh
