#include "util/format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gh {
namespace {

TEST(FormatNs, Ranges) {
  EXPECT_EQ(format_ns(0), "0ns");
  EXPECT_EQ(format_ns(999), "999ns");
  EXPECT_EQ(format_ns(1500), "1.50us");
  EXPECT_EQ(format_ns(2'500'000), "2.50ms");
  EXPECT_EQ(format_ns(3'200'000'000.0), "3.20s");
}

TEST(FormatBytes, Ranges) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1024), "1.00KiB");
  EXPECT_EQ(format_bytes(128ull * 1024 * 1024), "128.0MiB");
  EXPECT_EQ(format_bytes(1ull << 30), "1.00GiB");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000000), "1,000,000,000");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(0.8213, 3), "0.821");
  EXPECT_EQ(format_double(1.0, 1), "1.0");
  EXPECT_EQ(format_double(0.5, 0), "0");  // rounds to even per printf
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "longheader"});
  t.add_row({"xxxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a     longheader"), std::string::npos);
  EXPECT_NE(out.find("xxxx  y"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, RejectsMismatchedRowWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace gh
