#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gh {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.summary(), "n=0");
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  EXPECT_NEAR(h.percentile(50), 100.0, 7.0);  // ~6% bucket error
}

TEST(Histogram, ExactMeanMinMax) {
  Histogram h;
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Histogram, PercentilesOfUniformRange) {
  Histogram h;
  for (u64 v = 0; v < 10000; ++v) h.record(v);
  EXPECT_NEAR(h.percentile(50), 5000.0, 500.0);
  EXPECT_NEAR(h.percentile(90), 9000.0, 900.0);
  EXPECT_NEAR(h.percentile(99), 9900.0, 990.0);
  EXPECT_NEAR(h.percentile(0), 0.0, 16.0);
  EXPECT_NEAR(h.percentile(100), 9999.0, 16.0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (u64 v = 0; v < 16; ++v) h.record(v);
  // Values below 16 land in exact unit buckets.
  EXPECT_NEAR(h.percentile(50), 7.0, 1.0);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  for (u64 v = 0; v < 100; ++v) a.record(10);
  for (u64 v = 0; v < 100; ++v) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_NEAR(a.mean(), 505.0, 0.001);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.summary(), "n=0");
}

TEST(Histogram, LargeValuesDoNotOverflow) {
  Histogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
}

TEST(Histogram, RelativeErrorBounded) {
  Xoshiro256 rng(42);
  Histogram h;
  std::vector<u64> values;
  for (int i = 0; i < 50000; ++i) {
    const u64 v = 1 + rng.next_below(1'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {10.0, 50.0, 90.0, 99.0}) {
    const u64 exact = values[static_cast<usize>(q / 100.0 * (values.size() - 1))];
    const double approx = h.percentile(q);
    EXPECT_NEAR(approx, static_cast<double>(exact), static_cast<double>(exact) * 0.10)
        << "q=" << q;
  }
}

}  // namespace
}  // namespace gh
