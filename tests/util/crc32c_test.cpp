#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace gh {
namespace {

// Known-answer vectors from RFC 3720 (iSCSI, CRC32C appendix B.4) plus
// the classic "123456789" check value. These pin the polynomial and the
// bit order — a wrong table or a wrong reflection fails all of them.
TEST(Crc32c, Rfc3720Vectors) {
  std::array<unsigned char, 32> buf{};
  buf.fill(0x00);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x8a9136aau);
  buf.fill(0xff);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x62a8ab43u);
  for (usize i = 0; i < buf.size(); ++i) buf[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x46dd794eu);
  for (usize i = 0; i < buf.size(); ++i) buf[i] = static_cast<unsigned char>(31 - i);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x113fdb5cu);
}

TEST(Crc32c, CheckValue) {
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xe3069283u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  Xoshiro256 rng(7);
  std::vector<unsigned char> data(1031);
  for (auto& b : data) b = static_cast<unsigned char>(rng.next_below(256));
  const u32 whole = crc32c(data.data(), data.size());
  for (const usize split : {usize{0}, usize{1}, usize{7}, usize{512}, data.size()}) {
    u32 c = crc32c_update(~0u, data.data(), split);
    c = crc32c_update(c, data.data() + split, data.size() - split);
    EXPECT_EQ(~c, whole) << "split at " << split;
  }
}

TEST(Crc32c, SeededSeparatesIdenticalPayloads) {
  const u64 payload[2] = {0x1234, 0x5678};
  // Same bytes under different seeds (cell indices) must digest apart —
  // this is what makes swapped cells detectable in the group XOR.
  EXPECT_NE(crc32c_seeded(0, payload, sizeof(payload)),
            crc32c_seeded(1, payload, sizeof(payload)));
}

TEST(Crc32c, AnyBitFlipChangesDigest) {
  std::array<unsigned char, 16> cell{};
  cell[3] = 0xab;
  const u32 base = crc32c_seeded(42, cell.data(), cell.size());
  for (usize byte = 0; byte < cell.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto flipped = cell;
      flipped[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(crc32c_seeded(42, flipped.data(), flipped.size()), base)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// The group-checksum construction: digest(group) = XOR over cells of the
// per-cell seeded CRC. Incremental maintenance (XOR out old, XOR in new)
// must land exactly where a full recomputation does.
TEST(Crc32c, XorOfCellDigestsIsIncrementallyMaintainable) {
  constexpr usize kCells = 8;
  constexpr usize kCellBytes = 16;
  Xoshiro256 rng(99);
  std::array<std::array<unsigned char, kCellBytes>, kCells> cells{};
  auto full_digest = [&] {
    u64 d = 0;
    for (usize i = 0; i < kCells; ++i) d ^= crc32c_seeded(i, cells[i].data(), kCellBytes);
    return d;
  };
  u64 digest = full_digest();
  for (int step = 0; step < 100; ++step) {
    const usize i = static_cast<usize>(rng.next_below(kCells));
    const u64 old = crc32c_seeded(i, cells[i].data(), kCellBytes);
    cells[i][rng.next_below(kCellBytes)] =
        static_cast<unsigned char>(rng.next_below(256));
    digest ^= old ^ crc32c_seeded(i, cells[i].data(), kCellBytes);
    ASSERT_EQ(digest, full_digest()) << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace gh
