#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gh {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownReferenceValues) {
  // Reference outputs of the canonical splitmix64 for seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm.next(), 0x06c45d188009454full);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInBounds) {
  Xoshiro256 rng(123);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40) + 7}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowCoversSmallDomainUniformly) {
  Xoshiro256 rng(99);
  constexpr u64 kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.next_below(kBound)]++;
  for (u64 v = 0; v < kBound; ++v) {
    // Expected 10000 per bin; allow 10% slack.
    EXPECT_GT(counts[v], 9000) << "bin " << v;
    EXPECT_LT(counts[v], 11000) << "bin " << v;
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Xoshiro256, MeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256, NoShortCycles) {
  Xoshiro256 rng(3);
  std::set<u64> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Xoshiro256, UsableWithStdDistributions) {
  Xoshiro256 rng(17);
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  u64 v = rng();
  (void)v;
}

}  // namespace
}  // namespace gh
