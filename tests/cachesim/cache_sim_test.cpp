#include "cachesim/cache_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gh::cachesim {
namespace {

CacheConfig tiny_config() {
  // 1 KiB direct-mapped-ish L1 (2-way), 4 KiB L2 (4-way): small enough to
  // force evictions with hand-crafted patterns. Prefetcher off so miss
  // counts are exact; prefetcher behaviour has its own tests below.
  CacheConfig cfg{{{1024, 2}, {4096, 4}}};
  cfg.prefetch_degree = 0;
  return cfg;
}

CacheConfig tiny_config_with_prefetch(u32 degree) {
  CacheConfig cfg = tiny_config();
  cfg.prefetch_degree = degree;
  return cfg;
}

TEST(CacheLevel, HitAfterFill) {
  CacheLevel level({1024, 2}, kCachelineSize);
  EXPECT_FALSE(level.access(5));
  EXPECT_TRUE(level.access(5));
  EXPECT_EQ(level.stats().misses, 1u);
  EXPECT_EQ(level.stats().hits, 1u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // 2-way: lines mapping to the same set evict least-recently-used first.
  CacheLevel level({2 * 64, 2}, kCachelineSize);  // 1 set, 2 ways
  EXPECT_EQ(level.sets(), 1u);
  level.access(1);
  level.access(2);
  level.access(1);      // 1 is now MRU
  level.access(3);      // evicts 2
  EXPECT_TRUE(level.access(1));
  EXPECT_FALSE(level.access(2));  // was evicted
}

TEST(CacheLevel, InvalidateDropsLine) {
  CacheLevel level({1024, 2}, kCachelineSize);
  level.access(7);
  level.invalidate(7);
  EXPECT_FALSE(level.access(7));  // miss again
}

TEST(CacheLevel, InvalidateMissingLineIsNoop) {
  CacheLevel level({1024, 2}, kCachelineSize);
  level.invalidate(99);
  EXPECT_EQ(level.stats().hits, 0u);
  EXPECT_EQ(level.stats().misses, 0u);
}

TEST(CacheSim, SequentialScanMissesOncePerLine) {
  CacheSim sim(tiny_config());
  std::vector<std::byte> buf(512);
  const std::byte* base = buf.data();
  // Touch 8 consecutive 16-byte items: 512 bytes span at most 9 lines
  // depending on alignment, and repeated touches inside a line hit.
  for (usize i = 0; i < 32; ++i) sim.read(base + i * 16, 16);
  const u64 misses_first = sim.llc_misses();
  EXPECT_LE(misses_first, 9u);
  EXPECT_GE(misses_first, 8u);
  for (usize i = 0; i < 32; ++i) sim.read(base + i * 16, 16);
  EXPECT_EQ(sim.llc_misses(), misses_first);  // all hits on the rescan
}

TEST(CacheSim, ClflushCausesRereadMiss) {
  // The mechanism behind the paper's Fig. 2b: flushing invalidates, so the
  // next read of the same address misses.
  CacheSim sim(tiny_config());
  alignas(kCachelineSize) std::byte buf[64];
  sim.read(buf, 8);
  const u64 m1 = sim.llc_misses();
  sim.read(buf, 8);
  EXPECT_EQ(sim.llc_misses(), m1);  // hit
  sim.clflush(buf, 8);
  EXPECT_EQ(sim.flushes(), 1u);
  sim.read(buf, 8);
  EXPECT_EQ(sim.llc_misses(), m1 + 1);  // flushed => miss
}

TEST(CacheSim, WritesAllocateLikeReads) {
  CacheSim sim(tiny_config());
  alignas(kCachelineSize) std::byte buf[64];
  sim.write(buf, 8);
  const u64 m = sim.llc_misses();
  sim.read(buf, 8);
  EXPECT_EQ(sim.llc_misses(), m);  // write-allocate made it a hit
}

TEST(CacheSim, CapacityEvictionOnLargeWorkingSet) {
  CacheSim sim(tiny_config());
  // Working set of 16 KiB >> 4 KiB L2: a second pass must still miss.
  std::vector<std::byte> buf(16 * 1024);
  for (usize i = 0; i < buf.size(); i += 64) sim.read(buf.data() + i, 8);
  const u64 first_pass = sim.llc_misses();
  for (usize i = 0; i < buf.size(); i += 64) sim.read(buf.data() + i, 8);
  const u64 second_pass = sim.llc_misses() - first_pass;
  EXPECT_GE(second_pass, first_pass / 2);
}

TEST(CacheSim, SmallWorkingSetStaysResident) {
  CacheSim sim(tiny_config());
  std::vector<std::byte> buf(1024);  // fits in 4 KiB L2
  for (int pass = 0; pass < 4; ++pass) {
    for (usize i = 0; i < buf.size(); i += 64) sim.read(buf.data() + i, 8);
  }
  // Only the first pass misses (compulsory); ~16 lines.
  EXPECT_LE(sim.llc_misses(), 17u);
}

TEST(CacheSim, ContiguousVsScatteredAccess) {
  // The heart of the group-sharing argument: probing N cells that share
  // cachelines costs fewer misses than probing N cells scattered across
  // distinct lines.
  CacheSim contiguous(tiny_config());
  CacheSim scattered(tiny_config());
  std::vector<std::byte> buf(64 * 1024);
  // 16 contiguous 16-byte cells = 4 lines.
  for (usize i = 0; i < 16; ++i) contiguous.read(buf.data() + i * 16, 16);
  // 16 cells each on their own line, 4 KiB apart.
  for (usize i = 0; i < 16; ++i) scattered.read(buf.data() + i * 4096, 16);
  EXPECT_LT(contiguous.llc_misses(), scattered.llc_misses());
  EXPECT_LE(contiguous.llc_misses(), 5u);
  EXPECT_GE(scattered.llc_misses(), 16u);
}

TEST(CacheSim, ClearResetsEverything) {
  CacheSim sim(tiny_config());
  alignas(kCachelineSize) std::byte buf[64];
  sim.read(buf, 8);
  sim.clflush(buf, 8);
  sim.clear_stats_and_contents();
  EXPECT_EQ(sim.llc_misses(), 0u);
  EXPECT_EQ(sim.flushes(), 0u);
  sim.read(buf, 8);
  EXPECT_EQ(sim.llc_misses(), 1u);  // cold again
}

TEST(CacheConfig, PresetsAreWellFormed) {
  const CacheConfig xeon = CacheConfig::xeon_e5_2620();
  ASSERT_EQ(xeon.levels.size(), 3u);
  EXPECT_EQ(xeon.levels[0].size_bytes, 32u * 1024);
  EXPECT_EQ(xeon.levels[2].size_bytes, 15u * 1024 * 1024);
  const CacheConfig scaled = CacheConfig::scaled_l3(1 << 20);
  EXPECT_EQ(scaled.levels.back().size_bytes % (kCachelineSize * 16), 0u);
  // Must construct without tripping the power-of-two set check.
  CacheSim sim(scaled);
  (void)sim;
}

TEST(CachePrefetch, StreamScanCostsOneDemandMiss) {
  // The mechanism behind group sharing: a sequential scan of N lines
  // triggers the stream prefetcher after the first access, so demand
  // misses stay O(1) instead of O(N).
  CacheSim sim(tiny_config_with_prefetch(4));
  alignas(kCachelineSize) static std::byte buf[64 * 64];
  for (usize i = 0; i < sizeof(buf); i += 16) sim.read(buf + i, 16);
  EXPECT_LE(sim.llc_misses(), 3u);  // first line + prefetcher ramp-up
  EXPECT_GT(sim.prefetches(), 0u);
}

TEST(CachePrefetch, RandomAccessesGetNoPrefetchBenefit) {
  CacheSim sim(tiny_config_with_prefetch(4));
  alignas(kCachelineSize) static std::byte buf[64 * 256];
  // Strided pattern (every 4th line, descending) never forms an
  // ascending unit stride stream.
  for (usize i = 256; i-- > 0;) {
    if (i % 4 == 0) sim.read(buf + i * 64, 8);
  }
  EXPECT_EQ(sim.prefetches(), 0u);
  EXPECT_EQ(sim.llc_misses(), 64u);
}

TEST(CachePrefetch, PrefetchedLinesDoNotCountAsMisses) {
  CacheSim with(tiny_config_with_prefetch(4));
  CacheSim without(tiny_config());
  alignas(kCachelineSize) static std::byte buf[64 * 32];
  for (usize i = 0; i < sizeof(buf); i += 64) {
    with.read(buf + i, 8);
    without.read(buf + i, 8);
  }
  EXPECT_LT(with.llc_misses(), without.llc_misses());
  EXPECT_EQ(without.llc_misses(), 32u);
}

TEST(CachePrefetch, DegreeZeroDisables) {
  CacheSim sim(tiny_config_with_prefetch(0));
  alignas(kCachelineSize) static std::byte buf[64 * 8];
  for (usize i = 0; i < sizeof(buf); i += 64) sim.read(buf + i, 8);
  EXPECT_EQ(sim.prefetches(), 0u);
  EXPECT_EQ(sim.llc_misses(), 8u);
}

TEST(CacheClwb, WritebackKeepsLineCached) {
  CacheSim sim(tiny_config());
  alignas(kCachelineSize) static std::byte buf[64];
  sim.read(buf, 8);
  const u64 m = sim.llc_misses();
  sim.clwb(buf, 8);
  EXPECT_EQ(sim.flushes(), 1u);
  sim.read(buf, 8);
  EXPECT_EQ(sim.llc_misses(), m);  // still a hit — unlike clflush
}

TEST(CacheClwb, CountsLinesLikeClflush) {
  CacheSim sim(tiny_config());
  alignas(kCachelineSize) static std::byte buf[256];
  sim.clwb(buf, 256);
  EXPECT_EQ(sim.flushes(), 4u);
}

TEST(CacheSim, SummaryMentionsLevels) {
  CacheSim sim(tiny_config());
  const std::string s = sim.summary();
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("L2"), std::string::npos);
}

}  // namespace
}  // namespace gh::cachesim
