#include "hash/cuckoo_hashing.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table = CuckooHashTable<Cell16, nvm::DirectPM>;

class CuckooTest : public ::testing::Test, public test::TableFixture<Table> {};

TEST_F(CuckooTest, InsertFindEraseRoundTrip) {
  init(Table::Params{.cells = 256});
  EXPECT_TRUE(table().insert(9, 90));
  EXPECT_EQ(*table().find(9), 90u);
  EXPECT_TRUE(table().erase(9));
  EXPECT_FALSE(table().find(9).has_value());
}

TEST_F(CuckooTest, EvictionChainRelocatesResidents) {
  init(Table::Params{.cells = 1024});
  Xoshiro256 rng(1);
  std::vector<u64> keys;
  // Fill until displacements have definitely happened.
  while (table().stats().displacements == 0 && table().load_factor() < 0.49) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (table().insert(k, k * 2)) keys.push_back(k);
  }
  ASSERT_GT(table().stats().displacements, 0u);
  // Every displaced resident must still be findable at its new home.
  for (const u64 k : keys) {
    ASSERT_TRUE(table().find(k).has_value()) << k;
    EXPECT_EQ(*table().find(k), k * 2);
  }
}

TEST_F(CuckooTest, FailedInsertRollsBackTheChain) {
  init(Table::Params{.cells = 64, .max_evictions = 8});
  Xoshiro256 rng(3);
  std::vector<u64> accepted;
  u64 rejected_key = 0;
  // Drive to the first failure.
  for (;;) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (table().insert(k, k)) {
      accepted.push_back(k);
    } else {
      rejected_key = k;
      break;
    }
  }
  ASSERT_NE(rejected_key, 0u);
  // The rejected key is absent; every accepted key survived the rollback.
  EXPECT_FALSE(table().find(rejected_key).has_value());
  for (const u64 k : accepted) {
    ASSERT_TRUE(table().find(k).has_value()) << k;
    EXPECT_EQ(*table().find(k), k);
  }
  EXPECT_EQ(table().count(), accepted.size());
}

TEST_F(CuckooTest, DisplacementWritesAmplifyNearLoad) {
  init(Table::Params{.cells = 4096});
  Xoshiro256 rng(5);
  // Fill to 0.45 (single-slot 2-choice cuckoo saturates near 0.5).
  while (table().load_factor() < 0.45) {
    table().insert(rng.next_below(1ull << 40) + 1, 1);
  }
  table().stats().clear();
  pm().stats().clear();
  u64 timed = 0;
  while (timed < 200) {
    if (table().insert(rng.next_below(1ull << 40) + 1, 1)) ++timed;
  }
  // Group hashing does exactly 2 cell persists per insert; cascading
  // cuckoo must exceed that on average here.
  const double persists_per_insert =
      static_cast<double>(pm().stats().persist_calls) / 200.0;
  EXPECT_GT(persists_per_insert, 3.5);
  EXPECT_GT(table().stats().displacements, 0u);
}

TEST_F(CuckooTest, OracleComparisonWithChurn) {
  init(Table::Params{.cells = 2048});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(7);
  std::vector<u64> live;
  for (int step = 0; step < 5000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 800) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k) && table().insert(k, k + 3)) {
        oracle[k] = k + 3;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.8) {
        ASSERT_TRUE(table().find(k).has_value());
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(CuckooTest, RecoverRecounts) {
  init(Table::Params{.cells = 256});
  for (u64 k = 1; k <= 60; ++k) table().insert(k, k);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, table().count());
  EXPECT_EQ(report.cells_scanned, 256u);
}

}  // namespace
}  // namespace gh::hash
