#include "hash/linear_probing.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table = LinearProbingTable<Cell16, nvm::DirectPM>;

class LinearProbingTest : public ::testing::Test, public test::TableFixture<Table> {};

TEST_F(LinearProbingTest, InsertFindEraseRoundTrip) {
  init(Table::Params{.cells = 256});
  EXPECT_TRUE(table().insert(10, 100));
  EXPECT_EQ(*table().find(10), 100u);
  EXPECT_TRUE(table().erase(10));
  EXPECT_FALSE(table().find(10).has_value());
  EXPECT_EQ(table().count(), 0u);
}

TEST_F(LinearProbingTest, ProbeChainWalksForward) {
  init(Table::Params{.cells = 16});
  const SeededHash h(kDefaultSeed1);
  // Find three keys with the same home slot.
  std::vector<u64> same_home;
  const u64 home = h(1) & 15;
  same_home.push_back(1);
  for (u64 k = 2; same_home.size() < 3; ++k) {
    if ((h(k) & 15) == home) same_home.push_back(k);
  }
  for (const u64 k : same_home) ASSERT_TRUE(table().insert(k, k));
  for (const u64 k : same_home) EXPECT_EQ(*table().find(k), k);
  EXPECT_GE(table().stats().probes, 3u + 1 + 2);  // chain probing happened
}

TEST_F(LinearProbingTest, BackwardShiftDeleteLeavesNoTombstones) {
  init(Table::Params{.cells = 16});
  const SeededHash h(kDefaultSeed1);
  const u64 home = h(1) & 15;
  std::vector<u64> same_home{1};
  for (u64 k = 2; same_home.size() < 4; ++k) {
    if ((h(k) & 15) == home) same_home.push_back(k);
  }
  for (const u64 k : same_home) ASSERT_TRUE(table().insert(k, k * 2));
  // Delete the first of the chain: the rest must shift back and stay
  // findable (no tombstone means a find would otherwise stop early).
  ASSERT_TRUE(table().erase(same_home[0]));
  EXPECT_GT(table().stats().backward_shifts, 0u);
  for (usize i = 1; i < same_home.size(); ++i) {
    ASSERT_TRUE(table().find(same_home[i]).has_value()) << same_home[i];
    EXPECT_EQ(*table().find(same_home[i]), same_home[i] * 2);
  }
}

TEST_F(LinearProbingTest, DeleteCausesExtraWrites) {
  // The paper's observation: linear probing's delete is write-heavy.
  init(Table::Params{.cells = 16});
  const SeededHash h(kDefaultSeed1);
  const u64 home = h(1) & 15;
  std::vector<u64> same_home{1};
  for (u64 k = 2; same_home.size() < 5; ++k) {
    if ((h(k) & 15) == home) same_home.push_back(k);
  }
  for (const u64 k : same_home) ASSERT_TRUE(table().insert(k, k));
  pm().stats().clear();
  ASSERT_TRUE(table().erase(same_home[0]));
  // A chain of 4 successors forces multiple cell moves: far more persist
  // traffic than the two-persist delete of group hashing.
  EXPECT_GT(pm().stats().persist_calls, 3u);
}

TEST_F(LinearProbingTest, WrapAroundProbing) {
  init(Table::Params{.cells = 16});
  const SeededHash h(kDefaultSeed1);
  // A key whose home is the last slot; fill it and the first slots so the
  // probe wraps.
  u64 tail_key = 0;
  for (u64 k = 1;; ++k) {
    if ((h(k) & 15) == 15) {
      tail_key = k;
      break;
    }
  }
  u64 tail_key2 = 0;
  for (u64 k = tail_key + 1;; ++k) {
    if ((h(k) & 15) == 15) {
      tail_key2 = k;
      break;
    }
  }
  ASSERT_TRUE(table().insert(tail_key, 1));
  ASSERT_TRUE(table().insert(tail_key2, 2));  // wraps to slot 0
  EXPECT_EQ(*table().find(tail_key2), 2u);
  EXPECT_TRUE(table().erase(tail_key));
  EXPECT_EQ(*table().find(tail_key2), 2u);  // still reachable after shift
}

TEST_F(LinearProbingTest, FillsToLoadFactorOne) {
  init(Table::Params{.cells = 64});
  u64 inserted = 0;
  for (u64 k = 1; k <= 64; ++k) {
    ASSERT_TRUE(table().insert(k, k));
    ++inserted;
  }
  EXPECT_EQ(table().count(), 64u);
  EXPECT_DOUBLE_EQ(table().load_factor(), 1.0);
  EXPECT_FALSE(table().insert(65, 65));  // completely full
}

TEST_F(LinearProbingTest, OracleComparisonWithChurn) {
  init(Table::Params{.cells = 1024});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(3);
  std::vector<u64> live;
  for (int step = 0; step < 5000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 700) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k)) {
        ASSERT_TRUE(table().insert(k, k * 3));
        oracle[k] = k * 3;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.75) {
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(LinearProbingTest, RecoverRecomputesCount) {
  init(Table::Params{.cells = 256});
  for (u64 k = 1; k <= 60; ++k) table().insert(k, k);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 60u);
  EXPECT_EQ(report.cells_scanned, 256u);
}

}  // namespace
}  // namespace gh::hash
