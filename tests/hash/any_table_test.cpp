#include "hash/any_table.hpp"

#include <gtest/gtest.h>

#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "nvm/tracing_pm.hpp"

namespace gh::hash {
namespace {

TEST(AnyTable, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kGroup), "group");
  EXPECT_STREQ(scheme_name(Scheme::kLinear), "linear");
  EXPECT_STREQ(scheme_name(Scheme::kPfht), "PFHT");
  EXPECT_STREQ(scheme_name(Scheme::kPath), "path");
  TableConfig cfg;
  cfg.scheme = Scheme::kLinear;
  cfg.with_wal = true;
  EXPECT_EQ(cfg.display_name(), "linear-L");
}

TEST(AnyTable, RequiredBytesCoversEverySchemeAndWidth) {
  for (const Scheme scheme : {Scheme::kGroup, Scheme::kLinear, Scheme::kPfht, Scheme::kPath,
                              Scheme::kChained, Scheme::kTwoChoice, Scheme::kCuckoo,
                              Scheme::kGroup2H, Scheme::kLevel}) {
    for (const bool wide : {false, true}) {
      TableConfig cfg;
      cfg.scheme = scheme;
      cfg.total_cells_log2 = 10;
      cfg.wide_cells = wide;
      const usize plain = table_required_bytes(cfg);
      EXPECT_GT(plain, 1024u * (wide ? 32 : 16) / 2) << scheme_name(scheme);
      cfg.with_wal = true;
      EXPECT_GT(table_required_bytes(cfg), plain) << scheme_name(scheme);
    }
  }
}

class AnyTableRoundTrip : public ::testing::TestWithParam<std::tuple<Scheme, bool, bool>> {};

TEST_P(AnyTableRoundTrip, InsertFindErase) {
  const auto [scheme, wide, with_wal] = GetParam();
  TableConfig cfg;
  cfg.scheme = scheme;
  cfg.total_cells_log2 = 10;
  cfg.wide_cells = wide;
  cfg.with_wal = with_wal;
  nvm::DirectPM pm(nvm::PersistConfig::counting_only());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_required_bytes(cfg));
  auto table = make_table(pm, region.bytes().first(table_required_bytes(cfg)), cfg, true);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->count(), 0u);
  EXPECT_GT(table->capacity(), 0u);

  // 2-choice may legitimately reject inserts well below capacity; every
  // other scheme must take all 200 keys at ~20% load.
  std::vector<u64> inserted;
  for (u64 i = 1; i <= 200; ++i) {
    const Key128 key{i * 977, wide ? i * 31 : 0};
    if (table->insert(key, i)) {
      inserted.push_back(i);
    } else {
      ASSERT_EQ(scheme, Scheme::kTwoChoice) << table->name() << " refused i=" << i;
    }
  }
  EXPECT_EQ(table->count(), inserted.size());
  EXPECT_GE(inserted.size(), 180u);
  for (const u64 i : inserted) {
    const Key128 key{i * 977, wide ? i * 31 : 0};
    const auto v = table->find(key);
    ASSERT_TRUE(v.has_value()) << table->name() << " i=" << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(table->find(Key128{~0ull >> 2, 0}).has_value());
  usize erased = 0;
  for (usize idx = 0; idx < inserted.size(); idx += 2) {
    const u64 i = inserted[idx];
    const Key128 key{i * 977, wide ? i * 31 : 0};
    EXPECT_TRUE(table->erase(key));
    ++erased;
  }
  EXPECT_EQ(table->count(), inserted.size() - erased);
  const auto report = table->recover();
  EXPECT_EQ(report.recovered_count, inserted.size() - erased);
  EXPECT_EQ(table->count(), inserted.size() - erased);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AnyTableRoundTrip,
    ::testing::Combine(::testing::Values(Scheme::kGroup, Scheme::kLinear, Scheme::kPfht,
                                         Scheme::kPath, Scheme::kChained, Scheme::kTwoChoice,
                                         Scheme::kCuckoo, Scheme::kGroup2H, Scheme::kLevel),
                       ::testing::Bool(),   // wide cells
                       ::testing::Bool()),  // with wal
    [](const auto& info) {
      std::string name = scheme_name(std::get<0>(info.param));
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + (std::get<1>(info.param) ? "_wide" : "_narrow") +
             (std::get<2>(info.param) ? "_wal" : "_plain");
    });

TEST(AnyTableTracing, WorksWithCacheSimPolicy) {
  cachesim::CacheSim sim(cachesim::CacheConfig::scaled_l3(1 << 20));
  nvm::TracingPM pm(sim);
  TableConfig cfg;
  cfg.scheme = Scheme::kGroup;
  cfg.total_cells_log2 = 10;
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_required_bytes(cfg));
  auto table = make_table(pm, region.bytes().first(table_required_bytes(cfg)), cfg, true);
  for (u64 i = 1; i <= 100; ++i) ASSERT_TRUE(table->insert(Key128{i, 0}, i));
  EXPECT_GT(sim.llc_misses(), 0u);
  EXPECT_GT(sim.flushes(), 0u);
  for (u64 i = 1; i <= 100; ++i) EXPECT_EQ(*table->find(Key128{i, 0}), i);
}

}  // namespace
}  // namespace gh::hash
