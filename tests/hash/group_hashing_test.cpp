#include "hash/group_hashing.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table16 = GroupHashTable<Cell16, nvm::DirectPM>;
using Table32 = GroupHashTable<Cell32, nvm::DirectPM>;

class GroupHashingTest : public ::testing::Test, public test::TableFixture<Table16> {};

TEST_F(GroupHashingTest, EmptyTableFindsNothing) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  EXPECT_EQ(table().count(), 0u);
  EXPECT_EQ(table().capacity(), 512u);
  EXPECT_FALSE(table().find(1).has_value());
  EXPECT_FALSE(table().erase(1));
}

TEST_F(GroupHashingTest, InsertFindRoundTrip) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  EXPECT_TRUE(table().insert(42, 4200));
  EXPECT_EQ(table().count(), 1u);
  const auto v = table().find(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4200u);
}

TEST_F(GroupHashingTest, EraseRemovesItem) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(42, 1);
  EXPECT_TRUE(table().erase(42));
  EXPECT_EQ(table().count(), 0u);
  EXPECT_FALSE(table().find(42).has_value());
  EXPECT_FALSE(table().erase(42));
}

TEST_F(GroupHashingTest, UpdateChangesValueInPlace) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(5, 50);
  EXPECT_TRUE(table().update(5, 51));
  EXPECT_EQ(*table().find(5), 51u);
  EXPECT_EQ(table().count(), 1u);
  EXPECT_FALSE(table().update(6, 60));  // absent key
}

// Keys that spread exactly `per_slot` items onto each of the
// `level_cells` level-1 positions of `table` — collision behaviour then
// becomes deterministic regardless of the hash function.
std::vector<u64> slot_balanced_keys(const Table16& table, u64 level_cells, int per_slot) {
  const SeededHash h(table.seed());
  std::vector<int> filled(level_cells, 0);
  std::vector<u64> keys;
  for (u64 k = 1; keys.size() < level_cells * per_slot; ++k) {
    const u64 s = h(k) & (level_cells - 1);
    if (filled[s] < per_slot) {
      filled[s]++;
      keys.push_back(k);
    }
  }
  return keys;
}

TEST_F(GroupHashingTest, CollisionsOverflowIntoMatchedGroup) {
  // Tiny table, one group per level: every collision lands in level 2.
  init(Table16::Params{.level_cells = 8, .group_size = 8});
  // Two keys per level-1 slot: 8 land in level 1, 8 overflow into the
  // shared level-2 group — 16 inserts must all succeed.
  const auto keys = slot_balanced_keys(table(), 8, 2);
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k * 10)) << "insert " << k;
  EXPECT_EQ(table().count(), 16u);
  for (const u64 k : keys) {
    ASSERT_TRUE(table().find(k).has_value()) << k;
    EXPECT_EQ(*table().find(k), k * 10);
  }
  EXPECT_GT(table().stats().level2_probes, 0u);
}

TEST_F(GroupHashingTest, InsertFailsOnlyWhenGroupIsFull) {
  init(Table16::Params{.level_cells = 8, .group_size = 8});
  const auto keys = slot_balanced_keys(table(), 8, 2);
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k));
  // Table is completely full: the next insert must fail.
  EXPECT_FALSE(table().insert(1000001, 0));
  EXPECT_EQ(table().stats().insert_failures, 1u);
  EXPECT_EQ(table().count(), 16u);
}

TEST_F(GroupHashingTest, FullGroupDoesNotSpillIntoNeighbourGroups) {
  // Two groups: fill group of index g completely, then show an item
  // hashed to g fails even though the other group has space.
  init(Table16::Params{.level_cells = 16, .group_size = 8});
  const SeededHash h(table().seed());
  // Collect keys that hash into group 0 (level-1 index 0..7).
  std::vector<u64> group0_keys;
  for (u64 k = 1; group0_keys.size() < 20 && k < 100000; ++k) {
    if ((h(k) & 15) < 8) group0_keys.push_back(k);
  }
  ASSERT_GE(group0_keys.size(), 17u);
  usize inserted = 0;
  for (const u64 k : group0_keys) {
    if (!table().insert(k, 1)) break;
    ++inserted;
  }
  // Group 0 offers at most 8 level-1 cells + 8 shared level-2 cells.
  EXPECT_LE(inserted, 16u);
  EXPECT_LT(table().count(), table().capacity());  // other group still empty
}

TEST_F(GroupHashingTest, ManyKeysAgainstOracle) {
  init(Table16::Params{.level_cells = 4096, .group_size = 64});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(7);
  // Fill to ~60% then do mixed ops.
  while (table().count() < 4900) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (oracle.count(k)) continue;
    if (!table().insert(k, k * 3)) break;
    oracle[k] = k * 3;
  }
  ASSERT_GT(oracle.size(), 4000u);
  for (const auto& [k, v] : oracle) {
    const auto found = table().find(k);
    ASSERT_TRUE(found.has_value()) << k;
    EXPECT_EQ(*found, v);
  }
  // Delete half, verify the rest still findable and deleted ones gone.
  usize i = 0;
  std::vector<u64> deleted;
  for (const auto& [k, v] : oracle) {
    if (++i % 2 == 0) {
      ASSERT_TRUE(table().erase(k));
      deleted.push_back(k);
    }
  }
  for (const u64 k : deleted) {
    oracle.erase(k);
    EXPECT_FALSE(table().find(k).has_value());
  }
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
  EXPECT_EQ(table().count(), oracle.size());
}

TEST_F(GroupHashingTest, DeleteThenReinsertReusesCells) {
  init(Table16::Params{.level_cells = 8, .group_size = 8});
  const auto keys = slot_balanced_keys(table(), 8, 2);
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k));
  for (const u64 k : keys) ASSERT_TRUE(table().erase(k));
  EXPECT_EQ(table().count(), 0u);
  // The same (slot-balanced) keys must all fit again in the freed cells.
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k + 1));
  EXPECT_EQ(table().count(), 16u);
  for (const u64 k : keys) EXPECT_EQ(*table().find(k), k + 1);
}

TEST_F(GroupHashingTest, CountPersistedPerOperation) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  pm().stats().clear();
  table().insert(1, 2);
  // Insert protocol: value persist + commit persist + count persist = 3.
  EXPECT_EQ(pm().stats().persist_calls, 3u);
  EXPECT_EQ(pm().stats().atomic_stores, 2u);  // commit word + count
  pm().stats().clear();
  table().erase(1);
  EXPECT_EQ(pm().stats().persist_calls, 3u);
}

TEST_F(GroupHashingTest, NoExtraWritesOnQuery) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(1, 2);
  pm().stats().clear();
  (void)table().find(1);
  (void)table().find(999);  // miss scans the group
  EXPECT_EQ(pm().stats().stores, 0u);
  EXPECT_EQ(pm().stats().persist_calls, 0u);
}

TEST_F(GroupHashingTest, RecoverRecomputesCount) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  for (u64 k = 1; k <= 100; ++k) table().insert(k, k);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 100u);
  EXPECT_EQ(report.cells_scanned, 512u);
  EXPECT_EQ(table().count(), 100u);
}

TEST_F(GroupHashingTest, RecoverScrubsTornPayloads) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(1, 11);
  // Forge a torn insert directly in an empty cell: value bytes present,
  // commit word clear — what a crash between the payload persist and the
  // commit-word persist leaves behind (white-box access to the layout:
  // cells start right after the 64-byte header).
  auto* cells = reinterpret_cast<Cell16*>(region_bytes().data() + 64);
  usize forged = 0;
  for (usize i = 0; i < 512 && forged < 3; ++i) {
    if (!cells[i].occupied() && !cells[i].payload_dirty()) {
      cells[i].value = 0xdeadbeefull + i;
      ++forged;
    }
  }
  ASSERT_EQ(forged, 3u);
  const auto report = table().recover();
  EXPECT_EQ(report.cells_scrubbed, 3u);
  EXPECT_EQ(report.recovered_count, 1u);
  for (usize i = 0; i < 512; ++i) {
    if (!cells[i].occupied()) EXPECT_FALSE(cells[i].payload_dirty()) << i;
  }
  EXPECT_EQ(*table().find(1), 11u);
}

TEST_F(GroupHashingTest, AttachSeesExistingData) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(7, 70);
  Table16 reattached = Table16::attach(pm(), region_bytes());
  EXPECT_EQ(reattached.count(), 1u);
  EXPECT_EQ(*reattached.find(7), 70u);
  EXPECT_EQ(reattached.group_size(), 16u);
}

TEST_F(GroupHashingTest, ForEachVisitsExactlyOccupiedCells) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  std::unordered_map<u64, u64> expected;
  for (u64 k = 1; k <= 50; ++k) {
    table().insert(k, k * 7);
    expected[k] = k * 7;
  }
  table().erase(25);
  expected.erase(25);
  std::unordered_map<u64, u64> seen;
  table().for_each([&](u64 k, u64 v) { seen[k] = v; });
  EXPECT_EQ(seen, expected);
}

TEST_F(GroupHashingTest, FindBatchMatchesScalarFind) {
  init(Table16::Params{.level_cells = 4096, .group_size = 64});
  Xoshiro256 rng(21);
  std::vector<u64> present;
  while (table().count() < 3000) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (table().insert(k, k * 7)) present.push_back(k);
  }
  // Mixed batch: hits and misses interleaved, larger than the prefetch
  // window and with a non-multiple-of-window tail.
  std::vector<u64> keys;
  for (usize i = 0; i < 100; ++i) {
    keys.push_back(present[rng.next_below(present.size())]);
    keys.push_back((1ull << 45) + i);  // certain miss
  }
  keys.push_back(present[0]);  // odd-sized tail
  std::vector<std::optional<u64>> out(keys.size());
  table().find_batch(keys, out);
  for (usize i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], table().find(keys[i])) << i;
  }
}

TEST_F(GroupHashingTest, FindBatchEmptyAndSingle) {
  init(Table16::Params{.level_cells = 256, .group_size = 16});
  table().insert(5, 50);
  std::vector<std::optional<u64>> out(1);
  table().find_batch(std::span<const u64>{}, out);  // empty batch is a no-op
  const u64 one = 5;
  table().find_batch(std::span<const u64>(&one, 1), out);
  EXPECT_EQ(out[0], std::optional<u64>(50));
}

TEST(GroupHashingCountMode, RecoveryOnlySavesFlushesButStaysExact) {
  test::TableFixture<Table16> eager_fix, lazy_fix;
  auto& eager = eager_fix.init(Table16::Params{.level_cells = 512, .group_size = 32});
  auto& lazy = lazy_fix.init(Table16::Params{.level_cells = 512,
                                             .group_size = 32,
                                             .count_mode = CountMode::kRecoveryOnly});
  for (u64 k = 1; k <= 200; ++k) {
    ASSERT_TRUE(eager.insert(k, k));
    ASSERT_TRUE(lazy.insert(k, k));
  }
  for (u64 k = 1; k <= 50; ++k) {
    ASSERT_TRUE(eager.erase(k));
    ASSERT_TRUE(lazy.erase(k));
  }
  // Logical counts agree live...
  EXPECT_EQ(eager.count(), 150u);
  EXPECT_EQ(lazy.count(), 150u);
  // ...but the lazy mode saved one flush per mutation (3 vs 2 persists).
  EXPECT_GT(eager_fix.pm().stats().persist_calls, lazy_fix.pm().stats().persist_calls);
  const u64 saved = eager_fix.pm().stats().persist_calls -
                    lazy_fix.pm().stats().persist_calls;
  EXPECT_EQ(saved, 250u);  // one per mutation (200 inserts + 50 erases)
  // Recovery restores an exact persistent count in both modes.
  EXPECT_EQ(eager.recover().recovered_count, 150u);
  EXPECT_EQ(lazy.recover().recovered_count, 150u);
  EXPECT_EQ(lazy.count(), 150u);
}

TEST(GroupHashingWide, Key128RoundTrip) {
  test::TableFixture<Table32> fix;
  auto& t = fix.init(Table32::Params{.level_cells = 256, .group_size = 16});
  const Key128 a{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const Key128 b{a.lo, a.hi + 1};
  EXPECT_TRUE(t.insert(a, 1));
  EXPECT_TRUE(t.insert(b, 2));
  EXPECT_EQ(*t.find(a), 1u);
  EXPECT_EQ(*t.find(b), 2u);
  EXPECT_TRUE(t.erase(a));
  EXPECT_FALSE(t.find(a).has_value());
  EXPECT_EQ(*t.find(b), 2u);
}

TEST(GroupHashingParams, RequiredBytesMatchesLayout) {
  Table16::Params p{.level_cells = 1024, .group_size = 256};
  EXPECT_EQ(Table16::required_bytes(p), 64u + 2 * 1024 * 16);
  Table32::Params p32{.level_cells = 1024, .group_size = 256};
  EXPECT_EQ(Table32::required_bytes(p32), 64u + 2 * 1024 * 32);
}

TEST(GroupHashingParams, RejectsBadGeometry) {
  test::TableFixture<Table16> fix;
  EXPECT_DEATH(fix.init(Table16::Params{.level_cells = 100, .group_size = 10}),
               "power of two");
  test::TableFixture<Table16> fix2;
  EXPECT_DEATH(fix2.init(Table16::Params{.level_cells = 64, .group_size = 48}),
               "divide");
}

}  // namespace
}  // namespace gh::hash
