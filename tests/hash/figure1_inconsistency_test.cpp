// Reproduces the paper's Figure 1: the three inconsistency cases of a
// NAIVE hash-table insertion (write key-value pair, then increment count,
// with no atomic commit word and no careful ordering), demonstrated on
// the crash simulator — and the proof that group hashing's protocol
// closes all three.
//
//   Case 1: crash after the KV write, before the count increment
//           -> count too small / no way to tell the cell is committed.
//   Case 2: count reaches NVM first (write reordering / eviction), crash
//           before the KV pair lands -> count too large, phantom item.
//   Case 3: crash mid-KV-write -> torn value visible as a live item.
#include <gtest/gtest.h>

#include <cstring>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"

namespace gh::hash {
namespace {

using nvm::CrashMode;
using nvm::ShadowPM;
using nvm::SimulatedCrash;

/// The naive table of Figure 1: cells are (key, value) with key!=0
/// meaning occupied; insert writes the pair, then increments count.
/// No commit word, no persist ordering discipline.
struct NaiveTable {
  struct NaiveCell {
    u64 key;    // 0 = empty (Figure 1's example keys are non-zero)
    u64 value;
  };

  explicit NaiveTable(std::span<std::byte> mem)
      : count(reinterpret_cast<u64*>(mem.data())),
        cells(reinterpret_cast<NaiveCell*>(mem.data() + 64)),
        ncells((mem.size() - 64) / sizeof(NaiveCell)) {}

  void naive_insert(ShadowPM& pm, u64 key, u64 value) {
    // Figure 1 pseudo-code: hash[index].key = key; hash[index].value =
    // value; count++;  — persists happen "eventually" (one lazy flush at
    // the end models a writeback that may or may not have occurred).
    NaiveCell& c = cells[key % ncells];
    pm.store_u64(&c.key, key);
    pm.store_u64(&c.value, value);
    pm.store_u64(count, *count + 1);
  }

  u64* count;
  NaiveCell* cells;
  usize ncells;
};

class Figure1 : public ::testing::Test {
 protected:
  Figure1()
      : region_(nvm::NvmRegion::create_anonymous(4096)),
        mem_(region_.bytes().first(4096)) {}

  nvm::NvmRegion region_;
  std::span<std::byte> mem_;
};

TEST_F(Figure1, Case1And2_CountDisagreesWithCells) {
  // The naive insert's three stores sit dirty in cache; a crash persists
  // an ARBITRARY subset (cache eviction is not ordered). Enumerate crash
  // points and eviction seeds: the naive table reaches states where count
  // disagrees with the number of visible items — both too small (case 1)
  // and too large (case 2).
  bool saw_count_too_small = false, saw_count_too_large = false;
  // crash_at == 3 means all three stores executed (no exception fires) but
  // the "crash" is the materialisation: any dirty subset may be durable —
  // including the count without the key (Figure 1's reordering, case 2).
  for (u64 crash_at = 0; crash_at < 4; ++crash_at) {
    for (u64 seed = 0; seed < 16; ++seed) {
      std::fill(mem_.begin(), mem_.end(), std::byte{0});
      ShadowPM pm(mem_);
      NaiveTable table(mem_);
      pm.crash_at_event(crash_at);
      try {
        table.naive_insert(pm, 21, 0x486173685461626cull);  // (21,"HashTabl")
      } catch (const SimulatedCrash&) {
      }
      const auto img = pm.materialize_crash_image(CrashMode::kRandomEviction, seed);
      u64 img_count;
      std::memcpy(&img_count, img.data(), 8);
      u64 img_key;
      std::memcpy(&img_key, img.data() + 64 + (21 % table.ncells) * 16, 8);
      const u64 visible_items = img_key != 0 ? 1 : 0;
      if (img_count < visible_items) saw_count_too_small = true;   // case 1
      if (img_count > visible_items) saw_count_too_large = true;   // case 2
    }
  }
  EXPECT_TRUE(saw_count_too_small) << "Figure 1 case 1 should be reachable";
  EXPECT_TRUE(saw_count_too_large) << "Figure 1 case 2 should be reachable";
}

TEST_F(Figure1, Case3_TornValueVisibleAsLiveItem) {
  // Key persisted, value not (or vice versa): the naive layout has no way
  // to distinguish the torn cell from a committed one.
  bool saw_torn = false;
  for (u64 seed = 0; seed < 32 && !saw_torn; ++seed) {
    std::fill(mem_.begin(), mem_.end(), std::byte{0});
    ShadowPM pm(mem_);
    NaiveTable table(mem_);
    pm.crash_at_event(2);  // after key+value stores, before count
    try {
      table.naive_insert(pm, 21, 0x486173685461626cull);
    } catch (const SimulatedCrash&) {
    }
    const auto img = pm.materialize_crash_image(CrashMode::kRandomEviction, seed);
    u64 img_key, img_value;
    std::memcpy(&img_key, img.data() + 64 + (21 % table.ncells) * 16, 8);
    std::memcpy(&img_value, img.data() + 64 + (21 % table.ncells) * 16 + 8, 8);
    if (img_key == 21 && img_value == 0) saw_torn = true;  // looks live, value gone
  }
  EXPECT_TRUE(saw_torn) << "Figure 1 case 3 should be reachable";
}

TEST_F(Figure1, GroupHashingClosesAllThreeCases) {
  // The same adversarial enumeration against the real protocol: recovery
  // always restores count == visible items and never exposes a torn value.
  using Table = GroupHashTable<Cell16, ShadowPM>;
  const Table::Params params{.level_cells = 64, .group_size = 16};
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(Table::required_bytes(params));
  auto mem = region.bytes().first(Table::required_bytes(params));

  for (u64 crash_at = 0; crash_at < 8; ++crash_at) {
    for (u64 seed = 0; seed < 8; ++seed) {
      std::fill(mem.begin(), mem.end(), std::byte{0});
      ShadowPM pm(mem);
      Table table(pm, mem, params, /*format=*/true);
      const u64 format_events = pm.event_count();
      pm.crash_at_event(format_events + crash_at);
      bool crashed = false;
      try {
        table.insert(21, 0x486173685461626cull);
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      pm.crash_at_event(ShadowPM::no_crash());
      const auto img = pm.materialize_crash_image(CrashMode::kRandomEviction, seed);
      pm.reset_to_image(img);
      Table rebooted = Table::attach(pm, mem);
      const auto report = rebooted.recover();
      const auto v = rebooted.find(21);
      // No case 1/2: count always equals visible items.
      EXPECT_EQ(rebooted.count(), v.has_value() ? 1u : 0u)
          << "crash_at=" << crash_at << " seed=" << seed;
      EXPECT_EQ(report.recovered_count, rebooted.count());
      // No case 3: a visible item always carries its exact value.
      if (v) EXPECT_EQ(*v, 0x486173685461626cull);
      (void)crashed;
    }
  }
}

}  // namespace
}  // namespace gh::hash
