// Crash-injection verification of the consistency claims (§3.3, §3.5).
//
// For a table pre-filled with committed items, one more operation (insert
// / delete / update) is executed on the ShadowPM crash simulator with a
// simulated power failure injected at EVERY persistence event inside that
// operation, and for each crash point the durable NVM image is
// materialised under three eviction policies (nothing / everything / a
// random subset of dirty 8-byte words — torn cachelines included). After
// rebooting from the image and running recovery, the invariants are:
//
//   1. every previously committed item is present with its exact value;
//   2. the in-flight operation is atomic: all-or-nothing, never torn;
//   3. the recomputed `count` equals the number of reachable items;
//   4. recovery has scrubbed all garbage (a second recovery is a no-op).
//
// Group hashing is tested with its bare 8-byte-commit protocol (the
// paper's claim: no logging needed); the baselines are tested in their
// "-L" logged variants (the paper's consistency-matched comparison).
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "hash/any_table.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"
#include "trace/workload.hpp"

namespace gh::hash {
namespace {

using nvm::CrashMode;
using nvm::ShadowPM;
using nvm::SimulatedCrash;

enum class OpKind { kInsert, kErase, kUpdate };

struct CrashCase {
  Scheme scheme;
  bool with_wal;
  bool wide;
  OpKind op;
};

std::string case_name(const ::testing::TestParamInfo<CrashCase>& info) {
  const CrashCase& c = info.param;
  std::string name = scheme_name(c.scheme);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  name += c.with_wal ? "_L" : "";
  name += c.wide ? "_wide" : "";
  switch (c.op) {
    case OpKind::kInsert:
      name += "_insert";
      break;
    case OpKind::kErase:
      name += "_erase";
      break;
    case OpKind::kUpdate:
      name += "_update";
      break;
  }
  return name;
}

constexpr usize kPrefill = 24;
constexpr u64 kUpdatedValue = 0x75fdbca987654321ull;

class CrashInjection : public ::testing::TestWithParam<CrashCase> {
 protected:
  TableConfig config() const {
    const CrashCase& c = GetParam();
    TableConfig cfg;
    cfg.scheme = c.scheme;
    cfg.total_cells_log2 = 8;  // small table => recovery scans are cheap
    cfg.group_size = 16;
    cfg.wide_cells = c.wide;
    cfg.with_wal = c.with_wal;
    cfg.wal_records = 256;
    return cfg;
  }

  Key128 key_at(usize i) const {
    // Index 0 is reserved as the in-flight insert target.
    const u64 lo = (i + 1) * 0x9e3779b9ull;
    return Key128{lo & Cell16::kMaxKey, GetParam().wide ? (i + 1) * 0x100000001b3ull : 0};
  }

  u64 value_of(const Key128& k) const { return trace::value_for_key(k); }

  /// Runs prefill + the parameterized op, optionally crashing. Returns
  /// the events consumed and whether the crash fired.
  struct RunResult {
    u64 events_at_op_start = 0;
    u64 events_total = 0;
    bool crashed = false;
  };

  RunResult run(ShadowPM& pm, std::span<std::byte> mem, u64 crash_at) {
    pm.crash_at_event(ShadowPM::no_crash());
    auto table = make_table(pm, mem, config(), /*format=*/true);
    for (usize i = 1; i <= kPrefill; ++i) {
      EXPECT_TRUE(table->insert(key_at(i), value_of(key_at(i))));
    }
    RunResult result;
    result.events_at_op_start = pm.event_count();
    pm.crash_at_event(crash_at);
    try {
      switch (GetParam().op) {
        case OpKind::kInsert:
          EXPECT_TRUE(table->insert(key_at(0), value_of(key_at(0))));
          break;
        case OpKind::kErase:
          EXPECT_TRUE(table->erase(key_at(1)));
          break;
        case OpKind::kUpdate: {
          // Only the group-hashing table exposes update(); reach it via
          // the concrete type.
          auto* adapter = dynamic_cast<detail::TableAdapter<
              GroupHashTable<Cell16, ShadowPM>, ShadowPM>*>(table.get());
          GH_CHECK(adapter != nullptr);
          EXPECT_TRUE(adapter->inner().update(key_at(1).lo, kUpdatedValue));
          break;
        }
      }
    } catch (const SimulatedCrash&) {
      result.crashed = true;
    }
    pm.crash_at_event(ShadowPM::no_crash());
    result.events_total = pm.event_count();
    return result;
  }

  void verify_recovered(std::span<std::byte> mem, ShadowPM& pm) {
    auto table = make_table(pm, mem, config(), /*format=*/false);
    const auto report = table->recover();

    u64 present = 0;
    // Invariant 1: all committed items except the op target survive intact.
    for (usize i = 1; i <= kPrefill; ++i) {
      const Key128 k = key_at(i);
      const auto found = table->find(k);
      if (GetParam().op == OpKind::kErase && i == 1) {
        // Invariant 2 (erase): all-or-nothing.
        if (found.has_value()) EXPECT_EQ(*found, value_of(k));
        present += found.has_value() ? 1 : 0;
        continue;
      }
      if (GetParam().op == OpKind::kUpdate && i == 1) {
        // Invariant 2 (update): old value or new value, nothing else.
        ASSERT_TRUE(found.has_value());
        EXPECT_TRUE(*found == value_of(k) || *found == kUpdatedValue)
            << "torn update: " << *found;
        present += 1;
        continue;
      }
      ASSERT_TRUE(found.has_value()) << "lost committed key " << i;
      EXPECT_EQ(*found, value_of(k)) << "corrupted committed key " << i;
      present += 1;
    }
    if (GetParam().op == OpKind::kInsert) {
      // Invariant 2 (insert): all-or-nothing.
      const auto found = table->find(key_at(0));
      if (found.has_value()) EXPECT_EQ(*found, value_of(key_at(0)));
      present += found.has_value() ? 1 : 0;
    }
    // Invariant 3: count matches what is reachable.
    EXPECT_EQ(table->count(), present);
    EXPECT_EQ(report.recovered_count, present);

    // Invariant 4: recovery is complete — a second pass finds nothing to
    // scrub or roll back.
    const auto second = table->recover();
    EXPECT_EQ(second.cells_scrubbed, 0u);
    EXPECT_EQ(second.wal_records_rolled_back, 0u);
    EXPECT_EQ(second.recovered_count, present);
  }
};

TEST_P(CrashInjection, EveryCrashPointRecoversConsistently) {
  const usize bytes = table_required_bytes(config());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(round_up(bytes, 4096));
  auto mem = region.bytes().first(round_up(bytes, 8));

  // Dry run to learn the operation's event window.
  ShadowPM dry(mem);
  const RunResult window = run(dry, mem, ShadowPM::no_crash());
  ASSERT_FALSE(window.crashed);
  ASSERT_GT(window.events_total, window.events_at_op_start);

  // After a fully completed run, the structure must have persisted
  // everything it wrote — no dirty words may remain.
  EXPECT_EQ(dry.dirty_word_count(), 0u)
      << "scheme left unflushed NVM writes behind";

  usize points_tested = 0;
  for (u64 crash_at = window.events_at_op_start; crash_at < window.events_total;
       ++crash_at) {
    for (const CrashMode mode :
         {CrashMode::kNothingEvicted, CrashMode::kAllEvicted, CrashMode::kRandomEviction}) {
      // Fresh memory for every replay.
      std::fill(mem.begin(), mem.end(), std::byte{0});
      ShadowPM pm(mem);
      const RunResult r = run(pm, mem, crash_at);
      ASSERT_TRUE(r.crashed) << "crash point " << crash_at << " did not fire";
      const auto image = pm.materialize_crash_image(mode, /*seed=*/crash_at * 31 + 7);
      pm.reset_to_image(image);
      verify_recovered(mem, pm);
      ++points_tested;
    }
  }
  // The op windows are small (an update is just 2 events; inserts and
  // deletes span more) but must be non-trivial.
  EXPECT_GE(points_tested, 3u * 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashInjection,
    ::testing::Values(
        // The contribution: group hashing with NO logging, all three ops,
        // both cell widths.
        CrashCase{Scheme::kGroup, false, false, OpKind::kInsert},
        CrashCase{Scheme::kGroup, false, false, OpKind::kErase},
        CrashCase{Scheme::kGroup, false, false, OpKind::kUpdate},
        CrashCase{Scheme::kGroup, false, true, OpKind::kInsert},
        CrashCase{Scheme::kGroup, false, true, OpKind::kErase},
        // The consistency-matched baselines: undo-logged variants.
        CrashCase{Scheme::kLinear, true, false, OpKind::kInsert},
        CrashCase{Scheme::kLinear, true, false, OpKind::kErase},
        CrashCase{Scheme::kPfht, true, false, OpKind::kInsert},
        CrashCase{Scheme::kPfht, true, false, OpKind::kErase},
        CrashCase{Scheme::kPath, true, false, OpKind::kInsert},
        CrashCase{Scheme::kPath, true, false, OpKind::kErase},
        // Belt-and-braces: group hashing WITH a log must also hold.
        CrashCase{Scheme::kGroup, true, false, OpKind::kInsert},
        CrashCase{Scheme::kGroup, true, false, OpKind::kErase},
        // The §4.4 two-hash variant shares the commit-word protocol.
        CrashCase{Scheme::kGroup2H, false, false, OpKind::kInsert},
        CrashCase{Scheme::kGroup2H, false, false, OpKind::kErase}),
    case_name);

}  // namespace
}  // namespace gh::hash
