#include "hash/group_hashing_2h.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "hash/group_hashing.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table2H = GroupHashTable2H<Cell16, nvm::DirectPM>;
using Table1H = GroupHashTable<Cell16, nvm::DirectPM>;

class Group2HTest : public ::testing::Test, public test::TableFixture<Table2H> {};

TEST_F(Group2HTest, InsertFindEraseRoundTrip) {
  init(Table2H::Params{.level_cells = 256, .group_size = 16});
  EXPECT_TRUE(table().insert(11, 110));
  EXPECT_EQ(*table().find(11), 110u);
  EXPECT_TRUE(table().erase(11));
  EXPECT_FALSE(table().find(11).has_value());
  EXPECT_EQ(table().count(), 0u);
}

TEST_F(Group2HTest, SecondHashRescuesFullFirstCell) {
  init(Table2H::Params{.level_cells = 64, .group_size = 8});
  const SeededHash h1(kDefaultSeed1);
  // Two keys with the same h1 level-1 cell: the second gets its h2 cell
  // (or a group slot) and stays findable.
  const u64 target = h1(1) & 63;
  u64 other = 0;
  for (u64 k = 2; other == 0; ++k) {
    if ((h1(k) & 63) == target) other = k;
  }
  ASSERT_TRUE(table().insert(1, 1));
  ASSERT_TRUE(table().insert(other, 2));
  EXPECT_EQ(*table().find(1), 1u);
  EXPECT_EQ(*table().find(other), 2u);
}

TEST_F(Group2HTest, OracleComparisonWithChurn) {
  init(Table2H::Params{.level_cells = 2048, .group_size = 64});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(9);
  std::vector<u64> live;
  for (int step = 0; step < 6000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 2500) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k) && table().insert(k, k * 5)) {
        oracle[k] = k * 5;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.8) {
        ASSERT_TRUE(table().find(k).has_value());
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(Group2HTest, HigherUtilizationThanOneHash) {
  // The §4.4 claim, positive half: two hash functions raise the load
  // factor at first failure.
  const u64 level_cells = 4096;
  const u32 group_size = 64;
  init(Table2H::Params{.level_cells = level_cells, .group_size = group_size});

  test::TableFixture<Table1H> fix1h;
  auto& t1 = fix1h.init(Table1H::Params{.level_cells = level_cells, .group_size = group_size});

  Xoshiro256 rng(13);
  double util_2h = 0, util_1h = 0;
  {
    for (;;) {
      const u64 k = (rng.next() & Cell16::kMaxKey) | 1;
      if (!table().insert(k, 1)) break;
    }
    util_2h = table().load_factor();
  }
  {
    Xoshiro256 rng1(13);
    for (;;) {
      const u64 k = (rng1.next() & Cell16::kMaxKey) | 1;
      if (!t1.insert(k, 1)) break;
    }
    util_1h = t1.load_factor();
  }
  EXPECT_GT(util_2h, util_1h + 0.03) << "2 hashes should clearly beat 1";
}

TEST_F(Group2HTest, MoreProbesThanOneHash) {
  // The §4.4 claim, negative half: lookups touch more (and scattered)
  // cells. Compare negative-lookup probe counts at equal geometry.
  const u64 level_cells = 1024;
  const u32 group_size = 64;
  init(Table2H::Params{.level_cells = level_cells, .group_size = group_size});
  test::TableFixture<Table1H> fix1h;
  auto& t1 = fix1h.init(Table1H::Params{.level_cells = level_cells, .group_size = group_size});

  table().stats().clear();
  t1.stats().clear();
  for (u64 k = 1; k <= 100; ++k) {
    (void)table().find(k + (1ull << 40));
    (void)t1.find(k + (1ull << 40));
  }
  EXPECT_GT(table().stats().probes, t1.stats().probes * 3 / 2);
}

TEST_F(Group2HTest, RecoverScrubsAndRecounts) {
  init(Table2H::Params{.level_cells = 256, .group_size = 16});
  for (u64 k = 1; k <= 40; ++k) table().insert(k, k);
  table().erase(10);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 39u);
  EXPECT_EQ(report.cells_scanned, 512u);
  EXPECT_EQ(table().count(), 39u);
}

}  // namespace
}  // namespace gh::hash
