#include "hash/path_hashing.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table = PathHashTable<Cell16, nvm::DirectPM>;

class PathHashingTest : public ::testing::Test, public test::TableFixture<Table> {};

TEST_F(PathHashingTest, CapacityIsTruncatedTreeSum) {
  // level0 = 2^8 cells, 4 levels: 256 + 128 + 64 + 32 = 480.
  Table::Params p{.level0_bits = 8, .reserved_levels = 4};
  EXPECT_EQ(Table::total_cells(p), 480u);
  EXPECT_EQ(Table::required_bytes(p), 64u + 480 * 16);
  init(p);
  EXPECT_EQ(table().capacity(), 480u);
  EXPECT_EQ(table().levels(), 4u);
}

TEST_F(PathHashingTest, ReservedLevelsClampToTreeHeight) {
  Table::Params p{.level0_bits = 3, .reserved_levels = 20};
  EXPECT_EQ(Table::effective_levels(p), 4u);  // levels of 8,4,2,1 cells
  EXPECT_EQ(Table::total_cells(p), 15u);
}

TEST_F(PathHashingTest, InsertFindEraseRoundTrip) {
  init(Table::Params{.level0_bits = 8, .reserved_levels = 4});
  EXPECT_TRUE(table().insert(10, 100));
  EXPECT_EQ(*table().find(10), 100u);
  EXPECT_TRUE(table().erase(10));
  EXPECT_FALSE(table().find(10).has_value());
}

TEST_F(PathHashingTest, CollisionsDescendThePath) {
  init(Table::Params{.level0_bits = 6, .reserved_levels = 6});
  const SeededHash h1(kDefaultSeed1);
  const SeededHash h2(kDefaultSeed2);
  // Keys sharing BOTH level-0 positions must stack down the shared path.
  const u64 p1 = h1(1) & 63, p2 = h2(1) & 63;
  std::vector<u64> keys{1};
  for (u64 k = 2; keys.size() < 4 && k < 5'000'000; ++k) {
    if ((h1(k) & 63) == p1 && (h2(k) & 63) == p2) keys.push_back(k);
  }
  if (keys.size() < 4) GTEST_SKIP() << "not enough doubly-colliding keys";
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k));
  for (const u64 k : keys) EXPECT_EQ(*table().find(k), k);
}

TEST_F(PathHashingTest, PositionSharingNeverMovesItems) {
  init(Table::Params{.level0_bits = 10, .reserved_levels = 8});
  Xoshiro256 rng(2);
  // Record persist traffic: inserts write only the new cell + count; no
  // item is ever displaced (contrast with cuckoo schemes).
  pm().stats().clear();
  u64 inserted = 0;
  while (table().load_factor() < 0.5) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (!table().insert(k, k)) break;
    ++inserted;
  }
  // 3 persists per successful insert (payload, commit word, count), plus
  // nothing else.
  EXPECT_EQ(pm().stats().persist_calls, inserted * 3);
  EXPECT_EQ(table().stats().displacements, 0u);
}

TEST_F(PathHashingTest, OracleComparisonWithChurn) {
  init(Table::Params{.level0_bits = 11, .reserved_levels = 10});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(13);
  std::vector<u64> live;
  for (int step = 0; step < 6000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 2000) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k) && table().insert(k, k + 7)) {
        oracle[k] = k + 7;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.8) {
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(PathHashingTest, HighSpaceUtilization) {
  // Fig. 7: path hashing achieves the highest utilisation (> 90%).
  init(Table::Params{.level0_bits = 12, .reserved_levels = 12});
  Xoshiro256 rng(17);
  for (;;) {
    const u64 k = (rng.next() & Cell16::kMaxKey) | 1;
    if (!table().insert(k, 1)) break;
  }
  EXPECT_GT(table().load_factor(), 0.90);
}

TEST_F(PathHashingTest, LookupProbesBothPathsAllLevels) {
  init(Table::Params{.level0_bits = 8, .reserved_levels = 6});
  table().stats().clear();
  (void)table().find(12345);  // absent: must scan 2 paths x 6 levels
  EXPECT_EQ(table().stats().probes, 12u);
}

TEST_F(PathHashingTest, RecoverRecomputesCount) {
  init(Table::Params{.level0_bits = 8, .reserved_levels = 4});
  for (u64 k = 1; k <= 50; ++k) table().insert(k, k);
  table().erase(25);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 49u);
  EXPECT_EQ(report.cells_scanned, 480u);
}

}  // namespace
}  // namespace gh::hash
