// Tests for the baselines the paper names but excludes (§4.1): chained
// hashing and 2-choice hashing. The ablation bench quantifies the paper's
// exclusion argument; these tests pin their functional behaviour.
#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "hash/chained_hashing.hpp"
#include "hash/two_choice.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Chained = ChainedHashTable<Cell16, nvm::DirectPM>;
using TwoChoice = TwoChoiceTable<Cell16, nvm::DirectPM>;

class ChainedTest : public ::testing::Test, public test::TableFixture<Chained> {};
class TwoChoiceTest : public ::testing::Test, public test::TableFixture<TwoChoice> {};

TEST_F(ChainedTest, InsertFindEraseRoundTrip) {
  init(Chained::Params{.buckets = 64, .pool_nodes = 256});
  EXPECT_TRUE(table().insert(1, 10));
  EXPECT_EQ(*table().find(1), 10u);
  EXPECT_TRUE(table().erase(1));
  EXPECT_FALSE(table().find(1).has_value());
}

TEST_F(ChainedTest, LongChainsStayCorrect) {
  init(Chained::Params{.buckets = 4, .pool_nodes = 128});
  for (u64 k = 1; k <= 100; ++k) ASSERT_TRUE(table().insert(k, k * 2));
  EXPECT_EQ(table().count(), 100u);
  for (u64 k = 1; k <= 100; ++k) EXPECT_EQ(*table().find(k), k * 2);
  // Erase from the middle of chains.
  for (u64 k = 1; k <= 100; k += 3) ASSERT_TRUE(table().erase(k));
  for (u64 k = 1; k <= 100; ++k) {
    if (k % 3 == 1) {
      EXPECT_FALSE(table().find(k).has_value());
    } else {
      EXPECT_EQ(*table().find(k), k * 2);
    }
  }
}

TEST_F(ChainedTest, PoolExhaustionFailsInsert) {
  init(Chained::Params{.buckets = 4, .pool_nodes = 8});
  for (u64 k = 1; k <= 8; ++k) ASSERT_TRUE(table().insert(k, k));
  EXPECT_FALSE(table().insert(9, 9));
  EXPECT_EQ(table().stats().insert_failures, 1u);
}

TEST_F(ChainedTest, FreeListRecyclesNodes) {
  init(Chained::Params{.buckets = 4, .pool_nodes = 8});
  for (u64 k = 1; k <= 8; ++k) ASSERT_TRUE(table().insert(k, k));
  for (u64 k = 1; k <= 4; ++k) ASSERT_TRUE(table().erase(k));
  // Freed nodes must be reusable.
  for (u64 k = 100; k < 104; ++k) ASSERT_TRUE(table().insert(k, k));
  EXPECT_EQ(table().count(), 8u);
  for (u64 k = 100; k < 104; ++k) EXPECT_EQ(*table().find(k), k);
}

TEST_F(ChainedTest, AllocationChurnCostsPersists) {
  // The paper's exclusion argument: every insert/erase pays allocator
  // metadata persists on top of the cell writes.
  init(Chained::Params{.buckets = 64, .pool_nodes = 256});
  pm().stats().clear();
  table().insert(1, 1);
  const u64 insert_persists = pm().stats().persist_calls;
  pm().stats().clear();
  table().erase(1);
  const u64 erase_persists = pm().stats().persist_calls;
  // Group hashing does 3 persists per op; chained does strictly more.
  EXPECT_GT(insert_persists, 3u);
  EXPECT_GT(erase_persists, 3u);
}

TEST_F(ChainedTest, OracleComparison) {
  init(Chained::Params{.buckets = 256, .pool_nodes = 2048});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(21);
  for (int i = 0; i < 3000; ++i) {
    const u64 k = rng.next_below(1u << 20) + 1;
    if (rng.next_bool()) {
      if (!oracle.count(k) && table().insert(k, k + 1)) oracle[k] = k + 1;
    } else {
      const bool removed = table().erase(k);
      EXPECT_EQ(removed, oracle.erase(k) == 1);
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

TEST_F(TwoChoiceTest, InsertFindEraseRoundTrip) {
  init(TwoChoice::Params{.cells = 64});
  EXPECT_TRUE(table().insert(5, 50));
  EXPECT_EQ(*table().find(5), 50u);
  EXPECT_TRUE(table().erase(5));
  EXPECT_FALSE(table().find(5).has_value());
}

TEST_F(TwoChoiceTest, BothChoicesUsable) {
  init(TwoChoice::Params{.cells = 16});
  const SeededHash h1(kDefaultSeed1);
  // Two keys with the same first choice: the second lands at its h2 cell.
  const u64 c = h1(1) & 15;
  u64 other = 0;
  for (u64 k = 2; other == 0; ++k) {
    if ((h1(k) & 15) == c) other = k;
  }
  ASSERT_TRUE(table().insert(1, 1));
  ASSERT_TRUE(table().insert(other, 2));
  EXPECT_EQ(*table().find(1), 1u);
  EXPECT_EQ(*table().find(other), 2u);
}

TEST_F(TwoChoiceTest, LowSpaceUtilization) {
  // The paper's exclusion argument: single-slot 2-choice gives up early.
  init(TwoChoice::Params{.cells = 4096});
  Xoshiro256 rng(31);
  for (;;) {
    const u64 k = (rng.next() & Cell16::kMaxKey) | 1;
    if (!table().insert(k, 1)) break;
  }
  // Single-slot 2-choice hits its first failure around n^(2/3) items —
  // under 10% here, versus ~82% for group hashing.
  EXPECT_LT(table().load_factor(), 0.30);
  EXPECT_GT(table().load_factor(), 0.01);
}

TEST_F(TwoChoiceTest, OracleComparison) {
  init(TwoChoice::Params{.cells = 1024});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(37);
  for (int i = 0; i < 2000; ++i) {
    const u64 k = rng.next_below(1u << 20) + 1;
    if (rng.next_bool()) {
      if (!oracle.count(k) && table().insert(k, k * 2)) oracle[k] = k * 2;
    } else {
      const bool removed = table().erase(k);
      EXPECT_EQ(removed, oracle.erase(k) == 1);
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table().find(k), v);
}

}  // namespace
}  // namespace gh::hash
