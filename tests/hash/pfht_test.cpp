#include "hash/pfht.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/cells.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using Table = PfhtTable<Cell16, nvm::DirectPM>;

class PfhtTest : public ::testing::Test, public test::TableFixture<Table> {};

TEST_F(PfhtTest, InsertFindEraseRoundTrip) {
  init(Table::Params{.cells = 256});
  EXPECT_TRUE(table().insert(10, 100));
  EXPECT_EQ(*table().find(10), 100u);
  EXPECT_TRUE(table().erase(10));
  EXPECT_FALSE(table().find(10).has_value());
}

TEST_F(PfhtTest, StashSizedAtThreePercent) {
  EXPECT_EQ(Table::stash_cells_for(10000), 300u);
  EXPECT_EQ(Table::stash_cells_for(10), 1u);  // floor, but at least 1
  init(Table::Params{.cells = 1024});
  EXPECT_EQ(table().capacity(), 1024u + 30u);
}

TEST_F(PfhtTest, BucketOverflowGoesToAlternateBucket) {
  init(Table::Params{.cells = 64});  // 16 buckets
  const SeededHash h1(kDefaultSeed1);
  // Five keys whose h1-bucket coincides: bucket holds 4, the fifth must
  // land in its h2 bucket (or displace) and stay findable.
  const u64 target = h1(1) & 15;
  std::vector<u64> keys{1};
  for (u64 k = 2; keys.size() < 5; ++k) {
    if ((h1(k) & 15) == target) keys.push_back(k);
  }
  for (const u64 k : keys) ASSERT_TRUE(table().insert(k, k));
  for (const u64 k : keys) EXPECT_EQ(*table().find(k), k);
}

TEST_F(PfhtTest, DisplacementMovesAtMostOneItem) {
  init(Table::Params{.cells = 1024});
  Xoshiro256 rng(5);
  // Fill to a load where displacements happen.
  u64 inserted = 0;
  while (table().load_factor() < 0.70) {
    const u64 k = rng.next_below(1ull << 40) + 1;
    if (!table().insert(k, k)) break;
    ++inserted;
  }
  // Displacements occurred but never cascaded: by construction the
  // algorithm moves at most one item per insert, so displacements cannot
  // exceed inserts.
  EXPECT_GT(table().stats().displacements, 0u);
  EXPECT_LE(table().stats().displacements, inserted);
}

TEST_F(PfhtTest, StashAbsorbsPathologicalCollisions) {
  init(Table::Params{.cells = 64});  // 16 buckets, stash of 1-2 cells
  const SeededHash h1(kDefaultSeed1);
  const SeededHash h2(kDefaultSeed2);
  // Keys with BOTH buckets equal to each other collide hopelessly after
  // 8 slots (b1 bucket + b2 bucket); the 9th must use the stash.
  const u64 b1 = h1(1) & 15, b2 = h2(1) & 15;
  std::vector<u64> keys{1};
  for (u64 k = 2; keys.size() < 9 && k < 5'000'000; ++k) {
    if ((h1(k) & 15) == b1 && (h2(k) & 15) == b2) keys.push_back(k);
  }
  if (keys.size() < 9) GTEST_SKIP() << "not enough doubly-colliding keys in range";
  usize ok = 0;
  for (const u64 k : keys) ok += table().insert(k, k) ? 1 : 0;
  EXPECT_GE(ok, 8u);
  for (usize i = 0; i < ok; ++i) EXPECT_EQ(*table().find(keys[i]), keys[i]);
  if (ok == 9) EXPECT_GT(table().stats().stash_probes, 0u);
}

TEST_F(PfhtTest, OracleComparisonWithChurn) {
  init(Table::Params{.cells = 2048});
  std::unordered_map<u64, u64> oracle;
  Xoshiro256 rng(8);
  std::vector<u64> live;
  for (int step = 0; step < 6000; ++step) {
    const double r = rng.next_double();
    if (r < 0.5 && oracle.size() < 1200) {
      const u64 k = rng.next_below(1ull << 30) + 1;
      if (!oracle.count(k) && table().insert(k, k ^ 0xabcdef)) {
        oracle[k] = k ^ 0xabcdef;
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const u64 k = live[idx];
      if (r < 0.8) {
        EXPECT_EQ(*table().find(k), oracle[k]);
      } else {
        EXPECT_TRUE(table().erase(k));
        oracle.erase(k);
        live[idx] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_EQ(table().count(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(table().find(k).has_value()) << k;
    EXPECT_EQ(*table().find(k), v);
  }
}

TEST_F(PfhtTest, SpaceUtilizationBeatsGroupHashing) {
  // Sanity for Fig. 7's ordering: PFHT sustains > 82% before first failure.
  init(Table::Params{.cells = 4096});
  Xoshiro256 rng(11);
  u64 inserted = 0;
  for (;;) {
    const u64 k = rng.next() | 1;  // avoid zero; dups vanishingly unlikely
    if (!table().insert(k & Cell16::kMaxKey, 1)) break;
    ++inserted;
  }
  EXPECT_GT(table().load_factor(), 0.82);
}

TEST_F(PfhtTest, RecoverCountsStashToo) {
  init(Table::Params{.cells = 256});
  for (u64 k = 1; k <= 100; ++k) table().insert(k, k);
  const auto report = table().recover();
  EXPECT_EQ(report.recovered_count, 100u);
  EXPECT_EQ(report.cells_scanned, table().capacity());
}

}  // namespace
}  // namespace gh::hash
