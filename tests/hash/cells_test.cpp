#include "hash/cells.hpp"

#include <gtest/gtest.h>

#include "nvm/direct_pm.hpp"
#include "nvm/shadow_pm.hpp"

namespace gh::hash {
namespace {

using nvm::DirectPM;
using nvm::PersistConfig;

class Cell16Test : public ::testing::Test {
 protected:
  DirectPM pm_{PersistConfig::counting_only()};
  alignas(kCachelineSize) Cell16 cell_{};
};

TEST_F(Cell16Test, FreshCellIsEmpty) {
  EXPECT_FALSE(cell_.occupied());
  EXPECT_FALSE(cell_.payload_dirty());
  EXPECT_FALSE(cell_.matches(0));
}

TEST_F(Cell16Test, PublishMakesOccupiedAndMatchable) {
  cell_.publish(pm_, 1234, 5678);
  EXPECT_TRUE(cell_.occupied());
  EXPECT_EQ(cell_.key(), 1234u);
  EXPECT_EQ(cell_.value, 5678u);
  EXPECT_TRUE(cell_.matches(1234));
  EXPECT_FALSE(cell_.matches(1235));
}

TEST_F(Cell16Test, KeyZeroDoesNotMatchEmptyCell) {
  // The bitmap is part of the commit word: an empty cell must not match a
  // genuine key of 0 (the paper's level-2 lookup pseudo-code misses this).
  EXPECT_FALSE(cell_.matches(0));
  cell_.publish(pm_, 0, 99);
  EXPECT_TRUE(cell_.matches(0));
}

TEST_F(Cell16Test, RetractEmptiesAndClearsPayload) {
  cell_.publish(pm_, 7, 8);
  cell_.retract(pm_);
  EXPECT_FALSE(cell_.occupied());
  EXPECT_FALSE(cell_.payload_dirty());
  EXPECT_FALSE(cell_.matches(7));
}

TEST_F(Cell16Test, InsertProtocolOrdering) {
  // Value persists before the commit word flips: exactly 1 store, 1
  // atomic store, 2 persist calls.
  cell_.publish(pm_, 1, 2);
  EXPECT_EQ(pm_.stats().stores, 1u);
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().persist_calls, 2u);
}

TEST_F(Cell16Test, DeleteProtocolCommitsBitmapFirst) {
  cell_.publish(pm_, 1, 2);
  pm_.stats().clear();
  cell_.retract(pm_);
  // One atomic store (the bitmap clear) followed by the payload wipe.
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().stores, 1u);
  EXPECT_EQ(pm_.stats().persist_calls, 2u);
}

TEST_F(Cell16Test, MaxKeyRoundTrips) {
  cell_.publish(pm_, Cell16::kMaxKey, 1);
  EXPECT_TRUE(cell_.matches(Cell16::kMaxKey));
  EXPECT_EQ(cell_.key(), Cell16::kMaxKey);
}

TEST_F(Cell16Test, ScrubClearsTornPayload) {
  // Simulate a torn insert: value written but commit word never flipped.
  cell_.value = 0xdeadbeef;
  EXPECT_FALSE(cell_.occupied());
  EXPECT_TRUE(cell_.payload_dirty());
  cell_.scrub(pm_);
  EXPECT_FALSE(cell_.payload_dirty());
}

TEST_F(Cell16Test, PublishFromCopiesContents) {
  alignas(8) Cell16 src{};
  src.publish(pm_, 42, 43);
  cell_.publish_from(pm_, src);
  EXPECT_TRUE(cell_.matches(42));
  EXPECT_EQ(cell_.value, 43u);
}

class Cell32Test : public ::testing::Test {
 protected:
  DirectPM pm_{PersistConfig::counting_only()};
  alignas(kCachelineSize) Cell32 cell_{};
};

TEST_F(Cell32Test, PublishAndMatch) {
  const Key128 key{0x1111222233334444ull, 0x5555666677778888ull};
  cell_.publish(pm_, key, 99);
  EXPECT_TRUE(cell_.occupied());
  EXPECT_TRUE(cell_.matches(key));
  EXPECT_FALSE(cell_.matches(Key128{key.lo, key.hi + 1}));
  EXPECT_FALSE(cell_.matches(Key128{key.lo + 1, key.hi}));
  EXPECT_EQ(cell_.key(), key);
  EXPECT_EQ(cell_.value, 99u);
}

TEST_F(Cell32Test, TagRejectsWithoutFullCompare) {
  const Key128 a{1, 2};
  cell_.publish(pm_, a, 1);
  // Keys with a different tag are rejected by the meta word alone; keys
  // with the same tag but different bits are rejected by the full compare.
  const Key128 same_tag{a.lo ^ (1ull << 32), a.hi ^ (1ull << 32)};
  if (Cell32::tag_of(same_tag) == Cell32::tag_of(a)) {
    EXPECT_FALSE(cell_.matches(same_tag));
  }
}

TEST_F(Cell32Test, RetractProtocol) {
  cell_.publish(pm_, {3, 4}, 5);
  pm_.stats().clear();
  cell_.retract(pm_);
  EXPECT_FALSE(cell_.occupied());
  EXPECT_FALSE(cell_.payload_dirty());
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().persist_calls, 2u);
}

TEST_F(Cell32Test, InsertProtocolPersistsPayloadBeforeCommit) {
  cell_.publish(pm_, {1, 2}, 3);
  // 3 payload stores, one persist over them, then the atomic commit and
  // its persist.
  EXPECT_EQ(pm_.stats().stores, 3u);
  EXPECT_EQ(pm_.stats().atomic_stores, 1u);
  EXPECT_EQ(pm_.stats().persist_calls, 2u);
}

TEST_F(Cell32Test, ZeroKeyIsDistinguishable) {
  EXPECT_FALSE(cell_.matches(Key128{0, 0}));
  cell_.publish(pm_, {0, 0}, 7);
  EXPECT_TRUE(cell_.matches(Key128{0, 0}));
}

TEST(CellLayout, SizesAndCommitWordAlignment) {
  static_assert(sizeof(Cell16) == 16);
  static_assert(sizeof(Cell32) == 32);
  static_assert(offsetof(Cell16, word0) == 0);
  static_assert(offsetof(Cell32, meta) == 0);
  static_assert(alignof(Cell16) == 8);
  static_assert(alignof(Cell32) == 8);
  SUCCEED();
}

TEST(CellCrashAtomicity, UncommittedInsertIsInvisible) {
  // Drive the insert protocol through the crash simulator and stop before
  // the commit word persists: the durable image must read as empty.
  alignas(kCachelineSize) struct {
    Cell16 cell;
    std::byte pad[48];
  } mem{};
  nvm::ShadowPM pm({reinterpret_cast<std::byte*>(&mem), sizeof(mem)});
  // Events: store value(0), persist(1), atomic commit(2), persist(3).
  pm.crash_at_event(2);
  EXPECT_THROW(mem.cell.publish(pm, 77, 88), nvm::SimulatedCrash);
  const auto img = pm.materialize_crash_image(nvm::CrashMode::kNothingEvicted);
  const Cell16* durable = reinterpret_cast<const Cell16*>(img.data());
  EXPECT_FALSE(durable->occupied());
}

TEST(CellCrashAtomicity, CommittedInsertIsComplete) {
  alignas(kCachelineSize) struct {
    Cell16 cell;
    std::byte pad[48];
  } mem{};
  nvm::ShadowPM pm({reinterpret_cast<std::byte*>(&mem), sizeof(mem)});
  mem.cell.publish(pm, 77, 88);  // runs to completion
  const auto img = pm.materialize_crash_image(nvm::CrashMode::kNothingEvicted);
  const Cell16* durable = reinterpret_cast<const Cell16*>(img.data());
  EXPECT_TRUE(durable->matches(77));
  EXPECT_EQ(durable->value, 88u);
}

}  // namespace
}  // namespace gh::hash
