// Shared helpers for the hash-scheme tests: a fixture mixin that carves a
// table of any scheme out of an anonymous NVM region with a counting-only
// persistence policy (no real flushes, no latency — the protocols and
// counters are what the unit tests check).
#pragma once

#include <optional>
#include <span>

#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "trace/workload.hpp"
#include "util/types.hpp"

namespace gh::hash::test {

template <class Table>
class TableFixture {
 public:
  template <class Params>
  Table& init(const Params& params) {
    region_ = nvm::NvmRegion::create_anonymous(Table::required_bytes(params));
    table_.emplace(pm_, region_.bytes().first(Table::required_bytes(params)), params,
                   /*format=*/true);
    return *table_;
  }

  Table& table() { return *table_; }
  nvm::DirectPM& pm() { return pm_; }
  std::span<std::byte> region_bytes() { return region_.bytes(); }

 private:
  nvm::NvmRegion region_;
  nvm::DirectPM pm_{nvm::PersistConfig::counting_only()};
  std::optional<Table> table_;
};

/// Key helpers usable for both cell widths.
inline u64 k64(u64 i) { return i * 2654435761u % (1ull << 40); }

}  // namespace gh::hash::test
