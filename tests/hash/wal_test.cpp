#include "hash/wal.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"

namespace gh::hash {
namespace {

using nvm::DirectPM;
using nvm::PersistConfig;

class UndoLogTest : public ::testing::Test {
 protected:
  UndoLogTest()
      : region_(nvm::NvmRegion::create_anonymous(64 * 1024)),
        tracked_(region_.bytes().first(32 * 1024)),
        log_(pm_, region_.bytes().subspan(32 * 1024, UndoLog<DirectPM>::required_bytes(64)),
             tracked_, 64, /*format=*/true) {}

  u64* word(usize i) { return reinterpret_cast<u64*>(tracked_.data()) + i; }

  nvm::NvmRegion region_;
  DirectPM pm_{PersistConfig::counting_only()};
  std::span<std::byte> tracked_;
  UndoLog<DirectPM> log_;
};

TEST_F(UndoLogTest, CommittedTransactionRollsNothingBack) {
  *word(0) = 1;
  log_.begin();
  log_.log_cell(word(0), 8);
  *word(0) = 2;
  log_.commit();
  EXPECT_EQ(log_.recover(), 0u);
  EXPECT_EQ(*word(0), 2u);
}

TEST_F(UndoLogTest, UncommittedTransactionRollsBack) {
  *word(0) = 1;
  *word(1) = 10;
  log_.begin();
  log_.log_cell(word(0), 8);
  *word(0) = 2;
  log_.log_cell(word(1), 8);
  *word(1) = 20;
  // No commit: recovery must restore both, newest first.
  EXPECT_EQ(log_.recover(), 2u);
  EXPECT_EQ(*word(0), 1u);
  EXPECT_EQ(*word(1), 10u);
  EXPECT_FALSE(log_.in_transaction());
}

TEST_F(UndoLogTest, RollbackRestoresOldestValueOnRepeatedLogs) {
  *word(0) = 1;
  log_.begin();
  log_.log_cell(word(0), 8);
  *word(0) = 2;
  log_.log_cell(word(0), 8);  // logs the intermediate value 2
  *word(0) = 3;
  EXPECT_EQ(log_.recover(), 2u);
  // Newest-first rollback: 3 -> 2 (from second record) -> 1 (from first).
  EXPECT_EQ(*word(0), 1u);
}

TEST_F(UndoLogTest, WideCellImages) {
  unsigned char original[32];
  for (int i = 0; i < 32; ++i) original[i] = static_cast<unsigned char>(i);
  std::memcpy(tracked_.data() + 128, original, 32);
  log_.begin();
  log_.log_cell(tracked_.data() + 128, 32);
  std::memset(tracked_.data() + 128, 0xff, 32);
  log_.recover();
  EXPECT_EQ(std::memcmp(tracked_.data() + 128, original, 32), 0);
}

TEST_F(UndoLogTest, TransactionStateIsObservable) {
  EXPECT_FALSE(log_.in_transaction());
  log_.begin();
  EXPECT_TRUE(log_.in_transaction());
  EXPECT_EQ(log_.records_in_transaction(), 0u);
  log_.log_cell(word(0), 8);
  EXPECT_EQ(log_.records_in_transaction(), 1u);
  log_.commit();
  EXPECT_FALSE(log_.in_transaction());
  EXPECT_EQ(log_.lifetime_records(), 1u);
}

TEST_F(UndoLogTest, ReattachAfterRestartSeesState) {
  log_.begin();
  log_.log_cell(word(0), 8);
  *word(0) = 99;
  // Simulate a restart: re-attach a new UndoLog object to the same bytes.
  UndoLog<DirectPM> reattached(pm_,
                               region_.bytes().subspan(32 * 1024,
                                                       UndoLog<DirectPM>::required_bytes(64)),
                               tracked_, 64, /*format=*/false);
  EXPECT_TRUE(reattached.in_transaction());
  EXPECT_EQ(reattached.recover(), 1u);
  EXPECT_EQ(*word(0), 0u);
}

TEST_F(UndoLogTest, LoggingCostIsTheDuplicateCopy) {
  // The point of Figs 2/5/6: each logged cell costs one duplicate-copy
  // cacheline write + flush, plus one flush each for begin and commit.
  pm_.stats().clear();
  log_.begin();
  log_.log_cell(word(0), 8);
  log_.commit();
  EXPECT_EQ(pm_.stats().persist_calls, 3u);
}

TEST_F(UndoLogTest, TornRecordFailsChecksumAndIsSkipped) {
  *word(0) = 5;
  log_.begin();
  log_.log_cell(word(0), 8);
  *word(0) = 6;
  // Corrupt one byte of the record's saved image, simulating a torn
  // cacheline: recovery must skip it rather than restore garbage.
  auto* rec_bytes = region_.bytes().data() + 32 * 1024 + 64;  // first record slot
  rec_bytes[16] ^= std::byte{0xff};
  EXPECT_EQ(log_.recover(), 0u);
  EXPECT_EQ(*word(0), 6u);  // nothing was rolled back
  EXPECT_FALSE(log_.in_transaction());
}

TEST(UndoLogCrash, TornLogRecordIsIgnoredAfterRollback) {
  // Crash while appending a record: nrecords was not bumped, so recovery
  // must not apply the half-written record.
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(16 * 1024);
  nvm::ShadowPM pm(region.bytes());
  auto tracked = region.bytes().first(4096);
  UndoLog<nvm::ShadowPM> log(pm, region.bytes().subspan(4096, 8192), tracked, 16, true);
  u64* w = reinterpret_cast<u64*>(tracked.data());
  pm.store_u64(w, 5);
  pm.persist(w, 8);
  log.begin();
  log.log_cell(w, 8);
  pm.store_u64(w, 6);
  pm.persist(w, 8);
  log.commit();
  // Second tx: crash mid-log_cell (before the nrecords bump persists).
  log.begin();
  const u64 crash_event = pm.event_count() + 4;  // inside log_cell
  pm.crash_at_event(crash_event);
  EXPECT_THROW(log.log_cell(w, 8), nvm::SimulatedCrash);
  // Reboot from the durable image.
  const auto img = pm.materialize_crash_image(nvm::CrashMode::kNothingEvicted);
  pm.reset_to_image(img);
  UndoLog<nvm::ShadowPM> rebooted(pm, region.bytes().subspan(4096, 8192), tracked, 16, false);
  rebooted.recover();
  EXPECT_EQ(*w, 6u);  // value from the committed first tx
}

}  // namespace
}  // namespace gh::hash
