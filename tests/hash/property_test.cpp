// Property-based sweeps: every scheme × cell width × logging × geometry
// runs a randomized churn workload against a std::unordered_map oracle,
// checking the full behavioural contract (membership, values, count,
// recover() idempotence) rather than individual scenarios.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "hash/any_table.hpp"
#include "nvm/direct_pm.hpp"
#include "nvm/region.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

struct PropertyCase {
  Scheme scheme;
  u32 total_cells_log2;
  u32 group_size;
  bool wide;
  bool wal;
  double target_load;
  u64 seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string name = scheme_name(c.scheme);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  name += "_c" + std::to_string(c.total_cells_log2);
  name += "_g" + std::to_string(c.group_size);
  name += c.wide ? "_wide" : "_narrow";
  name += c.wal ? "_wal" : "_plain";
  name += "_l" + std::to_string(static_cast<int>(c.target_load * 100));
  name += "_s" + std::to_string(c.seed);
  return name;
}

struct KeyHash {
  usize operator()(const Key128& k) const {
    return static_cast<usize>(fmix64(k.lo) ^ k.hi);
  }
};

class SchemeProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SchemeProperty, ChurnMatchesOracle) {
  const PropertyCase c = GetParam();
  TableConfig cfg;
  cfg.scheme = c.scheme;
  cfg.total_cells_log2 = c.total_cells_log2;
  cfg.group_size = c.group_size;
  cfg.wide_cells = c.wide;
  cfg.with_wal = c.wal;
  nvm::DirectPM pm(nvm::PersistConfig::counting_only());
  nvm::NvmRegion region = nvm::NvmRegion::create_anonymous(table_required_bytes(cfg));
  auto table = make_table(pm, region.bytes().first(table_required_bytes(cfg)), cfg, true);

  std::unordered_map<Key128, u64, KeyHash> oracle;
  std::vector<Key128> live;
  Xoshiro256 rng(c.seed);
  const u64 capacity = table->capacity();
  const u64 target = static_cast<u64>(static_cast<double>(capacity) * c.target_load);

  auto fresh_key = [&] {
    const u64 lo = rng.next_below(1ull << 40) + 1;
    return Key128{lo, c.wide ? rng.next() : 0};
  };

  const int steps = 4000;
  for (int step = 0; step < steps; ++step) {
    const double r = rng.next_double();
    if (r < 0.55 && oracle.size() < target) {
      const Key128 k = fresh_key();
      if (oracle.count(k)) continue;
      const u64 v = rng.next();
      if (table->insert(k, v)) {
        oracle[k] = v;
        live.push_back(k);
      }
      // Insert failure below target load is acceptable only for the
      // schemes the paper excludes for exactly that reason.
    } else if (r < 0.80 && !live.empty()) {
      const Key128 k = live[rng.next_below(live.size())];
      const auto found = table->find(k);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(*found, oracle[k]);
    } else if (r < 0.90) {
      // Negative lookup.
      const Key128 k = fresh_key();
      if (!oracle.count(k)) EXPECT_FALSE(table->find(k).has_value());
    } else if (!live.empty()) {
      const usize idx = rng.next_below(live.size());
      const Key128 k = live[idx];
      EXPECT_TRUE(table->erase(k));
      oracle.erase(k);
      live[idx] = live.back();
      live.pop_back();
      EXPECT_FALSE(table->erase(k));  // double delete must fail
    }
    ASSERT_EQ(table->count(), oracle.size()) << "step " << step;
  }

  // Full sweep: every oracle entry present with the right value.
  for (const auto& [k, v] : oracle) {
    const auto found = table->find(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  }

  // recover() on a healthy table is an identity for the logical contents.
  const auto report = table->recover();
  EXPECT_EQ(report.recovered_count, oracle.size());
  EXPECT_EQ(report.wal_records_rolled_back, 0u);
  for (const auto& [k, v] : oracle) EXPECT_EQ(*table->find(k), v);

  // And it is idempotent.
  const auto report2 = table->recover();
  EXPECT_EQ(report2.recovered_count, report.recovered_count);
  EXPECT_EQ(report2.cells_scrubbed, 0u);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  // The paper's contenders, both widths, with and without logging.
  for (const Scheme s : {Scheme::kGroup, Scheme::kLinear, Scheme::kPfht, Scheme::kPath}) {
    for (const bool wide : {false, true}) {
      for (const bool wal : {false, true}) {
        cases.push_back({s, 11, 64, wide, wal, 0.5, 101});
      }
    }
  }
  // Group hashing geometry sweep (Fig. 8's dimension).
  for (const u32 group_size : {1u, 4u, 16u, 64u, 256u}) {
    cases.push_back({Scheme::kGroup, 11, group_size, false, false, 0.5, 202});
  }
  // Load-factor sweep at the paper's two operating points and beyond.
  for (const double load : {0.25, 0.5, 0.75}) {
    cases.push_back({Scheme::kGroup, 12, 256, false, false, load, 303});
    cases.push_back({Scheme::kLinear, 12, 256, false, false, load, 303});
  }
  // Excluded baselines at gentle load.
  cases.push_back({Scheme::kChained, 11, 64, false, false, 0.4, 404});
  cases.push_back({Scheme::kTwoChoice, 11, 64, false, false, 0.3, 404});
  // Extension schemes: classic cuckoo and the §4.4 two-hash variant.
  cases.push_back({Scheme::kCuckoo, 11, 64, false, false, 0.4, 505});
  cases.push_back({Scheme::kCuckoo, 11, 64, true, false, 0.4, 505});
  cases.push_back({Scheme::kGroup2H, 11, 64, false, false, 0.6, 505});
  cases.push_back({Scheme::kGroup2H, 11, 64, true, false, 0.6, 505});
  cases.push_back({Scheme::kGroup2H, 12, 256, false, false, 0.75, 506});
  cases.push_back({Scheme::kLevel, 11, 64, false, false, 0.6, 607});
  cases.push_back({Scheme::kLevel, 11, 64, true, false, 0.6, 607});
  cases.push_back({Scheme::kLevel, 12, 64, false, true, 0.5, 608});
  // Seed diversity on the headline configuration.
  for (const u64 seed : {1ull, 2ull, 3ull}) {
    cases.push_back({Scheme::kGroup, 12, 256, false, false, 0.6, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchemeProperty, ::testing::ValuesIn(property_cases()),
                         case_name);

}  // namespace
}  // namespace gh::hash
