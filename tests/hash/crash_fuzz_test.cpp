// Randomized multi-operation crash fuzzing.
//
// Where crash_injection_test.cpp enumerates every crash point inside ONE
// operation, this test runs a whole mixed workload (inserts, queries,
// deletes) and injects crashes at random persistence events anywhere in
// the sequence, under random eviction. After recovery the table must
// equal the oracle state as of the last completed operation, with the
// single in-flight operation allowed to be either fully applied or fully
// absent.
//
// A flight recorder (obs/flight_recorder.hpp) rides along in full-
// fidelity mode over a sidecar sub-span of the same ShadowPM, sized to
// wrap several times, so every crash point × eviction image also checks
// the recorder's own commit-word protocol: a scanned image may hold old,
// new or empty slots, but NEVER a torn record.
#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/any_table.hpp"
#include "nvm/region.hpp"
#include "nvm/shadow_pm.hpp"
#include "obs/flight_recorder.hpp"
#include "trace/trace_file.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

namespace gh::hash {
namespace {

using nvm::CrashMode;
using nvm::ShadowPM;
using nvm::SimulatedCrash;

struct FuzzCase {
  Scheme scheme;
  bool with_wal;
  u64 seed;
  bool wide = false;  ///< 32-byte cells (Key128 + tag commit protocol)
  bool crc = false;   ///< per-group checksums (rebuilt by recovery)
};

std::string case_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = scheme_name(info.param.scheme);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  name += info.param.with_wal ? "_L" : "";
  name += info.param.wide ? "_W" : "";
  name += info.param.crc ? "_C" : "";
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

class CrashFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  TableConfig config() const {
    TableConfig cfg;
    cfg.scheme = GetParam().scheme;
    cfg.total_cells_log2 = 8;
    cfg.group_size = 16;
    cfg.with_wal = GetParam().with_wal;
    cfg.wal_records = 256;
    cfg.wide_cells = GetParam().wide;
    cfg.group_crc = GetParam().crc;
    return cfg;
  }

  trace::OpTrace make_ops() const {
    const trace::Workload w = trace::make_random_num(80, GetParam().seed);
    return trace::make_op_trace(w, 30, 50, 0.2, 0.3, GetParam().seed * 7 + 1);
  }

  /// Executes ops until a crash fires (or all complete). Records the
  /// event count at the END of each completed op.
  struct RunResult {
    std::vector<u64> op_end_events;
    bool crashed = false;
    usize ops_completed = 0;
  };

  /// Small flight geometry (1 ring × 64 slots) so the ~160 records of a
  /// full workload wrap the ring and exercise slot invalidation.
  static constexpr u32 kFlightRings = 1;
  static constexpr u32 kFlightSlots = 64;

  RunResult run(ShadowPM& pm, std::span<std::byte> mem, std::span<std::byte> flight_mem,
                const trace::OpTrace& ops, u64 crash_at) {
    pm.crash_at_event(ShadowPM::no_crash());
    auto table = make_table(pm, mem, config(), /*format=*/true);
    // Full fidelity: every op leaves records, so every crash point lands
    // near in-progress flight writes.
    obs::BasicFlightRecorder<ShadowPM> flight(pm, flight_mem, kFlightRings, kFlightSlots);
    flight.set_mode(obs::FlightMode::kFull);
    table->attach_flight(&flight);
    pm.crash_at_event(crash_at);
    RunResult r;
    try {
      for (const trace::TraceOp& op : ops.ops) {
        switch (op.type) {
          case trace::OpType::kInsert:
            EXPECT_TRUE(table->insert(op.key, op.value));
            break;
          case trace::OpType::kDelete:
            EXPECT_TRUE(table->erase(op.key));
            break;
          case trace::OpType::kQuery:
            EXPECT_TRUE(table->find(op.key).has_value());
            break;
        }
        r.op_end_events.push_back(pm.event_count());
        r.ops_completed++;
      }
    } catch (const SimulatedCrash&) {
      r.crashed = true;
    }
    pm.crash_at_event(ShadowPM::no_crash());
    return r;
  }
};

TEST_P(CrashFuzz, RandomCrashPointsRecoverToOracleState) {
  const trace::OpTrace ops = make_ops();
  const usize bytes = table_required_bytes(config());
  const usize table_span = round_up(bytes, 4096);
  const usize flight_bytes = obs::flight_required_bytes(kFlightRings, kFlightSlots);
  nvm::NvmRegion region =
      nvm::NvmRegion::create_anonymous(table_span + round_up(flight_bytes, 4096));
  auto all = region.bytes();
  auto mem = all.first(round_up(bytes, 8));
  auto flight_mem = all.subspan(table_span, flight_bytes);

  // Dry run: learn the event timeline.
  ShadowPM dry(all);
  const RunResult timeline = run(dry, mem, flight_mem, ops, ShadowPM::no_crash());
  ASSERT_FALSE(timeline.crashed);
  ASSERT_EQ(timeline.ops_completed, ops.ops.size());
  EXPECT_EQ(dry.dirty_word_count(), 0u);
  const u64 first_event = timeline.op_end_events.empty() ? 0 : 1;
  const u64 total_events = timeline.op_end_events.back();

  Xoshiro256 rng(GetParam().seed * 1337 + 11);
  constexpr int kCrashes = 12;
  // One crash point leaves a whole SPACE of post-crash images: any subset
  // of the unflushed lines may have been evicted (persisted) before the
  // power died. Sweep several eviction seeds per crash point so a scheme
  // that only survives one lucky eviction order cannot pass.
  constexpr u64 kEvictionSeeds = 8;
  for (int trial = 0; trial < kCrashes; ++trial) {
    const u64 crash_at = first_event + rng.next_below(total_events - first_event);
    std::fill(all.begin(), all.end(), std::byte{0});
    ShadowPM pm(all);
    const RunResult r = run(pm, mem, flight_mem, ops, crash_at);
    if (!r.crashed) continue;  // crash point fell into formatting; skip

    // Oracle: state after the last completed op; the next op is in flight.
    std::unordered_map<u64, u64> oracle;
    for (usize i = 0; i < r.ops_completed; ++i) {
      const trace::TraceOp& op = ops.ops[i];
      if (op.type == trace::OpType::kInsert) oracle[op.key.lo] = op.value;
      if (op.type == trace::OpType::kDelete) oracle.erase(op.key.lo);
    }
    const trace::TraceOp* inflight =
        r.ops_completed < ops.ops.size() ? &ops.ops[r.ops_completed] : nullptr;

    // Materialize every eviction variant BEFORE the first reset: replaying
    // an image and recovering on it mutates the shadow state the images
    // are derived from.
    std::vector<std::vector<std::byte>> images;
    images.reserve(kEvictionSeeds);
    for (u64 ev = 0; ev < kEvictionSeeds; ++ev) {
      images.push_back(pm.materialize_crash_image(CrashMode::kRandomEviction,
                                                  crash_at * 97 + trial * 131 + ev));
    }

    for (u64 ev = 0; ev < kEvictionSeeds; ++ev) {
      SCOPED_TRACE("crash at " + std::to_string(crash_at) + ", eviction seed " +
                   std::to_string(ev));
      pm.reset_to_image(images[ev]);
      // The crash image's flight sidecar must obey the commit-word
      // protocol: slots are old, new or empty — never torn.
      if (obs::kEnabled) {
        const obs::FlightScan fscan = obs::scan_flight(flight_mem);
        ASSERT_TRUE(fscan.valid_header);
        EXPECT_EQ(fscan.records_torn, 0u)
            << "flight commit-word protocol yielded a torn record";
      }
      auto table = make_table(pm, mem, config(), /*format=*/false);
      const auto report = table->recover();

      u64 present = 0;
      for (const auto& [k, v] : oracle) {
        if (inflight != nullptr && inflight->key.lo == k) continue;  // checked below
        const auto found = table->find(Key128{k, 0});
        ASSERT_TRUE(found.has_value()) << "lost committed key " << k;
        EXPECT_EQ(*found, v);
        present++;
      }
      if (inflight != nullptr) {
        const u64 k = inflight->key.lo;
        const auto found = table->find(Key128{k, 0});
        const auto it = oracle.find(k);
        switch (inflight->type) {
          case trace::OpType::kInsert:
            // Absent, or fully inserted with the op's value.
            if (found.has_value()) {
              EXPECT_EQ(*found, inflight->value);
            }
            break;
          case trace::OpType::kDelete:
            // Still present with the pre-op value, or gone.
            if (found.has_value()) {
              ASSERT_NE(it, oracle.end());
              EXPECT_EQ(*found, it->second);
            }
            break;
          case trace::OpType::kQuery:
            // Queries mutate nothing: the key must be exactly as committed.
            ASSERT_EQ(found.has_value(), it != oracle.end());
            if (found.has_value()) {
              EXPECT_EQ(*found, it->second);
            }
            break;
        }
        present += found.has_value() ? 1 : 0;
      }
      EXPECT_EQ(table->count(), present) << "count mismatch";
      EXPECT_EQ(report.recovered_count, present);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CrashFuzz,
    ::testing::Values(FuzzCase{Scheme::kGroup, false, 1}, FuzzCase{Scheme::kGroup, false, 2},
                      FuzzCase{Scheme::kGroup, false, 3},
                      FuzzCase{Scheme::kGroup2H, false, 1},
                      FuzzCase{Scheme::kGroup2H, false, 2},
                      FuzzCase{Scheme::kGroup2H, false, 3},
                      FuzzCase{Scheme::kGroup2H, true, 1},
                      FuzzCase{Scheme::kGroup, true, 1},
                      FuzzCase{Scheme::kLinear, true, 1}, FuzzCase{Scheme::kLinear, true, 2},
                      FuzzCase{Scheme::kPfht, true, 1}, FuzzCase{Scheme::kPath, true, 1},
                      // Wide (Key128) cells: the tag-based commit word has
                      // its own torn-state space; fuzz it on both group
                      // variants (these feed the string map's Cell32 path).
                      FuzzCase{Scheme::kGroup, false, 1, true},
                      FuzzCase{Scheme::kGroup, false, 2, true},
                      FuzzCase{Scheme::kGroup2H, false, 1, true},
                      FuzzCase{Scheme::kGroup2H, false, 2, true},
                      // Per-group checksums: the checksum store is NOT
                      // failure-atomic with the cell commit, so recovery
                      // must rebuild a consistent state from every
                      // crash point × eviction order.
                      FuzzCase{Scheme::kGroup, false, 1, false, true},
                      FuzzCase{Scheme::kGroup, false, 2, false, true},
                      FuzzCase{Scheme::kGroup, false, 1, true, true}),
    case_name);

}  // namespace
}  // namespace gh::hash
